// Command allocgate enforces the hot-path allocation budgets
// (ALLOC_BUDGETS.json) in CI. It has two modes, and CI's bench-allocs
// job runs both:
//
// Bench mode (default) reads `go test -bench -benchmem` output from
// stdin (or -bench file) and fails if any budgeted benchmark exceeds
// its allocs/op ceiling — or did not run at all:
//
//	go test -run '^$' -bench . -benchmem ./internal/... | go run ./cmd/allocgate
//
// Escape mode reads `go build -gcflags=-m` diagnostics and fails if
// any value escapes to the heap inside a //ljqlint:hotpath function
// (unless the site carries an inline //ljqlint:allow hotalloc with a
// reason). The compiler only re-emits -m diagnostics on a real
// compile, so capture them with a cold cache:
//
//	GOCACHE=$(mktemp -d) go build -gcflags=-m ./... 2> escapes.txt
//	go run ./cmd/allocgate -escapes escapes.txt
//
// Together with the hotalloc analyzer (syntactic allocation sites,
// enforced by ljqlint) this closes the loop: the analyzer catches
// composite literals/make/append/boxing at review time, the escape
// gate catches compiler-decided heap moves, and the bench gate
// catches everything that actually allocates at run time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"joinopt/internal/analysis/allocbudget"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("allocgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budgets := fs.String("budgets", "ALLOC_BUDGETS.json", "allocation budgets file")
	benchFile := fs.String("bench", "-", "bench output to check (- = stdin)")
	escapes := fs.String("escapes", "", "check `go build -gcflags=-m` diagnostics from this file instead of bench output")
	root := fs.String("root", ".", "module root the escape diagnostics' paths are relative to")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *escapes != "" {
		return runEscapes(*escapes, *root, stdout, stderr)
	}
	return runBench(*budgets, *benchFile, stdout, stderr)
}

func runBench(budgetsPath, benchPath string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(budgetsPath)
	if err != nil {
		fmt.Fprintln(stderr, "allocgate:", err)
		return 2
	}
	f, err := allocbudget.ParseBudgets(data)
	if err != nil {
		fmt.Fprintln(stderr, "allocgate:", err)
		return 2
	}
	var in io.Reader = os.Stdin
	if benchPath != "-" {
		bf, err := os.Open(benchPath)
		if err != nil {
			fmt.Fprintln(stderr, "allocgate:", err)
			return 2
		}
		defer bf.Close()
		in = bf
	}
	results, err := allocbudget.ParseBenchOutput(in)
	if err != nil {
		fmt.Fprintln(stderr, "allocgate:", err)
		return 2
	}
	violations := allocbudget.Check(f, results)
	for _, v := range violations {
		fmt.Fprintf(stdout, "allocgate: %s\n", v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(stderr, "allocgate: %d budget violation(s); fix the regression or re-measure and raise the budget with a note\n", len(violations))
		return 1
	}
	fmt.Fprintf(stdout, "allocgate: %d budget(s) honored\n", len(f.Budgets))
	return 0
}

func runEscapes(escapesPath, root string, stdout, stderr io.Writer) int {
	ef, err := os.Open(escapesPath)
	if err != nil {
		fmt.Fprintln(stderr, "allocgate:", err)
		return 2
	}
	defer ef.Close()
	findings, err := allocbudget.CheckEscapes(ef, root)
	if err != nil {
		fmt.Fprintln(stderr, "allocgate:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(stdout, "allocgate: %s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "allocgate: %d heap escape(s) inside //ljqlint:hotpath functions\n", len(findings))
		return 1
	}
	fmt.Fprintln(stdout, "allocgate: hotpath functions are escape-clean")
	return 0
}
