// Command ljqgen synthesizes random large-join queries from the paper's
// §5 benchmarks and writes them as JSON (the format cmd/ljqopt reads).
//
// Usage:
//
//	ljqgen -n 30 > query.json              # default benchmark, 30 joins
//	ljqgen -n 50 -benchmark 8 -seed 7      # star-biased join graph
//	ljqgen -n 20 -o q.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
	"joinopt/internal/plot"
	"joinopt/internal/qdsl"
	"joinopt/internal/qfile"
	"joinopt/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 20, "number of joins (relations = n+1)")
		bench = flag.Int("benchmark", 0, "benchmark id: 0 = default, 1..9 = §5 variations")
		shape = flag.String("shape", "", "fixed topology instead of a random graph: chain, star, cycle, clique, grid")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "-", "output file (- = stdout)")
		dsl   = flag.Bool("dsl", false, "emit the textual DSL instead of JSON")
		graph = flag.String("graph", "", "also write the join graph as an SVG to this path")
	)
	flag.Parse()

	spec := workload.Default()
	if *bench != 0 {
		var err error
		spec, err = workload.Benchmark(*bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ljqgen: %v\n", err)
			os.Exit(1)
		}
	}
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "ljqgen: -n must be at least 1")
		os.Exit(1)
	}
	var q *catalog.Query
	if *shape != "" {
		var sh workload.Shape
		switch *shape {
		case "chain":
			sh = workload.ShapeChain
		case "star":
			sh = workload.ShapeStar
		case "cycle":
			sh = workload.ShapeCycle
		case "clique":
			sh = workload.ShapeClique
		case "grid":
			sh = workload.ShapeGrid
		default:
			fmt.Fprintf(os.Stderr, "ljqgen: unknown shape %q\n", *shape)
			os.Exit(1)
		}
		var err error
		q, err = spec.GenerateShape(sh, *n+1, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ljqgen: %v\n", err)
			os.Exit(1)
		}
	} else {
		q = spec.Generate(*n, rand.New(rand.NewSource(*seed)))
	}
	if *graph != "" {
		svg := plot.GraphSVG(joingraph.New(q), q)
		if err := os.WriteFile(*graph, []byte(svg), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ljqgen: %v\n", err)
			os.Exit(1)
		}
	}
	if *dsl {
		text := qdsl.Format(q)
		if *out == "-" {
			fmt.Print(text)
			return
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ljqgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := qfile.WriteFile(*out, q); err != nil {
		fmt.Fprintf(os.Stderr, "ljqgen: %v\n", err)
		os.Exit(1)
	}
}
