// Command ljqbench reproduces the paper's evaluation — every table and
// figure of Swami (SIGMOD 1989) regenerates by name — plus the
// extension experiments this library adds. Output is an aligned text
// table whose rows/columns match the paper's layout; figures can also
// be written as SVG/CSV or printed as ASCII charts.
//
// Usage:
//
//	ljqbench -experiment fig4                    # reduced scale (default)
//	ljqbench -experiment table3 -full            # the paper's full protocol
//	ljqbench -experiment fig6 -queries 12 -reps 2 -seed 7
//	ljqbench -experiment all -svg figs -csv figs # figures to files
//	ljqbench -experiment space                   # §7 solution-space profile
//	ljqbench -experiment bushy                   # §2 left-deep restriction probe
//	ljqbench -experiment baselines               # extension algorithms vs IAI
//	ljqbench -experiment shapes                  # chain/star/cycle/clique/grid
//	ljqbench -experiment noise                   # estimation-error robustness
//	ljqbench -experiment qerror                  # estimator accuracy vs execution
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"joinopt/internal/bushy"
	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/dp"
	"joinopt/internal/estimate"
	"joinopt/internal/experiment"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/search"
	"joinopt/internal/spacestat"
	"joinopt/internal/stats"
	"joinopt/internal/workload"
)

func main() {
	var (
		exp      = flag.String("experiment", "fig4", "one of table1, table2, table3, fig4, fig5, fig6, fig7, space, bushy, baselines, noise, shapes, qerror, all")
		full     = flag.Bool("full", false, "run the paper's full protocol (50 queries/N, 2 replicates)")
		queries  = flag.Int("queries", 0, "override queries per N")
		reps     = flag.Int("reps", 0, "override replicates per query")
		seed     = flag.Int64("seed", 1989, "experiment seed")
		par      = flag.Int("parallelism", 0, "concurrent query tasks (default NumCPU)")
		progress = flag.Bool("progress", true, "print progress to stderr")
		svgDir   = flag.String("svg", "", "directory to write <experiment>.svg figures into")
		csvDir   = flag.String("csv", "", "directory to write <experiment>.csv matrices into")
		ascii    = flag.Bool("ascii", false, "also print an ASCII chart of each figure")
		timeout  = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0 = none); in-flight optimizer runs stop at the deadline and return their incumbents")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sc := experiment.ReducedScale
	if *full {
		sc = experiment.FullScale
	}
	if *queries > 0 {
		sc.QueriesPerN = *queries
	}
	if *reps > 0 {
		sc.Replicates = *reps
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "table3"}
	}
	for _, name := range names {
		if err := run(ctx, name, sc, *seed, *par, *progress, *svgDir, *csvDir, *ascii); err != nil {
			fmt.Fprintf(os.Stderr, "ljqbench: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(ctx context.Context, name string, sc experiment.Scale, seed int64, par int, progress bool, svgDir, csvDir string, ascii bool) error {
	var cfgs []experiment.Config
	switch strings.ToLower(name) {
	case "table1":
		cfgs = []experiment.Config{experiment.Table1(sc, seed)}
	case "table2":
		cfgs = []experiment.Config{experiment.Table2(sc, seed)}
	case "fig4", "figure4":
		cfgs = []experiment.Config{experiment.Figure4(sc, seed)}
	case "fig5", "figure5":
		cfgs = []experiment.Config{experiment.Figure5(sc, seed)}
	case "fig6", "figure6":
		cfgs = []experiment.Config{experiment.Figure6(sc, seed)}
	case "fig7", "figure7":
		cfgs = []experiment.Config{experiment.Figure7(sc, seed)}
	case "table3":
		var err error
		cfgs, err = experiment.Table3(sc, seed)
		if err != nil {
			return err
		}
	case "space":
		return runSpace(sc, seed)
	case "bushy":
		return runBushy(ctx, sc, seed)
	case "baselines":
		return runBaselines(ctx, sc, seed)
	case "shapes":
		return runShapes(ctx, sc, seed)
	case "qerror":
		r, err := experiment.RunQError(experiment.DefaultQErrorConfig(sc, seed))
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	case "noise":
		r, err := experiment.RunNoise(experiment.DefaultNoiseConfig(sc, seed))
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}

	// Table 3 prints as one combined table: rows = benchmarks.
	if strings.EqualFold(name, "table3") {
		return runTable3(ctx, cfgs, par, progress)
	}
	for i := range cfgs {
		cfg := cfgs[i]
		cfg.Parallelism = par
		cfg.Context = ctx
		if progress {
			cfg.Progress = progressPrinter(cfg.Title)
		}
		m, err := experiment.Run(cfg)
		if err != nil {
			return err
		}
		if progress {
			fmt.Fprintln(os.Stderr)
		}
		fmt.Println(m.Format())
		if err := emitCharts(m, name, svgDir, csvDir, ascii); err != nil {
			return err
		}
	}
	return nil
}

// emitCharts writes the figure as SVG/CSV and/or prints it as ASCII.
func emitCharts(m *experiment.Matrix, name, svgDir, csvDir string, ascii bool) error {
	if svgDir == "" && csvDir == "" && !ascii {
		return nil
	}
	if csvDir != "" {
		path := filepath.Join(csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(m.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	chart := m.Chart()
	if svgDir != "" {
		svg, err := chart.SVG()
		if err != nil {
			return err
		}
		path := filepath.Join(svgDir, name+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if ascii {
		out, err := chart.ASCII(72, 18)
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}

func runTable3(ctx context.Context, cfgs []experiment.Config, par int, progress bool) error {
	fmt.Printf("Table 3: changing the benchmarks (scaled cost at 9N²)\n")
	fmt.Printf("%-24s", "Benchmark")
	first := true
	for i := range cfgs {
		cfg := cfgs[i]
		cfg.Parallelism = par
		cfg.Context = ctx
		if progress {
			cfg.Progress = progressPrinter(cfg.Title)
		}
		m, err := experiment.Run(cfg)
		if err != nil {
			return err
		}
		if progress {
			fmt.Fprintln(os.Stderr)
		}
		if first {
			for _, v := range m.Variants {
				fmt.Printf("%8s", v)
			}
			fmt.Println()
			first = false
		}
		fmt.Printf("%-24s", fmt.Sprintf("%d:%s", i+1, cfg.Spec.Name))
		for v := range m.Variants {
			fmt.Printf("%8.2f", m.Scaled[v][0])
		}
		fmt.Println()
	}
	return nil
}

// runSpace characterizes the solution space of default-benchmark
// queries at several sizes — the §7 "distribution of solution costs"
// investigation.
func runSpace(sc experiment.Scale, seed int64) error {
	ns := []int{10, 30, 50}
	if sc.Ns != nil {
		ns = sc.Ns
	}
	perN := sc.QueriesPerN
	if perN > 3 {
		perN = 3 // the probes are heavy; a few queries per N suffice
	}
	cfg := spacestat.DefaultConfig()
	for _, n := range ns {
		for qi := 0; qi < perN; qi++ {
			rng := rand.New(rand.NewSource(seed + int64(n)*100 + int64(qi)))
			q := workload.Default().Generate(n, rng)
			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
			sp := search.NewSpace(eval, g.Components()[0], rng)
			r := spacestat.Analyze(sp, cfg, rng)
			fmt.Printf("N=%d query %d:\n%s\n", n, qi, r.Format())
		}
	}
	return nil
}

// runBushy probes the paper's §2 left-deep restriction. For small
// queries it reports the exact left-deep/bushy optimality gap (DP); for
// large ones, left-deep IAI versus bushy iterative improvement at the
// same 9N² budget.
func runBushy(ctx context.Context, sc experiment.Scale, seed int64) error {
	fmt.Println("left-deep restriction probe (static estimator)")
	perN := sc.QueriesPerN
	if perN > 10 {
		perN = 10
	}

	fmt.Println("\nexact optimality gap (left-deep optimum / bushy optimum), DP:")
	for _, n := range []int{8, 10, 12} {
		gaps := make([]float64, 0, perN)
		for qi := 0; qi < perN; qi++ {
			rng := rand.New(rand.NewSource(seed + int64(n)*1000 + int64(qi)))
			q := workload.Default().Generate(n, rng)
			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			st.UseStaticSelectivity()
			eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
			gap, err := dp.LeftDeepGap(eval, g.Components()[0])
			if err != nil {
				return err
			}
			gaps = append(gaps, gap)
		}
		fmt.Printf("  N=%-3d mean gap %.4f  max gap %.4f  (over %d queries)\n",
			n, stats.Mean(gaps), stats.Max(gaps), len(gaps))
	}

	fmt.Println("\nsearch comparison at 9N² budget (left-deep IAI cost / bushy II cost):")
	for _, n := range []int{20, 40} {
		ratios := make([]float64, 0, perN)
		for qi := 0; qi < perN; qi++ {
			rng := rand.New(rand.NewSource(seed + int64(n)*2000 + int64(qi)))
			q := workload.Default().Generate(n, rng)

			linBudget := cost.NewBudget(cost.UnitsFor(9, n))
			opt, err := core.NewOptimizer(q.Clone(), cost.NewMemoryModel(), linBudget,
				rand.New(rand.NewSource(seed+int64(qi))), core.Options{StaticEstimator: true})
			if err != nil {
				return err
			}
			pl, err := opt.RunContext(ctx, core.IAI)
			if err != nil {
				return err
			}

			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			st.UseStaticSelectivity()
			bBudget := cost.NewBudget(cost.UnitsFor(9, n))
			bsp := bushy.NewSpace(st, cost.NewMemoryModel(), bBudget, g.Components()[0],
				rand.New(rand.NewSource(seed+int64(qi)+1)))
			_, bc, ok := bsp.Improve(bushy.DefaultIIConfig())
			if !ok {
				continue
			}
			ratios = append(ratios, pl.TotalCost/bc)
		}
		fmt.Printf("  N=%-3d mean ratio %.3f  max %.3f  (>1 means bushy search won; %d queries)\n",
			n, stats.Mean(ratios), stats.Max(ratios), len(ratios))
	}
	return nil
}

// runShapes compares the leading strategies across canonical join-graph
// topologies (chain/star/cycle/clique/grid) at a fixed relation count:
// stars have the largest valid-order space, chains the smallest, so the
// topology is a second axis of difficulty orthogonal to N.
func runShapes(ctx context.Context, sc experiment.Scale, seed int64) error {
	const nRel = 21 // 20 joins
	methods := []core.Method{core.IAI, core.AGI, core.II, core.KBI}
	perN := sc.QueriesPerN
	fmt.Printf("shape comparison (%d relations, 9N² budget, mean scaled cost over %d queries)\n", nRel, perN)
	fmt.Printf("%-8s", "shape")
	for _, m := range methods {
		fmt.Printf("%8s", m)
	}
	fmt.Println()
	for _, shape := range workload.Shapes {
		sums := make([]float64, len(methods))
		for qi := 0; qi < perN; qi++ {
			q, err := workload.Default().GenerateShape(shape, nRel, rand.New(rand.NewSource(seed+int64(qi))))
			if err != nil {
				return err
			}
			costs := make([]float64, len(methods))
			for mi, m := range methods {
				b := cost.NewBudget(cost.UnitsFor(9, nRel-1))
				opt, err := core.NewOptimizer(q.Clone(), cost.NewMemoryModel(), b,
					rand.New(rand.NewSource(seed+int64(qi)+int64(mi)*99)), core.Options{})
				if err != nil {
					return err
				}
				pl, err := opt.RunContext(ctx, m)
				if err != nil {
					return err
				}
				costs[mi] = pl.TotalCost
			}
			best := stats.Min(costs)
			for mi, c := range costs {
				sums[mi] += stats.CoerceOutlier(c / best)
			}
		}
		fmt.Printf("%-8s", shape)
		for _, s := range sums {
			fmt.Printf("%8.2f", s/float64(perN))
		}
		fmt.Println()
	}
	return nil
}

// runBaselines compares the paper's recommended IAI against the
// post-paper algorithms this library adds as extensions: the genetic
// algorithm, 2PO, the perturbation-walk floor, iterative DP, greedy
// operator ordering and bushy II. All run under the static estimator so
// the DP-derived baselines are exact in their own space, with 9N²
// budgets where a budget applies. Scaled per query by the best result.
func runBaselines(ctx context.Context, sc experiment.Scale, seed int64) error {
	names := []string{"IAI", "GA", "2PO", "PW", "IDP3", "GOO", "bushyII"}
	perN := sc.QueriesPerN
	fmt.Println("extension baselines (static estimator, 9N² budgets; mean scaled cost)")
	fmt.Printf("%-6s", "N")
	for _, n := range names {
		fmt.Printf("%9s", n)
	}
	fmt.Println()
	for _, n := range []int{10, 20, 30} {
		sums := make([]float64, len(names))
		for qi := 0; qi < perN; qi++ {
			q := workload.Default().Generate(n, rand.New(rand.NewSource(seed+int64(n)*10000+int64(qi))))
			costs := make([]float64, len(names))

			runMethod := func(m core.Method) float64 {
				b := cost.NewBudget(cost.UnitsFor(9, n))
				opt, err := core.NewOptimizer(q.Clone(), cost.NewMemoryModel(), b,
					rand.New(rand.NewSource(seed+int64(qi))), core.Options{StaticEstimator: true})
				if err != nil {
					return math.Inf(1)
				}
				pl, err := opt.RunContext(ctx, m)
				if err != nil {
					return math.Inf(1)
				}
				return pl.TotalCost
			}
			costs[0] = runMethod(core.IAI)
			costs[1] = runMethod(core.GA)
			costs[2] = runMethod(core.TPO)
			costs[3] = runMethod(core.PW)

			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			st.UseStaticSelectivity()
			eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
			comp := g.Components()[0]
			if _, c, err := dp.IDP(eval, comp, 3); err == nil {
				costs[4] = c
			} else {
				costs[4] = math.Inf(1)
			}
			bsp := bushy.NewSpace(st, cost.NewMemoryModel(), cost.Unlimited(), comp,
				rand.New(rand.NewSource(seed+int64(qi)+5)))
			_, costs[5] = bsp.GOO()
			b2 := cost.NewBudget(cost.UnitsFor(9, n))
			bsp2 := bushy.NewSpace(st, cost.NewMemoryModel(), b2, comp,
				rand.New(rand.NewSource(seed+int64(qi)+6)))
			if _, c, ok := bsp2.Improve(bushy.DefaultIIConfig()); ok {
				costs[6] = c
			} else {
				costs[6] = math.Inf(1)
			}

			best := stats.Min(costs)
			for i, c := range costs {
				sums[i] += stats.CoerceOutlier(c / best)
			}
		}
		fmt.Printf("%-6d", n)
		for _, s := range sums {
			fmt.Printf("%9.2f", s/float64(perN))
		}
		fmt.Println()
	}
	return nil
}

func progressPrinter(title string) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d", title, done, total)
	}
}
