// Command ljqd is the join-order optimizer daemon: it serves
// optimization over HTTP, amortizing the paper's N²-budget search
// across repeated query shapes through a canonical-fingerprint plan
// cache with request coalescing — and, with -cache-dir, across
// process restarts through a crash-safe journal + snapshot store.
//
// Usage:
//
//	ljqd -addr :8080 -method IAI -cost memory -t 9
//
//	# durable plan cache: recover on start, journal admissions,
//	# snapshot periodically and on SIGTERM drain
//	ljqd -cache-dir /var/lib/ljqd
//
//	# optimize a JSON query (the cmd/ljqgen / internal/qfile format)
//	ljqgen -n 20 | curl -s --data-binary @- localhost:8080/optimize
//
//	# optimize a DSL query (see internal/qdsl)
//	curl -s --data-binary @q.dsl 'localhost:8080/optimize?format=dsl'
//
//	# binary wire protocol (internal/wire): Content-Type
//	# application/x-ljq-wire selects the binary request codec, Accept
//	# the binary response codec; either mixes freely with JSON. ljqopt
//	# speaks it natively:
//	ljqopt -query q.json -server http://localhost:8080 -wire
//
//	# operational status: cache + durability counters, in-flight work
//	curl -s localhost:8080/statusz
//
//	# liveness vs readiness: /healthz (and /livez) answer 200 while
//	# the process is up; /readyz answers 503 during journal replay
//	# and while the limiter is shedding, so load balancers stop
//	# routing to a recovering or overloaded daemon
//	curl -s localhost:8080/readyz
//
//	# Prometheus metrics (on by default; -metrics=false disables)
//	curl -s localhost:8080/metrics
//
//	# tiered planning (on by default): a cold miss is answered from the
//	# greedy fast path (X-Plan-Tier: 1) while the full search upgrades
//	# the cached entry in the background; tune when to escalate a miss
//	# to the synchronous full search and how much to spend on upgrades
//	ljqd -greedy-threshold 1e12 -upgrade-budget 18
//	ljqd -tiered=false   # classic synchronous full search on every miss
//
//	# cluster mode: each peer lists the full ring membership and its
//	# own advertised URL; on start it warm-starts its plan cache from
//	# the other peers' GET /snapshot before accepting traffic
//	ljqd -addr :8081 -advertise http://host1:8081 \
//	     -peers http://host1:8081,http://host2:8081,http://host3:8081
//
//	# dynamic membership: the ring comes from a roster file ("URL
//	# [weight]" lines, # comments) polled every -membership-poll; each
//	# semantic change mints a new epoch, and the daemon pushes the
//	# arcs it no longer owns to their new owners (POST /snapshot/arc)
//	# before evicting them. -membership-file takes precedence over
//	# -peers (which pins a never-changing epoch 0).
//	ljqd -addr :8081 -advertise http://host1:8081 \
//	     -membership-file /etc/ljqd/members.conf -membership-poll 2s
//
//	# CPU/heap profiling (opt-in; serves net/http/pprof under /debug/pprof/)
//	ljqd -pprof
//
// The daemon sheds load with 503 + Retry-After when the in-flight
// limiter's queue deadline passes, answers oversized bodies with 413,
// and on SIGINT/SIGTERM drains in this order: stop accepting →
// in-flight optimizations finish (the anytime optimizer returns
// incumbent plans to cancelled requests, flagged degraded) → plan
// cache snapshot flushed → exit 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"joinopt/internal/cluster"
	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/greedy"
	"joinopt/internal/persist"
	"joinopt/internal/plancache"
	"joinopt/internal/serve"
	"joinopt/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		method       = flag.String("method", "IAI", "strategy: II, SA, SAA, SAK, IAI, IKI, IAL, AGI, KBI, ...")
		costName     = flag.String("cost", "memory", "cost model: memory, disk, or auto")
		tcoeff       = flag.Float64("t", 9, "optimization budget coefficient (t·N² work units per miss)")
		seed         = flag.Int64("seed", 1, "optimizer seed (served plans are deterministic per fingerprint)")
		maxBody      = flag.Int64("max-body", 1<<20, "maximum request body bytes (oversized bodies get 413)")
		maxInflight  = flag.Int64("max-inflight", 256, "in-flight optimization capacity in join units")
		queueTimeout = flag.Duration("queue-timeout", time.Second, "how long a request may wait for capacity before 503")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request optimization deadline")
		cacheSize    = flag.Int("cache-size", 4096, "plan cache capacity (entries)")
		cacheShards  = flag.Int("cache-shards", 16, "plan cache shard count (rounded up to a power of two)")
		costAware    = flag.Bool("cache-cost-aware", true, "cost-aware admission: don't evict expensive plans for cheap ones")
		cacheDir     = flag.String("cache-dir", "", "directory for the durable plan cache (empty = in-memory only)")
		compactEvery = flag.Int("cache-compact-every", 256, "journal appends between compacting snapshots")
		grace        = flag.Duration("grace", 15*time.Second, "shutdown drain deadline")
		metricsOn    = flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics")
		pprofOn      = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (opt-in: exposes internals)")
		peersFlag    = flag.String("peers", "", "comma-separated base URLs of every ring member, this one included (static cluster mode: a never-changing epoch 0)")
		advertise    = flag.String("advertise", "", "this peer's own base URL as it appears in the ring membership")
		warmTimeout  = flag.Duration("warm-timeout", 30*time.Second, "per-donor deadline for the startup snapshot fetch")
		memberFile   = flag.String("membership-file", "", "ring roster file (\"URL [weight]\" per line); polled for epoch changes, takes precedence over -peers")
		memberPoll   = flag.Duration("membership-poll", 2*time.Second, "how often to poll -membership-file for changes")

		tiered          = flag.Bool("tiered", true, "serve cache misses from the greedy fast path and upgrade in the background")
		greedyThreshold = flag.Float64("greedy-threshold", greedy.DefaultThreshold, "greedy-plan cost at or above which a miss escalates to the synchronous full search (<=0: never on cost)")
		upgradeBudget   = flag.Float64("upgrade-budget", 0, "budget coefficient for background tier upgrades (0 = same as -t)")
	)
	flag.Parse()

	m, err := core.ParseMethod(*method)
	if err != nil {
		fail(err)
	}
	var model cost.Model
	switch *costName {
	case "memory":
		model = cost.NewMemoryModel()
	case "disk":
		model = cost.NewDiskModel()
	case "auto":
		model = cost.NewChooser()
	default:
		fail(fmt.Errorf("unknown cost model %q", *costName))
	}

	var reg *telemetry.Registry
	if *metricsOn {
		reg = telemetry.NewRegistry()
	}

	cache := plancache.New(plancache.Config{
		Capacity:  *cacheSize,
		Shards:    *cacheShards,
		CostAware: *costAware,
	})

	// Durable cache: recover before serving, then journal admissions.
	var mgr *persist.Manager
	if *cacheDir != "" {
		store, entries, rstats, err := persist.Open(persist.Options{Dir: *cacheDir})
		if err != nil {
			// A schema mismatch or unreadable directory is a loud
			// failure by design: silently serving a cold cache would
			// hide a deployment mistake.
			fail(fmt.Errorf("open plan-cache dir %s: %w", *cacheDir, err))
		}
		mgr = persist.NewManager(store, cache, *compactEvery)
		warmed := mgr.Recover(entries, rstats)
		mgr.Bind()
		fmt.Fprintf(os.Stderr,
			"ljqd: recovered %d plans from %s (snapshot %d + journal %d records, %d discarded, %d torn bytes)\n",
			warmed, *cacheDir, rstats.SnapshotRecords, rstats.JournalRecords, rstats.Discarded, rstats.TornBytes)
	}

	srv := serve.New(serve.Config{
		Method:           m,
		Model:            model,
		TCoeff:           *tcoeff,
		Seed:             *seed,
		MaxBodyBytes:     *maxBody,
		MaxInFlightJoins: *maxInflight,
		QueueTimeout:     *queueTimeout,
		RequestTimeout:   *reqTimeout,
		CacheHandle:      cache,
		Metrics:          reg,
		Persist:          mgr,
		Tiered:           *tiered,
		GreedyThreshold:  *greedyThreshold,
		UpgradeTCoeff:    *upgradeBudget,
	})

	handler := srv.Handler()
	if *pprofOn {
		// Opt-in profiling: mount the pprof handlers explicitly on our
		// own mux (importing net/http/pprof for its DefaultServeMux side
		// effect would expose the endpoints even with -pprof=false).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Cluster mode: before the listener opens (and therefore before
	// /readyz ever answers 200), warm-start the plan cache from the
	// other ring members' snapshots. Donor order is the membership
	// order with this peer removed, so a rolling restart ships plans
	// from a deterministic neighbor first. Warm-start failure is
	// non-fatal: a peer with no reachable donor joins cold, it does
	// not crash.
	//
	// The ring itself comes from one of two places, in precedence
	// order: -membership-file (dynamic: polled, each semantic change
	// mints an epoch that the rebalancer applies — push moved arcs,
	// evict what was acknowledged) or -peers (static: a never-changing
	// epoch 0).
	var donors []string
	switch {
	case *memberFile != "":
		if *advertise == "" {
			fail(fmt.Errorf("-membership-file requires -advertise (this peer's own URL in the roster)"))
		}
		if *peersFlag != "" {
			fmt.Fprintln(os.Stderr, "ljqd: -membership-file takes precedence; ignoring -peers")
		}
		self := strings.TrimRight(*advertise, "/")
		src, err := cluster.NewFileSource(nil, *memberFile, 0)
		if err != nil {
			// A missing or defective roster is a loud failure by design:
			// a daemon must not join an empty or half-parsed ring.
			fail(err)
		}
		e0 := src.Current()
		if !e0.HasPeer(self) {
			fail(fmt.Errorf("-advertise %q is not listed in %s", self, *memberFile))
		}
		for _, p := range e0.Peers() {
			if p != self {
				donors = append(donors, p)
			}
		}
		rb, err := cluster.NewRebalancer(cluster.RebalanceConfig{
			Self:  self,
			Cache: cache,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ljqd: "+format+"\n", args...)
			},
		})
		if err != nil {
			fail(err)
		}
		if reg != nil {
			rb.RegisterMetrics(reg)
		}
		if _, err := rb.Apply(ctx, e0); err != nil { // bootstrap: adopt epoch 0
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "ljqd: dynamic membership from %s (%s, poll %s)\n", *memberFile, e0, *memberPoll)
		go cluster.WatchMembership(ctx, src, *memberPoll, nil, func(e *cluster.Epoch) {
			res, err := rb.Apply(ctx, e)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ljqd: rebalance to %s failed: %v\n", e, err)
				return
			}
			fmt.Fprintf(os.Stderr, "ljqd: applied %s (pushed=%v failed=%v evicted=%d dropped=%d)\n",
				e, res.Pushed, res.Failed, res.Evicted, res.Dropped)
		}, func(err error) {
			fmt.Fprintf(os.Stderr, "ljqd: membership poll: %v (keeping current epoch)\n", err)
		})
	case *peersFlag != "":
		peers := splitPeers(*peersFlag)
		if *advertise == "" {
			fail(fmt.Errorf("-peers requires -advertise (this peer's own URL in the ring)"))
		}
		self := false
		for _, p := range peers {
			if p == *advertise {
				self = true
				continue
			}
			donors = append(donors, p)
		}
		if !self {
			fail(fmt.Errorf("-advertise %q is not listed in -peers", *advertise))
		}
	}
	if len(donors) > 0 {
		res, werr := cluster.WarmStart(ctx, cache, cluster.WarmStartConfig{
			Donors:          donors,
			PerDonorTimeout: *warmTimeout,
		})
		for _, a := range res.Attempts {
			fmt.Fprintf(os.Stderr, "ljqd: warm-start donor %s failed: %v\n", a.Donor, a.Err)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ljqd: warm-start found no donor, joining cold: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "ljqd: warm-started %d plans (%d bytes) from %s\n",
				res.Entries, res.Bytes, res.Donor)
		}
	}

	err = serve.RunDaemon(ctx, serve.DaemonConfig{
		Server:  srv,
		Addr:    *addr,
		Handler: handler,
		Grace:   *grace,
		OnListen: func(a net.Addr) {
			fmt.Fprintf(os.Stderr, "ljqd: serving on %s (method=%s cost=%s t=%g cache=%d dir=%q)\n",
				a, m, model.Name(), *tcoeff, *cacheSize, *cacheDir)
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if mgr != nil {
		if cerr := mgr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "ljqd: bye")
}

// splitPeers parses a comma-separated peer list, trimming whitespace
// and trailing slashes and dropping empties.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ljqd: %v\n", err)
	os.Exit(1)
}
