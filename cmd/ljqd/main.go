// Command ljqd is the join-order optimizer daemon: it serves
// optimization over HTTP, amortizing the paper's N²-budget search
// across repeated query shapes through a canonical-fingerprint plan
// cache with request coalescing.
//
// Usage:
//
//	ljqd -addr :8080 -method IAI -cost memory -t 9
//
//	# optimize a JSON query (the cmd/ljqgen / internal/qfile format)
//	ljqgen -n 20 | curl -s --data-binary @- localhost:8080/optimize
//
//	# optimize a DSL query (see internal/qdsl)
//	curl -s --data-binary @q.dsl 'localhost:8080/optimize?format=dsl'
//
//	# operational status: cache hits/misses, in-flight work, uptime
//	curl -s localhost:8080/statusz
//
//	# Prometheus metrics (on by default; -metrics=false disables)
//	curl -s localhost:8080/metrics
//
//	# CPU/heap profiling (opt-in; serves net/http/pprof under /debug/pprof/)
//	ljqd -pprof
//
// The daemon sheds load with 503 + Retry-After when the in-flight
// limiter's queue deadline passes, answers oversized bodies with 413,
// and drains in-flight optimizations on SIGINT/SIGTERM before exiting
// (the anytime optimizer returns incumbent plans to cancelled
// requests, flagged degraded, per the contract in DESIGN.md).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/plancache"
	"joinopt/internal/serve"
	"joinopt/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		method       = flag.String("method", "IAI", "strategy: II, SA, SAA, SAK, IAI, IKI, IAL, AGI, KBI, ...")
		costName     = flag.String("cost", "memory", "cost model: memory, disk, or auto")
		tcoeff       = flag.Float64("t", 9, "optimization budget coefficient (t·N² work units per miss)")
		seed         = flag.Int64("seed", 1, "optimizer seed (served plans are deterministic per fingerprint)")
		maxBody      = flag.Int64("max-body", 1<<20, "maximum request body bytes (oversized bodies get 413)")
		maxInflight  = flag.Int64("max-inflight", 256, "in-flight optimization capacity in join units")
		queueTimeout = flag.Duration("queue-timeout", time.Second, "how long a request may wait for capacity before 503")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request optimization deadline")
		cacheSize    = flag.Int("cache-size", 4096, "plan cache capacity (entries)")
		cacheShards  = flag.Int("cache-shards", 16, "plan cache shard count (rounded up to a power of two)")
		costAware    = flag.Bool("cache-cost-aware", true, "cost-aware admission: don't evict expensive plans for cheap ones")
		grace        = flag.Duration("grace", 15*time.Second, "shutdown drain deadline")
		metricsOn    = flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics")
		pprofOn      = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (opt-in: exposes internals)")
	)
	flag.Parse()

	m, err := core.ParseMethod(*method)
	if err != nil {
		fail(err)
	}
	var model cost.Model
	switch *costName {
	case "memory":
		model = cost.NewMemoryModel()
	case "disk":
		model = cost.NewDiskModel()
	case "auto":
		model = cost.NewChooser()
	default:
		fail(fmt.Errorf("unknown cost model %q", *costName))
	}

	var reg *telemetry.Registry
	if *metricsOn {
		reg = telemetry.NewRegistry()
	}
	srv := serve.New(serve.Config{
		Method:           m,
		Model:            model,
		TCoeff:           *tcoeff,
		Seed:             *seed,
		MaxBodyBytes:     *maxBody,
		MaxInFlightJoins: *maxInflight,
		QueueTimeout:     *queueTimeout,
		RequestTimeout:   *reqTimeout,
		Cache: plancache.Config{
			Capacity:  *cacheSize,
			Shards:    *cacheShards,
			CostAware: *costAware,
		},
		Metrics: reg,
	})

	handler := srv.Handler()
	if *pprofOn {
		// Opt-in profiling: mount the pprof handlers explicitly on our
		// own mux (importing net/http/pprof for its DefaultServeMux side
		// effect would expose the endpoints even with -pprof=false).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				errc <- fmt.Errorf("ljqd: listener panicked: %v", r)
			}
		}()
		fmt.Fprintf(os.Stderr, "ljqd: serving on %s (method=%s cost=%s t=%g cache=%d)\n",
			*addr, m, model.Name(), *tcoeff, *cacheSize)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "ljqd: shutdown signal; draining in-flight optimizations")
		shCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			fmt.Fprintf(os.Stderr, "ljqd: drain incomplete: %v\n", err)
			_ = hs.Close()
		}
	}
	fmt.Fprintln(os.Stderr, "ljqd: bye")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ljqd: %v\n", err)
	os.Exit(1)
}
