// Command ljqopt optimizes one large-join query read from JSON (see
// cmd/ljqgen and internal/qfile for the format) and prints the chosen
// plan.
//
// Usage:
//
//	ljqgen -n 40 | ljqopt                         # IAI, memory model, t=9
//	ljqopt -query q.json -method AGI -t 1.5
//	ljqopt -query q.json -cost disk -seed 3 -all  # compare all methods
//	ljqopt -query q.json -fingerprint             # print the ljqd cache key
//	ljqopt -query q.json -trace                   # dump the search trace to stderr
//
// The -trace dump is stamped with budget work units, not wall-clock
// time, so two runs with the same query, seed and budget produce
// byte-identical traces — diff them to localize a nondeterminism bug.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/client"
	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/engine"
	"joinopt/internal/estimate"
	"joinopt/internal/fingerprint"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/qdsl"
	"joinopt/internal/qfile"
	"joinopt/internal/telemetry"
)

func main() {
	var (
		queryPath = flag.String("query", "-", "query file (- = stdin); JSON by default")
		dsl       = flag.Bool("dsl", false, "parse the query as the textual DSL instead of JSON (see internal/qdsl)")
		method    = flag.String("method", "IAI", "strategy: II, SA, SAA, SAK, IAI, IKI, IAL, AGI, KBI, AUG, KBZ")
		costName  = flag.String("cost", "memory", "cost model: memory, disk, or auto (per-join method choice)")
		tcoeff    = flag.Float64("t", 9, "optimization budget coefficient (time limit t·N²)")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit per optimization (0 = none); on expiry the incumbent plan is returned, flagged degraded")
		seed      = flag.Int64("seed", 1, "random seed")
		all       = flag.Bool("all", false, "run every strategy and print a comparison")
		detailed  = flag.Bool("detailed", false, "print per-join sizes, costs and chosen methods")
		jsonOut   = flag.Bool("json", false, "emit the plan as JSON (order, per-join steps, costs)")
		calibrate = flag.Bool("calibrate", false, "measure real joins on this machine and print a fitted memory cost model, then exit")
		fpOnly    = flag.Bool("fingerprint", false, "print the query's canonical fingerprint (the ljqd plan-cache key) and exit")
		trace     = flag.Bool("trace", false, "dump a budget-stamped search trace to stderr after the run (deterministic per seed)")
		traceCap  = flag.Int("trace-cap", telemetry.DefaultTraceCapacity, "trace ring capacity: how many most-recent events are retained")
		server    = flag.String("server", "", "optimize via a running ljqd daemon at this base URL (e.g. http://127.0.0.1:8080) instead of in-process")
		useWire   = flag.Bool("wire", false, "with -server: use the binary wire protocol instead of JSON (falls back to JSON against a pre-wire daemon)")
	)
	flag.Parse()

	if *calibrate {
		runCalibrate(*seed)
		return
	}

	var q *catalog.Query
	var err error
	if *dsl {
		q, err = readDSL(*queryPath)
	} else {
		q, err = qfile.ReadFile(*queryPath)
	}
	if err != nil {
		fail(err)
	}
	if *fpOnly {
		fmt.Println(fingerprint.Of(q))
		return
	}
	if *server != "" {
		runRemote(*server, *useWire, *timeout, q)
		return
	}
	if *useWire {
		fail(fmt.Errorf("-wire requires -server"))
	}
	var model cost.Model
	switch *costName {
	case "memory":
		model = cost.NewMemoryModel()
	case "disk":
		model = cost.NewDiskModel()
	case "auto":
		model = cost.NewChooser()
	default:
		fail(fmt.Errorf("unknown cost model %q", *costName))
	}
	n := q.NumRelations() - 1
	if n < 1 {
		n = 1
	}

	var tr *telemetry.Tracer
	if *trace {
		tr = telemetry.NewTracer(*traceCap)
	}

	if *all {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "method\tcost\tunits used")
		for _, m := range core.Methods {
			tr.Reset() // one trace window per method (nil-safe)
			pl, used, err := run(q, m, model, *tcoeff, *timeout, *seed, n, tr)
			if err != nil {
				fail(err)
			}
			note := ""
			if pl.Degraded {
				note = "  (degraded: " + pl.DegradeReason + ")"
			}
			fmt.Fprintf(w, "%s\t%.6g\t%d%s\n", m, pl.TotalCost, used, note)
			dumpTrace(tr, m.String())
		}
		w.Flush()
		return
	}

	m, err := core.ParseMethod(*method)
	if err != nil {
		fail(err)
	}
	pl, used, err := run(q, m, model, *tcoeff, *timeout, *seed, n, tr)
	if err != nil {
		fail(err)
	}
	dumpTrace(tr, m.String())
	switch {
	case *jsonOut:
		eval := plan.NewEvaluator(planStats(q, model), model, cost.Unlimited())
		if err := qfile.WritePlan(os.Stdout, q, pl, eval); err != nil {
			fail(err)
		}
		return
	case *detailed:
		eval := plan.NewEvaluator(planStats(q, model), model, cost.Unlimited())
		fmt.Print(pl.ExplainDetailed(eval, q))
	default:
		fmt.Print(pl.Explain(q))
	}
	fmt.Printf("method: %s, cost model: %s, budget: %d units (t=%g), used: %d\n",
		m, model.Name(), cost.UnitsFor(*tcoeff, n), *tcoeff, used)
}

// runRemote sends the query to a running ljqd daemon through the
// hardened client (retries, backoff, breaker) and prints the daemon's
// plan rendering. -wire selects the binary protocol; the client falls
// back to JSON automatically when the daemon predates it.
func runRemote(baseURL string, useWire bool, timeout time.Duration, q *catalog.Query) {
	c, err := client.New(client.Config{BaseURL: baseURL, Wire: useWire})
	if err != nil {
		fail(err)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	resp, err := c.Optimize(ctx, q)
	if err != nil {
		fail(err)
	}
	fmt.Print(resp.Explain)
	fmt.Printf("fingerprint: %s, cost: %.6g, cacheHit: %v, budget used: %d\n",
		resp.Fingerprint, resp.TotalCost, resp.CacheHit, resp.BudgetUsed)
	if resp.Degraded {
		fmt.Printf("degraded: %s\n", resp.DegradeReason)
	}
}

// planStats rebuilds the statistics used by ExplainDetailed.
func planStats(q *catalog.Query, model cost.Model) *estimate.Stats {
	qc := q.Clone()
	qc.Normalize()
	g := joingraph.New(qc)
	return estimate.NewStats(qc, g)
}

// dumpTrace writes the collected search trace to stderr. No-op with a
// nil tracer (-trace not given).
func dumpTrace(tr *telemetry.Tracer, method string) {
	if tr == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "--- search trace (%s) ---\n", method)
	if err := tr.WriteText(os.Stderr); err != nil {
		fail(err)
	}
}

func run(q *catalog.Query, m core.Method, model cost.Model, tcoeff float64, timeout time.Duration, seed int64, n int, tr *telemetry.Tracer) (*plan.Plan, int64, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	budget := cost.NewBudget(cost.UnitsFor(tcoeff, n))
	opt, err := core.NewOptimizer(q.Clone(), model, budget, rand.New(rand.NewSource(seed)), core.Options{Trace: tr})
	if err != nil {
		return nil, 0, err
	}
	pl, err := opt.RunContext(ctx, m)
	if pl == nil && err != nil {
		return nil, 0, err
	}
	if err != nil {
		// Anytime contract: a recovered strategy panic still yields a
		// (degraded) plan; report the crash but keep going.
		fmt.Fprintf(os.Stderr, "ljqopt: warning: %v (returning fallback plan)\n", err)
	}
	return pl, budget.Used(), nil
}

// runCalibrate measures real hash joins and prints a fitted model.
func runCalibrate(seed int64) {
	fmt.Fprintln(os.Stderr, "measuring joins (a few seconds)...")
	samples, err := engine.CalibrationSamples(rand.New(rand.NewSource(seed)), 3)
	if err != nil {
		fail(err)
	}
	m, err := cost.Calibrate(samples)
	if err != nil {
		fail(err)
	}
	fmt.Printf("calibrated memory model (probe ≡ 1): build=%.3f probe=%.3f result=%.3f  R²=%.3f  (%d samples)\n",
		m.Build, m.Probe, m.Result, cost.FitQuality(m, samples), len(samples))
}

// readDSL reads a query in the textual description language.
func readDSL(path string) (*catalog.Query, error) {
	if path == "-" {
		return qdsl.Parse(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qdsl.Parse(f)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ljqopt: %v\n", err)
	os.Exit(1)
}
