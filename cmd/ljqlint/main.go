// Command ljqlint runs the repository's custom static-analysis suite:
// nine analyzers enforcing the invariants the paper reproduction rests
// on (budget metering, seeded determinism, float safety, context
// propagation, goroutine panic isolation, breaker-slot resolution,
// durability-error sinks, lock-hold blocking, hot-path allocations).
// The last four run on the CFG/dataflow core in internal/analysis/cfg.
// See internal/analysis and DESIGN.md's "Enforced invariants" section.
//
// Usage:
//
//	go run ./cmd/ljqlint [flags] [patterns...]
//
// Patterns are ./... (default, the whole module), directory paths
// (./internal/plan), or import paths (joinopt/internal/plan). The
// process exits 1 when any finding survives — CI wires it as a
// required job, so a finding either gets fixed or gets an
// //ljqlint:allow directive with a written justification.
//
// ljqlint is a standalone driver rather than a `go vet -vettool`
// because the repository is dependency-free: the analyzers run on a
// stdlib-only re-implementation of the go/analysis core
// (internal/analysis). Porting them onto golang.org/x/tools — and
// gaining vettool integration — is a one-import-line change per
// analyzer if the dependency is ever admitted.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"joinopt/internal/analysis"
	"joinopt/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ljqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	verbose := fs.Bool("v", false, "print every package as it is checked")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ljqlint [flags] [patterns...]\n\npatterns default to ./...\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, e := range suite.Entries() {
			fmt.Fprintf(stdout, "%-14s %s\n", e.Analyzer.Name, e.Analyzer.Doc)
		}
		return 0
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "ljqlint:", err)
		return 2
	}
	pkgs, err := resolvePatterns(loader, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "ljqlint:", err)
		return 2
	}

	total := 0
	checked := 0
	for _, ip := range pkgs {
		analyzers := suite.For(ip)
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := loader.Load(ip)
		if err != nil {
			fmt.Fprintln(stderr, "ljqlint:", err)
			return 2
		}
		findings, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(stderr, "ljqlint:", err)
			return 2
		}
		checked++
		if *verbose {
			fmt.Fprintf(stderr, "ljqlint: %s: %d finding(s)\n", ip, len(findings))
		}
		for _, f := range findings {
			rel := f.Position.Filename
			if r, err := filepath.Rel(loader.ModuleRoot(), rel); err == nil {
				rel = r
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n",
				rel, f.Position.Line, f.Position.Column, f.Message, f.Analyzer)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(stderr, "ljqlint: %d finding(s) across %d package(s)\n", total, checked)
		return 1
	}
	if *verbose {
		fmt.Fprintf(stderr, "ljqlint: clean (%d package(s))\n", checked)
	}
	return 0
}

// resolvePatterns expands command-line patterns into sorted import
// paths. Supported: "./..." and "dir/...", plain directories, and
// import paths.
func resolvePatterns(loader *analysis.Loader, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(ip string) {
		if !seen[ip] {
			seen[ip] = true
			out = append(out, ip)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			if root == "." || root == "" {
				root = loader.ModuleRoot()
			}
			ips, err := loader.LocalPackages(root)
			if err != nil {
				return nil, err
			}
			for _, ip := range ips {
				add(ip)
			}
		case strings.HasPrefix(pat, loader.ModulePath()):
			add(pat)
		default:
			abs, err := filepath.Abs(pat)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(loader.ModuleRoot(), abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("pattern %q is outside the module", pat)
			}
			if rel == "." {
				add(loader.ModulePath())
			} else {
				add(loader.ModulePath() + "/" + filepath.ToSlash(rel))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
