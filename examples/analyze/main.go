// Command analyze demonstrates the statistics lifecycle a real system
// lives with: data is materialized from one set of statistics, the
// catalog goes stale, and ANALYZE rebuilds fresh statistics from the
// data itself. Plans optimized with stale statistics are priced against
// the fresh truth to show what staleness costs.
package main

import (
	"fmt"
	"log"

	"joinopt"
)

func main() {
	// The "truth" when the data was loaded.
	truth := &joinopt.Query{}
	cards := []int64{2000, 40, 800, 120, 400}
	for i, c := range cards {
		truth.Relations = append(truth.Relations, joinopt.Relation{
			Name:        fmt.Sprintf("t%d", i),
			Cardinality: c,
		})
	}
	for i := 0; i+1 < len(cards); i++ {
		d := float64(min64(cards[i], cards[i+1]))
		truth.Predicates = append(truth.Predicates, joinopt.Predicate{
			Left: joinopt.RelID(i), Right: joinopt.RelID(i + 1),
			LeftDistinct: d, RightDistinct: d,
		})
	}
	db, err := joinopt.NewDatabase(truth, 17)
	if err != nil {
		log.Fatal(err)
	}

	// A stale catalog: cardinalities off by 10x in both directions,
	// distinct counts from another era.
	stale := truth.Clone()
	for i := range stale.Relations {
		if i%2 == 0 {
			stale.Relations[i].Cardinality *= 10
		} else {
			stale.Relations[i].Cardinality /= 10
			if stale.Relations[i].Cardinality < 1 {
				stale.Relations[i].Cardinality = 1
			}
		}
	}
	for i := range stale.Predicates {
		stale.Predicates[i].LeftDistinct = 5
		stale.Predicates[i].RightDistinct = 5
		stale.Predicates[i].Selectivity = 0
	}
	stale.Normalize()

	// ANALYZE rebuilds the truth from the data.
	fresh, err := joinopt.AnalyzeDatabase(db)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		q    *joinopt.Query
	}{{"stale catalog", stale}, {"ANALYZEd catalog", fresh}} {
		p, err := joinopt.Optimize(tc.q, joinopt.Options{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		// Price the chosen order under the fresh statistics (the truth).
		truthPlan, err := joinopt.Optimize(fresh.Clone(), joinopt.Options{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		// Execute both to show actual work (probe counts).
		rows, err := joinopt.ExecutePlan(db, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s chose %v → %d rows (best-known plan cost %.4g)\n",
			tc.name, p.Order(), rows, truthPlan.Cost())
	}
	fmt.Println("\nsame answer either way — but the stale-catalog plan was chosen blind;")
	fmt.Println("run ANALYZE before optimizing anything that matters.")
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
