// Command starschema optimizes a 40-join star-schema query — the
// data-warehouse shape the paper's introduction motivates (wide views,
// object-oriented mappings). Star joins have a huge valid-order space
// (any dimension can come next), which is exactly where exhaustive and
// DP optimizers die and the paper's randomized strategies shine.
//
// It compares the recommended strategies at a small and a large
// optimization budget, illustrating the paper's headline result: AGI is
// preferable when optimization time is scarce, IAI when it is not.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"joinopt"
)

func main() {
	q := buildStarQuery()
	fmt.Printf("star-schema query: %d relations, %d join predicates\n\n",
		len(q.Relations), len(q.Predicates))

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "method\tbudget t\tplan cost\twork units")
	for _, m := range []joinopt.Method{joinopt.MethodAGI, joinopt.MethodIAI, joinopt.MethodII} {
		for _, t := range []float64{0.5, 9} {
			p, err := joinopt.Optimize(q.Clone(), joinopt.Options{
				Method:    m,
				TimeCoeff: t,
				Seed:      1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%v\t%g\t%.4g\t%d\n", m, t, p.Cost(), p.Units)
		}
	}
	w.Flush()

	best, err := joinopt.Optimize(q, joinopt.Options{Method: joinopt.MethodIAI, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIAI plan at t=9:")
	fmt.Print(best.Explain())
}

// buildStarQuery assembles one fact table with 25 dimensions, several of
// which chain into snowflake sub-dimensions, for 40 joins total.
func buildStarQuery() *joinopt.Query {
	q := &joinopt.Query{}
	add := func(name string, card int64) joinopt.RelID {
		q.Relations = append(q.Relations, joinopt.Relation{Name: name, Cardinality: card})
		return joinopt.RelID(len(q.Relations) - 1)
	}
	join := func(a, b joinopt.RelID, da, db float64) {
		q.Predicates = append(q.Predicates, joinopt.Predicate{
			Left: a, Right: b, LeftDistinct: da, RightDistinct: db,
		})
	}

	fact := add("sales", 2_000_000)
	for i := 0; i < 25; i++ {
		card := int64(100 * (i + 1) * (i + 1)) // 100 .. 62500
		dim := add(fmt.Sprintf("dim%02d", i), card)
		join(fact, dim, float64(card), float64(card))
		// Every third dimension snowflakes into a sub-dimension chain.
		if i%3 == 0 {
			sub := add(fmt.Sprintf("dim%02d_a", i), card/10+1)
			join(dim, sub, float64(card/10+1), float64(card/10+1))
			if i%6 == 0 {
				sub2 := add(fmt.Sprintf("dim%02d_b", i), card/100+1)
				join(sub, sub2, float64(card/100+1), float64(card/100+1))
			}
		}
	}
	// A couple of selective filters, as a report query would have.
	q.Relations[3].Selections = []joinopt.Selection{{Selectivity: 0.02}}
	q.Relations[10].Selections = []joinopt.Selection{{Selectivity: 0.1}}
	return q
}
