// Command joinmethods demonstrates the multiple-join-methods extension
// (the paper's §7 future work): optimizing under a cost model that
// chooses the cheapest of hash, nested-loop and sort-merge per join,
// and reading the chosen methods off the plan.
//
// The query mixes bulk fact-to-fact joins (where hashing wins) with
// joins against tiny code tables (where building a hash table is wasted
// motion and nested loops win).
package main

import (
	"fmt"
	"log"

	"joinopt"
)

func main() {
	q := &joinopt.Query{}
	add := func(name string, card int64) joinopt.RelID {
		q.Relations = append(q.Relations, joinopt.Relation{Name: name, Cardinality: card})
		return joinopt.RelID(len(q.Relations) - 1)
	}
	join := func(a, b joinopt.RelID, d float64) {
		q.Predicates = append(q.Predicates, joinopt.Predicate{
			Left: a, Right: b, LeftDistinct: d, RightDistinct: d,
		})
	}

	orders := add("orders", 1_500_000)
	lineitem := add("lineitem", 6_000_000)
	customers := add("customers", 150_000)
	status := add("order_status", 5) // tiny code table
	region := add("region", 7)       // tiny code table
	priority := add("priority", 3)   // tiny code table

	join(orders, lineitem, 1_500_000)
	join(orders, customers, 150_000)
	join(orders, status, 5)
	join(customers, region, 7)
	join(orders, priority, 3)

	p, err := joinopt.Optimize(q, joinopt.Options{
		CostModel: joinopt.NewAutoCostModel(),
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.ExplainDetailed())

	fmt.Println("\nper-join method choices:")
	for _, s := range p.Steps() {
		fmt.Printf("  ⋈ %-14s → %s\n", q.RelationName(s.Inner), s.Method)
	}

	// The same plan priced hash-only, to show what method choice buys.
	hashOnly, err := joinopt.Optimize(q.Clone(), joinopt.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauto cost %.4g vs hash-only cost %.4g (%.1f%% saved by method choice)\n",
		p.Cost(), hashOnly.Cost(), 100*(1-p.Cost()/hashOnly.Cost()))
}
