// Command benchmark reproduces a miniature of the paper's Figure 4
// using only the public API: generate random queries from the §5
// default benchmark, run several strategies at increasing optimization
// budgets, and report mean scaled costs (each query's costs scaled by
// the best cost any strategy achieved on it, outliers coerced to 10).
//
// For the full evaluation harness (every table and figure, parallel
// execution, all nine §5 benchmark variations), use cmd/ljqbench.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"joinopt"
)

func main() {
	methods := []joinopt.Method{
		joinopt.MethodIAI, joinopt.MethodAGI, joinopt.MethodII, joinopt.MethodSA,
	}
	budgets := []float64{0.5, 1.5, 9}
	const (
		queries = 8
		nJoins  = 20
	)

	// costs[m][t][q]
	costs := make([][][]float64, len(methods))
	for mi := range costs {
		costs[mi] = make([][]float64, len(budgets))
		for ti := range costs[mi] {
			costs[mi][ti] = make([]float64, queries)
		}
	}

	for qi := 0; qi < queries; qi++ {
		q, err := joinopt.GenerateBenchmarkQuery(0, nJoins, int64(1000+qi))
		if err != nil {
			log.Fatal(err)
		}
		for mi, m := range methods {
			for ti, t := range budgets {
				p, err := joinopt.Optimize(q.Clone(), joinopt.Options{
					Method: m, TimeCoeff: t, Seed: int64(qi),
				})
				if err != nil {
					log.Fatal(err)
				}
				costs[mi][ti][qi] = p.Cost()
			}
		}
	}

	// Scale per query by the best final-budget cost, coerce outliers.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "budget t\\method")
	for _, m := range methods {
		fmt.Fprintf(w, "\t%v", m)
	}
	fmt.Fprintln(w)
	for ti := range budgets {
		fmt.Fprintf(w, "%g", budgets[ti])
		for mi := range methods {
			sum := 0.0
			for qi := 0; qi < queries; qi++ {
				best := costs[0][len(budgets)-1][qi]
				for mj := range methods {
					if c := costs[mj][len(budgets)-1][qi]; c < best {
						best = c
					}
				}
				scaled := costs[mi][ti][qi] / best
				if scaled > 10 {
					scaled = 10
				}
				sum += scaled
			}
			fmt.Fprintf(w, "\t%.2f", sum/queries)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("\n(mean scaled cost over", queries, "random 20-join queries; 1.00 = best known)")
}
