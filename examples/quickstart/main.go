// Command quickstart shows the minimal joinopt workflow: describe a
// query by its statistics, optimize it with the paper's recommended
// strategy (IAI), and inspect the plan. It also cross-checks the
// randomized result against the exact dynamic-programming optimum, which
// is still feasible at this query size.
package main

import (
	"fmt"
	"log"

	"joinopt"
)

func main() {
	// A 12-join star-ish query: a fact table joined to dimension tables,
	// two of which chain onwards — the kind of shape view expansion
	// produces.
	q := &joinopt.Query{}
	fact := addRelation(q, "fact", 500_000)
	for i := 0; i < 8; i++ {
		dim := addRelation(q, fmt.Sprintf("dim%d", i), int64(1_000*(i+1)))
		addJoin(q, fact, dim, float64(1_000*(i+1)))
	}
	// Two dimensions chain to sub-dimensions.
	sub0 := addRelation(q, "sub0", 200)
	addJoin(q, joinopt.RelID(1), sub0, 200)
	sub1 := addRelation(q, "sub1", 50)
	addJoin(q, joinopt.RelID(2), sub1, 50)
	// A selective filter on one dimension.
	q.Relations[3].Selections = []joinopt.Selection{{Selectivity: 0.01}}

	// StaticEstimator makes the run comparable with OptimalPlan below
	// (the DP optimum is defined under the static size model).
	plan, err := joinopt.Optimize(q, joinopt.Options{Seed: 7, StaticEstimator: true})
	if err != nil {
		log.Fatalf("optimize: %v", err)
	}
	fmt.Println("IAI plan:")
	fmt.Print(plan.Explain())
	fmt.Printf("budget consumed: %d work units\n\n", plan.Units)

	best, err := joinopt.OptimalPlan(q, nil)
	if err != nil {
		log.Fatalf("optimal: %v", err)
	}
	fmt.Println("exact optimum (DP):")
	fmt.Print(best.Explain())
	fmt.Printf("\nIAI found %.4gx the optimal cost\n", plan.Cost()/best.Cost())
}

func addRelation(q *joinopt.Query, name string, card int64) joinopt.RelID {
	q.Relations = append(q.Relations, joinopt.Relation{Name: name, Cardinality: card})
	return joinopt.RelID(len(q.Relations) - 1)
}

// addJoin links two relations on a key with the given distinct count on
// both sides (a key–foreign-key join).
func addJoin(q *joinopt.Query, a, b joinopt.RelID, distinct float64) {
	q.Predicates = append(q.Predicates, joinopt.Predicate{
		Left: a, Right: b,
		LeftDistinct: distinct, RightDistinct: distinct,
	})
}
