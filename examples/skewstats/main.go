// Command skewstats demonstrates skew-aware statistics: the same chain
// query is materialized with Zipf-distributed join columns, then
// optimized twice — once with flat ANALYZE statistics (distinct counts
// only) and once with histogram statistics — and both plans are
// executed to compare the estimators against reality.
//
// Under skew the flat containment estimate n₁·n₂/max(D) can be off by
// an order of magnitude; per-bucket histogram estimation tracks it.
package main

import (
	"fmt"
	"log"

	"joinopt"
)

func main() {
	// The query whose data we materialize: a 3-join chain of 400-row
	// relations joined on 400-value keys. (Skew multiplies intermediate
	// sizes at every join, so the chain is kept short enough to
	// materialize.)
	truth := &joinopt.Query{}
	for i := 0; i < 4; i++ {
		truth.Relations = append(truth.Relations, joinopt.Relation{
			Name:        fmt.Sprintf("r%d", i),
			Cardinality: 400,
		})
	}
	for i := 0; i < 3; i++ {
		truth.Predicates = append(truth.Predicates, joinopt.Predicate{
			Left: joinopt.RelID(i), Right: joinopt.RelID(i + 1),
			LeftDistinct: 400, RightDistinct: 400,
		})
	}

	// Materialize with heavy skew (Zipf exponent 1.1): a few hot key
	// values carry most rows.
	db, err := joinopt.NewSkewedDatabase(truth, 7, 1.1)
	if err != nil {
		log.Fatal(err)
	}

	flat, err := joinopt.AnalyzeDatabase(db)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := joinopt.AnalyzeDatabaseWithHistograms(db, 100)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		q    *joinopt.Query
	}{{"flat ANALYZE", flat}, {"histogram ANALYZE", hist}} {
		p, err := joinopt.Optimize(tc.q, joinopt.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		rows, err := joinopt.ExecutePlan(db, p)
		if err != nil {
			log.Fatal(err)
		}
		// The estimator's predicted final size is the last step's
		// ResultSize.
		steps := p.Steps()
		predicted := steps[len(steps)-1].ResultSize
		fmt.Printf("%-18s predicted %10.4g rows, actual %10d  (off by %.1fx)\n",
			tc.name, predicted, rows, offBy(predicted, float64(rows)))
	}
}

func offBy(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return 0
	}
	return a / b
}
