// Command viewchain optimizes and EXECUTES a chain query of the kind
// view expansion produces (each view layer joins one more base
// relation), demonstrating the full library loop: describe statistics →
// optimize → run the plan on real (synthetic) data → compare the
// estimator's prediction with the actual result.
package main

import (
	"fmt"
	"log"

	"joinopt"
)

func main() {
	// A 12-join chain: v12 = v11 ⋈ r12, v11 = v10 ⋈ r11, ... — after
	// expansion the optimizer sees 13 base relations in a chain.
	q := &joinopt.Query{}
	cards := []int64{400, 90, 250, 60, 300, 120, 80, 200, 50, 150, 70, 100, 40}
	for i, c := range cards {
		q.Relations = append(q.Relations, joinopt.Relation{
			Name:        fmt.Sprintf("r%02d", i),
			Cardinality: c,
		})
	}
	for i := 0; i+1 < len(cards); i++ {
		// Key–foreign-key joins: the smaller side's cardinality is the
		// key domain.
		d := min64(cards[i], cards[i+1])
		q.Predicates = append(q.Predicates, joinopt.Predicate{
			Left:         joinopt.RelID(i),
			Right:        joinopt.RelID(i + 1),
			LeftDistinct: float64(d), RightDistinct: float64(d),
		})
	}

	// Optimize with the paper's recommended strategy.
	p, err := joinopt.Optimize(q, joinopt.Options{Method: joinopt.MethodIAI, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Explain())

	// Materialize a database consistent with the statistics and run the
	// plan with in-memory hash joins.
	db, err := joinopt.NewDatabase(q, 99)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := joinopt.ExecutePlan(db, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted optimized plan: %d result rows\n", rows)

	// Execute a deliberately naive order (the raw view-expansion order)
	// for comparison: same answer, different work.
	naive := &joinopt.Query{Relations: q.Relations, Predicates: q.Predicates}
	np, err := joinopt.Optimize(naive, joinopt.Options{
		Method:      joinopt.MethodII,
		BudgetUnits: 1, // effectively no optimization: first valid state wins
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	nrows, err := joinopt.ExecutePlan(db, np)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unoptimized plan (cost %.4g vs %.4g): %d result rows — same answer, %.1fx the estimated work\n",
		np.Cost(), p.Cost(), nrows, np.Cost()/p.Cost())
	if nrows != rows {
		log.Fatalf("result mismatch: %d vs %d", nrows, rows)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
