// Package joinopt optimizes large join queries (10–100 joins), the
// regime where classical dynamic programming is infeasible. It
// implements the heuristics and combinatorial optimization strategies of
// Arun Swami's SIGMOD 1989 study "Optimization of Large Join Queries:
// Combining Heuristics and Combinatorial Techniques" (extending Swami &
// Gupta, SIGMOD 1988): iterative improvement, simulated annealing, the
// augmentation and KBZ heuristics, local improvement, and the nine
// combined strategies the paper compares — of which IAI
// (augmentation-seeded iterative improvement) and AGI are the
// recommended defaults.
//
// Quick start:
//
//	q, _ := joinopt.GenerateBenchmarkQuery(0, 20, 42) // 20-join random query
//	p, err := joinopt.Optimize(q, joinopt.Options{})   // IAI, memory model, t=9
//	if err != nil { ... }
//	fmt.Println(p.Explain())
//
// Plans are outer linear (left-deep) join trees using hash joins, per
// the paper's problem formulation; a plan is simply a join order.
package joinopt

import (
	"fmt"
	"math/rand"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/dp"
	"joinopt/internal/engine"
	"joinopt/internal/heuristics"
	"joinopt/internal/plan"
	"joinopt/internal/workload"
)

// Re-exported catalog types: a query is a set of relations (with
// cardinalities and selection selectivities) and equi-join predicates
// (with join-column distinct counts or explicit join selectivities).
type (
	// Query is a select–project–join query description.
	Query = catalog.Query
	// Relation carries one base relation's statistics.
	Relation = catalog.Relation
	// Selection is a selection predicate's selectivity.
	Selection = catalog.Selection
	// Predicate is an equi-join predicate between two relations.
	Predicate = catalog.Predicate
	// RelID indexes a relation within a Query.
	RelID = catalog.RelID
	// Histogram is an equi-width join-column frequency histogram; when
	// both sides of a Predicate carry aligned histograms, the estimator
	// uses per-bucket join estimation, which tracks skewed data the
	// flat distinct-count model cannot.
	Histogram = catalog.Histogram
)

// Method selects an optimization strategy.
type Method = core.Method

// The nine strategies of the paper's §4.4. MethodIAI is the paper's
// overall recommendation; MethodAGI wins at small time budgets.
const (
	MethodII  = core.II  // iterative improvement, random starts
	MethodSA  = core.SA  // simulated annealing, random start
	MethodSAA = core.SAA // simulated annealing, augmentation start
	MethodSAK = core.SAK // simulated annealing, KBZ start
	MethodIAI = core.IAI // II from augmentation starts, then random
	MethodIKI = core.IKI // II from KBZ starts, then random
	MethodIAL = core.IAL // IAI + local improvement
	MethodAGI = core.AGI // augmentation states, then II from random
	MethodKBI = core.KBI // KBZ states, then II from random

	// MethodTPO is two-phase optimization (II then low-temperature SA),
	// an extension postdating the paper (Ioannidis & Kang, SIGMOD 1990)
	// included to demonstrate the framework's extensibility.
	MethodTPO = core.TPO
	// MethodGA is a genetic algorithm over valid join orders (Bennett,
	// Ferris & Ioannidis 1991). Extension.
	MethodGA = core.GA
	// MethodTS is tabu search (Morzy et al. 1993). Extension.
	MethodTS = core.TS
	// MethodPW is the perturbation walk of [SG88] — the random-walk
	// floor every real strategy must clear.
	MethodPW = core.PW
)

// CostModel prices a single hash join; see NewMemoryCostModel and
// NewDiskCostModel.
type CostModel = cost.Model

// NewMemoryCostModel returns the main-memory hash-join CPU cost model.
func NewMemoryCostModel() CostModel { return cost.NewMemoryModel() }

// NewDiskCostModel returns the Grace-hash-join disk I/O cost model.
func NewDiskCostModel() CostModel { return cost.NewDiskModel() }

// NewAutoCostModel returns a cost model that selects the cheapest join
// method per join among hash, nested-loop and sort-merge — the multiple
// join methods extension the paper's §7 names as future work. Method
// choice never changes result sizes, so it is separable per join and
// composes with every optimization strategy unchanged; plans optimized
// under this model report the chosen method per join in
// Plan.ExplainDetailed and Plan.Steps.
func NewAutoCostModel() CostModel { return cost.NewChooser() }

// JoinStep describes one join of a plan: the inner relation, estimated
// operand/result sizes, join cost, and the chosen join method.
type JoinStep = plan.JoinStep

// Options configures Optimize. The zero value is the paper's
// recommendation: IAI under the main-memory model with a 9N² budget.
type Options struct {
	// Method is the strategy (default MethodIAI).
	Method Method
	// CostModel prices joins (default the main-memory model).
	CostModel CostModel
	// TimeCoeff sets the optimization budget to TimeCoeff·N² work units
	// ×cost.UnitScale, mirroring the paper's time limits (default 9).
	// Ignored when BudgetUnits is set.
	TimeCoeff float64
	// BudgetUnits sets the budget directly in work units (one unit per
	// single-join cost evaluation). 0 defers to TimeCoeff; negative
	// means unlimited.
	BudgetUnits int64
	// Seed drives all randomized choices; runs are reproducible per
	// seed. The zero seed is a fixed default, not time-derived.
	Seed int64
	// AugmentationCriterion overrides the augmentation chooseNext rule
	// (1–5 per the paper's §4.1; default 3, minimum join selectivity).
	AugmentationCriterion int
	// KBZWeight overrides the KBZ spanning-tree edge weight (3–5 per
	// §4.2; default 3, join selectivity).
	KBZWeight int
	// StaticEstimator disables the estimator's dynamic distinct-value
	// propagation, falling back to classical fixed per-edge join
	// selectivities. Plans from OptimalPlan are optimal under the
	// static model, so set this when comparing against it.
	StaticEstimator bool
	// Trace records the optimization trajectory — every improvement of
	// the incumbent plan, with the budget spent at that point — on
	// Plan.Trace. Costs a small slice append per improvement.
	Trace bool
	// WallTimeLimit additionally stops optimization at a wall-clock
	// deadline — the production latency control. Reproducibility is
	// only guaranteed when the unit budget, not the clock, is the
	// binding limit.
	WallTimeLimit time.Duration
}

// TracePoint is one improvement of the incumbent during optimization.
type TracePoint struct {
	// Cost is the new incumbent plan cost.
	Cost float64
	// Units is the budget consumed when the improvement was found.
	Units int64
}

// Plan is an optimized query evaluation plan: a join order with its
// estimated cost.
type Plan struct {
	query *catalog.Query
	inner *plan.Plan
	eval  *plan.Evaluator
	// Units is the number of budget work units the optimization
	// consumed.
	Units int64
	// Trace holds the improvement trajectory when Options.Trace was
	// set: strictly decreasing costs at increasing budget positions.
	Trace []TracePoint
}

// Order returns the left-deep join order over all relations.
func (p *Plan) Order() []RelID { return p.inner.Order() }

// Cost returns the plan's estimated total cost under the cost model the
// optimizer used. +Inf is a documented value: degraded plans (panic
// recovery, estimator overflow) are priced at +Inf so they always lose
// incumbent comparisons; the accessor passes it through unmodified.
//
//ljqlint:allow floatsafe -- accessor over a value already guarded at the evaluator boundary; +Inf is the documented degraded-plan price and must not be masked here
func (p *Plan) Cost() float64 { return p.inner.TotalCost }

// Explain renders a human-readable plan description.
func (p *Plan) Explain() string { return p.inner.Explain(p.query) }

// ExplainDetailed renders the plan with per-join estimated sizes, costs
// and chosen join methods.
func (p *Plan) ExplainDetailed() string { return p.inner.ExplainDetailed(p.eval, p.query) }

// Steps returns the per-join breakdown of the plan's first component
// (for multi-component plans, use Order/ExplainDetailed).
func (p *Plan) Steps() []JoinStep {
	if len(p.inner.Components) == 0 {
		return nil
	}
	return plan.Describe(p.eval, p.inner.Components[0].Perm)
}

// Optimize finds a low-cost join order for q. The query is validated
// and normalized; see Options for knobs.
func Optimize(q *Query, opts Options) (*Plan, error) {
	model := opts.CostModel
	if model == nil {
		model = cost.NewMemoryModel()
	}
	n := len(q.Relations) - 1 // the paper's N (number of spanning joins)
	if n < 1 {
		n = 1
	}
	var budget *cost.Budget
	switch {
	case opts.BudgetUnits < 0:
		budget = cost.Unlimited()
	case opts.BudgetUnits > 0:
		budget = cost.NewBudget(opts.BudgetUnits)
	default:
		t := opts.TimeCoeff
		if t <= 0 {
			t = 9
		}
		budget = cost.NewBudget(cost.UnitsFor(t, n))
	}
	if opts.WallTimeLimit > 0 {
		budget.WithDeadline(opts.WallTimeLimit)
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x6a6f696e6f7074)) // "joinopt"
	copts := core.Options{
		Criterion:       heuristics.Criterion(opts.AugmentationCriterion),
		Weight:          heuristics.WeightCriterion(opts.KBZWeight),
		StaticEstimator: opts.StaticEstimator,
	}
	var trace []TracePoint
	if opts.Trace {
		copts.OnImprove = func(c float64, used int64) {
			trace = append(trace, TracePoint{Cost: c, Units: used})
		}
	}
	o, err := core.NewOptimizer(q, model, budget, rng, copts)
	if err != nil {
		return nil, err
	}
	pl, err := o.Run(opts.Method)
	if err != nil {
		return nil, err
	}
	return &Plan{query: q, inner: pl, eval: o.Evaluator(), Units: budget.Used(), Trace: trace}, nil
}

// OptimizePortfolio runs several strategies concurrently on the query —
// one goroutine per method, each with an equal slice of the budget and
// its own random stream — and returns the cheapest plan found. The
// paper shows no single method dominates at every budget (AGI at small
// budgets, IAI at large); a portfolio hedges the choice, and on a
// multicore machine costs no extra wall-clock time.
func OptimizePortfolio(q *Query, opts Options, methods ...Method) (*Plan, error) {
	model := opts.CostModel
	if model == nil {
		model = cost.NewMemoryModel()
	}
	n := len(q.Relations) - 1
	if n < 1 {
		n = 1
	}
	var total int64
	switch {
	case opts.BudgetUnits < 0:
		total = 0 // unlimited members
	case opts.BudgetUnits > 0:
		total = opts.BudgetUnits
	default:
		t := opts.TimeCoeff
		if t <= 0 {
			t = 9
		}
		total = cost.UnitsFor(t, n)
	}
	copts := core.Options{
		Criterion:       heuristics.Criterion(opts.AugmentationCriterion),
		Weight:          heuristics.WeightCriterion(opts.KBZWeight),
		StaticEstimator: opts.StaticEstimator,
	}
	best, results, err := core.Portfolio(q, model, total, opts.Seed, copts, methods...)
	if err != nil {
		return nil, err
	}
	var used int64
	for _, r := range results {
		used += r.Units
	}
	// Rebuild an evaluator for Explain/Steps over the (normalized) query.
	o, err := core.NewOptimizer(q, model, cost.Unlimited(), nil, copts)
	if err != nil {
		return nil, err
	}
	return &Plan{query: q, inner: best, eval: o.Evaluator(), Units: used}, nil
}

// OptimalPlan computes the exact optimum join order by dynamic
// programming over valid left-deep trees — feasible only for small
// queries (≲ 20 relations per join-graph component), exactly the
// limitation that motivates the randomized strategies. It returns an
// error for larger components.
//
// The optimum is exact under the static size estimator (dynamic
// programming requires order-independent estimates, the same assumption
// System R made); compare it against Optimize runs that also set
// Options.StaticEstimator.
func OptimalPlan(q *Query, model CostModel) (*Plan, error) {
	if model == nil {
		model = cost.NewMemoryModel()
	}
	o, err := core.NewOptimizer(q, model, cost.Unlimited(), nil, core.Options{StaticEstimator: true})
	if err != nil {
		return nil, err
	}
	eval := o.Evaluator()
	comps := eval.Stats().Graph().Components()
	results := make([]plan.Result, 0, len(comps))
	for _, comp := range comps {
		perm, c, err := dp.Optimal(eval, comp)
		if err != nil {
			return nil, err
		}
		results = append(results, plan.Result{Perm: perm, Cost: c})
	}
	pl := plan.Assemble(eval, results)
	return &Plan{query: q, inner: pl, eval: eval, Units: eval.Budget().Used()}, nil
}

// GenerateBenchmarkQuery synthesizes one random query from the paper's
// §5 benchmarks: benchmark 0 is the default benchmark, 1–9 the
// variations (cardinality ×3, distinct values ×3, join graph ×3).
// nJoins is the paper's N (the query has nJoins+1 relations). The same
// (benchmark, nJoins, seed) always yields the same query.
func GenerateBenchmarkQuery(benchmark, nJoins int, seed int64) (*Query, error) {
	var spec workload.Spec
	if benchmark == 0 {
		spec = workload.Default()
	} else {
		var err error
		spec, err = workload.Benchmark(benchmark)
		if err != nil {
			return nil, err
		}
	}
	if nJoins < 1 {
		return nil, fmt.Errorf("joinopt: nJoins must be ≥ 1, got %d", nJoins)
	}
	rng := rand.New(rand.NewSource(seed))
	return spec.Generate(nJoins, rng), nil
}

// GenerateShapeQuery synthesizes a query with a canonical join-graph
// topology — "chain", "star", "cycle", "clique" or "grid" — over
// nRelations relations, with statistics drawn from the paper's default
// benchmark distributions. These are the structured complements to the
// random §5 benchmarks: chains have the smallest valid-order space,
// stars the largest.
func GenerateShapeQuery(shape string, nRelations int, seed int64) (*Query, error) {
	var sh workload.Shape
	switch shape {
	case "chain":
		sh = workload.ShapeChain
	case "star":
		sh = workload.ShapeStar
	case "cycle":
		sh = workload.ShapeCycle
	case "clique":
		sh = workload.ShapeClique
	case "grid":
		sh = workload.ShapeGrid
	default:
		return nil, fmt.Errorf("joinopt: unknown shape %q (chain|star|cycle|clique|grid)", shape)
	}
	return workload.Default().GenerateShape(sh, nRelations, rand.New(rand.NewSource(seed)))
}

// Database is an in-memory materialization of a query's relations,
// usable to actually execute optimized plans (see ExecutePlan).
type Database = engine.Database

// NewDatabase materializes synthetic data consistent with the query's
// statistics (cardinalities, distinct values), reproducible per seed.
func NewDatabase(q *Query, seed int64) (*Database, error) {
	return engine.Generate(q, rand.New(rand.NewSource(seed)))
}

// AnalyzeDatabase derives fresh optimizer statistics from materialized
// data — cardinalities and exact join-column distinct counts — like a
// real system's ANALYZE. The returned query can be optimized directly;
// use it when the statistics that generated the data are unknown or
// stale.
func AnalyzeDatabase(db *Database) (*Query, error) {
	return db.Analyze()
}

// AnalyzeDatabaseWithHistograms is AnalyzeDatabase plus equi-width
// join-column histograms (the given bucket count per column), enabling
// skew-aware join size estimation.
func AnalyzeDatabaseWithHistograms(db *Database, buckets int) (*Query, error) {
	return db.AnalyzeHistograms(buckets)
}

// NewSkewedDatabase materializes synthetic data like NewDatabase but
// draws join-column values from a Zipf distribution with exponent
// zipfS > 1 — heavily repeated hot values, the regime where flat
// statistics mis-estimate join sizes and histograms pay off.
func NewSkewedDatabase(q *Query, seed int64, zipfS float64) (*Database, error) {
	return engine.GenerateSkewed(q, rand.New(rand.NewSource(seed)), zipfS)
}

// ExecutePlan runs the plan's join order against the database using
// in-memory hash joins and returns the final result cardinality.
func ExecutePlan(db *Database, p *Plan) (int, error) {
	st, err := db.Execute(p.inner.Order())
	if err != nil {
		return 0, err
	}
	return st.ResultRows, nil
}
