package joinopt

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestOptimizeDefaultsProduceValidPlan(t *testing.T) {
	q, err := GenerateBenchmarkQuery(0, 15, 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Order()) != 16 {
		t.Fatalf("plan covers %d of 16 relations", len(p.Order()))
	}
	if p.Cost() <= 0 || math.IsNaN(p.Cost()) {
		t.Fatalf("cost %g", p.Cost())
	}
	if p.Units <= 0 {
		t.Fatal("no budget consumed")
	}
	if p.Explain() == "" {
		t.Fatal("empty explain")
	}
}

func TestOptimizeAllMethods(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 10, 7)
	for _, m := range []Method{
		MethodII, MethodSA, MethodSAA, MethodSAK, MethodIAI,
		MethodIKI, MethodIAL, MethodAGI, MethodKBI,
	} {
		p, err := Optimize(q.Clone(), Options{Method: m, TimeCoeff: 1, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(p.Order()) != 11 {
			t.Fatalf("%v: incomplete plan", m)
		}
	}
}

func TestOptimizeRejectsInvalidQuery(t *testing.T) {
	bad := &Query{Relations: []Relation{{Cardinality: -1}}}
	if _, err := Optimize(bad, Options{}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestOptimizeSeedReproducible(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 12, 9)
	p1, err := Optimize(q.Clone(), Options{Seed: 5, TimeCoeff: 2})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Optimize(q.Clone(), Options{Seed: 5, TimeCoeff: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cost() != p2.Cost() {
		t.Fatalf("same seed, different costs: %g vs %g", p1.Cost(), p2.Cost())
	}
}

func TestOptimizeBudgetUnitsOverride(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 10, 1)
	p, err := Optimize(q, Options{BudgetUnits: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Units > 2000+11*8+200 {
		t.Fatalf("budget override ignored: used %d", p.Units)
	}
}

// TestOptimalPlanIsLowerBound: under the static estimator, no strategy
// can beat the DP optimum.
func TestOptimalPlanIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		q, err := GenerateBenchmarkQuery(0, 9, seed)
		if err != nil {
			return false
		}
		best, err := OptimalPlan(q.Clone(), nil)
		if err != nil {
			return false
		}
		p, err := Optimize(q.Clone(), Options{StaticEstimator: true, TimeCoeff: 9, Seed: seed})
		if err != nil {
			return false
		}
		return p.Cost() >= best.Cost()*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateBenchmarkQuery(t *testing.T) {
	for b := 0; b <= 9; b++ {
		q, err := GenerateBenchmarkQuery(b, 12, 3)
		if err != nil {
			t.Fatalf("benchmark %d: %v", b, err)
		}
		if q.NumRelations() != 13 {
			t.Fatalf("benchmark %d: %d relations", b, q.NumRelations())
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("benchmark %d: %v", b, err)
		}
	}
	if _, err := GenerateBenchmarkQuery(10, 12, 3); err == nil {
		t.Fatal("benchmark 10 accepted")
	}
	if _, err := GenerateBenchmarkQuery(0, 0, 3); err == nil {
		t.Fatal("nJoins 0 accepted")
	}
}

func TestExecutePlanAgreesAcrossMethods(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 6, 11)
	// Shrink the data so execution is fast: replace cardinalities.
	for i := range q.Relations {
		if q.Relations[i].Cardinality > 50 {
			q.Relations[i].Cardinality = 50
		}
		q.Relations[i].Selections = nil
	}
	// Re-derive distinct counts within the new cardinalities.
	for i := range q.Predicates {
		p := &q.Predicates[i]
		if p.LeftDistinct > 50 {
			p.LeftDistinct = 25
		}
		if p.RightDistinct > 50 {
			p.RightDistinct = 25
		}
		p.Selectivity = 0 // re-derive
	}
	q.Normalize()
	db, err := NewDatabase(q, 21)
	if err != nil {
		t.Fatal(err)
	}
	var rows []int
	for _, m := range []Method{MethodIAI, MethodII, MethodKBI} {
		p, err := Optimize(q.Clone(), Options{Method: m, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		n, err := ExecutePlan(db, p)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, n)
	}
	if rows[0] != rows[1] || rows[1] != rows[2] {
		t.Fatalf("different methods returned different result sizes: %v", rows)
	}
}

func TestCostModelsSelectable(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 10, 5)
	pm, err := Optimize(q.Clone(), Options{CostModel: NewMemoryCostModel(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Optimize(q.Clone(), Options{CostModel: NewDiskCostModel(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The two models price plans on different scales; both must be
	// positive and finite.
	if pm.Cost() <= 0 || pd.Cost() <= 0 {
		t.Fatal("degenerate costs")
	}
}

func TestAugmentationCriterionOption(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 10, 5)
	for c := 1; c <= 5; c++ {
		if _, err := Optimize(q.Clone(), Options{AugmentationCriterion: c, TimeCoeff: 1}); err != nil {
			t.Fatalf("criterion %d: %v", c, err)
		}
	}
}

func TestOptimizePortfolio(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 15, 61)
	single, err := Optimize(q.Clone(), Options{Method: MethodIAI, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	port, err := OptimizePortfolio(q.Clone(), Options{Seed: 2}, MethodIAI, MethodAGI, MethodII)
	if err != nil {
		t.Fatal(err)
	}
	if len(port.Order()) != 16 {
		t.Fatalf("portfolio plan covers %d relations", len(port.Order()))
	}
	// Sanity only: with a third of the budget each, the portfolio can be
	// a bit worse than the full-budget single method, but not wildly.
	if port.Cost() > single.Cost()*20 {
		t.Fatalf("portfolio wildly worse: %g vs %g", port.Cost(), single.Cost())
	}
	if _, err := OptimizePortfolio(q, Options{}); err == nil {
		t.Fatal("empty portfolio accepted")
	}
}

func TestSkewedDatabaseAndHistogramsPublicAPI(t *testing.T) {
	q := &Query{
		Relations: []Relation{
			{Name: "a", Cardinality: 300},
			{Name: "b", Cardinality: 300},
		},
		Predicates: []Predicate{
			{Left: 0, Right: 1, LeftDistinct: 300, RightDistinct: 300},
		},
	}
	db, err := NewSkewedDatabase(q, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := AnalyzeDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := AnalyzeDatabaseWithHistograms(db, 30)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Predicates[0].LeftHist != nil {
		t.Fatal("flat analyze attached a histogram")
	}
	if hist.Predicates[0].LeftHist == nil {
		t.Fatal("histogram analyze did not attach one")
	}
	if _, err := Optimize(hist, Options{Seed: 1}); err != nil {
		t.Fatalf("optimizing with histograms: %v", err)
	}
}

func TestTraceRecordsTrajectory(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 15, 63)
	p, err := Optimize(q, Options{Seed: 4, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Trace) == 0 {
		t.Fatal("trace empty")
	}
	for i := 1; i < len(p.Trace); i++ {
		if p.Trace[i].Cost >= p.Trace[i-1].Cost {
			t.Fatalf("trace costs not strictly decreasing at %d", i)
		}
		if p.Trace[i].Units < p.Trace[i-1].Units {
			t.Fatalf("trace units not monotone at %d", i)
		}
	}
	if last := p.Trace[len(p.Trace)-1]; math.Abs(last.Cost-p.Cost()) > p.Cost()*1e-9 {
		t.Fatalf("trace end %g does not match plan cost %g", last.Cost, p.Cost())
	}
	// No trace requested → none recorded.
	p2, err := Optimize(q.Clone(), Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Trace != nil {
		t.Fatal("unrequested trace recorded")
	}
}

func TestWallTimeLimit(t *testing.T) {
	q, _ := GenerateBenchmarkQuery(0, 30, 71)
	start := time.Now()
	// An enormous unit budget bounded by a tiny wall-clock limit: the
	// clock must stop the run quickly.
	p, err := Optimize(q, Options{BudgetUnits: 1 << 40, WallTimeLimit: 50 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wall-time limit ignored: ran %v", elapsed)
	}
	if len(p.Order()) != 31 {
		t.Fatal("incomplete plan under deadline")
	}
}

func TestGenerateShapeQuery(t *testing.T) {
	for _, shape := range []string{"chain", "star", "cycle", "clique", "grid"} {
		q, err := GenerateShapeQuery(shape, 8, 3)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if len(q.Relations) != 8 {
			t.Fatalf("%s: %d relations", shape, len(q.Relations))
		}
		if _, err := Optimize(q, Options{TimeCoeff: 1, Seed: 1}); err != nil {
			t.Fatalf("%s: optimize: %v", shape, err)
		}
	}
	if _, err := GenerateShapeQuery("triangle", 8, 3); err == nil {
		t.Fatal("unknown shape accepted")
	}
}
