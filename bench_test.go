// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6), plus ablations of the design choices DESIGN.md calls
// out and micro-benchmarks of the hot paths.
//
// The experiment benches run at a reduced scale by default (results are
// reported as custom metrics, in mean scaled cost — the paper's unit).
// Set -benchtime=1x and read the metrics; use cmd/ljqbench -full for the
// paper's complete protocol.
package joinopt

import (
	"fmt"
	"math/rand"
	"testing"

	"joinopt/internal/bushy"
	"joinopt/internal/catalog"
	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/dp"
	"joinopt/internal/engine"
	"joinopt/internal/estimate"
	"joinopt/internal/experiment"
	"joinopt/internal/heuristics"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/search"
	"joinopt/internal/workload"
)

// benchScale keeps the experiment benches fast while preserving the
// ordering among methods. Short mode shrinks further.
func benchScale(b *testing.B) experiment.Scale {
	if testing.Short() {
		return experiment.Scale{QueriesPerN: 1, Replicates: 1, Ns: []int{10, 20}}
	}
	return experiment.Scale{QueriesPerN: 3, Replicates: 1}
}

// runExperiment executes the config once per bench iteration and
// reports each (variant, final time coefficient) mean scaled cost as a
// custom metric.
func runExperiment(b *testing.B, cfg experiment.Config) {
	b.Helper()
	var m *experiment.Matrix
	var err error
	for i := 0; i < b.N; i++ {
		m, err = experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(m.TimeCoeffs) - 1
	for v, name := range m.Variants {
		b.ReportMetric(m.Scaled[v][last], name+"@t"+trimFloat(m.TimeCoeffs[last]))
		b.ReportMetric(m.Scaled[v][0], name+"@t"+trimFloat(m.TimeCoeffs[0]))
	}
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }

// --- One bench per paper table / figure ---

// BenchmarkTable1 regenerates Table 1: the five augmentation chooseNext
// criteria (plus the IAI scaling anchor). Expected shape: criterion 3
// (min join selectivity) lowest among the criteria.
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, experiment.Table1(benchScale(b), 1989))
}

// BenchmarkTable2 regenerates Table 2: the three KBZ spanning-tree
// weight criteria (plus the IAI anchor).
func BenchmarkTable2(b *testing.B) {
	runExperiment(b, experiment.Table2(benchScale(b), 1989))
}

// BenchmarkFigure4 regenerates Figure 4: all nine methods on the default
// benchmark under the main-memory model. Expected shape: IAI best at
// the 9N² limit, AGI best at the smallest limits, SA-family worst.
func BenchmarkFigure4(b *testing.B) {
	runExperiment(b, experiment.Figure4(benchScale(b), 1989))
}

// BenchmarkFigure5 regenerates Figure 5: the top five methods over the
// larger N = 10..100 benchmark.
func BenchmarkFigure5(b *testing.B) {
	sc := benchScale(b)
	if testing.Short() {
		sc.Ns = []int{10, 40}
	}
	runExperiment(b, experiment.Figure5(sc, 1989))
}

// BenchmarkFigure6 regenerates Figure 6: IAI vs AGI vs II at small time
// limits, where the AGI→IAI crossover lives.
func BenchmarkFigure6(b *testing.B) {
	sc := benchScale(b)
	if testing.Short() {
		sc.Ns = []int{10, 40}
	}
	runExperiment(b, experiment.Figure6(sc, 1989))
}

// BenchmarkFigure7 regenerates Figure 7: the top five methods under the
// disk (Grace hash join) cost model. Expected shape: same ordering as
// the memory model (§6.2's conclusion).
func BenchmarkFigure7(b *testing.B) {
	runExperiment(b, experiment.Figure7(benchScale(b), 1989))
}

// BenchmarkTable3 regenerates Table 3: the top five methods at 9N²
// across the nine §5 benchmark variations. One sub-bench per row.
func BenchmarkTable3(b *testing.B) {
	cfgs, err := experiment.Table3(benchScale(b), 1989)
	if err != nil {
		b.Fatal(err)
	}
	for i := range cfgs {
		cfg := cfgs[i]
		b.Run(fmt.Sprintf("bench%d_%s", i+1, cfg.Spec.Name), func(b *testing.B) {
			runExperiment(b, cfg)
		})
	}
}

// --- Ablations of design choices (DESIGN.md) ---

// BenchmarkAblationMoveSet compares the [SG88] swap-only move set with a
// mixed swap+insert set. Insert moves accelerate descent, which is why
// swap-only is the default: it preserves the paper's small-time-limit
// dynamics.
func BenchmarkAblationMoveSet(b *testing.B) {
	cfg := experiment.Figure6(benchScale(b), 77)
	cfg.Title = "ablation: move set"
	cfg.Variants = []experiment.Variant{
		{Name: "swap", Method: core.IAI},
		{Name: "swap+ins", Method: core.IAI, Opts: core.Options{InsertMoveProb: 0.5}},
	}
	runExperiment(b, cfg)
}

// BenchmarkAblationStopping probes the II local-minimum detection
// threshold (consecutive rejected moves as a fraction of the swap
// neighborhood).
func BenchmarkAblationStopping(b *testing.B) {
	cfg := experiment.Figure4(benchScale(b), 78)
	cfg.Title = "ablation: II stopping"
	cfg.Variants = nil
	for _, rf := range []float64{0.1, 0.5, 2.0} {
		cfg.Variants = append(cfg.Variants, experiment.Variant{
			Name:   fmt.Sprintf("rf%g", rf),
			Method: core.II,
			Opts: core.Options{IIConfig: search.IIConfig{
				RejectFactor: rf, MinRejects: 16,
			}},
		})
	}
	runExperiment(b, cfg)
}

// BenchmarkAblationUnitScale probes the budget calibration: the same
// comparison at one-third and at triple the standard budget, to show
// where the AGI→IAI crossover moves. (The work-unit scale multiplies
// the time coefficient, so scaling the coefficients is equivalent to
// scaling cost.UnitScale.)
func BenchmarkAblationUnitScale(b *testing.B) {
	for _, mult := range []float64{1.0 / 3, 1, 3} {
		b.Run(fmt.Sprintf("x%.2g", mult), func(b *testing.B) {
			cfg := experiment.Figure6(benchScale(b), 79)
			cfg.Title = "ablation: unit scale"
			for i := range cfg.TimeCoeffs {
				cfg.TimeCoeffs[i] *= mult
			}
			runExperiment(b, cfg)
		})
	}
}

// BenchmarkAblationCrossProduct measures what the postpone-cross-
// products heuristic buys: the cost of combining disconnected component
// results smallest-first (plan.Assemble) versus largest-first.
func BenchmarkAblationCrossProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(80))
	// Three disconnected chains of very different sizes.
	q := &catalog.Query{}
	sizes := []int64{20, 2000, 200000}
	var comps [][]catalog.RelID
	for _, s := range sizes {
		var comp []catalog.RelID
		base := len(q.Relations)
		for i := 0; i < 3; i++ {
			q.Relations = append(q.Relations, catalog.Relation{Cardinality: s})
			comp = append(comp, catalog.RelID(base+i))
		}
		for i := 0; i < 2; i++ {
			q.Predicates = append(q.Predicates, catalog.Predicate{
				Left: catalog.RelID(base + i), Right: catalog.RelID(base + i + 1),
				LeftDistinct: float64(s / 2), RightDistinct: float64(s / 2),
			})
		}
		comps = append(comps, comp)
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	_ = rng

	var results []plan.Result
	for _, comp := range comps {
		perm, c, err := dp.Optimal(eval, comp)
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, plan.Result{Perm: perm, Cost: c})
	}
	var smart, naive float64
	for i := 0; i < b.N; i++ {
		pl := plan.Assemble(eval, results)
		smart = pl.CrossCost
		// Largest-first: assemble in reverse of the smart order.
		rev := make([]plan.Result, len(pl.Components))
		for j := range pl.Components {
			rev[len(rev)-1-j] = pl.Components[j]
		}
		// Price naively by hand.
		naive = crossCostInOrder(eval, rev)
	}
	b.ReportMetric(naive/smart, "naive/smart")
}

func crossCostInOrder(e *plan.Evaluator, comps []plan.Result) float64 {
	sizeOf := func(p plan.Perm) float64 {
		pre := estimate.NewPrefix(e.Stats())
		for _, r := range p {
			pre.Extend(r)
		}
		return pre.Size()
	}
	total := 0.0
	acc := sizeOf(comps[0].Perm)
	for i := 1; i < len(comps); i++ {
		sz := sizeOf(comps[i].Perm)
		result := acc * sz
		total += e.Model().JoinCost(acc, sz, result)
		acc = result
	}
	return total
}

// --- Micro-benchmarks of the hot paths ---

func microFixture(n int) (*plan.Evaluator, *search.Space, plan.Perm) {
	q := workload.Default().Generate(n, rand.New(rand.NewSource(1)))
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	sp := search.NewSpace(eval, g.Components()[0], rand.New(rand.NewSource(2)))
	return eval, sp, sp.RandomState()
}

func BenchmarkEvaluatorCost(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			eval, _, p := microFixture(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eval.Cost(p)
			}
		})
	}
}

func BenchmarkRandomState(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			_, sp, _ := microFixture(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.RandomState()
			}
		})
	}
}

func BenchmarkNeighbor(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			_, sp, p := microFixture(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.Neighbor(p)
			}
		})
	}
}

func BenchmarkAugmentationState(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			eval, sp, _ := microFixture(n)
			aug := heuristics.NewAugmentation(eval, sp.Relations(), heuristics.CriterionMinSel)
			first := sp.Relations()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				aug.Generate(first)
			}
		})
	}
}

func BenchmarkKBZState(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			eval, sp, _ := microFixture(n)
			kbz := heuristics.NewKBZ(eval, sp.Relations(), heuristics.WeightSelectivity)
			root := sp.Relations()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kbz.Linearize(root)
			}
		})
	}
}

func BenchmarkDPOptimal(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			q := workload.Default().Generate(n, rand.New(rand.NewSource(3)))
			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			st.UseStaticSelectivity()
			eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
			comp := g.Components()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := dp.Optimal(eval, comp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineHashJoin(b *testing.B) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 5000}, {Cardinality: 5000},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 1000, RightDistinct: 1000},
		},
	}
	db, err := engine.Generate(q, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(plan.Perm{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeEndToEnd measures one full public-API optimization at
// the default (9N²) budget.
func BenchmarkOptimizeEndToEnd(b *testing.B) {
	for _, n := range []int{20, 50} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			q, err := GenerateBenchmarkQuery(0, n, 5)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Optimize(q.Clone(), Options{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBushyVsLinear probes the paper's §2 left-deep restriction at
// search scale: left-deep IAI vs bushy iterative improvement, same
// budget, static estimator. Metric: mean cost ratio (>1 = bushy won).
func BenchmarkBushyVsLinear(b *testing.B) {
	const n = 20
	var ratio float64
	for i := 0; i < b.N; i++ {
		sum, cnt := 0.0, 0
		for qi := int64(0); qi < 4; qi++ {
			q := workload.Default().Generate(n, rand.New(rand.NewSource(qi)))

			linBudget := cost.NewBudget(cost.UnitsFor(9, n))
			opt, err := core.NewOptimizer(q.Clone(), cost.NewMemoryModel(), linBudget,
				rand.New(rand.NewSource(qi+100)), core.Options{StaticEstimator: true})
			if err != nil {
				b.Fatal(err)
			}
			pl, err := opt.Run(core.IAI)
			if err != nil {
				b.Fatal(err)
			}

			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			st.UseStaticSelectivity()
			bsp := bushy.NewSpace(st, cost.NewMemoryModel(), cost.NewBudget(cost.UnitsFor(9, n)),
				g.Components()[0], rand.New(rand.NewSource(qi+200)))
			_, bc, ok := bsp.Improve(bushy.DefaultIIConfig())
			if !ok {
				continue
			}
			sum += pl.TotalCost / bc
			cnt++
		}
		ratio = sum / float64(cnt)
	}
	b.ReportMetric(ratio, "linear/bushy")
}

// BenchmarkLeftDeepGap reports the exact left-deep-vs-bushy optimality
// gap on small queries (DP on both spaces).
func BenchmarkLeftDeepGap(b *testing.B) {
	const n = 10
	var mean float64
	for i := 0; i < b.N; i++ {
		sum, cnt := 0.0, 0
		for qi := int64(0); qi < 5; qi++ {
			q := workload.Default().Generate(n, rand.New(rand.NewSource(qi)))
			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			st.UseStaticSelectivity()
			eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
			gap, err := dp.LeftDeepGap(eval, g.Components()[0])
			if err != nil {
				b.Fatal(err)
			}
			sum += gap
			cnt++
		}
		mean = sum / float64(cnt)
	}
	b.ReportMetric(mean, "gap")
}

// BenchmarkExtension2PO pits the post-paper 2PO strategy against IAI.
func BenchmarkExtension2PO(b *testing.B) {
	cfg := experiment.Figure4(benchScale(b), 81)
	cfg.Title = "extension: 2PO vs IAI vs SA"
	cfg.Variants = []experiment.Variant{
		{Name: "IAI", Method: core.IAI},
		{Name: "2PO", Method: core.TPO},
		{Name: "SA", Method: core.SA},
	}
	runExperiment(b, cfg)
}

// BenchmarkMultiMethod measures what per-join method choice buys: the
// same strategy under the hash-only model vs the auto (chooser) model,
// on its own terms (each run scaled within its own cost semantics, so
// the metric compares achievable plan quality ratios, not absolutes).
func BenchmarkMultiMethod(b *testing.B) {
	const n = 20
	var saved float64
	for i := 0; i < b.N; i++ {
		sum, cnt := 0.0, 0
		for qi := int64(0); qi < 4; qi++ {
			q := workload.Default().Generate(n, rand.New(rand.NewSource(qi+31)))
			auto := cost.NewChooser()
			optA, err := core.NewOptimizer(q.Clone(), auto, cost.NewBudget(cost.UnitsFor(9, n)),
				rand.New(rand.NewSource(qi)), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			plA, err := optA.Run(core.IAI)
			if err != nil {
				b.Fatal(err)
			}
			optH, err := core.NewOptimizer(q.Clone(), cost.NewMemoryModel(), cost.NewBudget(cost.UnitsFor(9, n)),
				rand.New(rand.NewSource(qi)), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			plH, err := optH.Run(core.IAI)
			if err != nil {
				b.Fatal(err)
			}
			// Re-price the hash-only plan under the auto model so the
			// comparison is apples-to-apples.
			evalA := plan.NewEvaluator(optA.Evaluator().Stats(), auto, cost.Unlimited())
			rep := 0.0
			for _, c := range plH.Components {
				rep += evalA.Cost(c.Perm)
			}
			if rep > 0 {
				sum += plA.TotalCost / rep
				cnt++
			}
		}
		saved = sum / float64(cnt)
	}
	b.ReportMetric(saved, "auto/hash")
}

// BenchmarkGOOQuality reports Greedy Operator Ordering's mean scaled
// cost against the exact bushy optimum on small queries (GOO is the
// strongest of the deterministic baselines here).
func BenchmarkGOOQuality(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		sum, cnt := 0.0, 0
		for qi := int64(0); qi < 6; qi++ {
			q := workload.Default().Generate(9, rand.New(rand.NewSource(qi+11)))
			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			st.UseStaticSelectivity()
			eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
			comp := g.Components()[0]
			_, opt, err := dp.BushyOptimal(eval, comp)
			if err != nil {
				b.Fatal(err)
			}
			sp := bushy.NewSpace(st, cost.NewMemoryModel(), cost.Unlimited(), comp, rand.New(rand.NewSource(qi)))
			_, c := sp.GOO()
			sum += c / opt
			cnt++
		}
		mean = sum / float64(cnt)
	}
	b.ReportMetric(mean, "goo/bushyOpt")
}

// BenchmarkIDP measures iterative DP's runtime and quality at k=3
// against the left-deep optimum on mid-size queries.
func BenchmarkIDP(b *testing.B) {
	q := workload.Default().Generate(14, rand.New(rand.NewSource(17)))
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	comp := g.Components()[0]
	_, opt, err := dp.Optimal(eval, comp)
	if err != nil {
		b.Fatal(err)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, c, err := dp.IDP(eval, comp, 3)
		if err != nil {
			b.Fatal(err)
		}
		ratio = c / opt
	}
	b.ReportMetric(ratio, "idp/linearOpt")
}

// BenchmarkShapes compares IAI across canonical join-graph topologies
// at fixed N: stars have the largest valid-order space, chains the
// smallest. Metric: mean scaled cost vs the shape's own best-of-run.
func BenchmarkShapes(b *testing.B) {
	const n = 16 // relations
	for _, shape := range workload.Shapes {
		b.Run(shape.String(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				sum, cnt := 0.0, 0
				for qi := int64(0); qi < 4; qi++ {
					q, err := workload.Default().GenerateShape(shape, n, rand.New(rand.NewSource(qi+3)))
					if err != nil {
						b.Fatal(err)
					}
					// Best-known = IAI at a huge budget; measured = IAI at 1N².
					big := cost.NewBudget(cost.UnitsFor(40, n-1))
					optB, _ := core.NewOptimizer(q.Clone(), cost.NewMemoryModel(), big, rand.New(rand.NewSource(qi)), core.Options{})
					plB, err := optB.Run(core.IAI)
					if err != nil {
						b.Fatal(err)
					}
					small := cost.NewBudget(cost.UnitsFor(1, n-1))
					optS, _ := core.NewOptimizer(q.Clone(), cost.NewMemoryModel(), small, rand.New(rand.NewSource(qi)), core.Options{})
					plS, err := optS.Run(core.IAI)
					if err != nil {
						b.Fatal(err)
					}
					if plB.TotalCost > 0 {
						sum += plS.TotalCost / plB.TotalCost
						cnt++
					}
				}
				mean = sum / float64(cnt)
			}
			b.ReportMetric(mean, "t1/t40")
		})
	}
}
