package engine

import (
	"sort"

	"joinopt/internal/catalog"
)

// Column pruning: real executors project away columns as soon as no
// later operator needs them, keeping intermediate tuples narrow. The
// engine models it faithfully — before each join, the intermediate
// result is projected down to the join columns still referenced by
// predicates whose other side has not been joined yet. Enable with
// Database.PruneColumns; results are bit-for-bit identical, only tuple
// widths (and memory) change, which the ExecStats.MaxWidth metric
// exposes.

// neededColumns collects the (relation, column) pairs an intermediate
// covering inPrefix must still carry: endpoints of predicates whose
// other side is outside the prefix.
func (db *Database) neededColumns(inPrefix map[catalog.RelID]bool) map[colKey]bool {
	needed := make(map[colKey]bool)
	for pi, p := range db.Query.Predicates {
		if inPrefix[p.Left] && !inPrefix[p.Right] {
			needed[colKey{p.Left, db.joinCol[pi][0]}] = true
		}
		if inPrefix[p.Right] && !inPrefix[p.Left] {
			needed[colKey{p.Right, db.joinCol[pi][1]}] = true
		}
	}
	return needed
}

// prune projects the intermediate down to the needed columns. The
// original is untouched; a new intermediate is returned (or the
// original when nothing can be dropped).
func pruneIntermediate(im *intermediate, needed map[colKey]bool) *intermediate {
	// Collect the kept (position, key) pairs and sort them by position:
	// the map iteration order is random, and the column layout of the
	// pruned intermediate must not depend on it (detrand).
	type keep struct {
		pos int
		key colKey
	}
	keeps := make([]keep, 0, len(needed))
	//ljqlint:allow detrand -- collection loop only: the pairs are sorted by position immediately below, so iteration order cannot leak into the layout
	for k, pos := range im.colOf {
		if needed[k] {
			keeps = append(keeps, keep{pos, k})
		}
	}
	sort.Slice(keeps, func(i, j int) bool { return keeps[i].pos < keeps[j].pos })
	keepPos := make([]int, 0, len(keeps))
	keepKey := make([]colKey, 0, len(keeps))
	for _, kp := range keeps {
		keepPos = append(keepPos, kp.pos)
		keepKey = append(keepKey, kp.key)
	}
	if len(keepPos) == im.width {
		return im
	}
	out := &intermediate{colOf: make(map[colKey]int, len(keepPos)), width: len(keepPos)}
	for i, k := range keepKey {
		out.colOf[k] = i
	}
	out.rows = make([]Tuple, len(im.rows))
	for ri, row := range im.rows {
		nr := make(Tuple, len(keepPos))
		for i, pos := range keepPos {
			nr[i] = row[pos]
		}
		out.rows[ri] = nr
	}
	return out
}
