package engine

import (
	"errors"
	"math/rand"

	"joinopt/internal/catalog"
)

// Analyze derives optimizer statistics from materialized data — the
// ANALYZE of a real system. It scans every relation, counting rows and
// the exact number of distinct values in each join column, and returns
// a fresh catalog query with those measured statistics (selections are
// dropped: the data already reflects them, exactly as the optimizer's
// effective cardinalities would).
//
// Analyze(Generate(q)) ≈ q up to sampling noise in the generator, which
// the test suite verifies; the round trip is what licenses optimizing
// real data with synthetic-statistics machinery.
func (db *Database) Analyze() (*catalog.Query, error) {
	return db.analyze(0, nil)
}

// AnalyzeSampled estimates the statistics from a uniform sample of at
// most sampleRows rows per relation, scaling distinct counts linearly
// with the sampled fraction (the crude estimator real systems start
// from; exact counting remains available via Analyze). rng drives the
// sampling.
func (db *Database) AnalyzeSampled(sampleRows int, rng *rand.Rand) (*catalog.Query, error) {
	if sampleRows <= 0 {
		return nil, errors.New("engine: sampleRows must be positive")
	}
	if rng == nil {
		return nil, errors.New("engine: AnalyzeSampled needs an RNG")
	}
	return db.analyze(sampleRows, rng)
}

func (db *Database) analyze(sampleRows int, rng *rand.Rand) (*catalog.Query, error) {
	if db.Query == nil || len(db.Rels) == 0 {
		return nil, errors.New("engine: empty database")
	}
	out := &catalog.Query{
		Relations:  make([]catalog.Relation, len(db.Rels)),
		Predicates: make([]catalog.Predicate, len(db.Query.Predicates)),
	}
	for i, rel := range db.Rels {
		card := int64(rel.NumRows())
		if card < 1 {
			card = 1
		}
		out.Relations[i] = catalog.Relation{Name: rel.Name, Cardinality: card}
	}
	for pi, p := range db.Query.Predicates {
		out.Predicates[pi] = catalog.Predicate{
			Left:          p.Left,
			Right:         p.Right,
			LeftDistinct:  db.distinctCount(p.Left, db.joinCol[pi][0], sampleRows, rng),
			RightDistinct: db.distinctCount(p.Right, db.joinCol[pi][1], sampleRows, rng),
		}
	}
	out.Normalize()
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// distinctCount counts (or estimates) the distinct values of one column.
func (db *Database) distinctCount(rid catalog.RelID, col int, sampleRows int, rng *rand.Rand) float64 {
	rel := db.Rels[rid]
	rows := rel.Rows
	scale := 1.0
	if sampleRows > 0 && sampleRows < len(rows) {
		// Uniform sample without replacement.
		idx := rng.Perm(len(rows))[:sampleRows]
		sampled := make([]Tuple, sampleRows)
		for i, j := range idx {
			sampled[i] = rows[j]
		}
		scale = float64(len(rows)) / float64(sampleRows)
		rows = sampled
	}
	seen := make(map[int64]struct{}, len(rows))
	for _, r := range rows {
		seen[r[col]] = struct{}{}
	}
	d := float64(len(seen)) * scale
	if d < 1 {
		d = 1
	}
	if d > float64(rel.NumRows()) {
		d = float64(rel.NumRows())
	}
	return d
}
