package engine

import (
	"math"
	"math/rand"
	"testing"

	"joinopt/internal/cost"
)

func TestAnalyzeRecoversCardinalities(t *testing.T) {
	q := smallQuery(41, 6)
	db, err := Generate(q, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Relations) != len(q.Relations) || len(got.Predicates) != len(q.Predicates) {
		t.Fatal("shape mismatch")
	}
	for i := range q.Relations {
		want := q.Relations[i].EffectiveCardinality()
		if float64(got.Relations[i].Cardinality) != want {
			t.Fatalf("relation %d: analyzed %d rows, generated %g", i, got.Relations[i].Cardinality, want)
		}
		if len(got.Relations[i].Selections) != 0 {
			t.Fatal("analyze should not invent selections")
		}
	}
}

func TestAnalyzeRecoversDistinctCounts(t *testing.T) {
	// Generate guarantees full domain coverage when D ≤ rows, so exact
	// ANALYZE must recover the cataloged distinct counts exactly.
	q := smallQuery(43, 6)
	db, err := Generate(q, rand.New(rand.NewSource(44)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range q.Predicates {
		wantL := math.Min(p.LeftDistinct, q.Relations[p.Left].EffectiveCardinality())
		wantR := math.Min(p.RightDistinct, q.Relations[p.Right].EffectiveCardinality())
		if got.Predicates[pi].LeftDistinct != wantL {
			t.Fatalf("predicate %d left: analyzed %g, want %g", pi, got.Predicates[pi].LeftDistinct, wantL)
		}
		if got.Predicates[pi].RightDistinct != wantR {
			t.Fatalf("predicate %d right: analyzed %g, want %g", pi, got.Predicates[pi].RightDistinct, wantR)
		}
	}
}

func TestAnalyzeSampled(t *testing.T) {
	q := smallQuery(45, 5)
	db, err := Generate(q, rand.New(rand.NewSource(46)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.AnalyzeSampled(10, rand.New(rand.NewSource(47)))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// Estimates are noisy but must stay within the hard bounds.
	for pi, p := range got.Predicates {
		if p.LeftDistinct < 1 || p.LeftDistinct > float64(got.Relations[p.Left].Cardinality) {
			t.Fatalf("predicate %d: sampled distinct %g out of bounds", pi, p.LeftDistinct)
		}
	}
	if _, err := db.AnalyzeSampled(0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero sample size accepted")
	}
	if _, err := db.AnalyzeSampled(5, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestAnalyzeEmptyDatabase(t *testing.T) {
	db := &Database{}
	if _, err := db.Analyze(); err == nil {
		t.Fatal("empty database accepted")
	}
}

func TestColIndex(t *testing.T) {
	rel := &Relation{Cols: []string{"id", "j0"}}
	if rel.colIndex("j0") != 1 || rel.colIndex("nope") != -1 {
		t.Fatal("colIndex lookup broken")
	}
}

// TestCalibrationEndToEnd measures real joins and fits the memory
// model. Wall-clock noise makes exact assertions meaningless; assert
// the pipeline runs and produces a usable, monotone model with a
// non-absurd fit.
func TestCalibrationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based; skipped in -short")
	}
	samples, err := CalibrationSamples(rand.New(rand.NewSource(1)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 9 {
		t.Fatalf("only %d samples", len(samples))
	}
	m, err := cost.Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.Build <= 0 || m.Probe <= 0 || m.Result <= 0 {
		t.Fatalf("non-positive coefficients: %+v", m)
	}
	if q := cost.FitQuality(m, samples); q < 0 {
		t.Fatalf("fit quality %g", q)
	}
}
