package engine_test

import (
	"fmt"
	"math/rand"

	"joinopt/internal/catalog"
	"joinopt/internal/engine"
	"joinopt/internal/plan"
)

// ExampleGenerate materializes a two-relation database consistent with
// its statistics and runs a hash join over it.
func ExampleGenerate() {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 100},
			{Name: "b", Cardinality: 100},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 10, RightDistinct: 10},
		},
	}
	db, err := engine.Generate(q, rand.New(rand.NewSource(5)))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	st, err := db.Execute(plan.Perm{0, 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d rows (estimate 100·100/10 = 1000), %d probes\n", st.ResultRows, st.ProbeCount)
	// Output: 1013 rows (estimate 100·100/10 = 1000), 100 probes
}

// ExampleDatabase_Analyze shows ANALYZE recovering the statistics that
// generated the data.
func ExampleDatabase_Analyze() {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 50},
			{Name: "b", Cardinality: 80},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 25, RightDistinct: 25},
		},
	}
	db, _ := engine.Generate(q, rand.New(rand.NewSource(6)))
	fresh, err := db.Analyze()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p := fresh.Predicates[0]
	fmt.Printf("cards %d/%d, distinct %g/%g\n",
		fresh.Relations[0].Cardinality, fresh.Relations[1].Cardinality,
		p.LeftDistinct, p.RightDistinct)
	// Output: cards 50/80, distinct 25/25
}
