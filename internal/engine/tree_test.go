package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/bushy"
	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/dp"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// TestTreeSpineEqualsLinear: executing a left spine must give exactly
// the left-deep executor's result.
func TestTreeSpineEqualsLinear(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz%4)
		q := smallQuery(seed, n)
		db, err := Generate(q, rand.New(rand.NewSource(seed+3)))
		if err != nil {
			return false
		}
		var order plan.Perm
		for i := 0; i <= n; i++ {
			order = append(order, catalog.RelID(i))
		}
		lin, err := db.Execute(order)
		if err != nil {
			return false
		}
		tr, err := db.ExecuteTree(bushy.FromPerm(order))
		if err != nil {
			return false
		}
		return lin.ResultRows == tr.ResultRows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeShapeInvariance: any bushy shape over the same leaves gives
// the same result cardinality.
func TestTreeShapeInvariance(t *testing.T) {
	q := smallQuery(101, 4)
	db, err := Generate(q, rand.New(rand.NewSource(102)))
	if err != nil {
		t.Fatal(err)
	}
	spine := bushy.FromPerm(plan.Perm{0, 1, 2, 3, 4})
	// A genuinely bushy shape: (0⋈1) ⋈ (2⋈(3⋈4)).
	bushyT := &bushy.Tree{
		Left: &bushy.Tree{
			Left:  &bushy.Tree{Rel: 0},
			Right: &bushy.Tree{Rel: 1},
		},
		Right: &bushy.Tree{
			Left: &bushy.Tree{Rel: 2},
			Right: &bushy.Tree{
				Left:  &bushy.Tree{Rel: 3},
				Right: &bushy.Tree{Rel: 4},
			},
		},
	}
	a, err := db.ExecuteTree(spine)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.ExecuteTree(bushyT)
	if err != nil {
		t.Fatal(err)
	}
	if a.ResultRows != b.ResultRows {
		t.Fatalf("tree shapes disagree: %d vs %d", a.ResultRows, b.ResultRows)
	}
	if b.ProbeCount == 0 || len(b.JoinOutputSizes) != 4 {
		t.Fatalf("stats missing: %+v", b)
	}
}

func TestTreeErrors(t *testing.T) {
	q := smallQuery(103, 3)
	db, err := Generate(q, rand.New(rand.NewSource(104)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecuteTree(nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := db.ExecuteTree(bushy.FromPerm(plan.Perm{0, 1})); err == nil {
		t.Fatal("incomplete tree accepted")
	}
	dup := &bushy.Tree{
		Left:  bushy.FromPerm(plan.Perm{0, 1, 2, 3}),
		Right: &bushy.Tree{Rel: 0},
	}
	if _, err := db.ExecuteTree(dup); err == nil {
		t.Fatal("duplicate leaf accepted")
	}
	oob := &bushy.Tree{
		Left:  bushy.FromPerm(plan.Perm{0, 1, 2}),
		Right: &bushy.Tree{Rel: 99},
	}
	if _, err := db.ExecuteTree(oob); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
}

// TestTreeCrossProduct: disconnected leaves join by nested loops.
func TestTreeCrossProduct(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 3}, {Cardinality: 5},
		},
	}
	db, err := Generate(q, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.ExecuteTree(&bushy.Tree{
		Left:  &bushy.Tree{Rel: 0},
		Right: &bushy.Tree{Rel: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ResultRows != 15 {
		t.Fatalf("cross product %d rows, want 15", st.ResultRows)
	}
}

// TestIDPTreeExecutes: the iterative-DP extension returns bushy trees;
// they must execute to the same result cardinality as any left-deep
// order of the same query.
func TestIDPTreeExecutes(t *testing.T) {
	q := smallQuery(107, 4)
	db, err := Generate(q, rand.New(rand.NewSource(108)))
	if err != nil {
		t.Fatal(err)
	}
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	tree, _, err := dp.IDP(eval, g.Components()[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	idp, err := db.ExecuteTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	var order plan.Perm
	for i := 0; i < q.NumRelations(); i++ {
		order = append(order, catalog.RelID(i))
	}
	lin, err := db.Execute(order)
	if err != nil {
		t.Fatal(err)
	}
	if idp.ResultRows != lin.ResultRows {
		t.Fatalf("IDP tree result %d vs linear %d", idp.ResultRows, lin.ResultRows)
	}
}
