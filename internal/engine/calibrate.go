package engine

import (
	"math/rand"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/plan"
)

// CalibrationSamples measures real two-relation hash joins of varied
// shapes on this machine and returns (sizes, wall-time) samples for
// cost.Calibrate. The sweep varies outer size, inner size, and join
// selectivity independently so the three coefficients are identifiable.
//
// Wall-clock measurement is inherently noisy; repeats smooths it (each
// sample is the minimum of that many runs, the standard noise-robust
// choice for micro-measurement).
func CalibrationSamples(rng *rand.Rand, repeats int) ([]cost.JoinSample, error) {
	if repeats < 1 {
		repeats = 1
	}
	type shape struct {
		outer, inner int64
		distinct     float64
	}
	var shapes []shape
	for _, o := range []int64{500, 2000, 8000} {
		for _, i := range []int64{500, 2000, 8000} {
			for _, d := range []float64{50, 500} {
				shapes = append(shapes, shape{o, i, d})
			}
		}
	}
	var out []cost.JoinSample
	for _, sh := range shapes {
		q := &catalog.Query{
			Relations: []catalog.Relation{
				{Name: "outer", Cardinality: sh.outer},
				{Name: "inner", Cardinality: sh.inner},
			},
			Predicates: []catalog.Predicate{
				{Left: 0, Right: 1, LeftDistinct: sh.distinct, RightDistinct: sh.distinct},
			},
		}
		db, err := Generate(q, rng)
		if err != nil {
			return nil, err
		}
		best := time.Duration(1<<62 - 1)
		var st *ExecStats
		for r := 0; r < repeats; r++ {
			//ljqlint:allow detrand -- calibration measures real execution time by design; its samples feed the fitted cost model, not a seeded trajectory
			start := time.Now()
			st, err = db.Execute(plan.Perm{0, 1})
			if err != nil {
				return nil, err
			}
			//ljqlint:allow detrand -- calibration measures real execution time by design
			if d := time.Since(start); d < best {
				best = d
			}
		}
		out = append(out, cost.JoinSample{
			Outer:    float64(sh.outer),
			Inner:    float64(sh.inner),
			Result:   float64(st.ResultRows),
			Measured: float64(best.Nanoseconds()),
		})
	}
	return out, nil
}
