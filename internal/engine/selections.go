package engine

import (
	"math/rand"

	"joinopt/internal/catalog"
	"joinopt/internal/plan"
)

// GenerateUnfiltered materializes a database at *base* cardinalities —
// selections are NOT pre-applied. Instead, every selection predicate
// gets its own column of values uniform in [0, selDomain), and
// ExecuteFiltered applies the predicate `col < selectivity·selDomain`
// when each relation is first scanned, exactly as a real executor
// would. The expected surviving fraction per selection is its
// selectivity, so filtered scans land near the optimizer's effective
// cardinalities.
func GenerateUnfiltered(q *catalog.Query, rng *rand.Rand) (*Database, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q.Normalize()
	db := &Database{Query: q}
	for i := range q.Relations {
		card := int(q.Relations[i].Cardinality)
		if card < 1 {
			card = 1
		}
		rel := &Relation{
			Name: q.RelationName(catalog.RelID(i)),
			Cols: []string{"id"},
			Rows: make([]Tuple, card),
		}
		for r := range rel.Rows {
			rel.Rows[r] = Tuple{int64(r)}
		}
		// One column per selection predicate.
		for range q.Relations[i].Selections {
			col := len(rel.Cols)
			rel.Cols = append(rel.Cols, "s")
			for r := range rel.Rows {
				rel.Rows[r] = append(rel.Rows[r], rng.Int63n(selDomain))
			}
			_ = col
		}
		db.Rels = append(db.Rels, rel)
	}
	db.selCols = make([][]int, len(q.Relations))
	for i, rel := range q.Relations {
		for si := range rel.Selections {
			db.selCols[i] = append(db.selCols[i], 1+si)
		}
	}
	// Join columns are appended after selection columns; their distinct
	// counts are interpreted against post-selection sizes by the
	// estimator, but for data generation we spread them over the base
	// rows (uniformity makes the realized selectivity of the join
	// independent of the selections).
	db.joinCol = make([][2]int, len(q.Predicates))
	for pi, p := range q.Predicates {
		db.joinCol[pi][0] = addJoinColumn(db.Rels[p.Left], "j", p.LeftDistinct, rng)
		db.joinCol[pi][1] = addJoinColumn(db.Rels[p.Right], "j", p.RightDistinct, rng)
	}
	return db, nil
}

// selDomain is the value domain of selection columns.
const selDomain = 1 << 20

// ExecuteFiltered runs the plan like Execute, but first applies each
// relation's selection predicates at scan time (filtering rows whose
// selection columns fall outside the predicate's accepted range). Only
// meaningful for databases from GenerateUnfiltered; on databases from
// Generate (no selection columns) it is identical to Execute.
func (db *Database) ExecuteFiltered(order plan.Perm) (*ExecStats, error) {
	if db.selCols == nil {
		return db.Execute(order)
	}
	filtered := &Database{
		Query:   db.Query,
		Rels:    make([]*Relation, len(db.Rels)),
		joinCol: db.joinCol,
	}
	for i, rel := range db.Rels {
		filtered.Rels[i] = db.filterRelation(catalog.RelID(i), rel)
	}
	return filtered.Execute(order)
}

// filterRelation applies relation rid's selections to its rows.
func (db *Database) filterRelation(rid catalog.RelID, rel *Relation) *Relation {
	cols := db.selCols[rid]
	if len(cols) == 0 {
		return rel
	}
	sels := db.Query.Relations[rid].Selections
	out := &Relation{Name: rel.Name, Cols: rel.Cols}
	for _, row := range rel.Rows {
		keep := true
		for si, col := range cols {
			threshold := int64(sels[si].Selectivity * selDomain)
			if row[col] >= threshold {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	if len(out.Rows) == 0 {
		// Keep at least one row so downstream joins remain exercised
		// (mirrors the estimator's 1-tuple effective-cardinality floor).
		out.Rows = append(out.Rows, rel.Rows[0])
	}
	return out
}
