package engine

import (
	"errors"
	"math/rand"

	"joinopt/internal/catalog"
)

// GenerateSkewed materializes a database like Generate, but draws join
// column values from a Zipf distribution over [0, D) instead of a
// uniform one: a few hot values carry most rows, the regime where the
// flat distinct-count estimator breaks down and histograms earn their
// keep. zipfS > 1 sets the skew exponent (larger = more skewed).
func GenerateSkewed(q *catalog.Query, rng *rand.Rand, zipfS float64) (*Database, error) {
	if zipfS <= 1 {
		return nil, errors.New("engine: zipf exponent must exceed 1")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q.Normalize()
	db := &Database{Query: q}
	for i := range q.Relations {
		card := int(q.Relations[i].EffectiveCardinality())
		if card < 1 {
			card = 1
		}
		rel := &Relation{
			Name: q.RelationName(catalog.RelID(i)),
			Cols: []string{"id"},
			Rows: make([]Tuple, card),
		}
		for r := range rel.Rows {
			rel.Rows[r] = Tuple{int64(r)}
		}
		db.Rels = append(db.Rels, rel)
	}
	db.joinCol = make([][2]int, len(q.Predicates))
	for pi, p := range q.Predicates {
		db.joinCol[pi][0] = addZipfColumn(db.Rels[p.Left], p.LeftDistinct, rng, zipfS)
		db.joinCol[pi][1] = addZipfColumn(db.Rels[p.Right], p.RightDistinct, rng, zipfS)
	}
	return db, nil
}

func addZipfColumn(rel *Relation, distinct float64, rng *rand.Rand, s float64) int {
	d := uint64(distinct)
	if d < 1 {
		d = 1
	}
	if d > uint64(len(rel.Rows)) {
		d = uint64(len(rel.Rows))
	}
	idx := len(rel.Cols)
	rel.Cols = append(rel.Cols, "z")
	z := rand.NewZipf(rng, s, 1, d-1)
	for r := range rel.Rows {
		rel.Rows[r] = append(rel.Rows[r], int64(z.Uint64()))
	}
	return idx
}

// AnalyzeHistograms derives statistics like Analyze and additionally
// attaches an equi-width histogram with the given bucket count to every
// predicate endpoint, computed from the actual data. All histograms of
// one predicate share the domain (the larger side's observed value
// range) so they are aligned for per-bucket join estimation.
func (db *Database) AnalyzeHistograms(buckets int) (*catalog.Query, error) {
	if buckets < 1 {
		return nil, errors.New("engine: bucket count must be positive")
	}
	out, err := db.Analyze()
	if err != nil {
		return nil, err
	}
	for pi := range out.Predicates {
		p := &out.Predicates[pi]
		domain := maxValue(db, p.Left, db.joinCol[pi][0])
		if m := maxValue(db, p.Right, db.joinCol[pi][1]); m > domain {
			domain = m
		}
		domain++ // values are in [0, max]
		b := buckets
		if int64(b) > domain {
			b = int(domain)
		}
		p.LeftHist = db.histogram(p.Left, db.joinCol[pi][0], domain, b)
		p.RightHist = db.histogram(p.Right, db.joinCol[pi][1], domain, b)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

func maxValue(db *Database, rid catalog.RelID, col int) int64 {
	m := int64(0)
	for _, row := range db.Rels[rid].Rows {
		if row[col] > m {
			m = row[col]
		}
	}
	return m
}

func (db *Database) histogram(rid catalog.RelID, col int, domain int64, buckets int) *catalog.Histogram {
	h := &catalog.Histogram{Domain: domain, Counts: make([]float64, buckets)}
	base := domain / int64(buckets)
	for _, row := range db.Rels[rid].Rows {
		b := int(row[col] / base)
		if b >= buckets {
			b = buckets - 1 // remainder values land in the last bucket
		}
		h.Counts[b]++
	}
	return h
}
