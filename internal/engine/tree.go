package engine

import (
	"errors"
	"fmt"

	"joinopt/internal/bushy"
	"joinopt/internal/catalog"
)

// ExecuteTree runs a bushy join tree: subtrees are evaluated
// recursively and hash-joined pairwise (building on the smaller side),
// so plans from dp.BushyOptimal, bushy II, GOO and dp.IDP execute the
// same way left-deep plans do. Cross products fall back to nested
// loops. Result cardinalities are shape-independent, which the test
// suite verifies against the left-deep executor.
func (db *Database) ExecuteTree(t *bushy.Tree) (*ExecStats, error) {
	if t == nil {
		return nil, errors.New("engine: nil tree")
	}
	leaves := t.Leaves(nil)
	seen := make(map[catalog.RelID]bool, len(leaves))
	for _, r := range leaves {
		if int(r) < 0 || int(r) >= len(db.Rels) {
			return nil, fmt.Errorf("engine: relation %d out of range", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("engine: relation %d appears twice in tree", r)
		}
		seen[r] = true
	}
	if len(leaves) != len(db.Rels) {
		return nil, fmt.Errorf("engine: tree covers %d of %d relations", len(leaves), len(db.Rels))
	}
	st := &ExecStats{}
	res, err := db.executeSubtree(t, st)
	if err != nil {
		return nil, err
	}
	st.ResultRows = len(res.rows)
	return st, nil
}

func (db *Database) executeSubtree(t *bushy.Tree, st *ExecStats) (*intermediate, error) {
	if t.IsLeaf() {
		return db.intermediateFor(t.Rel), nil
	}
	left, err := db.executeSubtree(t.Left, st)
	if err != nil {
		return nil, err
	}
	right, err := db.executeSubtree(t.Right, st)
	if err != nil {
		return nil, err
	}
	out, err := db.joinIntermediates(left, right, st)
	if err != nil {
		return nil, err
	}
	st.JoinOutputSizes = append(st.JoinOutputSizes, len(out.rows))
	if out.width > st.MaxWidth {
		st.MaxWidth = out.width
	}
	return out, nil
}

// joinIntermediates hash-joins two intermediates on every predicate
// crossing their relation sets, building on the smaller input.
func (db *Database) joinIntermediates(a, b *intermediate, st *ExecStats) (*intermediate, error) {
	// Equality column pairs crossing a↔b.
	var aCols, bCols []int
	for pi, p := range db.Query.Predicates {
		la, okA := a.colOf[colKey{p.Left, db.joinCol[pi][0]}]
		rb, okB := b.colOf[colKey{p.Right, db.joinCol[pi][1]}]
		if okA && okB {
			aCols = append(aCols, la)
			bCols = append(bCols, rb)
			continue
		}
		lb, okB2 := b.colOf[colKey{p.Left, db.joinCol[pi][0]}]
		ra, okA2 := a.colOf[colKey{p.Right, db.joinCol[pi][1]}]
		if okA2 && okB2 {
			aCols = append(aCols, ra)
			bCols = append(bCols, lb)
		}
	}

	out := &intermediate{colOf: make(map[colKey]int), width: a.width + b.width}
	//ljqlint:allow detrand -- map-to-map copy: positions are values, not derived from iteration order, so the result is order-insensitive
	for k, v := range a.colOf {
		out.colOf[k] = v
	}
	//ljqlint:allow detrand -- map-to-map copy with a fixed width offset; order-insensitive for the same reason
	for k, v := range b.colOf {
		out.colOf[k] = a.width + v
	}
	emit := func(ra, rb Tuple) {
		row := make(Tuple, 0, out.width)
		row = append(row, ra...)
		row = append(row, rb...)
		out.rows = append(out.rows, row)
	}

	if len(aCols) == 0 {
		for _, ra := range a.rows {
			for _, rb := range b.rows {
				emit(ra, rb)
			}
		}
		return out, nil
	}

	// Build on the smaller side.
	build, probe := a, b
	buildCols, probeCols := aCols, bCols
	swapped := false
	if len(b.rows) < len(a.rows) {
		build, probe = b, a
		buildCols, probeCols = bCols, aCols
		swapped = true
	}
	table := make(map[string][]Tuple, len(build.rows))
	kbuf := make([]byte, 0, 8*len(buildCols))
	makeKey := func(t Tuple, cols []int) string {
		kbuf = kbuf[:0]
		for _, c := range cols {
			v := t[c]
			for s := 0; s < 64; s += 8 {
				kbuf = append(kbuf, byte(v>>uint(s)))
			}
		}
		return string(kbuf)
	}
	for _, r := range build.rows {
		k := makeKey(r, buildCols)
		table[k] = append(table[k], r)
	}
	for _, r := range probe.rows {
		st.ProbeCount++
		k := makeKey(r, probeCols)
		for _, m := range table[k] {
			if swapped {
				emit(r, m) // r is from a, m from b
			} else {
				emit(m, r)
			}
		}
	}
	return out, nil
}
