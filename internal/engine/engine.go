// Package engine is a small in-memory relational execution substrate: it
// materializes synthetic relations consistent with a query's catalog
// statistics and executes left-deep hash-join plans over them.
//
// The paper evaluates optimizers analytically (plan cost, not plan
// execution), but a downstream user of the library needs to actually run
// the plans it picks — and the test suite uses the engine to validate
// that the estimator's intermediate-result sizes track reality and that
// every valid join order produces the same result.
package engine

import (
	"errors"
	"fmt"
	"math/rand"

	"joinopt/internal/catalog"
	"joinopt/internal/plan"
)

// Tuple is one row: a value per column.
type Tuple []int64

// Relation is a materialized base relation. Column 0 is a synthetic row
// id; join columns are appended per predicate endpoint.
type Relation struct {
	Name string
	// Cols names the columns; Cols[0] is "id".
	Cols []string
	// Rows holds the tuples.
	Rows []Tuple
}

// NumRows returns the relation's cardinality.
func (r *Relation) NumRows() int { return len(r.Rows) }

// colIndex returns the index of the named column, or -1.
func (r *Relation) colIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Database is a set of materialized relations aligned with a query: one
// relation per catalog entry, with one join column per predicate
// endpoint.
type Database struct {
	Query *catalog.Query
	Rels  []*Relation
	// joinCol[p][side] is the column index of predicate p's join column
	// on each side (0 = left, 1 = right).
	joinCol [][2]int
	// selCols[r] lists relation r's selection-column indices (only set
	// by GenerateUnfiltered; nil means selections were pre-applied).
	selCols [][]int
	// PruneColumns enables projection push-down during execution:
	// intermediate results are narrowed to the join columns later
	// predicates still need. Identical results, narrower tuples (see
	// ExecStats.MaxWidth).
	PruneColumns bool
}

// Generate materializes a database consistent with the query's
// statistics: each relation gets its effective cardinality (cardinality
// after selections — the engine models selections as already applied,
// exactly as the optimizer's statistics do) and each predicate endpoint
// gets a join column whose values are drawn uniformly from a domain of
// the cataloged distinct-value count.
//
// Drawing both endpoint columns from the same domain [0, D) realizes a
// join selectivity close to 1/max(D_left, D_right), matching the
// estimator's containment assumption.
func Generate(q *catalog.Query, rng *rand.Rand) (*Database, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q.Normalize()
	db := &Database{Query: q}

	// Start every relation with its id column.
	for i := range q.Relations {
		card := int(q.Relations[i].EffectiveCardinality())
		if card < 1 {
			card = 1
		}
		rel := &Relation{
			Name: q.RelationName(catalog.RelID(i)),
			Cols: []string{"id"},
			Rows: make([]Tuple, card),
		}
		for r := range rel.Rows {
			rel.Rows[r] = Tuple{int64(r)}
		}
		db.Rels = append(db.Rels, rel)
	}

	// Add one join column per predicate endpoint.
	db.joinCol = make([][2]int, len(q.Predicates))
	for pi, p := range q.Predicates {
		name := fmt.Sprintf("j%d", pi)
		db.joinCol[pi][0] = addJoinColumn(db.Rels[p.Left], name, p.LeftDistinct, rng)
		db.joinCol[pi][1] = addJoinColumn(db.Rels[p.Right], name, p.RightDistinct, rng)
	}
	return db, nil
}

// addJoinColumn appends a column of values uniform over [0, distinct)
// and returns its index. The first `distinct` rows enumerate the domain
// so the realized distinct count matches the catalog when possible.
func addJoinColumn(rel *Relation, name string, distinct float64, rng *rand.Rand) int {
	d := int64(distinct)
	if d < 1 {
		d = 1
	}
	if d > int64(len(rel.Rows)) {
		d = int64(len(rel.Rows))
	}
	idx := len(rel.Cols)
	rel.Cols = append(rel.Cols, name)
	for r := range rel.Rows {
		var v int64
		if int64(r) < d {
			v = int64(r) // guarantee full domain coverage
		} else {
			v = rng.Int63n(d)
		}
		rel.Rows[r] = append(rel.Rows[r], v)
	}
	return idx
}

// ExecStats reports what an execution did.
type ExecStats struct {
	// JoinOutputSizes lists the tuple count after each join, in plan
	// order (len = number of joins executed).
	JoinOutputSizes []int
	// ProbeCount is the total number of hash-table probes.
	ProbeCount int64
	// ResultRows is the final result cardinality.
	ResultRows int
	// MaxWidth is the widest intermediate tuple (in columns) seen
	// during execution — what column pruning shrinks.
	MaxWidth int
}

// Execute runs a left-deep hash-join plan over the database and returns
// the final result size along with per-join statistics. Cross-product
// joins (no predicate between the inner and the current prefix) are
// executed as nested loops.
func (db *Database) Execute(order plan.Perm) (*ExecStats, error) {
	return db.execute(order, true)
}

// ExecuteNestedLoop runs the same plan with nested-loop joins instead
// of hash joins. It exists as a reference executor: hash and nested
// loop must produce identical results, which the test suite verifies.
func (db *Database) ExecuteNestedLoop(order plan.Perm) (*ExecStats, error) {
	return db.execute(order, false)
}

func (db *Database) execute(order plan.Perm, useHash bool) (*ExecStats, error) {
	if len(order) == 0 {
		return nil, errors.New("engine: empty plan")
	}
	seen := make(map[catalog.RelID]bool, len(order))
	for _, r := range order {
		if int(r) < 0 || int(r) >= len(db.Rels) {
			return nil, fmt.Errorf("engine: relation %d out of range", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("engine: relation %d appears twice in plan", r)
		}
		seen[r] = true
	}
	if len(order) != len(db.Rels) {
		return nil, fmt.Errorf("engine: plan covers %d of %d relations", len(order), len(db.Rels))
	}

	st := &ExecStats{}
	cur := db.intermediateFor(order[0])
	inPrefix := map[catalog.RelID]bool{order[0]: true}
	for _, rid := range order[1:] {
		if db.PruneColumns {
			cur = pruneIntermediate(cur, db.neededColumns(inPrefix))
		}
		if cur.width > st.MaxWidth {
			st.MaxWidth = cur.width
		}
		next, err := db.joinStep(cur, inPrefix, rid, st, useHash)
		if err != nil {
			return nil, err
		}
		cur = next
		inPrefix[rid] = true
		st.JoinOutputSizes = append(st.JoinOutputSizes, len(cur.rows))
	}
	if cur.width > st.MaxWidth {
		st.MaxWidth = cur.width
	}
	st.ResultRows = len(cur.rows)
	return st, nil
}

// intermediate is a working relation: tuples plus a map from
// (relation, column) to position.
type intermediate struct {
	rows []Tuple
	// colOf[key] locates a base relation's column inside the tuples.
	colOf map[colKey]int
	width int
}

type colKey struct {
	rel catalog.RelID
	col int
}

func (db *Database) intermediateFor(rid catalog.RelID) *intermediate {
	rel := db.Rels[rid]
	im := &intermediate{colOf: make(map[colKey]int), width: len(rel.Cols)}
	for c := range rel.Cols {
		im.colOf[colKey{rid, c}] = c
	}
	im.rows = rel.Rows
	return im
}

// joinKeys collects the (prefix column, inner column) equality pairs
// between the prefix and relation rid.
func (db *Database) joinKeys(im *intermediate, inPrefix map[catalog.RelID]bool, rid catalog.RelID) (outerCols, innerCols []int) {
	for pi, p := range db.Query.Predicates {
		var prefixSide catalog.RelID
		var prefixCol, innerCol int
		switch {
		case p.Left == rid && inPrefix[p.Right]:
			prefixSide, prefixCol, innerCol = p.Right, db.joinCol[pi][1], db.joinCol[pi][0]
		case p.Right == rid && inPrefix[p.Left]:
			prefixSide, prefixCol, innerCol = p.Left, db.joinCol[pi][0], db.joinCol[pi][1]
		default:
			continue
		}
		oc, ok := im.colOf[colKey{prefixSide, prefixCol}]
		if !ok {
			continue
		}
		outerCols = append(outerCols, oc)
		innerCols = append(innerCols, innerCol)
	}
	return outerCols, innerCols
}

// joinStep joins the current intermediate with base relation rid,
// either via a hash table on the inner or by nested loops.
func (db *Database) joinStep(im *intermediate, inPrefix map[catalog.RelID]bool, rid catalog.RelID, st *ExecStats, useHash bool) (*intermediate, error) {
	inner := db.Rels[rid]
	outerCols, innerCols := db.joinKeys(im, inPrefix, rid)

	out := &intermediate{colOf: make(map[colKey]int), width: im.width + len(inner.Cols)}
	//ljqlint:allow detrand -- map-to-map copy: positions are values, not derived from iteration order, so the result is order-insensitive
	for k, v := range im.colOf {
		out.colOf[k] = v
	}
	for c := range inner.Cols {
		out.colOf[colKey{rid, c}] = im.width + c
	}

	emit := func(o, i Tuple) {
		row := make(Tuple, 0, out.width)
		row = append(row, o...)
		row = append(row, i...)
		out.rows = append(out.rows, row)
	}

	if len(outerCols) == 0 {
		// Cross product (valid plans avoid this inside a component, but
		// multi-component plans need it).
		for _, o := range im.rows {
			for _, i := range inner.Rows {
				emit(o, i)
			}
		}
		return out, nil
	}

	if !useHash {
		// Nested loops: compare every pair on the join columns.
		for _, o := range im.rows {
			st.ProbeCount++
			for _, in := range inner.Rows {
				match := true
				for k := range outerCols {
					if o[outerCols[k]] != in[innerCols[k]] {
						match = false
						break
					}
				}
				if match {
					emit(o, in)
				}
			}
		}
		return out, nil
	}

	// Build a hash table on the inner (always the base relation, per the
	// outer-linear-tree discipline).
	type key string
	table := make(map[key][]Tuple, len(inner.Rows))
	kbuf := make([]byte, 0, 8*len(innerCols))
	makeKey := func(t Tuple, cols []int) key {
		kbuf = kbuf[:0]
		for _, c := range cols {
			v := t[c]
			for s := 0; s < 64; s += 8 {
				kbuf = append(kbuf, byte(v>>uint(s)))
			}
		}
		return key(kbuf)
	}
	for _, i := range inner.Rows {
		k := makeKey(i, innerCols)
		table[k] = append(table[k], i)
	}
	for _, o := range im.rows {
		st.ProbeCount++
		k := makeKey(o, outerCols)
		for _, i := range table[k] {
			emit(o, i)
		}
	}
	return out, nil
}
