package engine

import (
	"math"
	"math/rand"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/plan"
)

func twoRelQuery() *catalog.Query {
	return &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 2000},
			{Name: "b", Cardinality: 2000},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 200, RightDistinct: 200},
		},
	}
}

func TestGenerateSkewedBasics(t *testing.T) {
	q := twoRelQuery()
	if _, err := GenerateSkewed(q, rand.New(rand.NewSource(1)), 1.0); err == nil {
		t.Fatal("zipf exponent 1 accepted")
	}
	db, err := GenerateSkewed(q, rand.New(rand.NewSource(1)), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if db.Rels[0].NumRows() != 2000 {
		t.Fatalf("rows %d", db.Rels[0].NumRows())
	}
	// Skewed column values stay in [0, 200).
	col := db.joinCol[0][0]
	for _, row := range db.Rels[0].Rows {
		if row[col] < 0 || row[col] >= 200 {
			t.Fatalf("value %d outside domain", row[col])
		}
	}
}

// TestSkewBlowsUpJoins: on Zipf data the realized join is much larger
// than the uniform containment estimate n²/D — the motivation for
// histograms.
func TestSkewBlowsUpJoins(t *testing.T) {
	q := twoRelQuery()
	db, err := GenerateSkewed(q, rand.New(rand.NewSource(7)), 1.3)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := db.Execute(plan.Perm{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	uniformEstimate := 2000.0 * 2000 / 200
	if float64(ex.ResultRows) < 2*uniformEstimate {
		t.Fatalf("skewed join %d rows not ≫ uniform estimate %g", ex.ResultRows, uniformEstimate)
	}
}

// TestHistogramsBeatDistinctCountsUnderSkew is the headline: on skewed
// data, the histogram-based estimate must land much closer to the
// actual join size than the flat distinct-count estimate.
func TestHistogramsBeatDistinctCountsUnderSkew(t *testing.T) {
	q := twoRelQuery()
	db, err := GenerateSkewed(q, rand.New(rand.NewSource(11)), 1.3)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := db.Execute(plan.Perm{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(ex.ResultRows)

	flat, err := db.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	withHist, err := db.AnalyzeHistograms(32)
	if err != nil {
		t.Fatal(err)
	}

	estimate := func(qq *catalog.Query) float64 {
		p := qq.Predicates[0]
		j := p.Selectivity
		if jh, ok := p.LeftHist.JoinSelectivity(p.RightHist); ok {
			j = jh
		}
		return float64(qq.Relations[0].Cardinality) * float64(qq.Relations[1].Cardinality) * j
	}
	flatErr := math.Abs(math.Log(estimate(flat) / actual))
	histErr := math.Abs(math.Log(estimate(withHist) / actual))
	if histErr >= flatErr {
		t.Fatalf("histogram estimate no better: hist err %.3f vs flat err %.3f (actual %g, hist %g, flat %g)",
			histErr, flatErr, actual, estimate(withHist), estimate(flat))
	}
	// And it should be genuinely close (within ~2x).
	if histErr > math.Log(2.5) {
		t.Fatalf("histogram estimate off by more than 2.5x: %g vs actual %g", estimate(withHist), actual)
	}
}

func TestAnalyzeHistogramsValidatesAndAligns(t *testing.T) {
	q := twoRelQuery()
	db, err := GenerateSkewed(q, rand.New(rand.NewSource(13)), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.AnalyzeHistograms(16)
	if err != nil {
		t.Fatal(err)
	}
	p := got.Predicates[0]
	if p.LeftHist == nil || p.RightHist == nil {
		t.Fatal("histograms missing")
	}
	if !p.LeftHist.Aligned(p.RightHist) {
		t.Fatal("histograms not aligned")
	}
	if p.LeftHist.Rows() != 2000 {
		t.Fatalf("histogram rows %g", p.LeftHist.Rows())
	}
	if _, err := db.AnalyzeHistograms(0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

// TestOptimizeWithHistogramsEndToEnd: a query whose statistics came
// from AnalyzeHistograms must flow through the evaluator unchanged.
func TestOptimizeWithHistogramsEndToEnd(t *testing.T) {
	spec := smallQuery(3, 4)
	db, err := Generate(spec, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	analyzed, err := db.AnalyzeHistograms(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := analyzed.Validate(); err != nil {
		t.Fatal(err)
	}
}
