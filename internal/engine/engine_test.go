package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/dp"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/workload"
)

func smallQuery(seed int64, n int) *catalog.Query {
	// Small cardinalities keep execution fast.
	spec := workload.Default()
	spec.Cards = []workload.Bucket{{Lo: 5, Hi: 30, Weight: 1}}
	// Generous distinct counts keep materialized intermediate results
	// small enough for fast tests.
	spec.Distinct = []workload.Bucket{{Lo: 0.5, Hi: 1, Weight: 1}}
	spec.MaxSelections = 0
	return spec.Generate(n, rand.New(rand.NewSource(seed)))
}

func TestGenerateMatchesCatalog(t *testing.T) {
	q := smallQuery(1, 6)
	db, err := Generate(q, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Rels) != q.NumRelations() {
		t.Fatalf("generated %d relations, want %d", len(db.Rels), q.NumRelations())
	}
	for i, rel := range db.Rels {
		want := int(q.Relations[i].EffectiveCardinality())
		if rel.NumRows() != want {
			t.Fatalf("relation %d has %d rows, want %d", i, rel.NumRows(), want)
		}
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	bad := &catalog.Query{Relations: []catalog.Relation{{Cardinality: -1}}}
	if _, err := Generate(bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestJoinColumnDomainCoverage(t *testing.T) {
	q := smallQuery(3, 5)
	db, err := Generate(q, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Every join column's values must lie in [0, distinct).
	for pi, p := range q.Predicates {
		rel := db.Rels[p.Left]
		col := db.joinCol[pi][0]
		d := int64(p.LeftDistinct)
		if d > int64(rel.NumRows()) {
			d = int64(rel.NumRows())
		}
		for _, row := range rel.Rows {
			if row[col] < 0 || row[col] >= d {
				t.Fatalf("predicate %d: value %d outside domain [0,%d)", pi, row[col], d)
			}
		}
	}
}

// TestExecutionOrderInvariance: the final result cardinality of a valid
// left-deep plan must not depend on the join order — joins are
// commutative and associative.
func TestExecutionOrderInvariance(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%4)
		q := smallQuery(seed, n)
		db, err := Generate(q, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		g := joingraph.New(q)
		st := estimate.NewStats(q, g)
		eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
		comp := g.Components()[0]

		// Identity-ish order: the generator guarantees (0,1,...,n) valid.
		var id plan.Perm
		for i := 0; i <= n; i++ {
			id = append(id, catalog.RelID(i))
		}
		if !eval.Valid(id) {
			return false
		}
		st1, err := db.Execute(id)
		if err != nil {
			return false
		}
		// Optimal order.
		best, _, err := dp.Optimal(eval, comp)
		if err != nil {
			return false
		}
		st2, err := db.Execute(best)
		if err != nil {
			return false
		}
		return st1.ResultRows == st2.ResultRows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateTracksActual: on selection-free queries the static
// estimator's final size should be within an order of magnitude of the
// executed result (the containment assumption is exact in expectation
// for the generator's uniform columns).
func TestEstimateTracksActual(t *testing.T) {
	okCount, total := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		n := 4
		q := smallQuery(seed, n)
		db, err := Generate(q, rand.New(rand.NewSource(seed*31+7)))
		if err != nil {
			t.Fatal(err)
		}
		g := joingraph.New(q)
		st := estimate.NewStats(q, g)
		st.UseStaticSelectivity()
		var id plan.Perm
		pre := estimate.NewPrefix(st)
		for i := 0; i <= n; i++ {
			id = append(id, catalog.RelID(i))
			pre.Extend(catalog.RelID(i))
		}
		ex, err := db.Execute(id)
		if err != nil {
			t.Fatal(err)
		}
		total++
		est := pre.Size()
		actual := float64(ex.ResultRows)
		if actual == 0 {
			if est < 50 {
				okCount++
			}
			continue
		}
		if ratio := est / actual; ratio > 0.1 && ratio < 10 {
			okCount++
		}
	}
	if okCount < total*2/3 {
		t.Fatalf("estimate tracked actual on only %d/%d queries", okCount, total)
	}
}

func TestExecuteErrors(t *testing.T) {
	q := smallQuery(5, 3)
	db, err := Generate(q, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(nil); err == nil {
		t.Fatal("empty plan accepted")
	}
	if _, err := db.Execute(plan.Perm{0, 0, 1, 2}); err == nil {
		t.Fatal("duplicate relation accepted")
	}
	if _, err := db.Execute(plan.Perm{0, 1}); err == nil {
		t.Fatal("partial plan accepted")
	}
	if _, err := db.Execute(plan.Perm{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range relation accepted")
	}
}

func TestCrossProductExecution(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 3},
			{Name: "b", Cardinality: 4},
		},
	}
	db, err := Generate(q, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Execute(plan.Perm{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.ResultRows != 12 {
		t.Fatalf("cross product produced %d rows, want 12", st.ResultRows)
	}
}

func TestKeyedJoinSelectivity(t *testing.T) {
	// Two relations joined on a key with D distinct values on both
	// sides: expected result ≈ n1·n2/D.
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 200},
			{Name: "b", Cardinality: 200},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 20, RightDistinct: 20},
		},
	}
	db, err := Generate(q, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Execute(plan.Perm{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 200.0 * 200 / 20
	if ratio := float64(st.ResultRows) / want; math.Abs(ratio-1) > 0.5 {
		t.Fatalf("keyed join produced %d rows, expected ≈ %g", st.ResultRows, want)
	}
	if st.ProbeCount == 0 {
		t.Fatal("hash probes not counted")
	}
	if len(st.JoinOutputSizes) != 1 || st.JoinOutputSizes[0] != st.ResultRows {
		t.Fatalf("join output sizes: %v", st.JoinOutputSizes)
	}
}

func TestMultiPredicateJoin(t *testing.T) {
	// A triangle query: executing the third relation applies both its
	// predicates simultaneously.
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 30}, {Cardinality: 30}, {Cardinality: 30},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 5, RightDistinct: 5},
			{Left: 0, Right: 2, LeftDistinct: 5, RightDistinct: 5},
			{Left: 1, Right: 2, LeftDistinct: 5, RightDistinct: 5},
		},
	}
	db, err := Generate(q, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := db.Execute(plan.Perm{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Execute(plan.Perm{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.ResultRows != b.ResultRows {
		t.Fatalf("triangle results differ by order: %d vs %d", a.ResultRows, b.ResultRows)
	}
}

// TestHashEqualsNestedLoop: the two executors are independent
// implementations of the same semantics and must agree exactly.
func TestHashEqualsNestedLoop(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz%4)
		q := smallQuery(seed, n)
		db, err := Generate(q, rand.New(rand.NewSource(seed+5)))
		if err != nil {
			return false
		}
		var id plan.Perm
		for i := 0; i <= n; i++ {
			id = append(id, catalog.RelID(i))
		}
		h, err := db.Execute(id)
		if err != nil {
			return false
		}
		nl, err := db.ExecuteNestedLoop(id)
		if err != nil {
			return false
		}
		if h.ResultRows != nl.ResultRows {
			return false
		}
		for i := range h.JoinOutputSizes {
			if h.JoinOutputSizes[i] != nl.JoinOutputSizes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateUnfilteredAndExecuteFiltered(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 4000, Selections: []catalog.Selection{{Selectivity: 0.25}}},
			{Name: "b", Cardinality: 1000},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 100, RightDistinct: 100},
		},
	}
	db, err := GenerateUnfiltered(q, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// Base cardinality materialized, not the effective one.
	if db.Rels[0].NumRows() != 4000 {
		t.Fatalf("unfiltered rows %d, want 4000", db.Rels[0].NumRows())
	}
	st, err := db.ExecuteFiltered(plan.Perm{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: ~1000 surviving rows of a, joined at J=1/100 with 1000
	// rows of b → ≈ 10000 results. Allow generous sampling noise.
	want := 0.25 * 4000 * 1000 / 100
	if ratio := float64(st.ResultRows) / want; ratio < 0.5 || ratio > 2 {
		t.Fatalf("filtered join %d rows, expected ≈ %g", st.ResultRows, want)
	}
	// Unfiltered execution sees ~4x the rows.
	un, err := db.Execute(plan.Perm{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if un.ResultRows <= st.ResultRows*2 {
		t.Fatalf("filtering had no effect: %d vs %d", un.ResultRows, st.ResultRows)
	}
}

func TestExecuteFilteredWithoutSelectionsEqualsExecute(t *testing.T) {
	q := smallQuery(71, 3)
	db, err := Generate(q, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	var id plan.Perm
	for i := 0; i < q.NumRelations(); i++ {
		id = append(id, catalog.RelID(i))
	}
	a, err := db.Execute(id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.ExecuteFiltered(id)
	if err != nil {
		t.Fatal(err)
	}
	if a.ResultRows != b.ResultRows {
		t.Fatalf("filtered path diverged with no selections: %d vs %d", a.ResultRows, b.ResultRows)
	}
}

func TestFilteredSizesTrackEffectiveCardinality(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 10000, Selections: []catalog.Selection{
				{Selectivity: 0.5}, {Selectivity: 0.2},
			}},
		},
	}
	db, err := GenerateUnfiltered(q, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	rel := db.filterRelation(0, db.Rels[0])
	want := q.Relations[0].EffectiveCardinality() // 1000
	if ratio := float64(rel.NumRows()) / want; ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("filtered to %d rows, effective cardinality %g", rel.NumRows(), want)
	}
}

func TestColumnPruningPreservesResults(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 3 + int(sz%4)
		q := smallQuery(seed, n)
		db, err := Generate(q, rand.New(rand.NewSource(seed+9)))
		if err != nil {
			return false
		}
		var id plan.Perm
		for i := 0; i <= n; i++ {
			id = append(id, catalog.RelID(i))
		}
		full, err := db.Execute(id)
		if err != nil {
			return false
		}
		db.PruneColumns = true
		pruned, err := db.Execute(id)
		db.PruneColumns = false
		if err != nil {
			return false
		}
		if full.ResultRows != pruned.ResultRows {
			return false
		}
		for i := range full.JoinOutputSizes {
			if full.JoinOutputSizes[i] != pruned.JoinOutputSizes[i] {
				return false
			}
		}
		return pruned.MaxWidth <= full.MaxWidth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnPruningShrinksWidth(t *testing.T) {
	// A 6-relation chain accumulates ~2 columns per joined relation
	// without pruning; with pruning only the frontier join column
	// survives.
	q := smallQuery(91, 5)
	db, err := Generate(q, rand.New(rand.NewSource(92)))
	if err != nil {
		t.Fatal(err)
	}
	var id plan.Perm
	for i := 0; i < q.NumRelations(); i++ {
		id = append(id, catalog.RelID(i))
	}
	full, err := db.Execute(id)
	if err != nil {
		t.Fatal(err)
	}
	db.PruneColumns = true
	pruned, err := db.Execute(id)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.MaxWidth >= full.MaxWidth {
		t.Fatalf("pruning did not shrink width: %d vs %d", pruned.MaxWidth, full.MaxWidth)
	}
}
