// Package stats provides the small statistical helpers the experiment
// harness uses: means, standard deviations, quantiles, and the paper's
// outlier coercion rule (§6.1).
package stats

import (
	"math"
	"sort"
)

// OutlierCeiling is the paper's threshold: a scaled solution cost of 10
// or more is an outlying value and is coerced to exactly 10, so "how
// poor" a bad plan is cannot skew the mean.
const OutlierCeiling = 10.0

// CoerceOutlier applies the §6.1 rule to one scaled cost.
func CoerceOutlier(scaled float64) float64 {
	if scaled >= OutlierCeiling || math.IsInf(scaled, 1) || math.IsNaN(scaled) {
		return OutlierCeiling
	}
	return scaled
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Min returns the smallest value (+Inf for an empty slice).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (-Inf for an empty slice).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation of
// the sorted data. It copies its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Welford accumulates a running mean and variance without storing the
// samples (used by long experiment sweeps).
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }
