package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoerceOutlier(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1, 1},
		{9.99, 9.99},
		{10, 10},
		{1e9, 10},
		{math.Inf(1), 10},
		{math.NaN(), 10},
	}
	for _, c := range cases {
		if got := CoerceOutlier(c.in); got != c.want {
			t.Errorf("CoerceOutlier(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %g", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.001 {
		t.Fatalf("stddev %g", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extremes")
	}
	if q := Quantile(xs, 0.5); q != 2.5 {
		t.Fatalf("median %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("quantile sorted its input in place")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := 2 + int(n%50)
		var w Welford
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			w.Add(xs[i])
		}
		if w.N() != int64(count) {
			return false
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-9 &&
			math.Abs(w.StdDev()-StdDev(xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Var() != 0 || w.StdDev() != 0 {
		t.Fatal("empty welford variance")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Fatal("single-sample welford")
	}
}
