package plot

import (
	"fmt"
	"math"
	"strings"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
)

// GraphSVG renders a join graph as an SVG with a circular vertex
// layout: vertices (relations) around a circle, labelled by name, edges
// drawn with stroke width proportional to −log₁₀(selectivity) so the
// most selective (most size-reducing) joins stand out.
func GraphSVG(g *joingraph.Graph, q *catalog.Query) string {
	const (
		w, h   = 560, 560
		radius = 210.0
	)
	n := g.NumVertices()
	cx, cy := float64(w)/2, float64(h)/2
	pos := make([][2]float64, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(math.Max(1, float64(n)))
		pos[i] = [2]float64{cx + radius*math.Cos(a), cy + radius*math.Sin(a)}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	// Edges first (under the vertices).
	for _, e := range g.Edges() {
		p1, p2 := pos[e.From], pos[e.To]
		width := 0.8
		if e.Selectivity > 0 && e.Selectivity < 1 {
			width = 0.8 + math.Min(4, -math.Log10(e.Selectivity))
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#888" stroke-width="%.2f"><title>J=%.3g</title></line>`+"\n",
			p1[0], p1[1], p2[0], p2[1], width, e.Selectivity)
	}
	// Vertices: radius scaled by log cardinality.
	for i := 0; i < n; i++ {
		card := float64(q.Relations[i].Cardinality)
		r := 4 + 2*math.Log10(math.Max(10, card))
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#1f77b4"><title>%s: %d rows</title></circle>`+"\n",
			pos[i][0], pos[i][1], r, escape(q.RelationName(catalog.RelID(i))), q.Relations[i].Cardinality)
		// Label placed outward from the circle center.
		lx := cx + (pos[i][0]-cx)*1.12
		ly := cy + (pos[i][1]-cy)*1.12
		anchor := "middle"
		if lx > cx+10 {
			anchor = "start"
		} else if lx < cx-10 {
			anchor = "end"
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="%s" font-size="11" text-anchor="%s">%s</text>`+"\n",
			lx, ly+4, fontFamily, anchor, escape(q.RelationName(catalog.RelID(i))))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
