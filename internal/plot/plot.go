// Package plot renders experiment matrices as figures: SVG line charts
// (one series per method, scaled cost vs time coefficient — the axes of
// the paper's Figures 4–7) and compact ASCII charts for terminals.
// Standard library only.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line of a chart.
type Series struct {
	Name string
	// X and Y must have equal length.
	X, Y []float64
}

// Chart is a plottable figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY plots the y axis in log scale (scaled costs span decades).
	LogY bool
}

// palette cycles through distinguishable stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

const (
	svgW, svgH         = 640, 420
	marginL, marginR   = 64, 150
	marginT, marginB   = 44, 48
	plotW              = svgW - marginL - marginR
	plotH              = svgH - marginT - marginB
	tickCount          = 5
	legendRowH         = 18
	axisColor          = "#444444"
	gridColor          = "#dddddd"
	fontFamily         = "sans-serif"
	titleSize, lblSize = 15, 12
)

// bounds computes the data ranges, applying the log transform if set.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, err error) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return 0, 0, 0, 0, fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					return 0, 0, 0, 0, fmt.Errorf("plot: series %q has non-positive y %g with LogY", s.Name, y)
				}
				y = math.Log10(y)
			}
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if points == 0 {
		return 0, 0, 0, 0, fmt.Errorf("plot: no data")
	}
	//ljqlint:allow floatsafe -- degenerate-range guard: equality here means "all points share one x", the only case that needs widening; approximate equality would mangle valid narrow ranges
	if xmax == xmin {
		xmax = xmin + 1
	}
	//ljqlint:allow floatsafe -- degenerate-range guard, as above for y
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, nil
}

// SVG renders the chart as a standalone SVG document.
func (c *Chart) SVG() (string, error) {
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return "", err
	}
	sx := func(x float64) float64 {
		return marginL + (x-xmin)/(xmax-xmin)*plotW
	}
	sy := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(y)
		}
		return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgW, svgH, svgW, svgH)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", svgW, svgH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="%s" font-size="%d" font-weight="bold">%s</text>`+"\n",
		marginL, marginT-20, fontFamily, titleSize, escape(c.Title))

	// Gridlines + ticks.
	for i := 0; i <= tickCount; i++ {
		fy := ymin + (ymax-ymin)*float64(i)/tickCount
		py := marginT + plotH - float64(i)/tickCount*plotH
		val := fy
		if c.LogY {
			val = math.Pow(10, fy)
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s"/>`+"\n",
			marginL, py, marginL+plotW, py, gridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="%s" font-size="%d" text-anchor="end" fill="%s">%s</text>`+"\n",
			marginL-6, py+4, fontFamily, lblSize, axisColor, trimNum(val))
	}
	for i := 0; i <= tickCount; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/tickCount
		px := marginL + float64(i)/tickCount*plotW
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s"/>`+"\n",
			px, marginT, px, marginT+plotH, gridColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="%d" text-anchor="middle" fill="%s">%s</text>`+"\n",
			px, marginT+plotH+16, fontFamily, lblSize, axisColor, trimNum(fx))
	}

	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="%s"/>`+"\n",
		marginL, marginT, plotW, plotH, axisColor)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="%s" font-size="%d" text-anchor="middle" fill="%s">%s</text>`+"\n",
		marginL+plotW/2, svgH-10, fontFamily, lblSize, axisColor, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-family="%s" font-size="%d" text-anchor="middle" fill="%s" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		marginT+plotH/2, fontFamily, lblSize, axisColor, marginT+plotH/2, escape(c.YLabel))

	// Series + legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[i]), sy(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`+"\n", sx(s.X[i]), sy(s.Y[i]), color)
		}
		ly := marginT + si*legendRowH
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+plotW+12, ly, marginL+plotW+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="%s" font-size="%d">%s</text>`+"\n",
			marginL+plotW+40, ly+4, fontFamily, lblSize, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// ASCII renders the chart as a width×height character grid with a
// one-letter marker per series.
func (c *Chart) ASCII(width, height int) (string, error) {
	if width < 24 {
		width = 24
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return "", err
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	mark := func(s Series, marker byte) {
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				y = math.Log10(y)
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = marker
			}
		}
	}
	var legend []string
	used := map[byte]bool{}
	for si, s := range c.Series {
		marker := byte('A' + si%26)
		if len(s.Name) > 0 && !used[s.Name[0]] {
			marker = s.Name[0]
		}
		for used[marker] {
			marker = 'a' + (marker-'a'+1)%26
		}
		used[marker] = true
		mark(s, marker)
		legend = append(legend, fmt.Sprintf("%c=%s", marker, s.Name))
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	top, bottom := ymax, ymin
	if c.LogY {
		top, bottom = math.Pow(10, ymax), math.Pow(10, ymin)
	}
	for i, row := range grid {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%7s ", trimNum(top))
		} else if i == height-1 {
			label = fmt.Sprintf("%7s ", trimNum(bottom))
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8s+%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%9s%-*s%s\n", "", width-len(trimNum(xmax)), trimNum(xmin), trimNum(xmax))
	fmt.Fprintf(&b, "  %s\n", strings.Join(legend, "  "))
	return b.String(), nil
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trimNum(v float64) string {
	//ljqlint:allow floatsafe -- exact integrality test: v == Trunc(v) is the idiomatic "is this float a whole number" check for axis labels
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}
