package plot

import (
	"strings"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
)

func sample() *Chart {
	return &Chart{
		Title:  "Figure 4: comparison",
		XLabel: "time limit (·N²)",
		YLabel: "mean scaled cost",
		Series: []Series{
			{Name: "IAI", X: []float64{0.3, 1, 3, 9}, Y: []float64{4.9, 3.4, 2.2, 1.4}},
			{Name: "SA", X: []float64{0.3, 1, 3, 9}, Y: []float64{7.8, 7.1, 5.0, 3.3}},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg, err := sample().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Figure 4: comparison", "IAI", "SA",
		"mean scaled cost", "time limit",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("expected 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
}

func TestSVGEscapesTitle(t *testing.T) {
	c := sample()
	c.Title = `a<b & "c"`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a<b`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGLogY(t *testing.T) {
	c := sample()
	c.LogY = true
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
	c.Series[0].Y[0] = 0
	if _, err := c.SVG(); err == nil {
		t.Fatal("non-positive y accepted under LogY")
	}
}

func TestSVGErrors(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := c.SVG(); err == nil {
		t.Fatal("ragged series accepted")
	}
	if _, err := (&Chart{}).SVG(); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestASCII(t *testing.T) {
	out, err := sample().ASCII(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "I=IAI") || !strings.Contains(out, "S=SA") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "I") || !strings.Contains(out, "S") {
		t.Fatal("markers missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestASCIIFloorsDimensions(t *testing.T) {
	if _, err := sample().ASCII(1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFlatSeriesDoesNotDivideByZero(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{1, 1}, Y: []float64{2, 2}}}}
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ASCII(30, 8); err != nil {
		t.Fatal(err)
	}
}

func TestTrimNum(t *testing.T) {
	if trimNum(3) != "3" || trimNum(0.25) != "0.25" || trimNum(1234.5) != "1.23e+03" {
		t.Fatalf("trimNum: %q %q %q", trimNum(3), trimNum(0.25), trimNum(1234.5))
	}
}

func TestGraphSVG(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "orders", Cardinality: 100000},
			{Name: "customers", Cardinality: 500},
			{Name: "nation", Cardinality: 25},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, Selectivity: 0.002},
			{Left: 1, Right: 2, Selectivity: 0.04},
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	svg := GraphSVG(g, q)
	for _, want := range []string{"<svg", "orders", "customers", "nation", "<line", "<circle", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("graph svg missing %q", want)
		}
	}
	if strings.Count(svg, "<line") != 2 || strings.Count(svg, "<circle") != 3 {
		t.Fatal("wrong element counts")
	}
}
