package persist

import (
	"errors"
	"testing"

	"joinopt/internal/fingerprint"
	"joinopt/internal/plancache"
	"joinopt/internal/vfs"
)

func TestShipSnapshotRoundTrip(t *testing.T) {
	var want []*plancache.Entry
	for i := 0; i < 16; i++ {
		want = append(want, testEntry(i))
	}
	// Nil entries and plan-less entries are skipped, like the disk writer.
	in := append([]*plancache.Entry{nil, {Fingerprint: want[0].Fingerprint}}, want...)
	data := EncodeSnapshot(in)

	got, err := DecodeSnapshotStrict(data)
	if err != nil {
		t.Fatalf("DecodeSnapshotStrict: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !entriesEqual(want[i], got[i]) {
			t.Fatalf("entry %d did not round-trip bit-exactly", i)
		}
	}
}

func TestShipSnapshotEmpty(t *testing.T) {
	data := EncodeSnapshot(nil)
	got, err := DecodeSnapshotStrict(data)
	if err != nil {
		t.Fatalf("empty snapshot: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d entries from empty snapshot", len(got))
	}
}

// TestShipSnapshotWireMatchesDisk pins the interchange guarantee: the
// /snapshot wire payload and the on-disk plans.snap file are the same
// bytes, so either side of the protocol can be fed from either source.
func TestShipSnapshotWireMatchesDisk(t *testing.T) {
	var entries []*plancache.Entry
	for i := 0; i < 5; i++ {
		entries = append(entries, testEntry(i))
	}
	wire := EncodeSnapshot(entries)

	fs := vfs.NewMem()
	st, _, _ := openMem(t, fs)
	if err := st.Snapshot(entries); err != nil {
		t.Fatalf("disk snapshot: %v", err)
	}
	disk, err := fs.ReadFile("cache/plans.snap")
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != string(disk) {
		t.Fatalf("wire snapshot (%d bytes) differs from disk snapshot (%d bytes)", len(wire), len(disk))
	}
}

// TestShipTruncatedStreamRefused cuts the stream at every interesting
// boundary — inside the header, at a frame edge, mid-payload, and one
// byte short of complete — and demands strict refusal each time. Disk
// recovery salvages prefixes; the wire must not.
func TestShipTruncatedStreamRefused(t *testing.T) {
	var entries []*plancache.Entry
	for i := 0; i < 6; i++ {
		entries = append(entries, testEntry(i))
	}
	data := EncodeSnapshot(entries)
	cuts := []int{0, 1, headerLen - 1, headerLen + 1, headerLen + 7,
		len(data) / 3, len(data) / 2, len(data) - 1}
	for _, cut := range cuts {
		got, err := DecodeSnapshotStrict(data[:cut])
		if err == nil {
			t.Fatalf("cut=%d: truncated snapshot accepted (%d entries)", cut, len(got))
		}
		// Past the header the failure must be the truncation sentinel
		// (callers branch on it to pick the next donor).
		if cut >= headerLen && !errors.Is(err, ErrTruncatedSnapshot) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncatedSnapshot", cut, err)
		}
	}
}

func TestShipCorruptPayloadRefused(t *testing.T) {
	data := EncodeSnapshot([]*plancache.Entry{testEntry(1), testEntry(2), testEntry(3)})
	// Flip a bit inside the middle record's payload: CRC must catch it
	// and strict decode must refuse everything, including the valid
	// first record.
	recLen := (len(data) - headerLen) / 3
	mut := make([]byte, len(data))
	copy(mut, data)
	mut[headerLen+recLen+frameLen+4] ^= 0x40

	got, err := DecodeSnapshotStrict(mut)
	if !errors.Is(err, ErrTruncatedSnapshot) {
		t.Fatalf("corrupt payload: err = %v (entries=%d), want ErrTruncatedSnapshot", err, len(got))
	}
}

func TestShipTrailingGarbageRefused(t *testing.T) {
	data := EncodeSnapshot([]*plancache.Entry{testEntry(4)})
	data = append(data, 0xde, 0xad, 0xbe) // torn partial frame at the tail
	if _, err := DecodeSnapshotStrict(data); !errors.Is(err, ErrTruncatedSnapshot) {
		t.Fatalf("trailing garbage: err = %v, want ErrTruncatedSnapshot", err)
	}
}

func TestShipSchemaMismatchRefused(t *testing.T) {
	data := EncodeSnapshot([]*plancache.Entry{testEntry(1)})
	forged := make([]byte, len(data))
	copy(forged, data)
	forged[5] = fingerprint.SchemaVersion + 1
	copy(forged[:headerLen], encodeHeaderForged(forged[:headerLen]))

	if _, err := DecodeSnapshotStrict(forged); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("schema mismatch: err = %v, want ErrSchemaMismatch", err)
	}
}

func TestShipForeignMagicRefused(t *testing.T) {
	// A journal file is a valid persist container but the wrong kind:
	// shipping must not accept it as a snapshot.
	data := encodeHeader(magicJournal)
	data = appendFrame(data, encodeEntry(testEntry(1)))
	if _, err := DecodeSnapshotStrict(data); err == nil {
		t.Fatal("journal container accepted as shipped snapshot")
	}
	if _, err := DecodeSnapshotStrict([]byte("HTTP/1.1 502 Bad Gateway\r\n\r\n")); err == nil {
		t.Fatal("arbitrary bytes accepted as shipped snapshot")
	}
}
