package persist

import (
	"testing"

	"joinopt/internal/fingerprint"
	"joinopt/internal/plan"
	"joinopt/internal/plancache"
)

// TestRecordTierRoundTrip pins the tier bits of the record flags byte:
// every representable tier — including the legacy zero, which must
// round-trip as zero so pre-tiering files re-encode byte-identically —
// survives encode/decode unchanged.
func TestRecordTierRoundTrip(t *testing.T) {
	for _, tier := range []uint8{0, plancache.TierGreedy, plancache.TierFull} {
		var fp fingerprint.Fingerprint
		fp[0] = tier
		e := &plancache.Entry{
			Fingerprint: fp,
			Plan: &plan.Plan{
				TotalCost:  42,
				Components: []plan.Result{{Perm: plan.Perm{0, 1}, Cost: 42}},
			},
			BudgetUsed: 7,
			Tier:       tier,
		}
		got, err := decodeEntry(encodeEntry(e))
		if err != nil {
			t.Fatalf("tier %d: round trip failed: %v", tier, err)
		}
		if got.Tier != tier {
			t.Fatalf("tier %d decoded as %d", tier, got.Tier)
		}
	}

	// The tier bits must not bleed into the degraded flag or vice versa.
	e := &plancache.Entry{
		Plan: &plan.Plan{
			Degraded:      true,
			DegradeReason: "budget exhausted",
			Components:    []plan.Result{{Perm: plan.Perm{0}}},
		},
		Tier: plancache.TierGreedy,
	}
	got, err := decodeEntry(encodeEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Plan.Degraded || got.Tier != plancache.TierGreedy {
		t.Fatalf("flag bleed: degraded=%v tier=%d", got.Plan.Degraded, got.Tier)
	}
}
