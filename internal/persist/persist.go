// Package persist makes the plan cache survive restarts: the paper's
// central premise is that a good join order costs t·N² work units to
// find, so every plan thrown away by a redeploy is a cold
// re-optimization storm waiting at the next startup. The package
// implements crash-safe persistence for internal/plancache entries:
//
//   - an append-only journal of admitted entries, each record
//     length-prefixed and CRC-protected (Castagnoli), under a version
//     header that carries the fingerprint schema version;
//   - periodic compacted snapshots of the whole cache, written with
//     the temp-file → fsync → atomic-rename → fsync-dir protocol;
//   - startup recovery that loads the snapshot, replays the journal
//     on top, tolerates torn tails and corrupt records by truncating
//     at the first bad checksum (a corrupt plan is never admitted),
//     and refuses mismatched schema versions loudly.
//
// All I/O goes through the internal/vfs seam, so the crash-loop tests
// drive recovery through faultinject.FaultFS at every operation index
// and assert the recovered cache is always a valid prefix of the
// written history.
//
// The Manager (manager.go) bridges a Store to a live plancache.Cache:
// admission hooks append to the journal, every CompactEvery appends
// trigger a snapshot, and Flush persists the final state during
// graceful shutdown.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"joinopt/internal/plancache"
	"joinopt/internal/vfs"
)

// File names inside the cache directory.
const (
	snapshotName = "plans.snap"
	journalName  = "plans.journal"
	tmpSuffix    = ".tmp"
)

// ErrClosed reports an operation on a closed Store.
var ErrClosed = errors.New("persist: store closed")

// Options configures a Store.
type Options struct {
	// Dir is the cache directory (created if missing).
	Dir string
	// FS is the filesystem seam (default vfs.OS{}; tests inject
	// vfs.Mem or faultinject.FaultFS).
	FS vfs.FS
	// NoSyncEveryAppend disables the per-record journal fsync. By
	// default (false) an Append that returns nil is durable; with this
	// set, appended records are durable only at the next snapshot —
	// faster, weaker, and recovery still yields a valid prefix.
	NoSyncEveryAppend bool
}

func (o *Options) fill() {
	if o.FS == nil {
		o.FS = vfs.OS{}
	}
}

// RecoveryStats describes what startup recovery found, for /statusz
// and the telemetry counters. The counts answer the operational
// question after a crash: how much state survived, and how much was
// affirmatively discarded versus torn off the tail.
type RecoveryStats struct {
	// SnapshotRecords / JournalRecords are the valid records replayed
	// from each file.
	SnapshotRecords int `json:"snapshotRecords"`
	JournalRecords  int `json:"journalRecords"`
	// Recovered is the number of distinct entries handed back from
	// recovery (journal records override snapshot records per key).
	Recovered int `json:"recovered"`
	// Discarded counts affirmatively-corrupt records (bad checksum,
	// undecodable payload) hit during replay; replay truncates at the
	// first one per file.
	Discarded int `json:"discarded"`
	// TornBytes counts bytes truncated off file tails (torn frames,
	// torn payloads, and everything after a corrupt record).
	TornBytes int `json:"tornBytes"`
	// TornHeader reports a file whose header itself was torn (crash
	// during file creation); the file was treated as empty.
	TornHeader bool `json:"tornHeader,omitempty"`
}

// Store is the durable backing of one plan cache: a snapshot file plus
// an append-only journal in one directory. Safe for concurrent use.
type Store struct {
	opts Options
	dir  string

	mu      sync.Mutex
	journal vfs.File // open append handle; nil after Close
	closed  bool
	// appendsSinceSnapshot counts journal records since the last
	// compaction (the Manager's compaction trigger).
	appendsSinceSnapshot int
}

// Open opens (creating if necessary) the store in opts.Dir and runs
// recovery: the snapshot is loaded, the journal is replayed on top,
// and the surviving entries are returned in replay order (snapshot
// records first, then journal records; later records for the same
// fingerprint supersede earlier ones when warmed into a cache).
//
// After recovery the store is compacted: the recovered state is
// rewritten as a fresh snapshot and the journal is reset, so a torn
// tail from the previous crash can never sit underneath new appends.
//
// A schema or format version mismatch in either file returns
// ErrSchemaMismatch: plans fingerprinted under another canonicalization
// must never be served, and silently discarding them would hide a
// deployment mistake. Delete the cache directory to take the cold
// start explicitly.
func Open(opts Options) (*Store, []*plancache.Entry, RecoveryStats, error) {
	opts.fill()
	s := &Store{opts: opts, dir: opts.Dir}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, nil, RecoveryStats{}, fmt.Errorf("persist: create cache dir: %w", err)
	}
	// Leftover temp files are debris from a crash mid-snapshot; the
	// protocol never reads them.
	for _, n := range []string{snapshotName + tmpSuffix, journalName + tmpSuffix} {
		if err := opts.FS.Remove(filepath.Join(opts.Dir, n)); err != nil && !os.IsNotExist(err) {
			return nil, nil, RecoveryStats{}, fmt.Errorf("persist: clear temp file: %w", err)
		}
	}

	var st RecoveryStats
	var entries []*plancache.Entry
	load := func(name string, magic [4]byte) (int, error) {
		data, err := opts.FS.ReadFile(filepath.Join(opts.Dir, name))
		if os.IsNotExist(err) {
			return 0, nil
		}
		if err != nil {
			return 0, fmt.Errorf("persist: read %s: %w", name, err)
		}
		ok, err := checkHeader(data, magic)
		if err != nil {
			return 0, fmt.Errorf("persist: %s: %w", name, err)
		}
		if !ok {
			st.TornHeader = true
			if len(data) > 0 {
				st.TornBytes += len(data)
			}
			return 0, nil
		}
		recs, disc, torn := replay(data[headerLen:], func(e *plancache.Entry) {
			entries = append(entries, e)
		})
		st.Discarded += disc
		st.TornBytes += torn
		return recs, nil
	}

	var err error
	if st.SnapshotRecords, err = load(snapshotName, magicSnapshot); err != nil {
		return nil, nil, st, err
	}
	if st.JournalRecords, err = load(journalName, magicJournal); err != nil {
		return nil, nil, st, err
	}

	// Deduplicate for the Recovered count (journal replays may repeat
	// snapshot keys after a crash between snapshot-rename and
	// journal-reset; warming applies them in order so the journal
	// version wins).
	seen := make(map[plancache.Key]struct{}, len(entries))
	for _, e := range entries {
		seen[e.Fingerprint] = struct{}{}
	}
	st.Recovered = len(seen)

	// Post-recovery compaction: fold the recovered state into a fresh
	// snapshot and an empty journal. This guarantees appends never land
	// after a torn tail, and bounds the next recovery's replay work.
	if err := s.writeSnapshotLocked(entries); err != nil {
		return nil, nil, st, err
	}
	if err := s.resetJournalLocked(); err != nil {
		return nil, nil, st, err
	}
	return s, entries, st, nil
}

// Append journals one admitted entry. By default the record is
// durable when Append returns nil; with NoSyncEveryAppend durability
// arrives at the next snapshot. Returns the number of appends since
// the last snapshot (the Manager's compaction trigger).
func (s *Store) Append(e *plancache.Entry) (sinceSnapshot int, err error) {
	if e == nil || e.Plan == nil {
		return 0, fmt.Errorf("persist: nil entry")
	}
	frame := appendFrame(nil, encodeEntry(e))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.journal == nil {
		return 0, ErrClosed
	}
	if _, err := s.journal.Write(frame); err != nil {
		return s.appendsSinceSnapshot, fmt.Errorf("persist: journal append: %w", err)
	}
	if !s.opts.NoSyncEveryAppend {
		if err := s.journal.Sync(); err != nil {
			return s.appendsSinceSnapshot, fmt.Errorf("persist: journal sync: %w", err)
		}
	}
	s.appendsSinceSnapshot++
	return s.appendsSinceSnapshot, nil
}

// Snapshot atomically replaces the snapshot file with the given
// entries and resets the journal. The write protocol is crash-safe at
// every step:
//
//  1. write snapshot to plans.snap.tmp, fsync, close
//  2. rename plans.snap.tmp → plans.snap, fsync dir
//  3. write an empty journal to plans.journal.tmp, fsync, close
//  4. rename plans.journal.tmp → plans.journal, fsync dir
//
// A crash before (2) leaves the old snapshot+journal intact; between
// (2) and (4) the journal still holds records that are also in the new
// snapshot — replay is idempotent per key, so recovery is unaffected.
func (s *Store) Snapshot(entries []*plancache.Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.writeSnapshotLocked(entries); err != nil {
		return err
	}
	return s.resetJournalLocked()
}

func (s *Store) writeSnapshotLocked(entries []*plancache.Entry) error {
	buf := encodeHeader(magicSnapshot)
	for _, e := range entries {
		if e == nil || e.Plan == nil {
			continue
		}
		buf = appendFrame(buf, encodeEntry(e))
	}
	tmp := filepath.Join(s.dir, snapshotName+tmpSuffix)
	f, err := s.opts.FS.Create(tmp)
	if err != nil {
		return fmt.Errorf("persist: create snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := s.opts.FS.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	if err := s.opts.FS.SyncDir(s.dir); err != nil {
		return fmt.Errorf("persist: sync cache dir: %w", err)
	}
	return nil
}

// resetJournalLocked atomically replaces the journal with an empty one
// (header only) and reopens the append handle onto it.
func (s *Store) resetJournalLocked() error {
	if s.journal != nil {
		cerr := s.journal.Close()
		s.journal = nil
		if cerr != nil {
			// A failed close can mean buffered journal bytes never
			// reached the disk; surfacing it (rather than resetting
			// on top of it) lets the manager count the failure and
			// the caller retry the compaction.
			return fmt.Errorf("persist: close old journal: %w", cerr)
		}
	}
	tmp := filepath.Join(s.dir, journalName+tmpSuffix)
	f, err := s.opts.FS.Create(tmp)
	if err != nil {
		return fmt.Errorf("persist: create journal temp: %w", err)
	}
	if _, err := f.Write(encodeHeader(magicJournal)); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: write journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("persist: sync journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: close journal temp: %w", err)
	}
	journalPath := filepath.Join(s.dir, journalName)
	if err := s.opts.FS.Rename(tmp, journalPath); err != nil {
		return fmt.Errorf("persist: publish journal: %w", err)
	}
	if err := s.opts.FS.SyncDir(s.dir); err != nil {
		return fmt.Errorf("persist: sync cache dir: %w", err)
	}
	j, err := s.opts.FS.Append(journalPath)
	if err != nil {
		return fmt.Errorf("persist: reopen journal: %w", err)
	}
	s.journal = j
	s.appendsSinceSnapshot = 0
	return nil
}

// Close releases the journal handle. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.journal != nil {
		err := s.journal.Close()
		s.journal = nil
		return err
	}
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }
