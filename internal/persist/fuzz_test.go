package persist

import (
	"bytes"
	"testing"

	"joinopt/internal/plancache"
	"joinopt/internal/vfs"
)

// FuzzJournalReplay throws arbitrary bytes at the journal decode path
// and asserts the three recovery invariants:
//
//  1. replay never panics (the decoder is fully bounds-checked);
//  2. replay never admits a record whose checksum does not verify
//     (every emitted entry re-encodes to a frame that passes the CRC —
//     a corrupt-but-lucky payload cannot masquerade as a plan);
//  3. replay terminates and accounts for every byte: records consumed
//     plus tornBytes equals the input length.
//
// The corpus seeds cover the honest cases (valid frames, torn tails,
// flipped bits) so the fuzzer starts near the interesting boundaries.
func FuzzJournalReplay(f *testing.F) {
	// Seed: a valid three-record body.
	var body []byte
	for i := 0; i < 3; i++ {
		body = appendFrame(body, encodeEntry(testEntry(i)))
	}
	f.Add(body)
	// Seed: torn tail at several cuts.
	for _, cut := range []int{1, 7, 8, 9, len(body) / 2, len(body) - 1} {
		f.Add(append([]byte(nil), body[:cut]...))
	}
	// Seed: one flipped bit mid-payload.
	flipped := append([]byte(nil), body...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// Seed: absurd length prefix.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var emitted []*plancache.Entry
		recs, discarded, torn := replay(data, func(e *plancache.Entry) {
			emitted = append(emitted, e)
		})
		if recs != len(emitted) {
			t.Fatalf("replay reported %d records but emitted %d entries", recs, len(emitted))
		}
		if discarded < 0 || torn < 0 || torn > len(data) {
			t.Fatalf("nonsense accounting: discarded=%d torn=%d len=%d", discarded, torn, len(data))
		}
		// Every admitted entry must survive a re-encode/verify cycle:
		// the only way into the cache is through a valid checksum.
		consumed := 0
		for i, e := range emitted {
			if e == nil || e.Plan == nil {
				t.Fatalf("record %d: emitted nil entry", i)
			}
			frame := appendFrame(nil, encodeEntry(e))
			consumed += len(frame)
			// The bytes at the record's position must be exactly the
			// canonical frame for the decoded entry (CRC included):
			// decode(encode(x)) == x and the wire bytes verified.
			if !bytes.Equal(data[consumed-len(frame):consumed], frame) {
				t.Fatalf("record %d: admitted frame is not canonical for its decoded entry", i)
			}
		}
		// Accounting: consumed + torn covers the whole input. (Corrupt
		// records truncate, so everything after the last good record is
		// torn by definition.)
		if consumed+torn != len(data) {
			t.Fatalf("byte accounting: consumed=%d torn=%d len=%d", consumed, torn, len(data))
		}
	})
}

// FuzzOpenRecovery drives the full Open path (header check included)
// over fuzzer-controlled journal bytes: Open must never panic, and
// must either refuse loudly (schema/magic mismatch) or recover a cache
// whose every entry round-trips bit-exactly.
func FuzzOpenRecovery(f *testing.F) {
	valid := encodeHeader(magicJournal)
	for i := 0; i < 2; i++ {
		valid = appendFrame(valid, encodeEntry(testEntry(i)))
	}
	f.Add(valid)
	f.Add(valid[:headerLen])
	f.Add(valid[:headerLen-2])
	f.Add([]byte("not a journal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := vfs.NewMem()
		fw, _ := fs.Create("cache/plans.journal")
		_, _ = fw.Write(data)
		_ = fw.Close()
		store, entries, _, err := Open(Options{Dir: "cache", FS: fs})
		if err != nil {
			return // loud refusal is a valid outcome
		}
		for _, e := range entries {
			got, derr := decodeEntry(encodeEntry(e))
			if derr != nil || !entriesEqual(e, got) {
				t.Fatalf("recovered entry does not round-trip bit-exactly")
			}
		}
		_ = store.Close()
	})
}
