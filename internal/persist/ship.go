package persist

import (
	"errors"
	"fmt"

	"joinopt/internal/plancache"
)

// Snapshot shipping: the wire form of a plan-cache snapshot, used by
// the cluster's warm-start protocol (GET /snapshot → bulk cache load
// on a joining or recovering peer).
//
// The bytes are exactly the on-disk snapshot container (12-byte
// schema-versioned header + CRC-framed records), so a peer's /snapshot
// response and its plans.snap file are interchangeable. What differs
// is the *decode policy*: disk recovery (replay) is torn-tolerant —
// a crash legitimately truncates the tail, and the longest valid
// prefix is the right answer — but a network transfer has no such
// excuse. A snapshot that arrives torn means the donor died mid-send
// or the stream was mangled; warming a half cache and calling the peer
// ready would silently serve a cold shard. DecodeSnapshotStrict
// therefore refuses the whole payload on any defect, and the
// warm-start layer moves on to the next donor.

// ErrTruncatedSnapshot reports a shipped snapshot that ended
// mid-record or carried a corrupt frame: the transfer is unusable as a
// whole (strict decode — no prefix salvage on the wire).
var ErrTruncatedSnapshot = errors.New("persist: truncated or corrupt shipped snapshot")

// EncodeSnapshot renders entries in the snapshot container format —
// the /snapshot wire payload. Nil entries and entries without plans
// are skipped, mirroring the disk writer.
func EncodeSnapshot(entries []*plancache.Entry) []byte {
	buf := encodeHeader(magicSnapshot)
	for _, e := range entries {
		if e == nil || e.Plan == nil {
			continue
		}
		buf = appendFrame(buf, encodeEntry(e))
	}
	return buf
}

// DecodeSnapshotStrict parses a shipped snapshot payload. Unlike disk
// recovery it accepts no damage at all:
//
//   - a short, torn or foreign header is an error (ErrTruncatedSnapshot
//     or the header's own magic error);
//   - a schema or container-version mismatch is ErrSchemaMismatch —
//     plans fingerprinted under another canonicalization must never be
//     warmed in;
//   - any torn frame, bad checksum or undecodable record rejects the
//     whole payload with ErrTruncatedSnapshot.
//
// On success every record is returned in stream order.
func DecodeSnapshotStrict(data []byte) ([]*plancache.Entry, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncatedSnapshot, len(data), headerLen)
	}
	ok, err := checkHeader(data, magicSnapshot)
	if err != nil {
		return nil, err // foreign magic or ErrSchemaMismatch, already loud
	}
	if !ok {
		return nil, fmt.Errorf("%w: header checksum invalid", ErrTruncatedSnapshot)
	}
	var entries []*plancache.Entry
	records, discarded, torn := replay(data[headerLen:], func(e *plancache.Entry) {
		entries = append(entries, e)
	})
	if discarded > 0 || torn > 0 {
		return nil, fmt.Errorf("%w: %d valid records, then %d corrupt and %d torn bytes",
			ErrTruncatedSnapshot, records, discarded, torn)
	}
	return entries, nil
}
