package persist

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/fingerprint"
	"joinopt/internal/plan"
	"joinopt/internal/plancache"
	"joinopt/internal/vfs"
)

// testEntry fabricates a deterministic entry. The fingerprint encodes
// i; the plan's floats exercise exact-bit round-tripping (non-round
// fractions, big exponents).
func testEntry(i int) *plancache.Entry {
	var fp fingerprint.Fingerprint
	binary.LittleEndian.PutUint64(fp[:8], uint64(i))
	fp[31] = byte(i >> 3) // vary high bytes too
	cost := float64(i)*1.0000001e7 + 0.3
	return &plancache.Entry{
		Fingerprint: fp,
		Plan: &plan.Plan{
			Components: []plan.Result{
				{Perm: plan.Perm{catalog.RelID(i % 7), catalog.RelID((i + 3) % 7), catalog.RelID((i + 5) % 7)}, Cost: cost},
				{Perm: plan.Perm{catalog.RelID(7 + i%3)}, Cost: 1.5},
			},
			CrossCost: 2.25 * float64(i),
			TotalCost: cost + 1.5 + 2.25*float64(i),
		},
		BudgetUsed: int64(1000 + i),
	}
}

// entriesEqual compares entries bit-exactly (floats by their IEEE bit
// patterns: the byte-identical-Explain guarantee needs exact bits, not
// approximate equality).
func entriesEqual(a, b *plancache.Entry) bool {
	if a.Fingerprint != b.Fingerprint || a.BudgetUsed != b.BudgetUsed {
		return false
	}
	pa, pb := a.Plan, b.Plan
	if math.Float64bits(pa.TotalCost) != math.Float64bits(pb.TotalCost) ||
		math.Float64bits(pa.CrossCost) != math.Float64bits(pb.CrossCost) ||
		pa.Degraded != pb.Degraded || pa.DegradeReason != pb.DegradeReason ||
		len(pa.Components) != len(pb.Components) {
		return false
	}
	for i := range pa.Components {
		ca, cb := pa.Components[i], pb.Components[i]
		if math.Float64bits(ca.Cost) != math.Float64bits(cb.Cost) || len(ca.Perm) != len(cb.Perm) {
			return false
		}
		for j := range ca.Perm {
			if ca.Perm[j] != cb.Perm[j] {
				return false
			}
		}
	}
	return true
}

func openMem(t *testing.T, fs vfs.FS) (*Store, []*plancache.Entry, RecoveryStats) {
	t.Helper()
	st, entries, stats, err := Open(Options{Dir: "cache", FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, entries, stats
}

func TestRecordRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		e := testEntry(i)
		got, err := decodeEntry(encodeEntry(e))
		if err != nil {
			t.Fatalf("decode entry %d: %v", i, err)
		}
		if !entriesEqual(e, got) {
			t.Fatalf("entry %d did not round-trip bit-exactly", i)
		}
	}
	// Degraded flag and reason round-trip too (persisted snapshots of
	// AdmitDegraded caches must keep the flag).
	e := testEntry(1)
	e.Plan.Degraded = true
	e.Plan.DegradeReason = plan.DegradeCancelled + ": test"
	got, err := decodeEntry(encodeEntry(e))
	if err != nil {
		t.Fatalf("decode degraded: %v", err)
	}
	if !got.Plan.Degraded || got.Plan.DegradeReason != e.Plan.DegradeReason {
		t.Fatalf("degraded contract lost: %+v", got.Plan)
	}
}

func TestAppendRecoverJournalOnly(t *testing.T) {
	fs := vfs.NewMem()
	st, entries, _ := openMem(t, fs)
	if len(entries) != 0 {
		t.Fatalf("fresh dir recovered %d entries", len(entries))
	}
	var want []*plancache.Entry
	for i := 0; i < 20; i++ {
		e := testEntry(i)
		want = append(want, e)
		if _, err := st.Append(e); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, got, stats := openMem(t, fs)
	if stats.JournalRecords != 20 || stats.SnapshotRecords != 0 {
		t.Fatalf("stats = %+v, want 20 journal / 0 snapshot", stats)
	}
	if len(got) != 20 {
		t.Fatalf("recovered %d entries, want 20", len(got))
	}
	for i := range got {
		if !entriesEqual(want[i], got[i]) {
			t.Fatalf("entry %d not bit-identical after recovery", i)
		}
	}
}

func TestSnapshotCompactsJournal(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := openMem(t, fs)
	var all []*plancache.Entry
	for i := 0; i < 10; i++ {
		e := testEntry(i)
		all = append(all, e)
		if _, err := st.Append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := st.Snapshot(all); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Post-snapshot appends land in the fresh journal.
	late := testEntry(99)
	if since, err := st.Append(late); err != nil || since != 1 {
		t.Fatalf("append after snapshot: since=%d err=%v", since, err)
	}

	_, got, stats := openMem(t, fs)
	if stats.SnapshotRecords != 10 || stats.JournalRecords != 1 {
		t.Fatalf("stats = %+v, want 10 snapshot / 1 journal", stats)
	}
	if len(got) != 11 || !entriesEqual(got[10], late) {
		t.Fatalf("recovered %d entries; journal record must replay after snapshot", len(got))
	}
	if fs.HasPrefixFile("cache/plans.snap.tmp") || fs.HasPrefixFile("cache/plans.journal.tmp") {
		t.Fatalf("temp files leaked: %v", fs.Names())
	}
}

func TestTornTailTruncated(t *testing.T) {
	for cut := 1; cut < 40; cut += 3 {
		fs := vfs.NewMem()
		st, _, _ := openMem(t, fs)
		for i := 0; i < 5; i++ {
			if _, err := st.Append(testEntry(i)); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		data, err := fs.ReadFile("cache/plans.journal")
		if err != nil {
			t.Fatal(err)
		}
		// Cut the last `cut` bytes off the journal: a torn final write.
		if err := fs.Truncate("cache/plans.journal", len(data)-cut); err != nil {
			t.Fatal(err)
		}
		_, got, stats := openMem(t, fs)
		if len(got) >= 5 {
			t.Fatalf("cut=%d: torn tail not truncated (recovered %d)", cut, len(got))
		}
		if stats.TornBytes == 0 {
			t.Fatalf("cut=%d: torn bytes not counted: %+v", cut, stats)
		}
		// The surviving records must be the exact prefix.
		for i, e := range got {
			if !entriesEqual(testEntry(i), e) {
				t.Fatalf("cut=%d: recovered entry %d is not history prefix", cut, i)
			}
		}
	}
}

func TestCorruptRecordTruncatesAtFirstBadChecksum(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := openMem(t, fs)
	for i := 0; i < 8; i++ {
		if _, err := st.Append(testEntry(i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	data, _ := fs.ReadFile("cache/plans.journal")
	recLen := (len(data) - headerLen) / 8
	// Flip a bit inside record 3's payload.
	off := headerLen + 3*recLen + frameLen + 5
	if err := fs.Corrupt("cache/plans.journal", off); err != nil {
		t.Fatal(err)
	}

	_, got, stats := openMem(t, fs)
	if len(got) != 3 {
		t.Fatalf("recovered %d entries, want exactly the 3 before the corrupt record", len(got))
	}
	if stats.Discarded != 1 {
		t.Fatalf("discarded = %d, want 1", stats.Discarded)
	}
	for i, e := range got {
		if !entriesEqual(testEntry(i), e) {
			t.Fatalf("recovered entry %d corrupted", i)
		}
	}
}

func TestSchemaMismatchRefusedLoudly(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := openMem(t, fs)
	if _, err := st.Append(testEntry(1)); err != nil {
		t.Fatal(err)
	}
	// Forge a future schema version into the journal header and fix up
	// its CRC so only the version check can object.
	data, _ := fs.ReadFile("cache/plans.journal")
	data[5] = fingerprint.SchemaVersion + 1
	forged := make([]byte, len(data))
	copy(forged, data)
	h := encodeHeaderForged(forged[:headerLen])
	copy(forged[:headerLen], h)
	f, _ := fs.Create("cache/plans.journal")
	if _, err := f.Write(forged); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	_, _, _, err := Open(Options{Dir: "cache", FS: fs})
	if !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("Open = %v, want ErrSchemaMismatch", err)
	}
}

// encodeHeaderForged recomputes the CRC over a (tampered) header.
func encodeHeaderForged(h []byte) []byte {
	out := make([]byte, headerLen)
	copy(out, h[:8])
	binary.LittleEndian.PutUint32(out[8:12], crcChecksum(out[:8]))
	return out
}

func crcChecksum(b []byte) uint32 {
	return crc32.Checksum(b, crcTable)
}

func TestForeignFileRefused(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("cache/plans.journal")
	if _, err := f.Write([]byte("#!/bin/sh\necho not a journal\n")); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	_ = fs.MkdirAll("cache")
	_, _, _, err := Open(Options{Dir: "cache", FS: fs})
	if err == nil {
		t.Fatal("Open accepted a foreign file as a journal")
	}
}

func TestTornHeaderTreatedAsEmpty(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("cache/plans.journal")
	if _, err := f.Write(encodeHeader(magicJournal)[:5]); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	_ = fs.MkdirAll("cache")
	_, got, stats := openMem(t, fs)
	if len(got) != 0 || !stats.TornHeader {
		t.Fatalf("torn header: entries=%d stats=%+v", len(got), stats)
	}
}

func TestManagerJournalsAdmissionsAndCompacts(t *testing.T) {
	fs := vfs.NewMem()
	st, entries, rstats := openMem(t, fs)
	cache := plancache.New(plancache.Config{Capacity: 1024})
	mgr := NewManager(st, cache, 4) // compact every 4 appends
	if n := mgr.Recover(entries, rstats); n != 0 {
		t.Fatalf("recovered %d from empty store", n)
	}
	mgr.Bind()

	for i := 0; i < 10; i++ {
		if !cache.Put(testEntry(i)) {
			t.Fatalf("put %d refused", i)
		}
	}
	ms := mgr.Stats()
	if ms.Appends != 10 {
		t.Fatalf("appends = %d, want 10", ms.Appends)
	}
	if ms.Snapshots < 2 {
		t.Fatalf("snapshots = %d, want ≥ 2 (compact every 4)", ms.Snapshots)
	}

	// A degraded plan is refused by the cache, so it must never reach
	// the journal.
	bad := testEntry(50)
	bad.Plan.Degraded = true
	bad.Plan.DegradeReason = plan.DegradePanic
	if cache.Put(bad) {
		t.Fatal("degraded plan admitted")
	}
	if got := mgr.Stats().Appends; got != 10 {
		t.Fatalf("degraded plan was journaled (appends=%d)", got)
	}

	// Restart: a second store over the same filesystem recovers all 10.
	st2, entries2, rstats2 := openMem(t, fs)
	cache2 := plancache.New(plancache.Config{Capacity: 1024})
	mgr2 := NewManager(st2, cache2, 4)
	if n := mgr2.Recover(entries2, rstats2); n != 10 {
		t.Fatalf("recovered %d entries, want 10", n)
	}
	if cache2.Stats().Warmed != 10 {
		t.Fatalf("warmed = %d, want 10", cache2.Stats().Warmed)
	}
	for i := 0; i < 10; i++ {
		got, ok := cache2.Get(testEntry(i).Fingerprint)
		if !ok || !entriesEqual(testEntry(i), got) {
			t.Fatalf("entry %d missing or not bit-identical after restart", i)
		}
	}
}

func TestRecoveryJournalSupersedesSnapshotPerKey(t *testing.T) {
	fs := vfs.NewMem()
	st, _, _ := openMem(t, fs)
	oldE := testEntry(1)
	if err := st.Snapshot([]*plancache.Entry{oldE}); err != nil {
		t.Fatal(err)
	}
	// Same fingerprint, more search budget, different plan cost.
	newE := testEntry(1)
	newE.BudgetUsed = oldE.BudgetUsed + 500
	newE.Plan.TotalCost = 123.456
	if _, err := st.Append(newE); err != nil {
		t.Fatal(err)
	}

	st2, entries, rstats := openMem(t, fs)
	_ = st2
	cache := plancache.New(plancache.Config{Capacity: 16})
	NewManager(st2, cache, 0).Recover(entries, rstats)
	got, ok := cache.Get(newE.Fingerprint)
	if !ok {
		t.Fatal("entry missing")
	}
	if math.Float64bits(got.Plan.TotalCost) != math.Float64bits(newE.Plan.TotalCost) {
		t.Fatalf("journal record did not supersede snapshot: cost %v", got.Plan.TotalCost)
	}
	if got.BudgetUsed != newE.BudgetUsed {
		t.Fatalf("budget weight %d, want %d", got.BudgetUsed, newE.BudgetUsed)
	}
}

// closeFailFS wraps a vfs.FS and makes Close fail on handles opened
// via Append while armed — the seam FaultFS lacks (it treats Close as
// non-mutating). POSIX close(2) can surface deferred write-back
// errors, which is exactly what resetJournalLocked must not swallow.
type closeFailFS struct {
	vfs.FS
	armed bool
	err   error
}

func (f *closeFailFS) Append(name string) (vfs.File, error) {
	inner, err := f.FS.Append(name)
	if err != nil {
		return nil, err
	}
	return &closeFailFile{File: inner, fs: f}, nil
}

type closeFailFile struct {
	vfs.File
	fs *closeFailFS
}

func (w *closeFailFile) Close() error {
	err := w.File.Close()
	if w.fs.armed {
		return w.fs.err
	}
	return err
}

// TestCompactionSurfacesJournalCloseError is the regression test for
// the errsink finding in resetJournalLocked: the old journal handle's
// Close error was discarded, so a failed close — which can mean
// buffered journal bytes never reached the disk — looked like a clean
// compaction. The error must surface so the manager counts the
// failure and the caller can retry.
func TestCompactionSurfacesJournalCloseError(t *testing.T) {
	boom := errors.New("deferred write-back failed")
	ffs := &closeFailFS{FS: vfs.NewMem(), err: boom}
	st, _, _ := openMem(t, ffs)
	if _, err := st.Append(testEntry(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}

	ffs.armed = true
	err := st.Snapshot([]*plancache.Entry{testEntry(1)})
	if err == nil {
		t.Fatal("Snapshot succeeded despite the old journal's Close failing")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected close error wrapped", err)
	}

	// The failed handle is released either way (journal == nil), so a
	// retry must not double-close; once the fault clears, compaction
	// succeeds and appends flow again.
	ffs.armed = false
	if err := st.Snapshot([]*plancache.Entry{testEntry(1)}); err != nil {
		t.Fatalf("retry after close failure: %v", err)
	}
	if _, err := st.Append(testEntry(2)); err != nil {
		t.Fatalf("Append after recovered compaction: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
