package persist

import (
	"encoding/binary"
	"errors"
	"sort"
	"testing"

	"joinopt/internal/faultinject"
	"joinopt/internal/plancache"
	"joinopt/internal/vfs"
)

// The crash-loop harness: replay a fixed write history against the
// store, kill the filesystem at every mutating-operation index, reboot
// (recover over the surviving bytes), and assert the recovered state
// is always a bit-identical prefix of the history — and at least as
// long as the durable prefix (every Append that returned nil under the
// default fsync-per-append contract).
//
// This is the acceptance criterion from the durability design: no
// crash point may yield an out-of-order, corrupted, or
// beyond-the-history cache, and no acknowledged write may be lost.

// crashHistoryEntries and crashSnapshotEvery shape the write history:
// 80 appends with a compacting snapshot every 16 gives a history of
// well over 200 mutating operations (each append is write+sync; each
// snapshot is ~11 ops; Open itself compacts).
const (
	crashHistoryEntries = 80
	crashSnapshotEvery  = 16
)

// runHistory drives the fixed history against a store opened over fs.
// It returns the index of the last entry whose Append returned nil
// (-1 if none) — the durable lower bound for recovery. Errors from the
// injected crash are expected and swallowed; the history simply stops
// acknowledging from the crash point on.
func runHistory(fs vfs.FS) (lastDurable int) {
	lastDurable = -1
	store, _, _, err := Open(Options{Dir: "cache", FS: fs})
	if err != nil {
		return -1 // crashed during Open: nothing acknowledged
	}
	defer store.Close()
	all := make([]*plancache.Entry, 0, crashHistoryEntries)
	for i := 0; i < crashHistoryEntries; i++ {
		e := testEntry(i)
		all = append(all, e)
		if _, err := store.Append(e); err != nil {
			// Crash (or post-crash ErrClosed): nothing past this point
			// is acknowledged.
			return lastDurable
		}
		lastDurable = i
		if (i+1)%crashSnapshotEvery == 0 {
			// Compacting snapshot of everything appended so far. A
			// failure here must not lose acknowledged entries — that is
			// exactly what the reboot assertion checks.
			if err := store.Snapshot(all); err != nil {
				return lastDurable
			}
		}
	}
	return lastDurable
}

// recoverAll reboots over the raw filesystem (no faults: recovery runs
// after the power is back) and returns the deduplicated recovered
// entries, journal-wins order, keyed by history index.
func recoverAll(t *testing.T, fs vfs.FS) map[int]*plancache.Entry {
	t.Helper()
	store, entries, _, err := Open(Options{Dir: "cache", FS: fs})
	if err != nil {
		t.Fatalf("recovery Open after crash: %v", err)
	}
	defer store.Close()
	got := make(map[int]*plancache.Entry)
	for _, e := range entries {
		idx := int(binary.LittleEndian.Uint64(e.Fingerprint[:8]))
		got[idx] = e // replay order: later (journal) records supersede
	}
	return got
}

// assertPrefix checks that got is exactly {0..k} for some k, every
// entry bit-identical to the history, and k >= lastDurable.
func assertPrefix(t *testing.T, got map[int]*plancache.Entry, lastDurable int, crashOp int64) {
	t.Helper()
	indices := make([]int, 0, len(got))
	for idx := range got {
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	for pos, idx := range indices {
		if idx != pos {
			t.Fatalf("crash at op %d: recovered indices %v are not a contiguous prefix", crashOp, indices)
		}
		if !entriesEqual(got[idx], testEntry(idx)) {
			t.Fatalf("crash at op %d: recovered entry %d is not bit-identical to the written one", crashOp, idx)
		}
	}
	k := len(indices) - 1
	if k < lastDurable {
		t.Fatalf("crash at op %d: recovered prefix ends at %d but append %d was acknowledged durable", crashOp, k, lastDurable)
	}
}

// TestCrashLoopEveryOpIndex is the exhaustive kill-and-recover loop:
// one run per mutating-operation index of the clean history.
func TestCrashLoopEveryOpIndex(t *testing.T) {
	// Clean run: measure the history length in mutating ops.
	cleanMem := vfs.NewMem()
	counter := faultinject.NewFaultFS(cleanMem, faultinject.FSConfig{})
	if last := runHistory(counter); last != crashHistoryEntries-1 {
		t.Fatalf("clean run acknowledged %d entries, want %d", last+1, crashHistoryEntries)
	}
	totalOps := counter.Ops()
	if totalOps < 200 {
		t.Fatalf("history is %d mutating ops, want >= 200 (grow crashHistoryEntries)", totalOps)
	}
	t.Logf("history: %d entries, %d mutating ops, snapshot every %d", crashHistoryEntries, totalOps, crashSnapshotEvery)

	for crashOp := int64(1); crashOp <= totalOps; crashOp++ {
		mem := vfs.NewMem()
		ffs := faultinject.NewFaultFS(mem, faultinject.FSConfig{
			Seed:      crashOp, // distinct torn-write fractions per point
			CrashAtOp: crashOp,
		})
		lastDurable := runHistory(ffs)
		if !ffs.Crashed() {
			t.Fatalf("crash at op %d never fired (history only %d ops this run)", crashOp, ffs.Ops())
		}
		// Reboot: recover over the raw surviving bytes, no faults.
		got := recoverAll(t, mem)
		assertPrefix(t, got, lastDurable, crashOp)
	}
}

// TestCrashLoopNoSyncStillPrefix re-runs a sampled crash loop with
// per-append fsync disabled: acknowledged appends may be lost (weaker
// durability is the documented trade), but recovery must still yield a
// valid bit-identical prefix — never garbage, never reordering.
func TestCrashLoopNoSyncStillPrefix(t *testing.T) {
	run := func(fs vfs.FS) {
		store, _, _, err := Open(Options{Dir: "cache", FS: fs, NoSyncEveryAppend: true})
		if err != nil {
			return
		}
		defer store.Close()
		var all []*plancache.Entry
		for i := 0; i < crashHistoryEntries; i++ {
			e := testEntry(i)
			all = append(all, e)
			if _, err := store.Append(e); err != nil {
				return
			}
			if (i+1)%crashSnapshotEvery == 0 {
				if err := store.Snapshot(all); err != nil {
					return
				}
			}
		}
	}
	for crashOp := int64(1); crashOp <= 160; crashOp += 3 {
		mem := vfs.NewMem()
		ffs := faultinject.NewFaultFS(mem, faultinject.FSConfig{Seed: 7 * crashOp, CrashAtOp: crashOp})
		run(ffs)
		got := recoverAll(t, mem)
		// No durability lower bound without fsync; prefix shape and
		// bit-identity still must hold.
		assertPrefix(t, got, -1, crashOp)
	}
}

// TestCrashLoopThroughManager runs the crash loop through the full
// stack — plancache.Cache admissions firing the Manager's journal hook
// with periodic compaction — and asserts the same prefix property on
// what a rebooted Manager warms into a fresh cache.
func TestCrashLoopThroughManager(t *testing.T) {
	const entries = 60
	const compactEvery = 8

	// Clean run to size the op history.
	runMgr := func(fs vfs.FS) (acked int) {
		store, rec, rstats, err := Open(Options{Dir: "cache", FS: fs})
		if err != nil {
			return 0
		}
		cache := plancache.New(plancache.Config{Capacity: 4 * entries})
		mgr := NewManager(store, cache, compactEvery)
		mgr.Recover(rec, rstats)
		mgr.Bind()
		for i := 0; i < entries; i++ {
			cache.Put(testEntry(i))
			// The admission hook swallows append errors by design (the
			// plan is live in memory); the durable lower bound is the
			// append-error counter.
			if mgr.Stats().AppendErrors == 0 {
				acked = i + 1
			}
		}
		_ = mgr.Close()
		return acked
	}

	cleanMem := vfs.NewMem()
	counter := faultinject.NewFaultFS(cleanMem, faultinject.FSConfig{})
	if acked := runMgr(counter); acked != entries {
		t.Fatalf("clean manager run acked %d, want %d", acked, entries)
	}
	totalOps := counter.Ops()
	if totalOps < 200 {
		t.Fatalf("manager history is %d ops, want >= 200", totalOps)
	}

	for crashOp := int64(1); crashOp <= totalOps; crashOp++ {
		mem := vfs.NewMem()
		ffs := faultinject.NewFaultFS(mem, faultinject.FSConfig{Seed: crashOp, CrashAtOp: crashOp})
		acked := runMgr(ffs)

		// Reboot the full stack over the raw filesystem.
		store, rec, rstats, err := Open(Options{Dir: "cache", FS: mem})
		if err != nil {
			t.Fatalf("crash at op %d: manager recovery failed: %v", crashOp, err)
		}
		cache := plancache.New(plancache.Config{Capacity: 4 * entries})
		mgr := NewManager(store, cache, compactEvery)
		// Warm counts every replayed record (journal duplicates of
		// snapshot keys re-warm and supersede); the cache ends with
		// exactly the distinct recovered set.
		warmed := mgr.Recover(rec, rstats)
		if warmed < rstats.Recovered {
			t.Fatalf("crash at op %d: warmed %d < %d recovered entries", crashOp, warmed, rstats.Recovered)
		}
		if cache.Len() != rstats.Recovered {
			t.Fatalf("crash at op %d: cache holds %d entries, recovery reported %d distinct", crashOp, cache.Len(), rstats.Recovered)
		}
		got := make(map[int]*plancache.Entry, warmed)
		for _, e := range cache.Dump() {
			got[int(binary.LittleEndian.Uint64(e.Fingerprint[:8]))] = e
		}
		assertPrefix(t, got, acked-1, crashOp)
		_ = store.Close()
	}
}

// TestInjectedAppendErrorIsCountedNotFatal pins the degraded-not-dead
// contract: a transient injected I/O error on one append must not
// poison the store — the next append succeeds and recovery still
// yields every durable record.
func TestInjectedAppendErrorIsCountedNotFatal(t *testing.T) {
	mem := vfs.NewMem()
	// Fail one append write somewhere mid-history. Open costs a fixed
	// preamble of ops; pick an op index comfortably inside the appends.
	ffs := faultinject.NewFaultFS(mem, faultinject.FSConfig{Seed: 3, ErrAtOp: 30})
	store, _, _, err := Open(Options{Dir: "cache", FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	failures := 0
	for i := 0; i < 20; i++ {
		if _, err := store.Append(testEntry(i)); err != nil {
			if !errors.Is(err, faultinject.ErrInjectedIO) {
				t.Fatalf("append %d: unexpected error %v", i, err)
			}
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("injected exactly one fault, observed %d append failures", failures)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := recoverAll(t, mem)
	// 19 of 20 entries recovered; the lost one is the faulted append.
	if len(got) != 19 {
		t.Fatalf("recovered %d entries, want 19 (one append faulted)", len(got))
	}
	for idx, e := range got {
		if !entriesEqual(e, testEntry(idx)) {
			t.Fatalf("recovered entry %d not bit-identical", idx)
		}
	}
}
