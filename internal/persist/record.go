package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"joinopt/internal/catalog"
	"joinopt/internal/fingerprint"
	"joinopt/internal/plan"
	"joinopt/internal/plancache"
)

// File format
//
// Both the journal and the snapshot share one layout:
//
//	header:  magic[4] version[1] schema[1] reserved[2] crc32(prev 8)[4]
//	record*: length[4] crc32(payload)[4] payload[length]
//
// magic distinguishes the two files ("LJQJ" journal, "LJQS" snapshot),
// version is the container format version, schema is the fingerprint
// schema version (fingerprint.SchemaVersion) — plans keyed under a
// different canonicalization are meaningless, so a mismatch refuses the
// whole file rather than admitting plans under wrong keys.
//
// The record payload is a deterministic binary encoding of one cache
// entry. Floats are stored as IEEE-754 bit patterns, so a plan round-
// trips exactly and the daemon serves a byte-identical Explain after a
// restart. All integers are little-endian; counts are uvarints.
//
//	fingerprint[32]
//	budgetUsed[8]          (uint64 two's-complement of int64)
//	flags[1]               (bit0: degraded; bits1-2: planning tier)
//	reasonLen uvarint, reason bytes
//	totalCost[8]           (Float64bits)
//	crossCost[8]           (Float64bits)
//	ncomp uvarint
//	ncomp × { cost[8] (Float64bits); plen uvarint; plen × rel uvarint }
//
// Decoding is defensive: every length is bounds-checked against hard
// caps before allocation, trailing bytes are an error, and no input —
// truncated, bit-flipped, or adversarial — may panic (FuzzJournalReplay
// enforces this).

const (
	headerLen = 12
	frameLen  = 8 // length[4] + crc[4]

	formatVersion = 1

	// MaxRecordBytes caps one record's payload. A plan over the
	// catalog's relation limit encodes far below this; anything larger
	// in a length prefix is corruption, not data.
	MaxRecordBytes = 16 << 20

	// maxComponents / maxPermLen bound decoded allocations. They are
	// far above anything the optimizer produces (catalog queries top
	// out at hundreds of relations) while keeping a hostile length
	// prefix from allocating gigabytes.
	maxComponents = 1 << 16
	maxPermLen    = 1 << 20
	maxReasonLen  = 1 << 12
)

var (
	magicJournal  = [4]byte{'L', 'J', 'Q', 'J'}
	magicSnapshot = [4]byte{'L', 'J', 'Q', 'S'}
)

// crcTable is the Castagnoli polynomial: hardware-accelerated on
// amd64/arm64, and the conventional choice for storage checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrSchemaMismatch reports a journal or snapshot written under a
// different fingerprint schema or container format version. Recovery
// refuses such files loudly (cold start) instead of admitting plans
// under reinterpreted keys.
var ErrSchemaMismatch = errors.New("persist: file written under a different schema version")

// errCorrupt marks a record rejected during replay (bad CRC, bad
// framing, undecodable payload). It is internal: replay truncates at
// the first corrupt record rather than surfacing the error.
var errCorrupt = errors.New("persist: corrupt record")

// encodeHeader renders the 12-byte file header for the given magic.
func encodeHeader(magic [4]byte) []byte {
	h := make([]byte, headerLen)
	copy(h[0:4], magic[:])
	h[4] = formatVersion
	h[5] = fingerprint.SchemaVersion
	// h[6:8] reserved, zero.
	binary.LittleEndian.PutUint32(h[8:12], crc32.Checksum(h[:8], crcTable))
	return h
}

// checkHeader validates a file's header. Returns:
//
//   - ok=true: header valid, payload starts at headerLen.
//   - ok=false, err=nil: the header is torn (file shorter than a full
//     header, or checksum failure on a correct magic) — the file is
//     treated as empty, which is the crash-mid-creation case.
//   - err != nil: the file is affirmatively not ours (magic mismatch)
//     or written under another schema — refuse loudly.
func checkHeader(data []byte, magic [4]byte) (ok bool, err error) {
	if len(data) == 0 {
		return false, nil
	}
	n := len(data)
	if n > headerLen {
		n = headerLen
	}
	// Compare however much magic we have: a torn header still starts
	// with our magic bytes; anything else is a foreign file.
	for i := 0; i < n && i < 4; i++ {
		if data[i] != magic[i] {
			return false, fmt.Errorf("persist: bad magic %q (not a plan-cache file)", data[:n])
		}
	}
	if len(data) < headerLen {
		return false, nil // torn header: crash while creating the file
	}
	if binary.LittleEndian.Uint32(data[8:12]) != crc32.Checksum(data[:8], crcTable) {
		return false, nil // torn header write
	}
	if data[4] != formatVersion || data[5] != fingerprint.SchemaVersion {
		return false, fmt.Errorf("%w: file has format=%d schema=%d, this binary speaks format=%d schema=%d",
			ErrSchemaMismatch, data[4], data[5], formatVersion, fingerprint.SchemaVersion)
	}
	return true, nil
}

// appendFrame appends one framed record (length, crc, payload) to dst.
func appendFrame(dst, payload []byte) []byte {
	var f [frameLen]byte
	binary.LittleEndian.PutUint32(f[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, f[:]...)
	return append(dst, payload...)
}

// encodeEntry renders one cache entry as a record payload.
func encodeEntry(e *plancache.Entry) []byte {
	pl := e.Plan
	buf := make([]byte, 0, 64+16*len(pl.Components))
	buf = append(buf, e.Fingerprint[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.BudgetUsed))
	var flags byte
	if pl.Degraded {
		flags |= 1
	}
	// Planning tier rides in bits 1-2, stored verbatim: a zero Tier
	// stays zero so pre-tiering files round-trip byte-identically (no
	// format/schema version bump needed; decoders rank zero as full via
	// plancache.TierRank at the point of use).
	flags |= (e.Tier & 3) << 1
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(pl.DegradeReason)))
	buf = append(buf, pl.DegradeReason...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pl.TotalCost))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pl.CrossCost))
	buf = binary.AppendUvarint(buf, uint64(len(pl.Components)))
	for _, c := range pl.Components {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Cost))
		buf = binary.AppendUvarint(buf, uint64(len(c.Perm)))
		for _, r := range c.Perm {
			buf = binary.AppendUvarint(buf, uint64(r))
		}
	}
	return buf
}

// decoder is a bounds-checked cursor over one record payload.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.b) {
		return nil, errCorrupt
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) uvarint(max uint64) (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 || v > max {
		return 0, errCorrupt
	}
	d.off += n
	return v, nil
}

// decodeEntry parses one record payload. It never panics; any
// malformed input returns errCorrupt.
func decodeEntry(payload []byte) (*plancache.Entry, error) {
	d := &decoder{b: payload}
	fpb, err := d.bytes(fingerprint.Size)
	if err != nil {
		return nil, err
	}
	var fp fingerprint.Fingerprint
	copy(fp[:], fpb)
	bu, err := d.u64()
	if err != nil {
		return nil, err
	}
	flagb, err := d.bytes(1)
	if err != nil {
		return nil, err
	}
	reasonLen, err := d.uvarint(maxReasonLen)
	if err != nil {
		return nil, err
	}
	reason, err := d.bytes(int(reasonLen))
	if err != nil {
		return nil, err
	}
	total, err := d.u64()
	if err != nil {
		return nil, err
	}
	cross, err := d.u64()
	if err != nil {
		return nil, err
	}
	ncomp, err := d.uvarint(maxComponents)
	if err != nil {
		return nil, err
	}
	pl := &plan.Plan{
		TotalCost:     math.Float64frombits(total),
		CrossCost:     math.Float64frombits(cross),
		Degraded:      flagb[0]&1 != 0,
		DegradeReason: string(reason),
	}
	totalRels := 0
	for i := uint64(0); i < ncomp; i++ {
		costBits, err := d.u64()
		if err != nil {
			return nil, err
		}
		plen, err := d.uvarint(maxPermLen)
		if err != nil {
			return nil, err
		}
		totalRels += int(plen)
		if totalRels > maxPermLen {
			return nil, errCorrupt
		}
		perm := make(plan.Perm, plen)
		for j := range perm {
			r, err := d.uvarint(math.MaxUint32)
			if err != nil {
				return nil, err
			}
			perm[j] = catalog.RelID(r)
		}
		pl.Components = append(pl.Components, plan.Result{Perm: perm, Cost: math.Float64frombits(costBits)})
	}
	if d.off != len(payload) {
		return nil, errCorrupt // trailing garbage: reject the record
	}
	return &plancache.Entry{Fingerprint: fp, Plan: pl, BudgetUsed: int64(bu), Tier: (flagb[0] >> 1) & 3}, nil
}

// replay walks the framed records after a validated header, calling
// emit for each record that passes its checksum and decodes cleanly.
// It stops — truncating the rest — at the first torn or corrupt
// record. replay never fails: a damaged file yields the longest valid
// prefix, per the recovery contract. records counts entries emitted,
// discarded counts affirmatively-corrupt records hit (0 or 1: replay
// stops at the first), and tornBytes counts every byte not consumed
// as a valid record.
func replay(data []byte, emit func(*plancache.Entry)) (records, discarded, tornBytes int) {
	off := 0
	for {
		rest := len(data) - off
		if rest == 0 {
			return records, discarded, 0
		}
		if rest < frameLen {
			return records, discarded, rest // torn frame header
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > MaxRecordBytes {
			// A length prefix this large is corruption; everything from
			// here on is untrustworthy.
			return records, discarded + 1, rest
		}
		if rest < frameLen+length {
			return records, discarded, rest // torn payload
		}
		payload := data[off+frameLen : off+frameLen+length]
		if crc32.Checksum(payload, crcTable) != wantCRC {
			// First bad checksum: truncate here. Bytes past a corrupt
			// record have no trustworthy framing.
			return records, discarded + 1, rest
		}
		e, err := decodeEntry(payload)
		if err != nil {
			// Checksum fine but undecodable: a foreign or future record
			// kind. Same policy — never admit, truncate the rest.
			return records, discarded + 1, rest
		}
		emit(e)
		records++
		off += frameLen + length
	}
}
