package persist

import (
	"fmt"
	"testing"

	"joinopt/internal/plancache"
	"joinopt/internal/vfs"
)

// BenchmarkRecovery measures startup recovery (Open: read snapshot +
// replay journal + post-recovery compaction) as a function of the
// recovered entry count. This is the number that bounds how long a
// restarted ljqd answers /readyz with 503 — the recovery-time figure
// recorded in BENCH_persist.json.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			// Build a realistic directory: a snapshot holding half the
			// entries and a journal holding the rest.
			mem := vfs.NewMem()
			store, _, _, err := Open(Options{Dir: "cache", FS: mem, NoSyncEveryAppend: true})
			if err != nil {
				b.Fatal(err)
			}
			half := make([]*plancache.Entry, 0, n/2)
			for i := 0; i < n/2; i++ {
				half = append(half, testEntry(i))
			}
			if err := store.Snapshot(half); err != nil {
				b.Fatal(err)
			}
			for i := n / 2; i < n; i++ {
				if _, err := store.Append(testEntry(i)); err != nil {
					b.Fatal(err)
				}
			}
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}

			// Freeze the directory bytes so each iteration recovers the
			// same state (Open compacts, which would otherwise fold the
			// journal into the snapshot after the first iteration).
			frozenSnap, _ := mem.ReadFile("cache/plans.snap")
			frozenJournal, _ := mem.ReadFile("cache/plans.journal")
			restore := func() vfs.FS {
				m := vfs.NewMem()
				w, _ := m.Create("cache/plans.snap")
				_, _ = w.Write(frozenSnap)
				_ = w.Close()
				w, _ = m.Create("cache/plans.journal")
				_, _ = w.Write(frozenJournal)
				_ = w.Close()
				return m
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs := restore()
				b.StartTimer()
				st, entries, stats, err := Open(Options{Dir: "cache", FS: fs, NoSyncEveryAppend: true})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Recovered != n {
					b.Fatalf("recovered %d, want %d", stats.Recovered, n)
				}
				_ = entries
				_ = st.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
		})
	}
}

// BenchmarkAppend measures the journal append hot path, with and
// without the per-record fsync (on vfs.Mem the sync is a no-op, so
// this isolates the framing + checksum cost).
func BenchmarkAppend(b *testing.B) {
	for _, nosync := range []bool{false, true} {
		b.Run(fmt.Sprintf("nosync=%v", nosync), func(b *testing.B) {
			store, _, _, err := Open(Options{Dir: "cache", FS: vfs.NewMem(), NoSyncEveryAppend: nosync})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			e := testEntry(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Append(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
