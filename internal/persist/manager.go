package persist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"joinopt/internal/plancache"
	"joinopt/internal/telemetry"
)

// Manager bridges a Store to a live plancache.Cache:
//
//   - Recover warms the cache with the entries Open returned;
//   - Bind installs the cache's admission hook, so every admitted plan
//     is journaled (durable before the admitting request completes,
//     under the default per-append fsync);
//   - every CompactEvery journal appends, the whole cache is
//     re-snapshotted and the journal reset, bounding both journal
//     growth and the next startup's replay;
//   - Flush snapshots on demand (graceful shutdown).
//
// Append and snapshot errors do not fail the admitting request — the
// plan is already in memory and correct; losing durability for one
// entry is strictly better than failing the optimization. Errors are
// counted (AppendErrors/FlushErrors, exported via RegisterMetrics and
// Stats) and the first error of each kind is retained for /statusz, so
// a sick disk is loud without being fatal.
type Manager struct {
	store *Store
	cache *plancache.Cache

	compactEvery int
	recovery     RecoveryStats

	// flushMu serializes snapshots (a drain-time Flush racing a
	// compaction must not interleave their temp-file protocols).
	flushMu sync.Mutex

	appends      atomic.Uint64
	appendErrors atomic.Uint64
	snapshots    atomic.Uint64
	flushErrors  atomic.Uint64

	errMu      sync.Mutex
	lastAppend error
	lastFlush  error
}

// ManagerStats is the durability section of /statusz.
type ManagerStats struct {
	Recovery      RecoveryStats `json:"recovery"`
	Appends       uint64        `json:"journalAppends"`
	AppendErrors  uint64        `json:"journalAppendErrors"`
	Snapshots     uint64        `json:"snapshots"`
	FlushErrors   uint64        `json:"flushErrors"`
	LastAppendErr string        `json:"lastAppendError,omitempty"`
	LastFlushErr  string        `json:"lastFlushError,omitempty"`
}

// NewManager pairs a Store with the cache it persists. compactEvery
// ≤ 0 selects the default (256 appends between snapshots).
func NewManager(store *Store, cache *plancache.Cache, compactEvery int) *Manager {
	if compactEvery <= 0 {
		compactEvery = 256
	}
	return &Manager{store: store, cache: cache, compactEvery: compactEvery}
}

// Recover warms the cache with recovered entries (in replay order, so
// journal records supersede snapshot records per key) and retains the
// recovery stats. Returns how many entries the cache accepted. Call
// before Bind — warming after the hook is installed would re-journal
// every entry.
func (m *Manager) Recover(entries []*plancache.Entry, st RecoveryStats) int {
	m.recovery = st
	warmed := 0
	for _, e := range entries {
		if m.cache.Warm(e) {
			warmed++
		}
	}
	return warmed
}

// Bind installs the journal hook on the cache. Admissions after Bind
// are journaled; every compactEvery appends triggers a compacting
// snapshot of the full cache.
func (m *Manager) Bind() {
	m.cache.SetHooks(plancache.Hooks{OnAdmit: m.onAdmit})
}

func (m *Manager) onAdmit(e *plancache.Entry) {
	since, err := m.store.Append(e)
	m.appends.Add(1)
	if err != nil {
		m.appendErrors.Add(1)
		m.errMu.Lock()
		m.lastAppend = err
		m.errMu.Unlock()
		return
	}
	if since >= m.compactEvery {
		if err := m.Flush(); err != nil {
			// Already counted by Flush; nothing more to do — the
			// journal keeps absorbing appends until a flush succeeds.
			_ = err
		}
	}
}

// Flush snapshots the cache's current entry set and resets the
// journal. Safe to call concurrently with admissions; the snapshot is
// a consistent per-shard view sorted by fingerprint.
func (m *Manager) Flush() error {
	m.flushMu.Lock()
	defer m.flushMu.Unlock()
	err := m.store.Snapshot(m.cache.Dump())
	if err != nil {
		m.flushErrors.Add(1)
		m.errMu.Lock()
		m.lastFlush = err
		m.errMu.Unlock()
		return fmt.Errorf("persist: flush: %w", err)
	}
	m.snapshots.Add(1)
	return nil
}

// Close flushes a final snapshot and closes the store.
func (m *Manager) Close() error {
	ferr := m.Flush()
	cerr := m.store.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Recovery returns the stats recorded by Recover.
func (m *Manager) Recovery() RecoveryStats { return m.recovery }

// Stats snapshots the manager's counters.
func (m *Manager) Stats() ManagerStats {
	st := ManagerStats{
		Recovery:     m.recovery,
		Appends:      m.appends.Load(),
		AppendErrors: m.appendErrors.Load(),
		Snapshots:    m.snapshots.Load(),
		FlushErrors:  m.flushErrors.Load(),
	}
	m.errMu.Lock()
	if m.lastAppend != nil {
		st.LastAppendErr = m.lastAppend.Error()
	}
	if m.lastFlush != nil {
		st.LastFlushErr = m.lastFlush.Error()
	}
	m.errMu.Unlock()
	return st
}

// RegisterMetrics exports the durability counters into reg under the
// given prefix (say "ljq_persist"): recovered/discarded/torn recovery
// totals plus live append/snapshot/error counters.
func (m *Manager) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	rec := m.recovery
	reg.CounterFunc(prefix+"_recovered_records_total", "Plan-cache entries recovered at startup (snapshot + journal replay).",
		func() uint64 { return uint64(rec.Recovered) })
	reg.CounterFunc(prefix+"_discarded_records_total", "Corrupt records discarded during startup replay (bad checksum or undecodable).",
		func() uint64 { return uint64(rec.Discarded) })
	reg.CounterFunc(prefix+"_torn_bytes_total", "Bytes truncated off torn journal/snapshot tails during startup replay.",
		func() uint64 { return uint64(rec.TornBytes) })
	reg.CounterFunc(prefix+"_journal_appends_total", "Entries appended to the plan journal.", m.appends.Load)
	reg.CounterFunc(prefix+"_journal_append_errors_total", "Journal append failures (plan stayed cached in memory only).", m.appendErrors.Load)
	reg.CounterFunc(prefix+"_snapshots_total", "Compacting snapshots written.", m.snapshots.Load)
	reg.CounterFunc(prefix+"_flush_errors_total", "Snapshot flush failures.", m.flushErrors.Load)
}
