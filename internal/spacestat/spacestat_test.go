package spacestat

import (
	"math/rand"
	"strings"
	"testing"

	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/search"
	"joinopt/internal/workload"
)

func spaceFor(n int, seed int64) *search.Space {
	q := workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	return search.NewSpace(eval, g.Components()[0], rand.New(rand.NewSource(seed+1)))
}

func TestAnalyzeBasicInvariants(t *testing.T) {
	sp := spaceFor(15, 3)
	cfg := Config{Samples: 100, MinimaProbes: 20, NeighborTrials: 20, Descents: 10}
	r := Analyze(sp, cfg, rand.New(rand.NewSource(9)))
	if r.Relations != 16 {
		t.Fatalf("relations %d", r.Relations)
	}
	if r.BestKnown <= 0 {
		t.Fatalf("best known %g", r.BestKnown)
	}
	// All scaled values ≥ 1 (the anchor is the observed minimum).
	if r.RandomCosts[0] < 1-1e-9 || r.DescentEndCosts[0] < 1-1e-9 {
		t.Fatalf("scaled minima below 1: %v %v", r.RandomCosts, r.DescentEndCosts)
	}
	// Quantiles are sorted.
	for i := 1; i < 5; i++ {
		if r.RandomCosts[i] < r.RandomCosts[i-1] || r.DescentEndCosts[i] < r.DescentEndCosts[i-1] {
			t.Fatal("quantiles not monotone")
		}
	}
	if r.LocalMinimumFrac < 0 || r.LocalMinimumFrac > 1 || r.DeepMinimaFrac < 0 || r.DeepMinimaFrac > 1 {
		t.Fatal("fractions out of range")
	}
}

// TestDescentBeatsRandom: II descent end states must dominate random
// states — the premise of the whole paper.
func TestDescentBeatsRandom(t *testing.T) {
	sp := spaceFor(20, 5)
	cfg := Config{Samples: 150, MinimaProbes: 5, NeighborTrials: 10, Descents: 15}
	r := Analyze(sp, cfg, rand.New(rand.NewSource(1)))
	if r.DescentEndCosts[2] >= r.RandomCosts[2] {
		t.Fatalf("median descent end %g not below median random %g",
			r.DescentEndCosts[2], r.RandomCosts[2])
	}
	if r.MeanAcceptedMoves <= 0 {
		t.Fatal("descents accepted no moves")
	}
}

// TestRandomStatesAreRarelyMinimal: a uniformly random valid state of a
// 20-join query should almost never be a local minimum.
func TestRandomStatesAreRarelyMinimal(t *testing.T) {
	sp := spaceFor(20, 7)
	cfg := Config{Samples: 10, MinimaProbes: 30, NeighborTrials: 60, Descents: 2}
	r := Analyze(sp, cfg, rand.New(rand.NewSource(2)))
	if r.LocalMinimumFrac > 0.34 {
		t.Fatalf("implausibly many random states are local minima: %.2f", r.LocalMinimumFrac)
	}
}

func TestFormat(t *testing.T) {
	sp := spaceFor(12, 9)
	r := Analyze(sp, Config{Samples: 30, MinimaProbes: 5, NeighborTrials: 5, Descents: 3}, rand.New(rand.NewSource(3)))
	out := r.Format()
	for _, want := range []string{"random states", "local-minimum", "II descent", "deep minima"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Samples <= 0 || c.MinimaProbes <= 0 || c.NeighborTrials <= 0 || c.Descents <= 0 {
		t.Fatal("degenerate defaults")
	}
}

func TestQuantilesAndHelpers(t *testing.T) {
	q := quantiles5([]float64{5, 1, 3, 2, 4})
	if q[0] != 1 || q[2] != 3 || q[4] != 5 {
		t.Fatalf("quantiles %v", q)
	}
	if quantiles5(nil) != [5]float64{} {
		t.Fatal("empty quantiles")
	}
	if mean(nil) != 0 || minFloat(nil) != 0 {
		t.Fatal("empty helpers")
	}
}
