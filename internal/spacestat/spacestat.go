// Package spacestat characterizes the solution space of a query — the
// investigation the paper's §7 reports as ongoing ("The distribution of
// solution costs in the space of valid solutions is of interest and is
// being investigated") and the structure §6.4 speculates about ("the
// solution space has a large number of local minima, with a small but
// significant fraction of them being deep local minima").
//
// Three instruments:
//
//   - the cost distribution of uniformly sampled random valid states;
//   - an estimate of the local-minimum density (states with no
//     improving neighbor among k sampled moves);
//   - descent statistics: the depth and end-cost distribution of
//     iterative-improvement runs from random starts, which is what
//     "deep minima" means operationally.
package spacestat

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"joinopt/internal/plan"
	"joinopt/internal/search"
)

// Config tunes the probes.
type Config struct {
	// Samples is the number of random valid states priced for the cost
	// distribution.
	Samples int
	// MinimaProbes is the number of states tested for local minimality.
	MinimaProbes int
	// NeighborTrials is the number of sampled neighbors per minimality
	// test (a state with no improving neighbor among these counts as a
	// sampled local minimum).
	NeighborTrials int
	// Descents is the number of full II runs measured.
	Descents int
}

// DefaultConfig returns probe sizes suitable for N ≤ 100 queries.
func DefaultConfig() Config {
	return Config{Samples: 500, MinimaProbes: 60, NeighborTrials: 40, Descents: 30}
}

// Report summarizes one component's solution space.
type Report struct {
	// Relations is the component size.
	Relations int
	// RandomCosts holds the cost quantiles of random valid states,
	// scaled by BestKnown: [min, q25, median, q75, max].
	RandomCosts [5]float64
	// RandomMean is the mean scaled random-state cost.
	RandomMean float64
	// LocalMinimumFrac is the fraction of probed states that were
	// sampled local minima.
	LocalMinimumFrac float64
	// DescentEndCosts holds quantiles of II end costs from random
	// starts, scaled by BestKnown: [min, q25, median, q75, max].
	DescentEndCosts [5]float64
	// DeepMinimaFrac is the fraction of descents ending within 10% of
	// BestKnown — the "deep minima" of §6.4.
	DeepMinimaFrac float64
	// MeanAcceptedMoves is the mean number of improving moves per
	// descent.
	MeanAcceptedMoves float64
	// BestKnown is the scaling anchor: the cheapest cost observed by
	// any probe.
	BestKnown float64
}

// Analyze runs the probes over one search space. The evaluator should
// carry an unlimited (or very large) budget; probes are measurement,
// not optimization.
func Analyze(sp *search.Space, cfg Config, rng *rand.Rand) *Report {
	eval := sp.Evaluator()
	r := &Report{Relations: sp.Size()}

	// 1. Random-state cost distribution.
	randCosts := make([]float64, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		randCosts = append(randCosts, eval.Cost(sp.RandomState()))
	}

	// 2. Local-minimum density among random states.
	minima := 0
	for i := 0; i < cfg.MinimaProbes; i++ {
		s := sp.RandomState()
		c := eval.Cost(s)
		improving := false
		for k := 0; k < cfg.NeighborTrials; k++ {
			_, nc, ok := sp.Neighbor(s)
			if ok && nc < c {
				improving = true
				break
			}
		}
		if !improving {
			minima++
		}
	}
	if cfg.MinimaProbes > 0 {
		r.LocalMinimumFrac = float64(minima) / float64(cfg.MinimaProbes)
	}

	// 3. Descent statistics.
	endCosts := make([]float64, 0, cfg.Descents)
	accepted := 0
	iiCfg := search.DefaultIIConfig()
	for i := 0; i < cfg.Descents; i++ {
		start := sp.RandomState()
		startCost := eval.Cost(start)
		moves := 0
		_, endCost := search.ImproveRunObserved(sp, iiCfg, start, startCost, func(plan.Perm, float64) {
			moves++
		})
		endCosts = append(endCosts, endCost)
		accepted += moves
	}
	if cfg.Descents > 0 {
		r.MeanAcceptedMoves = float64(accepted) / float64(cfg.Descents)
	}

	// Anchor on the best cost seen anywhere.
	r.BestKnown = minFloat(append(append([]float64{}, randCosts...), endCosts...))
	if r.BestKnown <= 0 {
		r.BestKnown = 1
	}
	scale := func(xs []float64) {
		for i := range xs {
			xs[i] /= r.BestKnown
		}
	}
	scale(randCosts)
	scale(endCosts)
	r.RandomCosts = quantiles5(randCosts)
	r.RandomMean = mean(randCosts)
	r.DescentEndCosts = quantiles5(endCosts)
	deep := 0
	for _, c := range endCosts {
		if c <= 1.1 {
			deep++
		}
	}
	if len(endCosts) > 0 {
		r.DeepMinimaFrac = float64(deep) / float64(len(endCosts))
	}
	_ = rng
	return r
}

// Format renders the report.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "solution space over %d relations (costs scaled by best known %.4g)\n", r.Relations, r.BestKnown)
	fmt.Fprintf(&b, "  random states:   min %.3g  q25 %.3g  med %.3g  q75 %.3g  max %.3g  (mean %.3g)\n",
		r.RandomCosts[0], r.RandomCosts[1], r.RandomCosts[2], r.RandomCosts[3], r.RandomCosts[4], r.RandomMean)
	fmt.Fprintf(&b, "  sampled local-minimum fraction: %.2f\n", r.LocalMinimumFrac)
	fmt.Fprintf(&b, "  II descent ends: min %.3g  q25 %.3g  med %.3g  q75 %.3g  max %.3g\n",
		r.DescentEndCosts[0], r.DescentEndCosts[1], r.DescentEndCosts[2], r.DescentEndCosts[3], r.DescentEndCosts[4])
	fmt.Fprintf(&b, "  deep minima (within 10%% of best): %.2f of descents; mean accepted moves %.1f\n",
		r.DeepMinimaFrac, r.MeanAcceptedMoves)
	return b.String()
}

func quantiles5(xs []float64) [5]float64 {
	var out [5]float64
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	out[0], out[1], out[2], out[3], out[4] = s[0], at(0.25), at(0.5), at(0.75), s[len(s)-1]
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

func minFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
