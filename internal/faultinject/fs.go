package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"joinopt/internal/vfs"
)

// This file extends the fault harness from the optimizer's cost path
// to the durability layer's I/O path: FaultFS wraps a vfs.FS and
// injects failures — short writes, errors, and whole-process "crashes"
// — on a deterministic mutating-operation schedule, so the crash-loop
// tests in internal/persist can kill-and-recover the plan cache at
// every operation index and reproduce any failure byte-for-byte from
// its seed.
//
// Operation counting: every mutating call — Create, Append, Write,
// Sync, SyncDir, Rename, Remove — increments one global counter (reads
// are free: they cannot lose data). The schedule is expressed against
// that counter, so "crash at op 137" is a precise, replayable point in
// the store's write history.
//
// Crash semantics: at the scheduled op the operation is *torn* — a
// Write applies only a seeded prefix of its bytes, a Rename happens or
// not on a seeded coin flip, a Sync fails without syncing — and every
// subsequent operation fails with ErrCrashed, modeling the process
// dying mid-syscall. The underlying filesystem retains whatever had
// been applied; "rebooting" is opening a fresh store over the same
// inner FS (or calling Reset).

// Injected I/O errors. ErrCrashed marks the simulated power cut;
// ErrInjectedIO marks a recoverable injected failure.
var (
	ErrCrashed    = errors.New("faultinject: filesystem crashed (simulated power cut)")
	ErrInjectedIO = errors.New("faultinject: injected I/O error")
)

// FSConfig schedules filesystem faults. The zero value injects
// nothing. Ops are 1-based and count mutating calls only.
type FSConfig struct {
	// Seed drives the torn-write prefix lengths and rename coin flips.
	Seed int64
	// CrashAtOp tears the k-th mutating operation and fails every
	// later one with ErrCrashed (0 = never).
	CrashAtOp int64
	// ErrAtOp fails exactly the k-th mutating operation with
	// ErrInjectedIO, applying nothing (0 = never).
	ErrAtOp int64
	// ErrEveryOp fails every k-th mutating operation (0 = never).
	ErrEveryOp int64
	// ShortWriteAtOp makes the k-th operation, if it is a Write, apply
	// only a seeded prefix and return ErrInjectedIO (0 = never).
	ShortWriteAtOp int64
}

// FaultFS wraps an inner vfs.FS with the fault schedule. Safe for
// concurrent use; the op counter is global across files.
type FaultFS struct {
	inner vfs.FS

	mu      sync.Mutex
	cfg     FSConfig
	rng     *rand.Rand
	n       int64
	crashed bool
}

// NewFaultFS wraps inner with the fault schedule.
func NewFaultFS(inner vfs.FS, cfg FSConfig) *FaultFS {
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Reset models a reboot: clears the crashed state, rearms the
// schedule with cfg, and restarts the op counter and seeded stream.
func (f *FaultFS) Reset(cfg FSConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg
	f.rng = rand.New(rand.NewSource(cfg.Seed))
	f.n = 0
	f.crashed = false
}

// Ops returns how many mutating operations have been observed.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Crashed reports whether the simulated power cut has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// verdict is the fault decision for one mutating op.
type verdict int

const (
	vOK verdict = iota
	vErr
	vShort
	vCrash // the crash op itself: a torn partial effect applies
	vDead  // after the crash: nothing touches the disk
)

// step advances the op counter and decides this op's fate. The seeded
// draw for torn fractions happens here, under the lock, so the stream
// is a pure function of the schedule.
func (f *FaultFS) step() (verdict, float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return vDead, 0
	}
	f.n++
	k := f.n
	if f.cfg.CrashAtOp > 0 && k == f.cfg.CrashAtOp {
		f.crashed = true
		return vCrash, f.rng.Float64()
	}
	if (f.cfg.ErrAtOp > 0 && k == f.cfg.ErrAtOp) || (f.cfg.ErrEveryOp > 0 && k%f.cfg.ErrEveryOp == 0) {
		return vErr, 0
	}
	if f.cfg.ShortWriteAtOp > 0 && k == f.cfg.ShortWriteAtOp {
		return vShort, f.rng.Float64()
	}
	return vOK, 0
}

// faultFile wraps a file handle; Write and Sync are mutating ops.
type faultFile struct {
	fs    *FaultFS
	inner vfs.File
}

func (w *faultFile) Write(p []byte) (int, error) {
	switch v, frac := w.fs.step(); v {
	case vErr:
		return 0, fmt.Errorf("write: %w", ErrInjectedIO)
	case vDead:
		return 0, fmt.Errorf("write: %w", ErrCrashed)
	case vShort, vCrash:
		// Torn write: a seeded prefix reaches the file, the rest is
		// lost mid-syscall.
		n := int(frac * float64(len(p)+1))
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if _, err := w.inner.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		if v == vCrash {
			return n, fmt.Errorf("write: %w", ErrCrashed)
		}
		return n, fmt.Errorf("write: %w", ErrInjectedIO)
	default:
		return w.inner.Write(p)
	}
}

func (w *faultFile) Sync() error {
	switch v, _ := w.fs.step(); v {
	case vErr, vShort:
		return fmt.Errorf("sync: %w", ErrInjectedIO)
	case vCrash, vDead:
		return fmt.Errorf("sync: %w", ErrCrashed)
	default:
		return w.inner.Sync()
	}
}

// Close is not a mutating op (it neither persists nor loses data in
// this model); it always passes through.
func (w *faultFile) Close() error { return w.inner.Close() }

// Create implements vfs.FS.
func (f *FaultFS) Create(name string) (vfs.File, error) {
	switch v, frac := f.step(); v {
	case vErr:
		return nil, fmt.Errorf("create %s: %w", name, ErrInjectedIO)
	case vDead:
		return nil, fmt.Errorf("create %s: %w", name, ErrCrashed)
	case vCrash:
		// Coin flip: the file may or may not have been created
		// (truncated) before the power cut.
		if frac < 0.5 {
			if g, err := f.inner.Create(name); err == nil {
				_ = g.Close()
			}
		}
		return nil, fmt.Errorf("create %s: %w", name, ErrCrashed)
	default:
		g, err := f.inner.Create(name)
		if err != nil {
			return nil, err
		}
		return &faultFile{fs: f, inner: g}, nil
	}
}

// Append implements vfs.FS.
func (f *FaultFS) Append(name string) (vfs.File, error) {
	switch v, _ := f.step(); v {
	case vErr:
		return nil, fmt.Errorf("append %s: %w", name, ErrInjectedIO)
	case vCrash, vDead:
		return nil, fmt.Errorf("append %s: %w", name, ErrCrashed)
	default:
		g, err := f.inner.Append(name)
		if err != nil {
			return nil, err
		}
		return &faultFile{fs: f, inner: g}, nil
	}
}

// ReadFile implements vfs.FS (reads are never faulted: recovery runs
// after the reboot, on a healthy filesystem).
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Rename implements vfs.FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	switch v, frac := f.step(); v {
	case vErr:
		return fmt.Errorf("rename %s: %w", oldname, ErrInjectedIO)
	case vDead:
		return fmt.Errorf("rename %s: %w", oldname, ErrCrashed)
	case vCrash:
		// Atomic rename either happened or did not; seeded coin.
		if frac < 0.5 {
			_ = f.inner.Rename(oldname, newname)
		}
		return fmt.Errorf("rename %s: %w", oldname, ErrCrashed)
	default:
		return f.inner.Rename(oldname, newname)
	}
}

// Remove implements vfs.FS.
func (f *FaultFS) Remove(name string) error {
	switch v, frac := f.step(); v {
	case vErr:
		return fmt.Errorf("remove %s: %w", name, ErrInjectedIO)
	case vDead:
		return fmt.Errorf("remove %s: %w", name, ErrCrashed)
	case vCrash:
		if frac < 0.5 {
			_ = f.inner.Remove(name)
		}
		return fmt.Errorf("remove %s: %w", name, ErrCrashed)
	default:
		return f.inner.Remove(name)
	}
}

// MkdirAll implements vfs.FS (not counted: directory creation happens
// once at open, before any history exists worth tearing).
func (f *FaultFS) MkdirAll(dir string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return fmt.Errorf("mkdir %s: %w", dir, ErrCrashed)
	}
	return f.inner.MkdirAll(dir)
}

// SyncDir implements vfs.FS.
func (f *FaultFS) SyncDir(dir string) error {
	switch v, _ := f.step(); v {
	case vErr, vShort:
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjectedIO)
	case vCrash, vDead:
		return fmt.Errorf("syncdir %s: %w", dir, ErrCrashed)
	default:
		return f.inner.SyncDir(dir)
	}
}
