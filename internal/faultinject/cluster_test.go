package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func peerHandler(tag string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "%s:%s", tag, r.URL.Path)
	})
}

func get(t *testing.T, rt http.RoundTripper, host, path string) (*http.Response, string, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+host+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.RoundTrip(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	return resp, string(body), rerr
}

func TestClusterTransportKillRestartTorn(t *testing.T) {
	restarted := 0
	ct := NewClusterTransport(
		map[string]http.Handler{
			"peer0": peerHandler("a"),
			"peer1": peerHandler("b"),
		},
		func(peer string) http.Handler {
			restarted++
			return peerHandler("reborn")
		},
		PeerAction{AtOp: 1, Kind: KillPeer, Peer: "peer1"},
		PeerAction{AtOp: 3, Kind: RestartPeer, Peer: "peer1"},
		PeerAction{AtOp: 4, Kind: KillMidResponse, Peer: "peer0", AfterBytes: 3},
	)

	// op 0: normal dispatch.
	if _, body, err := get(t, ct, "peer0", "/x"); err != nil || body != "a:/x" {
		t.Fatalf("op 0: body=%q err=%v", body, err)
	}
	// op 1: the kill fires first, then the dispatch finds peer1 dead.
	if _, _, err := get(t, ct, "peer1", "/x"); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("op 1: err=%v, want ErrPeerDown", err)
	}
	// op 2: still dead.
	if _, _, err := get(t, ct, "peer1", "/x"); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("op 2: err=%v, want ErrPeerDown", err)
	}
	// op 3: restart fires; the fresh handler serves.
	if _, body, err := get(t, ct, "peer1", "/y"); err != nil || body != "reborn:/y" {
		t.Fatalf("op 3: body=%q err=%v", body, err)
	}
	if restarted != 1 {
		t.Fatalf("restart hook ran %d times", restarted)
	}
	// op 4: torn response — three bytes, then a read error, then dead.
	resp, body, rerr := get(t, ct, "peer0", "/x")
	if resp == nil || rerr == nil || !errors.Is(rerr, ErrPeerDown) {
		t.Fatalf("op 4: resp=%v read err=%v, want torn body read failure", resp, rerr)
	}
	if body != "a:/" {
		t.Fatalf("op 4: delivered %q before the cut, want %q", body, "a:/")
	}
	// op 5: the torn response killed peer0.
	if _, _, err := get(t, ct, "peer0", "/x"); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("op 5: err=%v, want ErrPeerDown", err)
	}

	want := strings.Join([]string{
		"op=000 GET peer0/x -> 200",
		"op=001 !kill peer1",
		"op=001 GET peer1/x -> down",
		"op=002 GET peer1/x -> down",
		"op=003 !restart peer1",
		"op=003 !ready peer1",
		"op=003 GET peer1/y -> 200",
		"op=004 !arm-torn peer0 after=3",
		"op=004 GET peer0/x -> torn@3",
		"op=005 GET peer0/x -> down",
	}, "\n")
	if got := ct.Trajectory(); got != want {
		t.Fatalf("trajectory mismatch:\n--- got\n%s\n--- want\n%s", got, want)
	}
	if ct.Ops() != 6 {
		t.Fatalf("ops = %d, want 6", ct.Ops())
	}
}

// TestClusterTransportRestartHookRecursion: a restart hook may issue
// requests through the transport (the warm-start fetch); the recursive
// ops claim their own indices and the trajectory stays coherent.
func TestClusterTransportRestartHookRecursion(t *testing.T) {
	var ct *ClusterTransport
	ct = NewClusterTransport(
		map[string]http.Handler{
			"peer0": peerHandler("donor"),
			"peer1": peerHandler("b"),
		},
		func(peer string) http.Handler {
			// Recurse: fetch state from the donor mid-restart.
			if _, body, err := get(t, ct, "peer0", "/snapshot"); err != nil || body != "donor:/snapshot" {
				t.Errorf("recursive fetch: body=%q err=%v", body, err)
			}
			return peerHandler("warmed")
		},
		PeerAction{AtOp: 1, Kind: KillPeer, Peer: "peer1"},
		PeerAction{AtOp: 2, Kind: RestartPeer, Peer: "peer1"},
	)

	if _, _, err := get(t, ct, "peer0", "/x"); err != nil { // op 0
		t.Fatal(err)
	}
	if _, _, err := get(t, ct, "peer1", "/x"); !errors.Is(err, ErrPeerDown) { // op 1
		t.Fatalf("err=%v", err)
	}
	// op 2 triggers the restart; the hook's fetch is op 3; the
	// triggering request then dispatches against the warmed handler.
	if _, body, err := get(t, ct, "peer1", "/z"); err != nil || body != "warmed:/z" {
		t.Fatalf("body=%q err=%v", body, err)
	}

	want := strings.Join([]string{
		"op=000 GET peer0/x -> 200",
		"op=001 !kill peer1",
		"op=001 GET peer1/x -> down",
		"op=002 !restart peer1",
		"op=003 GET peer0/snapshot -> 200",
		"op=002 !ready peer1",
		"op=002 GET peer1/z -> 200",
	}, "\n")
	if got := ct.Trajectory(); got != want {
		t.Fatalf("trajectory mismatch:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
