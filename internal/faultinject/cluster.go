package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
)

// ClusterTransport simulates a multi-peer ljqd deployment inside one
// process: an http.RoundTripper that dispatches requests to in-process
// handlers keyed by host name, while a deterministic script kills and
// restarts peers at global operation indices — including tearing a
// response mid-body, the "donor died mid-snapshot-stream" case.
//
// Every RoundTrip claims the next operation index; scripted actions
// with AtOp ≤ that index fire first, in script order. With a
// sequential caller the op numbering — and therefore the entire
// kill/restart/traffic interleaving — is exactly reproducible, which
// is what lets the chaos test demand byte-identical trajectory logs
// from same-seed runs. Restart handlers are built by a hook invoked
// WITHOUT the transport lock, so a restarting peer may recurse through
// this same transport (warm-start fetching /snapshot from a donor);
// the recursive requests consume op indices like any others.
//
// The trajectory log records every event in op order:
//
//	op=004 POST peer0/optimize -> 200
//	op=007 !kill peer1
//	op=007 POST peer1/optimize -> down
//	op=012 !restart peer2
//	op=013 GET peer0/snapshot -> torn@128
//	op=014 GET peer1/snapshot -> 200
//	op=012 !ready peer2
//
// (The !ready line carries the index of the op that triggered the
// restart; recursive warm-start fetches log their own later indices in
// between.)

// PeerActionKind classifies one scripted cluster event.
type PeerActionKind int

const (
	// KillPeer marks the peer dead: subsequent requests to it fail
	// with ErrPeerDown until a RestartPeer action revives it.
	KillPeer PeerActionKind = iota
	// RestartPeer builds a fresh handler for the peer via the restart
	// hook and marks it alive.
	RestartPeer
	// KillMidResponse arms a torn response: the peer's NEXT request is
	// served, but its body is cut after AfterBytes bytes and the read
	// fails — and the peer is dead from that moment on.
	KillMidResponse
	// AddPeer fires the membership hook with a join: the hook builds
	// the new node, registers its handler (Register) and applies the
	// grown epoch across the cluster. Arc pushes the application
	// triggers recurse through this transport and claim op indices.
	AddPeer
	// RemovePeer fires the membership hook with a leave: the departing
	// node hands its arcs off and every survivor applies the shrunken
	// epoch.
	RemovePeer
	// MoveArc fires the membership hook with a weight change for Peer
	// (Weight is the new weight): raising a member's weight pulls arcs
	// onto it, which is the minimal "an arc moved without anyone
	// joining or leaving" event.
	MoveArc
)

// String names the action kind.
func (k PeerActionKind) String() string {
	switch k {
	case KillPeer:
		return "kill"
	case RestartPeer:
		return "restart"
	case KillMidResponse:
		return "kill-mid-response"
	case AddPeer:
		return "add-peer"
	case RemovePeer:
		return "remove-peer"
	case MoveArc:
		return "move-arc"
	}
	return fmt.Sprintf("PeerActionKind(%d)", int(k))
}

// PeerAction is one scripted cluster event.
type PeerAction struct {
	// AtOp is the global operation index at which the action fires,
	// before that operation dispatches.
	AtOp int
	Kind PeerActionKind
	// Peer is the target host name.
	Peer string
	// AfterBytes, for KillMidResponse, is how many body bytes the torn
	// response delivers before failing.
	AfterBytes int
	// Weight, for AddPeer and MoveArc, is the member's (new) ring
	// weight; the membership hook receives it verbatim.
	Weight int
}

// MembershipHook receives scripted AddPeer/RemovePeer/MoveArc actions.
// It runs WITHOUT the transport lock — like a restart hook it may
// recurse through the transport (epoch application pushes arcs), and
// those recursive requests claim op indices like any others.
type MembershipHook func(a PeerAction)

// ErrPeerDown is the connection failure a dead peer produces.
var ErrPeerDown = errors.New("faultinject: peer is down")

// ClusterTransport implements http.RoundTripper over in-process peers.
type ClusterTransport struct {
	restart    func(peer string) http.Handler
	membership MembershipHook

	mu         sync.Mutex
	handlers   map[string]http.Handler
	alive      map[string]bool
	midKill    map[string]int // armed torn responses: peer -> AfterBytes
	script     []PeerAction
	nextAction int
	ops        int
	log        []string
}

// NewClusterTransport builds a transport over the given peers (all
// initially alive). restart builds a replacement handler when a
// RestartPeer action fires; it runs without the transport lock and may
// issue requests through this transport (warm-start recursion). The
// script is sorted by AtOp (stably, so same-index actions keep their
// given order).
func NewClusterTransport(handlers map[string]http.Handler, restart func(peer string) http.Handler, script ...PeerAction) *ClusterTransport {
	t := &ClusterTransport{
		restart:  restart,
		handlers: make(map[string]http.Handler, len(handlers)),
		alive:    make(map[string]bool, len(handlers)),
		midKill:  make(map[string]int),
		script:   append([]PeerAction(nil), script...),
	}
	//ljqlint:allow detrand -- keys are copied into maps, not ordered output; handler identity is per-key
	for host, h := range handlers {
		t.handlers[host] = h
		t.alive[host] = true
	}
	sort.SliceStable(t.script, func(i, j int) bool { return t.script[i].AtOp < t.script[j].AtOp })
	return t
}

// SetMembershipHook installs the receiver for scripted membership
// actions. Must be called before traffic starts.
func (t *ClusterTransport) SetMembershipHook(hook MembershipHook) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.membership = hook
}

// Register adds (or replaces) a peer's handler and marks it alive: how
// an AddPeer membership hook plugs the joining node into the cluster.
func (t *ClusterTransport) Register(peer string, h http.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[peer] = h
	t.alive[peer] = true
	delete(t.midKill, peer)
	t.logf("op=%03d !register %s", t.ops, peer)
}

// Ops returns how many operations have been dispatched.
func (t *ClusterTransport) Ops() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

// Alive reports whether the peer currently accepts requests.
func (t *ClusterTransport) Alive(peer string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.alive[peer]
}

// Kill marks peer dead immediately: the imperative counterpart of a
// scripted KillPeer action, for tests that drive cluster state
// directly instead of by op index.
func (t *ClusterTransport) Kill(peer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.alive[peer] = false
	t.logf("op=%03d !kill %s", t.ops, peer)
}

// Revive marks peer alive again, installing h as its handler (nil
// keeps the peer's previous handler: a revival without a restart).
func (t *ClusterTransport) Revive(peer string, h http.Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h != nil {
		t.handlers[peer] = h
	}
	t.alive[peer] = true
	delete(t.midKill, peer)
	t.logf("op=%03d !revive %s", t.ops, peer)
}

// Trajectory returns the event log as one newline-joined string: the
// byte-identical-replay artifact chaos tests compare across runs.
func (t *ClusterTransport) Trajectory() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return strings.Join(t.log, "\n")
}

func (t *ClusterTransport) logf(format string, args ...any) {
	t.log = append(t.log, fmt.Sprintf(format, args...))
}

// RoundTrip implements http.RoundTripper.
func (t *ClusterTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	op := t.ops
	t.ops++
	var due []PeerAction
	for t.nextAction < len(t.script) && t.script[t.nextAction].AtOp <= op {
		due = append(due, t.script[t.nextAction])
		t.nextAction++
	}
	t.mu.Unlock()
	for _, a := range due {
		t.apply(op, a)
	}
	return t.dispatch(op, req)
}

// apply fires one scripted action. Restart hooks run without the lock
// and may recurse into RoundTrip.
func (t *ClusterTransport) apply(op int, a PeerAction) {
	switch a.Kind {
	case KillPeer:
		t.mu.Lock()
		t.alive[a.Peer] = false
		t.logf("op=%03d !kill %s", op, a.Peer)
		t.mu.Unlock()
	case KillMidResponse:
		t.mu.Lock()
		t.midKill[a.Peer] = a.AfterBytes
		t.logf("op=%03d !arm-torn %s after=%d", op, a.Peer, a.AfterBytes)
		t.mu.Unlock()
	case RestartPeer:
		t.mu.Lock()
		t.logf("op=%03d !restart %s", op, a.Peer)
		hook := t.restart
		t.mu.Unlock()
		if hook == nil {
			return
		}
		h := hook(a.Peer) // may recurse through this transport
		t.mu.Lock()
		t.handlers[a.Peer] = h
		t.alive[a.Peer] = true
		delete(t.midKill, a.Peer)
		t.logf("op=%03d !ready %s", op, a.Peer)
		t.mu.Unlock()
	case AddPeer, RemovePeer, MoveArc:
		t.mu.Lock()
		t.logf("op=%03d !%s %s weight=%d", op, a.Kind, a.Peer, a.Weight)
		hook := t.membership
		t.mu.Unlock()
		if hook == nil {
			return
		}
		hook(a) // may recurse through this transport (arc pushes)
		t.mu.Lock()
		t.logf("op=%03d !%s-applied %s", op, a.Kind, a.Peer)
		t.mu.Unlock()
	}
}

// dispatch serves the request against the target peer's in-process
// handler (or fails it, per the peer's state).
func (t *ClusterTransport) dispatch(op int, req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	label := fmt.Sprintf("%s %s%s", req.Method, host, req.URL.Path)

	t.mu.Lock()
	h, known := t.handlers[host]
	alive := t.alive[host]
	tornAfter, torn := t.midKill[host]
	if torn {
		// The torn response is the kill: serve this one request with a
		// cut body, then the peer is gone.
		delete(t.midKill, host)
		t.alive[host] = false
	}
	t.mu.Unlock()

	switch {
	case !known:
		t.mu.Lock()
		t.logf("op=%03d %s -> unknown", op, label)
		t.mu.Unlock()
		drainBody(req)
		return nil, fmt.Errorf("faultinject: unknown peer %q", host)
	case !alive:
		t.mu.Lock()
		t.logf("op=%03d %s -> down", op, label)
		t.mu.Unlock()
		drainBody(req)
		return nil, fmt.Errorf("%w: %s", ErrPeerDown, host)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req

	if torn {
		full := rec.Body.Bytes()
		cut := tornAfter
		if cut > len(full) {
			cut = len(full)
		}
		resp.Body = io.NopCloser(io.MultiReader(
			strings.NewReader(string(full[:cut])),
			&errReader{err: fmt.Errorf("%w: %s died mid-response", ErrPeerDown, host)},
		))
		t.mu.Lock()
		t.logf("op=%03d %s -> torn@%d", op, label, cut)
		t.mu.Unlock()
		return resp, nil
	}

	t.mu.Lock()
	t.logf("op=%03d %s -> %d", op, label, resp.StatusCode)
	t.mu.Unlock()
	return resp, nil
}

// errReader fails every read: the tail of a torn response body.
type errReader struct{ err error }

func (r *errReader) Read([]byte) (int, error) { return 0, r.err }
