package faultinject

import (
	"bytes"
	"errors"
	"testing"

	"joinopt/internal/vfs"
)

func TestFaultFSPassThroughCountsOps(t *testing.T) {
	mem := vfs.NewMem()
	ffs := NewFaultFS(mem, FSConfig{})
	f, err := ffs.Create("a") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil { // op 2
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 3
		t.Fatal(err)
	}
	_ = f.Close()                                // not an op
	if err := ffs.Rename("a", "b"); err != nil { // op 4
		t.Fatal(err)
	}
	if _, err := ffs.ReadFile("b"); err != nil { // reads are free
		t.Fatal(err)
	}
	if got := ffs.Ops(); got != 4 {
		t.Fatalf("Ops = %d, want 4 (Close and reads are not mutating)", got)
	}
}

func TestFaultFSErrAtOpFiresExactlyOnce(t *testing.T) {
	mem := vfs.NewMem()
	ffs := NewFaultFS(mem, FSConfig{ErrAtOp: 3})
	f, _ := ffs.Create("a")       // op 1
	_, _ = f.Write([]byte("one")) // op 2
	_, err := f.Write([]byte("TWO"))
	if !errors.Is(err, ErrInjectedIO) { // op 3: injected
		t.Fatalf("op 3 err = %v, want ErrInjectedIO", err)
	}
	if _, err := f.Write([]byte("three")); err != nil { // op 4: healthy again
		t.Fatal(err)
	}
	data, _ := mem.ReadFile("a")
	if string(data) != "onethree" {
		t.Fatalf("file = %q: the errored write must apply nothing", data)
	}
	if ffs.Crashed() {
		t.Fatal("ErrAtOp must not mark the filesystem crashed")
	}
}

func TestFaultFSCrashTearsThenFailsEverything(t *testing.T) {
	mem := vfs.NewMem()
	ffs := NewFaultFS(mem, FSConfig{Seed: 11, CrashAtOp: 2})
	f, _ := ffs.Create("a") // op 1
	payload := []byte("0123456789")
	n, err := f.Write(payload) // op 2: torn
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash op err = %v, want ErrCrashed", err)
	}
	if n < 0 || n > len(payload) {
		t.Fatalf("torn write reported %d bytes", n)
	}
	data, _ := mem.ReadFile("a")
	if !bytes.Equal(data, payload[:n]) {
		t.Fatalf("surviving bytes %q are not the reported prefix %q", data, payload[:n])
	}
	// Every later mutating op fails; the dead filesystem stays dead.
	if _, err := ffs.Create("b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Create err = %v, want ErrCrashed", err)
	}
	if err := ffs.Rename("a", "c"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Rename err = %v, want ErrCrashed", err)
	}
	if err := ffs.MkdirAll("d"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash MkdirAll err = %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() = false after the power cut")
	}
	// Reads still work: recovery inspects the wreckage.
	if _, err := mem.ReadFile("a"); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSCrashIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []byte {
		mem := vfs.NewMem()
		ffs := NewFaultFS(mem, FSConfig{Seed: seed, CrashAtOp: 2})
		f, _ := ffs.Create("a")
		_, _ = f.Write([]byte("abcdefghijklmnop"))
		data, _ := mem.ReadFile("a")
		return data
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed left different wreckage: %q vs %q", a, b)
	}
	// (Different seeds usually differ, but equality is legal; only
	// same-seed reproducibility is contractual.)
}

func TestFaultFSResetReboots(t *testing.T) {
	mem := vfs.NewMem()
	ffs := NewFaultFS(mem, FSConfig{CrashAtOp: 1})
	if _, err := ffs.Create("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	ffs.Reset(FSConfig{})
	if ffs.Crashed() || ffs.Ops() != 0 {
		t.Fatal("Reset did not clear crash state / op counter")
	}
	f, err := ffs.Create("a")
	if err != nil {
		t.Fatalf("post-reboot Create: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSErrEveryOp(t *testing.T) {
	mem := vfs.NewMem()
	ffs := NewFaultFS(mem, FSConfig{ErrEveryOp: 2})
	f, err := ffs.Create("a") // op 1: ok
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjectedIO) { // op 2
		t.Fatalf("op 2 err = %v, want ErrInjectedIO", err)
	}
	if _, err := f.Write([]byte("y")); err != nil { // op 3: ok
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedIO) { // op 4
		t.Fatalf("op 4 err = %v, want ErrInjectedIO", err)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	mem := vfs.NewMem()
	ffs := NewFaultFS(mem, FSConfig{Seed: 3, ShortWriteAtOp: 2})
	f, _ := ffs.Create("a")
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("short write err = %v, want ErrInjectedIO", err)
	}
	data, _ := mem.ReadFile("a")
	if len(data) >= 10 {
		t.Fatalf("short write applied all %d bytes", len(data))
	}
	// Not a crash: the next op is healthy.
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
}
