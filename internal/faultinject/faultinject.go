// Package faultinject provides a deterministic, seeded fault plan for
// exercising the optimizer's degradation paths: cost-evaluation panics,
// non-finite (NaN/±Inf) cost corruption, and budget starvation.
//
// The injector implements plan.FaultInjector structurally (the Eval
// method) and is installed on an evaluator with SetFaultInjector; every
// full cost evaluation then consults the fault plan. Faults fire on a
// deterministic evaluation-count schedule (the *At / *Every fields) or
// probabilistically from a seeded stream (the *Prob fields), so a
// failing test reproduces byte-for-byte from its seed.
//
// This is test machinery: the production optimizer path never installs
// an injector and pays a single nil check per evaluation.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Kind classifies an injected fault.
type Kind int

const (
	// None: no fault.
	None Kind = iota
	// PanicEval: the cost evaluation panics with a *Fault value.
	PanicEval
	// NaNCost: the evaluation reports NaN.
	NaNCost
	// PosInfCost: the evaluation reports +Inf.
	PosInfCost
	// NegInfCost: the evaluation reports -Inf.
	NegInfCost
	// Starve: the bound budget is cancelled (simulating a run whose
	// budget is yanked mid-flight).
	Starve
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case PanicEval:
		return "panic"
	case NaNCost:
		return "nan-cost"
	case PosInfCost:
		return "+inf-cost"
	case NegInfCost:
		return "-inf-cost"
	case Starve:
		return "starve"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is the value an injected panic carries, so recover sites can
// distinguish injected crashes from real bugs.
type Fault struct {
	Kind Kind
	// Eval is the 1-based evaluation count at which the fault fired.
	Eval int64
}

// Error implements error so a recovered *Fault wraps cleanly.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected %s at evaluation %d", f.Kind, f.Eval)
}

// Config is the fault plan. The zero value injects nothing. Schedule
// fields count full cost evaluations (1-based); probability fields draw
// from a stream seeded by Seed, so runs are reproducible.
type Config struct {
	// Seed seeds the probabilistic fault stream (0 is a valid seed).
	Seed int64

	// PanicAt panics on exactly the k-th evaluation (0 = never).
	PanicAt int64
	// PanicEvery panics on every k-th evaluation (0 = never).
	PanicEvery int64
	// PanicProb panics with this per-evaluation probability.
	PanicProb float64

	// NaNAt reports NaN on exactly the k-th evaluation.
	NaNAt int64
	// NaNEvery reports NaN on every k-th evaluation.
	NaNEvery int64
	// NaNProb reports NaN with this per-evaluation probability.
	NaNProb float64

	// InfAt reports +Inf on exactly the k-th evaluation.
	InfAt int64
	// InfEvery alternates +Inf/-Inf on every k-th evaluation.
	InfEvery int64

	// StarveAt cancels the bound budget at the k-th evaluation
	// (0 = never). Requires BindBudget.
	StarveAt int64
}

// Canceller is the slice of *cost.Budget the injector needs for
// starvation faults (an interface so faultinject depends on nothing).
type Canceller interface{ Cancel() }

// Injector consults a Config on every evaluation. It is safe for
// concurrent use by multiple evaluators (portfolio members may share
// one injector; the evaluation counter is global across them).
type Injector struct {
	cfg    Config
	n      atomic.Int64
	budget atomic.Value // Canceller

	mu  sync.Mutex
	rng *rand.Rand

	injected [6]atomic.Int64 // per-Kind fire counts
}

// New builds an injector for the fault plan.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// BindBudget attaches the budget that Starve faults cancel. Accepts any
// Canceller (in practice *cost.Budget).
func (in *Injector) BindBudget(c Canceller) *Injector {
	in.budget.Store(c)
	return in
}

// Evals returns how many evaluations the injector has observed.
func (in *Injector) Evals() int64 { return in.n.Load() }

// Fired returns how many times faults of the given kind fired.
func (in *Injector) Fired(k Kind) int64 {
	if k < 0 || int(k) >= len(in.injected) {
		return 0
	}
	return in.injected[k].Load()
}

// Eval implements plan.FaultInjector: it advances the evaluation
// counter, fires any scheduled fault, and returns the (possibly
// corrupted) cost. PanicEval faults panic with a *Fault.
func (in *Injector) Eval(cost float64) float64 {
	k := in.n.Add(1)

	if in.cfg.StarveAt > 0 && k == in.cfg.StarveAt {
		if c, ok := in.budget.Load().(Canceller); ok && c != nil {
			in.injected[Starve].Add(1)
			c.Cancel()
		}
	}

	if hits(k, in.cfg.PanicAt, in.cfg.PanicEvery) || in.prob(in.cfg.PanicProb) {
		in.injected[PanicEval].Add(1)
		panic(&Fault{Kind: PanicEval, Eval: k})
	}
	if hits(k, in.cfg.NaNAt, in.cfg.NaNEvery) || in.prob(in.cfg.NaNProb) {
		in.injected[NaNCost].Add(1)
		return math.NaN()
	}
	if hits(k, in.cfg.InfAt, 0) {
		in.injected[PosInfCost].Add(1)
		return math.Inf(1)
	}
	if in.cfg.InfEvery > 0 && k%in.cfg.InfEvery == 0 {
		// Alternate signs so both ±Inf paths are exercised.
		if (k/in.cfg.InfEvery)%2 == 0 {
			in.injected[NegInfCost].Add(1)
			return math.Inf(-1)
		}
		in.injected[PosInfCost].Add(1)
		return math.Inf(1)
	}
	return cost
}

// hits reports whether the k-th evaluation matches an at/every schedule.
func hits(k, at, every int64) bool {
	if at > 0 && k == at {
		return true
	}
	return every > 0 && k%every == 0
}

// prob draws from the seeded stream; p ≤ 0 never fires and performs no
// draw (so schedule-only plans stay deterministic across counters).
func (in *Injector) prob(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}
