package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// FlakyTransport is a deterministic http.RoundTripper for exercising
// the resilient client (internal/client): each request consumes the
// next Outcome from a script — drop the connection, answer 503 with a
// Retry-After, hang until the request context expires, or pass through
// to the real transport. When the script is exhausted, requests pass
// through. The consumed sequence is recorded, so a test can assert the
// exact retry/hedge trajectory the client took.
//
// Determinism note: with a sequential caller the outcome sequence is
// exactly the script. Concurrent callers (hedged requests) consume
// outcomes in scheduler order; tests that assert exact sequences keep
// one request in flight at a time or script symmetric outcomes.

// OutcomeKind classifies one scripted transport behavior.
type OutcomeKind int

const (
	// Pass forwards the request to the inner transport.
	Pass OutcomeKind = iota
	// Drop fails the round trip with a connection error.
	Drop
	// Unavailable answers 503 (with Retry-After when RetryAfter > 0)
	// without touching the inner transport.
	Unavailable
	// Hang blocks until the request's context is done, then returns
	// its error (exercises per-attempt timeouts).
	Hang
	// InternalError answers 500 without touching the inner transport.
	InternalError
)

// String names the outcome kind.
func (k OutcomeKind) String() string {
	switch k {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Unavailable:
		return "503"
	case Hang:
		return "hang"
	case InternalError:
		return "500"
	}
	return fmt.Sprintf("OutcomeKind(%d)", int(k))
}

// Outcome is one scripted transport behavior.
type Outcome struct {
	Kind OutcomeKind
	// RetryAfter, for Unavailable, is the Retry-After header value in
	// seconds (0 omits the header).
	RetryAfter int
}

// ErrDropped is the injected connection failure. What matters to the
// client under test is only that RoundTrip returned an error — all
// transport errors are retryable.
var ErrDropped = errors.New("faultinject: injected connection reset")

// FlakyTransport implements http.RoundTripper per the script above.
type FlakyTransport struct {
	// Inner handles Pass outcomes (default http.DefaultTransport).
	Inner http.RoundTripper

	mu     sync.Mutex
	script []Outcome
	next   int
	log    []OutcomeKind
}

// NewFlakyTransport builds a transport that plays script in order.
func NewFlakyTransport(inner http.RoundTripper, script ...Outcome) *FlakyTransport {
	return &FlakyTransport{Inner: inner, script: script}
}

// Extend appends more outcomes to the script (test phases).
func (t *FlakyTransport) Extend(script ...Outcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.script = append(t.script, script...)
}

// Log returns the outcome kinds consumed so far, in order.
func (t *FlakyTransport) Log() []OutcomeKind {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]OutcomeKind, len(t.log))
	copy(out, t.log)
	return out
}

// Requests returns how many round trips have been attempted.
func (t *FlakyTransport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.log)
}

func (t *FlakyTransport) take() Outcome {
	t.mu.Lock()
	defer t.mu.Unlock()
	o := Outcome{Kind: Pass}
	if t.next < len(t.script) {
		o = t.script[t.next]
		t.next++
	}
	t.log = append(t.log, o.Kind)
	return o
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	o := t.take()
	switch o.Kind {
	case Drop:
		drainBody(req)
		return nil, ErrDropped
	case Hang:
		drainBody(req)
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Unavailable:
		drainBody(req)
		resp := syntheticResponse(req, http.StatusServiceUnavailable, "injected unavailable")
		if o.RetryAfter > 0 {
			resp.Header.Set("Retry-After", strconv.Itoa(o.RetryAfter))
		}
		return resp, nil
	case InternalError:
		drainBody(req)
		return syntheticResponse(req, http.StatusInternalServerError, "injected internal error"), nil
	default:
		inner := t.Inner
		if inner == nil {
			inner = http.DefaultTransport
		}
		return inner.RoundTrip(req)
	}
}

// drainBody consumes and closes the request body, as a real transport
// would before the connection died.
func drainBody(req *http.Request) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		_ = req.Body.Close()
	}
}

// syntheticResponse fabricates a minimal HTTP response without a
// network round trip.
func syntheticResponse(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header),
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}
}
