package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newReq(t *testing.T, ctx context.Context) *http.Request {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://ljqd.test/optimize", strings.NewReader("body"))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestFlakyTransportPlaysScriptInOrder(t *testing.T) {
	inner := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: 200, Header: make(http.Header),
			Body: io.NopCloser(strings.NewReader("ok")), Request: r}, nil
	})
	ft := NewFlakyTransport(inner,
		Outcome{Kind: Drop},
		Outcome{Kind: Unavailable, RetryAfter: 7},
		Outcome{Kind: InternalError},
	)
	ctx := context.Background()

	if _, err := ft.RoundTrip(newReq(t, ctx)); !errors.Is(err, ErrDropped) {
		t.Fatalf("outcome 1 err = %v, want ErrDropped", err)
	}
	resp, err := ft.RoundTrip(newReq(t, ctx))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("outcome 2 = %v/%v, want 503", resp, err)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
	_ = resp.Body.Close()
	resp, err = ft.RoundTrip(newReq(t, ctx))
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("outcome 3 = %v/%v, want 500", resp, err)
	}
	_ = resp.Body.Close()

	// Script exhausted: pass through to the inner transport.
	resp, err = ft.RoundTrip(newReq(t, ctx))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("post-script = %v/%v, want inner 200", resp, err)
	}
	_ = resp.Body.Close()

	wantLog := []OutcomeKind{Drop, Unavailable, InternalError, Pass}
	got := ft.Log()
	if len(got) != len(wantLog) {
		t.Fatalf("log %v, want %v", got, wantLog)
	}
	for i := range wantLog {
		if got[i] != wantLog[i] {
			t.Fatalf("log %v, want %v", got, wantLog)
		}
	}
	if ft.Requests() != 4 {
		t.Fatalf("Requests = %d, want 4", ft.Requests())
	}
}

func TestFlakyTransportHangHonorsContext(t *testing.T) {
	ft := NewFlakyTransport(nil, Outcome{Kind: Hang})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ft.RoundTrip(newReq(t, ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("hang did not release promptly after context expiry")
	}
}

func TestFlakyTransportExtend(t *testing.T) {
	ft := NewFlakyTransport(nil, Outcome{Kind: Drop})
	ft.Extend(Outcome{Kind: InternalError})
	ctx := context.Background()
	if _, err := ft.RoundTrip(newReq(t, ctx)); !errors.Is(err, ErrDropped) {
		t.Fatal(err)
	}
	resp, err := ft.RoundTrip(newReq(t, ctx))
	if err != nil || resp.StatusCode != 500 {
		t.Fatalf("extended outcome = %v/%v, want 500", resp, err)
	}
	_ = resp.Body.Close()
}

// roundTripperFunc adapts a function to http.RoundTripper.
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
