package faultinject

import (
	"errors"
	"math"
	"sync"
	"testing"

	"joinopt/internal/cost"
)

func TestScheduledPanicCarriesFault(t *testing.T) {
	in := New(Config{PanicAt: 3})
	if got := in.Eval(1); got != 1 {
		t.Fatalf("eval 1 corrupted: %g", got)
	}
	in.Eval(2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("scheduled panic did not fire")
		}
		f, ok := r.(*Fault)
		if !ok {
			t.Fatalf("panic value %T, want *Fault", r)
		}
		if f.Kind != PanicEval || f.Eval != 3 {
			t.Fatalf("fault = %+v", f)
		}
		var err error = f
		var asFault *Fault
		if !errors.As(err, &asFault) {
			t.Fatal("*Fault does not satisfy errors.As")
		}
		if in.Fired(PanicEval) != 1 {
			t.Fatalf("fired count %d", in.Fired(PanicEval))
		}
	}()
	in.Eval(3)
}

func TestEverySchedules(t *testing.T) {
	in := New(Config{NaNEvery: 3})
	nans := 0
	for i := 0; i < 9; i++ {
		if math.IsNaN(in.Eval(7)) {
			nans++
		}
	}
	if nans != 3 {
		t.Fatalf("NaNEvery=3 fired %d times in 9 evals", nans)
	}
	if in.Evals() != 9 {
		t.Fatalf("eval count %d", in.Evals())
	}
}

func TestInfAlternatesSigns(t *testing.T) {
	in := New(Config{InfEvery: 2})
	sawPos, sawNeg := false, false
	for i := 0; i < 8; i++ {
		v := in.Eval(1)
		switch {
		case math.IsInf(v, 1):
			sawPos = true
		case math.IsInf(v, -1):
			sawNeg = true
		}
	}
	if !sawPos || !sawNeg {
		t.Fatalf("InfEvery did not alternate: +Inf=%v -Inf=%v", sawPos, sawNeg)
	}
}

func TestStarveCancelsBudget(t *testing.T) {
	b := cost.NewBudget(1 << 30)
	in := New(Config{StarveAt: 5}).BindBudget(b)
	for i := 0; i < 4; i++ {
		in.Eval(1)
		if b.Exhausted() {
			t.Fatalf("budget starved early at eval %d", i+1)
		}
	}
	in.Eval(1)
	if !b.Exhausted() || !b.Cancelled() {
		t.Fatal("StarveAt did not cancel the budget")
	}
	if in.Fired(Starve) != 1 {
		t.Fatalf("starve fired %d times", in.Fired(Starve))
	}
}

// TestProbabilisticDeterminismPerSeed: the same seed must reproduce the
// same fault stream; different seeds should (overwhelmingly) differ.
func TestProbabilisticDeterminismPerSeed(t *testing.T) {
	stream := func(seed int64) []bool {
		in := New(Config{Seed: seed, NaNProb: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = math.IsNaN(in.Eval(1))
		}
		return out
	}
	a, b := stream(42), stream(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at eval %d", i)
		}
	}
	c := stream(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-eval streams")
	}
}

// TestInjectorConcurrent exercises the injector from several goroutines
// under -race (portfolio members may share one injector).
func TestInjectorConcurrent(t *testing.T) {
	in := New(Config{Seed: 1, NaNEvery: 10, NaNProb: 0.01})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5_000; i++ {
				_ = in.Eval(float64(i))
			}
		}()
	}
	wg.Wait()
	if in.Evals() != 20_000 {
		t.Fatalf("lost evals: %d", in.Evals())
	}
	if in.Fired(NaNCost) < 20_000/10 {
		t.Fatalf("NaNEvery undercounted: %d", in.Fired(NaNCost))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", PanicEval: "panic", NaNCost: "nan-cost",
		PosInfCost: "+inf-cost", NegInfCost: "-inf-cost", Starve: "starve",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("out-of-range Kind String")
	}
}
