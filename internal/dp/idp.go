package dp

import (
	"errors"
	"fmt"
	"math"

	"joinopt/internal/bushy"
	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// IDP implements Iterative Dynamic Programming (IDP-1 of Kossmann &
// Stocker, TODS 2000) over valid left-deep trees — the classical bridge
// between the exact DP the paper dismisses as infeasible and the
// randomized strategies it studies: run exact DP over blocks of at most
// k relations, freeze the best k-block subplan into a compound block,
// and iterate until one block remains.
//
// Like the other exact baselines this assumes the static estimator
// (order-independent sizes). Complexity is O(n·C(n,k)·2^k); keep
// k ≤ 4–5 for n beyond ~30.
//
// Frozen blocks behave as materialized intermediate results, so the
// composed plan is a *bushy* tree (a left-deep spine of left-deep
// subtrees); flattening it into one left-deep permutation is not
// possible in general without breaking validity. The returned cost is
// the bushy-space cost (identical semantics to bushy.Space.Cost, and to
// the linear evaluator when the tree happens to be a pure spine).
func IDP(eval *plan.Evaluator, rels []catalog.RelID, k int) (*bushy.Tree, float64, error) {
	n := len(rels)
	if n == 0 {
		return nil, 0, errors.New("dp: empty component")
	}
	if k < 2 {
		return nil, 0, fmt.Errorf("dp: IDP block size %d < 2", k)
	}
	if k > MaxDPRelations {
		k = MaxDPRelations
	}
	st := eval.Stats()
	g := st.Graph()
	model := eval.Model()
	budget := eval.Budget()

	// A block is a frozen subplan: its join tree, its estimated result
	// size, and its accumulated internal cost.
	type block struct {
		tree *bushy.Tree
		size float64
		cost float64
		// members marks the base relations covered (for adjacency).
		members joingraph.Bitset
	}
	nrel := st.Query().NumRelations()
	blocks := make([]*block, 0, n)
	for _, r := range rels {
		m := joingraph.NewBitset(nrel)
		m.Set(r)
		blocks = append(blocks, &block{
			tree: &bushy.Tree{Rel: r}, size: st.Cardinality(r), members: m,
		})
	}

	// adjacency between blocks: any edge between their member sets.
	adjacent := func(a, b *block) bool {
		for r := 0; r < nrel; r++ {
			if a.members.Test(catalog.RelID(r)) && g.JoinsInto(catalog.RelID(r), b.members) {
				return true
			}
		}
		return false
	}
	// crossSel multiplies the selectivities of edges from block b into
	// the union set.
	crossSel := func(unionSet joingraph.Bitset, unionSize float64, b *block) float64 {
		sel := 1.0
		for r := 0; r < nrel; r++ {
			if b.members.Test(catalog.RelID(r)) {
				sel *= st.SelectivityInto(unionSize, unionSet, catalog.RelID(r))
				// Mark incrementally so multi-relation blocks don't
				// double-count internal edges.
				unionSet.Set(catalog.RelID(r))
			}
		}
		// Unmark to restore the caller's set.
		for r := 0; r < nrel; r++ {
			if b.members.Test(catalog.RelID(r)) {
				unionSet.Clear(catalog.RelID(r))
			}
		}
		return sel
	}

	// blockDP runs exact left-deep DP over the chosen blocks (≤
	// MaxDPRelations of them), returning the best order, cost and
	// result size.
	blockDP := func(chosen []*block) ([]int, float64, float64, bool) {
		m := len(chosen)
		full := uint32(1)<<uint(m) - 1
		bestCost := make([]float64, full+1)
		size := make([]float64, full+1)
		last := make([]int8, full+1)
		for s := range bestCost {
			bestCost[s] = math.Inf(1)
			last[s] = -1
		}
		unionSet := joingraph.NewBitset(nrel)
		for i := 0; i < m; i++ {
			mask := uint32(1) << uint(i)
			bestCost[mask] = chosen[i].cost
			size[mask] = chosen[i].size
			last[mask] = int8(i)
		}
		for s := uint32(1); s <= full; s++ {
			if s&(s-1) == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				bit := uint32(1) << uint(j)
				if s&bit == 0 {
					continue
				}
				rest := s &^ bit
				if math.IsInf(bestCost[rest], 1) {
					continue
				}
				// Adjacency: block j must join some block in rest.
				connected := false
				for i := 0; i < m && !connected; i++ {
					if rest&(1<<uint(i)) != 0 && adjacent(chosen[j], chosen[i]) {
						connected = true
					}
				}
				if !connected {
					continue
				}
				// Union member set of rest for selectivity.
				unionSet.Reset()
				for i := 0; i < m; i++ {
					if rest&(1<<uint(i)) != 0 {
						for w, bits := range chosen[i].members {
							unionSet[w] |= bits
						}
					}
				}
				sel := crossSel(unionSet, size[rest], chosen[j])
				result := size[rest] * chosen[j].size * sel
				c := bestCost[rest] + model.JoinCost(size[rest], chosen[j].size, result)
				budget.Charge(plan.EvalUnitsPerJoin)
				if c < bestCost[s] {
					bestCost[s] = c
					size[s] = result
					last[s] = int8(j)
				}
			}
		}
		if math.IsInf(bestCost[full], 1) {
			return nil, 0, 0, false
		}
		order := make([]int, m)
		s := full
		for i := m - 1; i >= 0; i-- {
			j := last[s]
			order[i] = int(j)
			s &^= 1 << uint(j)
		}
		return order, bestCost[full], size[full], true
	}

	// spine assembles a left-deep spine over block trees in DP order.
	spine := func(chosen []*block, order []int) *bushy.Tree {
		t := chosen[order[0]].tree
		for _, bi := range order[1:] {
			t = &bushy.Tree{Left: t, Right: chosen[bi].tree}
		}
		return t
	}
	finalCost := func(t *bushy.Tree) float64 {
		sp := bushy.NewSpace(st, model, eval.Budget(), rels, nil)
		return sp.Cost(t)
	}

	for len(blocks) > 1 {
		if len(blocks) <= k {
			order, _, _, ok := blockDP(blocks)
			if !ok {
				return nil, 0, errors.New("dp: IDP blocks disconnected")
			}
			t := spine(blocks, order)
			return t, finalCost(t), nil
		}
		// Freeze the exactly-k connected block subset whose optimal
		// subplan has the smallest result size (ties by cost). Freezing
		// by minimum *cost* sounds natural but systematically freezes
		// tiny cheap blocks whose early consolidation poisons later
		// joins; minimum result size is the selection that works (it is
		// also GOO's guiding quantity).
		bestSubset, bestOrder, bestCost, bestSize := []int(nil), []int(nil), math.Inf(1), math.Inf(1)
		adjIdx := func(i, j int) bool { return adjacent(blocks[i], blocks[j]) }
		forEachConnectedSubset(len(blocks), k, adjIdx, func(subset []int) {
			chosen := make([]*block, len(subset))
			for i, bi := range subset {
				chosen[i] = blocks[bi]
			}
			order, c, sz, ok := blockDP(chosen)
			if !ok {
				return
			}
			//ljqlint:allow floatsafe -- exact tie intended: equal sizes come from identical estimator arithmetic, and the secondary cost ordering breaks the tie deterministically
			if sz < bestSize || (sz == bestSize && c < bestCost) {
				bestSubset = append([]int(nil), subset...)
				bestOrder = order
				bestCost = c
				bestSize = sz
			}
		})
		if bestSubset == nil {
			return nil, 0, errors.New("dp: IDP found no connected block subset")
		}
		// Build the compound block.
		comp := &block{size: bestSize, cost: bestCost, members: joingraph.NewBitset(nrel)}
		chosen := make([]*block, len(bestSubset))
		for i, bi := range bestSubset {
			chosen[i] = blocks[bi]
		}
		comp.tree = spine(chosen, bestOrder)
		for _, bi := range bestSubset {
			for w, bits := range blocks[bi].members {
				comp.members[w] |= bits
			}
		}
		// Remove the frozen blocks (descending index), add the compound.
		inSubset := map[int]bool{}
		for _, bi := range bestSubset {
			inSubset[bi] = true
		}
		next := blocks[:0]
		for i, b := range blocks {
			if !inSubset[i] {
				next = append(next, b)
			}
		}
		blocks = append(next, comp)
	}
	t := blocks[0].tree
	return t, finalCost(t), nil
}

// forEachConnectedSubset enumerates the connected subsets of exactly k
// indices from [0, n), invoking f once per subset. Each subset is
// anchored at its minimum element and grown by adding neighbors with
// higher indices; a seen-set deduplicates growth orders. Intended for
// small k (≤ 5) over sparse adjacency.
func forEachConnectedSubset(n, k int, adj func(i, j int) bool, f func([]int)) {
	if k < 1 || k > n {
		return
	}
	seen := make(map[string]bool)
	key := make([]byte, k)
	subset := make([]int, 0, k)
	inSet := make([]bool, n)

	var grow func(anchor int)
	grow = func(anchor int) {
		if len(subset) == k {
			// Dedup: subsets are reached in multiple growth orders.
			sorted := append([]int(nil), subset...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			for i, v := range sorted {
				key[i] = byte(v)
			}
			ks := string(key)
			if seen[ks] {
				return
			}
			seen[ks] = true
			f(sorted)
			return
		}
		for v := anchor + 1; v < n; v++ {
			if inSet[v] {
				continue
			}
			// v must join some member of the current subset.
			joins := false
			for _, u := range subset {
				if adj(u, v) {
					joins = true
					break
				}
			}
			if !joins {
				continue
			}
			subset = append(subset, v)
			inSet[v] = true
			grow(anchor)
			inSet[v] = false
			subset = subset[:len(subset)-1]
		}
	}
	for a := 0; a+k <= n; a++ {
		subset = append(subset[:0], a)
		for i := range inSet {
			inSet[i] = false
		}
		inSet[a] = true
		grow(a)
	}
}
