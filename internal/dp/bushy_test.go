package dp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/testutil"
)

// TestBushyNeverWorseThanLeftDeep: the left-deep space is a subset of
// the bushy space, so the bushy optimum can never cost more.
func TestBushyNeverWorseThanLeftDeep(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%8)
		eval, comp := testutil.StaticRandomEval(rng, n)
		gap, err := LeftDeepGap(eval, comp)
		if err != nil {
			return false
		}
		return gap >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBushyTreeStructure: the winning tree covers each component
// relation exactly once and its recorded sizes are consistent.
func TestBushyTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	eval, comp := testutil.StaticRandomEval(rng, 9)
	tree, cost, err := BushyOptimal(eval, comp)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("degenerate cost %g", cost)
	}
	leaves := tree.Relations(nil)
	if len(leaves) != len(comp) {
		t.Fatalf("tree has %d leaves, want %d", len(leaves), len(comp))
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	want := append([]catalog.RelID(nil), comp...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if leaves[i] != want[i] {
			t.Fatalf("leaf set %v, want %v", leaves, want)
		}
	}
	if tree.String() == "" || tree.IsLeaf() {
		t.Fatal("tree rendering broken")
	}
}

// TestBushyMatchesLinearOnChains: on a pure chain with strictly
// shrinking joins the left-deep optimum often matches the bushy one;
// at minimum the bushy cost must equal the linear cost when n = 2.
func TestBushyTwoRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	eval, comp := testutil.StaticRandomEval(rng, 2)
	_, linear, err := Optimal(eval, comp)
	if err != nil {
		t.Fatal(err)
	}
	_, bushy, err := BushyOptimal(eval, comp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(linear-bushy) > linear*1e-9 {
		t.Fatalf("n=2: linear %g vs bushy %g", linear, bushy)
	}
}

// TestBushyBeatsLinearSomewhere: bushy trees genuinely help on some
// queries — otherwise the instrument is broken. A "butterfly" query
// (two selective wings whose small results join in the middle) is the
// canonical case.
func TestBushyBeatsLinearSomewhere(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 100000}, // 0: big left hub
			{Cardinality: 10},     // 1: selective left wing
			{Cardinality: 100000}, // 2: big right hub
			{Cardinality: 10},     // 3: selective right wing
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 100000, RightDistinct: 10},
			{Left: 2, Right: 3, LeftDistinct: 100000, RightDistinct: 10},
			{Left: 0, Right: 2, LeftDistinct: 100, RightDistinct: 100},
		},
	}
	eval, comp := testutil.StaticEval(q)
	gap, err := LeftDeepGap(eval, comp)
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 1.0+1e-9 {
		t.Fatalf("butterfly query should favor a bushy tree; gap %g", gap)
	}
}

func TestBushyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	eval, _ := testutil.StaticRandomEval(rng, 4)
	if _, _, err := BushyOptimal(eval, nil); err == nil {
		t.Fatal("empty component accepted")
	}
	big := make([]catalog.RelID, MaxBushyRelations+1)
	if _, _, err := BushyOptimal(eval, big); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	// Disconnected pair.
	q := &catalog.Query{
		Relations: []catalog.Relation{{Cardinality: 5}, {Cardinality: 5}},
	}
	deval, _ := testutil.StaticEval(q)
	if _, _, err := BushyOptimal(deval, []catalog.RelID{0, 1}); err == nil {
		t.Fatal("disconnected component accepted")
	}
}
