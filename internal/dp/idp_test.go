package dp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"joinopt/internal/bushy"
	"joinopt/internal/catalog"
	"joinopt/internal/testutil"
)

// leafSet returns the sorted leaf relations of a tree.
func leafSet(t *bushy.Tree) []catalog.RelID {
	ls := t.Leaves(nil)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls
}

// TestIDPFullBlockEqualsDP: with k ≥ n, IDP degenerates to one exact DP
// round over singletons — a pure left-deep spine whose bushy cost must
// equal the left-deep optimum.
func TestIDPFullBlockEqualsDP(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%7)
		eval, comp := testutil.StaticRandomEval(rng, n)
		_, optCost, err := Optimal(eval, comp)
		if err != nil {
			return false
		}
		tree, idpCost, err := IDP(eval, comp, n+1)
		if err != nil {
			return false
		}
		if len(leafSet(tree)) != n {
			return false
		}
		return math.Abs(idpCost-optCost) <= optCost*1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIDPSmallBlocks: with small k, IDP yields a complete tree whose
// cost is bounded below by the bushy optimum and is not wildly worse.
func TestIDPSmallBlocks(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eval, comp := testutil.StaticRandomEval(rng, 12)
		_, bushyOpt, err := BushyOptimal(eval, comp)
		if err != nil {
			t.Fatal(err)
		}
		tree, c, err := IDP(eval, comp, 3)
		if err != nil {
			t.Fatal(err)
		}
		ls := leafSet(tree)
		if len(ls) != len(comp) {
			t.Fatalf("seed %d: IDP tree covers %d of %d relations", seed, len(ls), len(comp))
		}
		for i := 1; i < len(ls); i++ {
			if ls[i] == ls[i-1] {
				t.Fatalf("seed %d: duplicate leaf", seed)
			}
		}
		if c < bushyOpt*(1-1e-9) {
			t.Fatalf("seed %d: IDP (%g) beat the bushy optimum (%g)", seed, c, bushyOpt)
		}
		if c > bushyOpt*1e4 {
			t.Fatalf("seed %d: IDP wildly off: %g vs %g", seed, c, bushyOpt)
		}
	}
}

// TestIDPBeatsRandomFloor: IDP with k=3 should be well below a random
// valid order.
func TestIDPBeatsRandomFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eval, comp := testutil.StaticRandomEval(rng, 14)
	_, c, err := IDP(eval, comp, 3)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := 0; i < 10; i++ {
		perm := randomValid(rng, eval, comp)
		if cc := eval.Cost(perm); cc > worst {
			worst = cc
		}
	}
	if c >= worst {
		t.Fatalf("IDP (%g) no better than the worst random order (%g)", c, worst)
	}
}

func TestIDPErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eval, comp := testutil.StaticRandomEval(rng, 5)
	if _, _, err := IDP(eval, nil, 3); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, err := IDP(eval, comp, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestIDPChargesBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	eval, comp := testutil.StaticRandomEval(rng, 10)
	before := eval.Budget().Used()
	if _, _, err := IDP(eval, comp, 3); err != nil {
		t.Fatal(err)
	}
	if eval.Budget().Used() == before {
		t.Fatal("IDP charged nothing")
	}
}

func TestForEachConnectedSubset(t *testing.T) {
	// A path 0-1-2-3: connected 2-subsets are the 3 edges; connected
	// 3-subsets are {0,1,2} and {1,2,3}.
	adj := func(i, j int) bool {
		d := i - j
		return d == 1 || d == -1
	}
	var twos, threes [][]int
	forEachConnectedSubset(4, 2, adj, func(s []int) {
		twos = append(twos, append([]int(nil), s...))
	})
	forEachConnectedSubset(4, 3, adj, func(s []int) {
		threes = append(threes, append([]int(nil), s...))
	})
	if len(twos) != 3 {
		t.Fatalf("2-subsets: %v", twos)
	}
	if len(threes) != 2 {
		t.Fatalf("3-subsets: %v", threes)
	}
	// k > n yields nothing.
	count := 0
	forEachConnectedSubset(2, 3, adj, func([]int) { count++ })
	if count != 0 {
		t.Fatal("k>n enumerated subsets")
	}
	// Star 0-{1,2,3}: the three edges are the only connected 2-subsets.
	star := func(i, j int) bool { return i == 0 || j == 0 }
	count = 0
	forEachConnectedSubset(4, 2, star, func([]int) { count++ })
	if count != 3 {
		t.Fatalf("star 2-subsets: %d", count)
	}
}
