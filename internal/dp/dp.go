// Package dp provides the classical baselines the paper positions itself
// against: exhaustive enumeration of valid join orders (tiny queries
// only) and System-R-style dynamic programming over valid left-deep
// trees [SAC+79], whose O(2^N) time/space is exactly why the paper's
// randomized strategies exist for N ≥ 10.
//
// Both baselines return the true optimum over the space of valid outer
// linear join trees of one connected component, so the test suite uses
// them as ground truth for the heuristics and search strategies.
package dp

import (
	"errors"
	"math"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// MaxDPRelations bounds the bitmask DP (2^n states); beyond this the
// memory and time are exactly the infeasibility the paper describes.
const MaxDPRelations = 22

// ErrTooLarge is returned when a component exceeds the baseline's reach.
var ErrTooLarge = errors.New("dp: component too large for exact optimization")

// Optimal computes the optimal valid left-deep join order of the given
// component relations by dynamic programming over connected subsets.
// Join evaluations debit the evaluator's budget as usual.
//
// Exactness requires order-independent size estimates: the evaluator's
// statistics must be in static mode (estimate.Stats.UseStaticSelectivity)
// — the same assumption System R's optimizer made. Under the default
// dynamic estimator the result is still a strong plan but the principle
// of optimality does not hold on collapsing size trajectories.
func Optimal(eval *plan.Evaluator, rels []catalog.RelID) (plan.Perm, float64, error) {
	n := len(rels)
	if n == 0 {
		return nil, 0, errors.New("dp: empty component")
	}
	if n > MaxDPRelations {
		return nil, 0, ErrTooLarge
	}
	if n == 1 {
		return plan.Perm{rels[0]}, 0, nil
	}

	st := eval.Stats()
	g := st.Graph()
	model := eval.Model()
	budget := eval.Budget()

	// Local index <-> RelID mapping.
	idOf := make([]catalog.RelID, n)
	copy(idOf, rels)
	localOf := make(map[catalog.RelID]int, n)
	for i, r := range idOf {
		localOf[r] = i
	}

	// adjacency as local bitmasks
	adj := make([]uint32, n)
	for i, r := range idOf {
		var nbuf []catalog.RelID
		nbuf = g.Neighbors(r, nbuf)
		for _, w := range nbuf {
			if j, ok := localOf[w]; ok {
				adj[i] |= 1 << uint(j)
			}
		}
	}

	full := uint32(1)<<uint(n) - 1
	bestCost := make([]float64, full+1)
	size := make([]float64, full+1)
	lastRel := make([]int8, full+1)
	for s := range bestCost {
		bestCost[s] = math.Inf(1)
		lastRel[s] = -1
	}

	// Singletons.
	for i := 0; i < n; i++ {
		m := uint32(1) << uint(i)
		bestCost[m] = 0
		size[m] = st.Cardinality(idOf[i])
		lastRel[m] = int8(i)
	}

	inSet := joingraph.NewBitset(st.Query().NumRelations())
	for s := uint32(1); s <= full; s++ {
		if s&(s-1) == 0 {
			continue // singleton, handled above
		}
		// Consider removing each member j that still leaves s\{j}
		// reachable and that joins into s\{j}.
		for j := 0; j < n; j++ {
			bit := uint32(1) << uint(j)
			if s&bit == 0 {
				continue
			}
			rest := s &^ bit
			if math.IsInf(bestCost[rest], 1) {
				continue // rest not a connected valid prefix
			}
			if adj[j]&rest == 0 {
				continue // would be a cross product
			}
			outer := size[rest]
			// Result size: selectivity of all edges from j into rest.
			setMask(inSet, idOf, rest)
			inner := st.Cardinality(idOf[j])
			result := st.JoinSize(outer, inSet, idOf[j])
			c := bestCost[rest] + model.JoinCost(outer, inner, result)
			budget.Charge(1)
			if c < bestCost[s] {
				bestCost[s] = c
				size[s] = result
				lastRel[s] = int8(j)
			}
		}
	}

	if math.IsInf(bestCost[full], 1) {
		return nil, 0, errors.New("dp: component is not connected; no valid order exists")
	}

	// Reconstruct the permutation.
	out := make(plan.Perm, n)
	s := full
	for i := n - 1; i >= 0; i-- {
		j := lastRel[s]
		out[i] = idOf[j]
		s &^= 1 << uint(j)
	}
	return out, bestCost[full], nil
}

func setMask(inSet joingraph.Bitset, idOf []catalog.RelID, mask uint32) {
	inSet.Reset()
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			inSet.Set(idOf[i])
		}
		mask >>= 1
	}
}

// MaxExhaustiveRelations bounds exhaustive enumeration (n! orders).
const MaxExhaustiveRelations = 9

// Exhaustive enumerates every valid permutation of the component and
// returns the cheapest. Intended for tests (ground truth for DP itself).
func Exhaustive(eval *plan.Evaluator, rels []catalog.RelID) (plan.Perm, float64, error) {
	n := len(rels)
	if n == 0 {
		return nil, 0, errors.New("dp: empty component")
	}
	if n > MaxExhaustiveRelations {
		return nil, 0, ErrTooLarge
	}
	var best plan.Perm
	bestCost := math.Inf(1)
	perm := make(plan.Perm, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(perm) == n {
			if c := eval.Cost(perm); c < bestCost {
				bestCost = c
				best = perm.Clone()
			}
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			perm = append(perm, rels[i])
			if eval.Valid(perm) {
				used[i] = true
				rec()
				used[i] = false
			}
			perm = perm[:len(perm)-1]
		}
	}
	rec()
	if math.IsInf(bestCost, 1) {
		return nil, 0, errors.New("dp: no valid order exists")
	}
	return best, bestCost, nil
}
