package dp_test

import (
	"fmt"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/dp"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

func exampleEval() (*plan.Evaluator, []catalog.RelID) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "orders", Cardinality: 10000},
			{Name: "customers", Cardinality: 500},
			{Name: "nation", Cardinality: 25},
			{Name: "region", Cardinality: 5},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 500, RightDistinct: 500},
			{Left: 1, Right: 2, LeftDistinct: 25, RightDistinct: 25},
			{Left: 2, Right: 3, LeftDistinct: 5, RightDistinct: 5},
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	return plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited()), g.Components()[0]
}

// ExampleOptimal computes the exact left-deep optimum of a snowflake
// chain by dynamic programming over connected subsets.
func ExampleOptimal() {
	eval, comp := exampleEval()
	perm, c, err := dp.Optimal(eval, comp)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%v cost %.5g\n", perm, c)
	// Output: (R2 R3 R1 R0) cost 32085
}

// ExampleBushyOptimal compares the left-deep optimum with the
// unrestricted bushy optimum (the paper's §2 open problem, answered
// exactly for small queries).
func ExampleBushyOptimal() {
	eval, comp := exampleEval()
	_, linear, _ := dp.Optimal(eval, comp)
	tree, bushyCost, _ := dp.BushyOptimal(eval, comp)
	// The bushy optimum genuinely beats the left-deep one here: it
	// builds small hash tables along the dimension chain and probes
	// them with the fact table once, instead of dragging the large
	// intermediate result through every join.
	fmt.Printf("left-deep %.5g, bushy %.5g (%s)\n", linear, bushyCost, tree)
	// Output: left-deep 32085, bushy 22110 ((R0 ⋈ (R1 ⋈ (R2 ⋈ R3))))
}
