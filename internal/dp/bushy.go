package dp

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// The paper restricts its search to outer linear (left-deep) join trees
// and notes that validating this restriction — "the assumption that a
// significant fraction of the join trees with low processing cost is to
// be found in the space of outer linear join trees" — is an open
// problem (§2). This file provides the instrument: an exact dynamic
// program over *bushy* trees for small queries, so the left-deep
// optimum can be compared against the unrestricted optimum.

// MaxBushyRelations bounds the bushy DP (it enumerates all 3^n
// subset splits).
const MaxBushyRelations = 16

// BushyNode is a node of a bushy join tree: either a leaf (a base
// relation) or an inner join of two subtrees.
type BushyNode struct {
	// Rel is the base relation for leaves (Left == nil).
	Rel catalog.RelID
	// Left and Right are the join operands for inner nodes.
	Left, Right *BushyNode
	// Size is the estimated result cardinality of this subtree.
	Size float64
}

// IsLeaf reports whether the node is a base relation.
func (n *BushyNode) IsLeaf() bool { return n.Left == nil }

// String renders the tree in parenthesized infix form.
func (n *BushyNode) String() string {
	var b strings.Builder
	n.format(&b)
	return b.String()
}

func (n *BushyNode) format(b *strings.Builder) {
	if n.IsLeaf() {
		fmt.Fprintf(b, "R%d", n.Rel)
		return
	}
	b.WriteByte('(')
	n.Left.format(b)
	b.WriteString(" ⋈ ")
	n.Right.format(b)
	b.WriteByte(')')
}

// Relations appends the leaf relations of the subtree in left-to-right
// order.
func (n *BushyNode) Relations(dst []catalog.RelID) []catalog.RelID {
	if n.IsLeaf() {
		return append(dst, n.Rel)
	}
	dst = n.Left.Relations(dst)
	return n.Right.Relations(dst)
}

// BushyOptimal computes the optimal bushy join tree of one connected
// component by dynamic programming over subset splits, pricing each
// join with the evaluator's cost model (outer = left subtree, inner =
// right subtree; the cheaper orientation is taken). Like Optimal, it
// requires the static estimator for exactness, and it charges the
// budget per join priced.
func BushyOptimal(eval *plan.Evaluator, rels []catalog.RelID) (*BushyNode, float64, error) {
	n := len(rels)
	if n == 0 {
		return nil, 0, errors.New("dp: empty component")
	}
	if n > MaxBushyRelations {
		return nil, 0, ErrTooLarge
	}
	st := eval.Stats()
	g := st.Graph()
	model := eval.Model()
	budget := eval.Budget()

	idOf := make([]catalog.RelID, n)
	copy(idOf, rels)
	localOf := make(map[catalog.RelID]int, n)
	for i, r := range idOf {
		localOf[r] = i
	}
	adj := make([]uint32, n)
	for i, r := range idOf {
		var nbuf []catalog.RelID
		nbuf = g.Neighbors(r, nbuf)
		for _, w := range nbuf {
			if j, ok := localOf[w]; ok {
				adj[i] |= 1 << uint(j)
			}
		}
	}

	full := uint32(1)<<uint(n) - 1

	// size[S] is the estimated result size of joining exactly the set S
	// (well-defined under the static estimator). Computed incrementally:
	// grow S by its lowest member under the standard formula.
	size := make([]float64, full+1)
	inSet := joingraph.NewBitset(st.Query().NumRelations())
	for s := uint32(1); s <= full; s++ {
		low := s & (-s)
		j := trailingZeros(low)
		rest := s &^ low
		if rest == 0 {
			size[s] = st.Cardinality(idOf[j])
			continue
		}
		setMask(inSet, idOf, rest)
		size[s] = st.JoinSize(size[rest], inSet, idOf[j])
	}

	type entry struct {
		cost  float64
		split uint32 // left subset of the winning split (0 = leaf)
	}
	best := make([]entry, full+1)
	for s := range best {
		best[s].cost = math.Inf(1)
	}
	for i := 0; i < n; i++ {
		best[uint32(1)<<uint(i)] = entry{cost: 0}
	}

	// connected[S]: S has an edge between any proper split? We instead
	// require each enumerated split pair to be edge-connected to each
	// other, and both halves to have finite cost (recursively valid).
	crossEdge := func(a, bmask uint32) bool {
		for t := a; t != 0; t &= t - 1 {
			i := trailingZeros(t & (-t))
			if adj[i]&bmask != 0 {
				return true
			}
		}
		return false
	}

	for s := uint32(1); s <= full; s++ {
		if s&(s-1) == 0 {
			continue
		}
		// Enumerate proper subsets of s; consider each unordered split
		// once by requiring the lowest bit of s to stay in the left.
		lowBit := s & (-s)
		for left := (s - 1) & s; left != 0; left = (left - 1) & s {
			if left&lowBit == 0 {
				continue
			}
			right := s &^ left
			if right == 0 {
				continue
			}
			if math.IsInf(best[left].cost, 1) || math.IsInf(best[right].cost, 1) {
				continue
			}
			if !crossEdge(left, right) {
				continue // cross product: not a valid tree
			}
			join := math.Min(
				model.JoinCost(size[left], size[right], size[s]),
				model.JoinCost(size[right], size[left], size[s]),
			)
			budget.Charge(2)
			c := best[left].cost + best[right].cost + join
			if c < best[s].cost {
				best[s] = entry{cost: c, split: left}
			}
		}
	}

	if math.IsInf(best[full].cost, 1) {
		return nil, 0, errors.New("dp: component is not connected; no valid bushy tree exists")
	}

	var build func(s uint32) *BushyNode
	build = func(s uint32) *BushyNode {
		if s&(s-1) == 0 {
			return &BushyNode{Rel: idOf[trailingZeros(s)], Size: size[s]}
		}
		left := best[s].split
		return &BushyNode{
			Left:  build(left),
			Right: build(s &^ left),
			Size:  size[s],
		}
	}
	return build(full), best[full].cost, nil
}

func trailingZeros(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// LeftDeepGap measures the paper's §2 open problem on one component:
// the ratio of the optimal left-deep cost to the optimal bushy cost
// (≥ 1; equal to 1 when the left-deep restriction is lossless).
func LeftDeepGap(eval *plan.Evaluator, rels []catalog.RelID) (float64, error) {
	_, linear, err := Optimal(eval, rels)
	if err != nil {
		return 0, err
	}
	_, bushy, err := BushyOptimal(eval, rels)
	if err != nil {
		return 0, err
	}
	if bushy <= 0 {
		return 1, nil
	}
	return linear / bushy, nil
}
