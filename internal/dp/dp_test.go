package dp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/testutil"
)

// TestDPMatchesExhaustive is the cornerstone: for every random small
// query, bitmask DP and brute-force enumeration must agree exactly.
func TestDPMatchesExhaustive(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%6) // up to 8 relations
		eval, comp := testutil.StaticRandomEval(rng, n)
		pd, cd, err := Optimal(eval, comp)
		if err != nil {
			return false
		}
		pe, ce, err := Exhaustive(eval, comp)
		if err != nil {
			return false
		}
		if math.Abs(cd-ce) > math.Max(cd, ce)*1e-9 {
			return false
		}
		return eval.Valid(pd) && eval.Valid(pe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDPReturnedPermMatchesReturnedCost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	eval, comp := testutil.StaticRandomEval(rng, 10)
	p, c, err := Optimal(eval, comp)
	if err != nil {
		t.Fatal(err)
	}
	if got := eval.Cost(p); math.Abs(got-c) > c*1e-9 {
		t.Fatalf("perm re-prices to %g, DP said %g", got, c)
	}
}

func TestDPBeatsEveryRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eval, comp := testutil.StaticRandomEval(rng, 12)
	_, c, err := Optimal(eval, comp)
	if err != nil {
		t.Fatal(err)
	}
	// Generate valid orders greedily and compare.
	for trial := 0; trial < 50; trial++ {
		perm := randomValid(rng, eval, comp)
		if got := eval.Cost(perm); got < c*(1-1e-9) {
			t.Fatalf("random order %v cheaper than DP optimum: %g < %g", perm, got, c)
		}
	}
}

func randomValid(rng *rand.Rand, eval *plan.Evaluator, comp []catalog.RelID) plan.Perm {
	remaining := append([]catalog.RelID(nil), comp...)
	out := plan.Perm{}
	for len(remaining) > 0 {
		ok := false
		rng.Shuffle(len(remaining), func(i, j int) { remaining[i], remaining[j] = remaining[j], remaining[i] })
		for i, r := range remaining {
			cand := append(out, r)
			if eval.Valid(cand) {
				out = cand
				remaining = append(remaining[:i], remaining[i+1:]...)
				ok = true
				break
			}
		}
		if !ok {
			out = append(out, remaining[0])
			remaining = remaining[1:]
		}
	}
	return out
}

func TestDPSingleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eval, comp := testutil.StaticRandomEval(rng, 5)
	p, c, err := Optimal(eval, comp[:1])
	if err != nil || len(p) != 1 || c != 0 {
		t.Fatalf("singleton: %v %g %v", p, c, err)
	}
}

func TestDPTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eval, comp := testutil.StaticRandomEval(rng, 5)
	big := make([]catalog.RelID, MaxDPRelations+1)
	copy(big, comp)
	if _, _, err := Optimal(eval, big); err != ErrTooLarge {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
	bigger := make([]catalog.RelID, MaxExhaustiveRelations+1)
	if _, _, err := Exhaustive(eval, bigger); err != ErrTooLarge {
		t.Fatalf("expected ErrTooLarge from Exhaustive, got %v", err)
	}
}

func TestDPEmptyComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	eval, _ := testutil.StaticRandomEval(rng, 5)
	if _, _, err := Optimal(eval, nil); err == nil {
		t.Fatal("empty component accepted")
	}
	if _, _, err := Exhaustive(eval, nil); err == nil {
		t.Fatal("empty component accepted by Exhaustive")
	}
}

func TestDPDisconnectedComponentErrors(t *testing.T) {
	// Two relations with no predicate between them: no valid order.
	q := &catalog.Query{
		Relations: []catalog.Relation{{Cardinality: 10}, {Cardinality: 10}},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	if _, _, err := Optimal(eval, []catalog.RelID{0, 1}); err == nil {
		t.Fatal("disconnected 'component' accepted")
	}
}

func TestDPChargesBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := &catalog.Query{}
	for i := 0; i < 8; i++ {
		q.Relations = append(q.Relations, catalog.Relation{Cardinality: int64(2 + rng.Intn(100))})
	}
	for i := 1; i < 8; i++ {
		q.Predicates = append(q.Predicates, catalog.Predicate{
			Left: catalog.RelID(i - 1), Right: catalog.RelID(i),
			LeftDistinct: 5, RightDistinct: 5,
		})
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	b := cost.NewBudget(1 << 40)
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), b)
	if _, _, err := Optimal(eval, g.Components()[0]); err != nil {
		t.Fatal(err)
	}
	if b.Used() == 0 {
		t.Fatal("DP join evaluations must charge the budget")
	}
}
