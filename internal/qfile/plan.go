package qfile

import (
	"encoding/json"
	"io"

	"joinopt/internal/catalog"
	"joinopt/internal/plan"
)

// jsonPlan is the machine-readable rendering of an optimized plan.
type jsonPlan struct {
	TotalCost  float64         `json:"totalCost"`
	Order      []int           `json:"order"`
	Names      []string        `json:"names"`
	Components []jsonComponent `json:"components"`
	CrossCost  float64         `json:"crossCost,omitempty"`
}

type jsonComponent struct {
	Cost  float64    `json:"cost"`
	Order []int      `json:"order"`
	Steps []jsonStep `json:"steps,omitempty"`
}

type jsonStep struct {
	Inner      int     `json:"inner"`
	Method     string  `json:"method"`
	OuterSize  float64 `json:"outerSize"`
	InnerSize  float64 `json:"innerSize"`
	ResultSize float64 `json:"resultSize"`
	Cost       float64 `json:"cost"`
}

// WritePlan serializes an optimized plan as indented JSON, including
// per-join steps (sizes, costs, chosen join methods) priced by the
// evaluator.
func WritePlan(w io.Writer, q *catalog.Query, pl *plan.Plan, eval *plan.Evaluator) error {
	out := jsonPlan{TotalCost: pl.TotalCost, CrossCost: pl.CrossCost}
	for _, r := range pl.Order() {
		out.Order = append(out.Order, int(r))
		out.Names = append(out.Names, q.RelationName(r))
	}
	for _, c := range pl.Components {
		jc := jsonComponent{Cost: c.Cost}
		for _, r := range c.Perm {
			jc.Order = append(jc.Order, int(r))
		}
		for _, s := range plan.Describe(eval, c.Perm) {
			jc.Steps = append(jc.Steps, jsonStep{
				Inner:      int(s.Inner),
				Method:     s.Method,
				OuterSize:  s.OuterSize,
				InnerSize:  s.InnerSize,
				ResultSize: s.ResultSize,
				Cost:       s.Cost,
			})
		}
		out.Components = append(out.Components, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
