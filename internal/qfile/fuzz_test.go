package qfile

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"joinopt/internal/workload"
)

// FuzzRead feeds arbitrary bytes to the JSON reader: it must never
// panic, and anything it accepts must be a valid query that survives a
// write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"relations":[{"cardinality":5}],"predicates":[]}`))
	f.Add([]byte(`{"relations":[{"cardinality":5},{"cardinality":9}],
	  "predicates":[{"left":0,"right":1,"leftDistinct":2,"rightDistinct":3}]}`))
	var buf bytes.Buffer
	q := workload.Default().Generate(12, rand.New(rand.NewSource(1)))
	if err := Write(&buf, q); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Read accepted an invalid query: %v", err)
		}
		var out strings.Builder
		if err := Write(&out, q); err != nil {
			t.Fatalf("accepted query failed to serialize: %v", err)
		}
		back, err := Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Relations) != len(q.Relations) || len(back.Predicates) != len(q.Predicates) {
			t.Fatal("round trip changed shape")
		}
	})
}
