package qfile

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 2 + int(sz%30)
		q := workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := Write(&buf, q); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Relations) != len(q.Relations) || len(got.Predicates) != len(q.Predicates) {
			return false
		}
		for i := range q.Relations {
			if got.Relations[i].Cardinality != q.Relations[i].Cardinality ||
				got.Relations[i].Name != q.Relations[i].Name ||
				len(got.Relations[i].Selections) != len(q.Relations[i].Selections) {
				return false
			}
		}
		for i := range q.Predicates {
			if got.Predicates[i] != q.Predicates[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`,                                   // syntax error
		`{"relations": [], "predicates": []}`, // no relations
		`{"relations": [{"cardinality": -5}], "predicates": []}`,  // bad cardinality
		`{"relations": [{"cardinality": 5}], "bogusField": true}`, // unknown field
		`{"relations": [{"cardinality": 5}, {"cardinality": 5}],
		  "predicates": [{"left": 0, "right": 7, "selectivity": 0.5}]}`, // out of range
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReadNormalizes(t *testing.T) {
	in := `{"relations": [{"cardinality": 10}, {"cardinality": 20}],
	        "predicates": [{"left": 1, "right": 0, "leftDistinct": 4, "rightDistinct": 8}]}`
	q, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	p := q.Predicates[0]
	if p.Left != 0 || p.Right != 1 {
		t.Fatal("endpoints not normalized")
	}
	if p.Selectivity != 0.125 { // 1/max(8,4) after the endpoint swap
		t.Fatalf("selectivity %g", p.Selectivity)
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.json")
	q := workload.Default().Generate(10, rand.New(rand.NewSource(1)))
	if err := WriteFile(path, q); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRelations() != q.NumRelations() {
		t.Fatal("file round trip lost relations")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRoundTrip(t *testing.T) {
	q := workload.Default().Generate(3, rand.New(rand.NewSource(2)))
	q.Predicates[0].LeftHist = &catalog.Histogram{Domain: 40, Counts: []float64{5, 7, 9, 3}}
	q.Predicates[0].RightHist = &catalog.Histogram{Domain: 40, Counts: []float64{1, 2, 3, 4}}
	var buf bytes.Buffer
	if err := Write(&buf, q); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := got.Predicates[0].LeftHist
	if h == nil || h.Domain != 40 || len(h.Counts) != 4 || h.Counts[2] != 9 {
		t.Fatalf("left histogram lost: %+v", h)
	}
	if got.Predicates[0].RightHist == nil {
		t.Fatal("right histogram lost")
	}
	if got.Predicates[1].LeftHist != nil {
		t.Fatal("phantom histogram appeared")
	}
}

func TestWritePlan(t *testing.T) {
	q := workload.Default().Generate(4, rand.New(rand.NewSource(7)))
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	perm := plan.Perm{0, 1, 2, 3, 4}
	pl := plan.Assemble(eval, []plan.Result{{Perm: perm, Cost: eval.Cost(perm)}})
	var buf bytes.Buffer
	if err := WritePlan(&buf, q, pl, eval); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["totalCost"].(float64) <= 0 {
		t.Fatal("total cost missing")
	}
	order := decoded["order"].([]any)
	if len(order) != 5 {
		t.Fatalf("order length %d", len(order))
	}
	comps := decoded["components"].([]any)
	steps := comps[0].(map[string]any)["steps"].([]any)
	if len(steps) != 4 {
		t.Fatalf("steps %d", len(steps))
	}
	if steps[0].(map[string]any)["method"].(string) == "" {
		t.Fatal("step method missing")
	}
}
