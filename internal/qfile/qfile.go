// Package qfile reads and writes queries as JSON, the interchange
// format of the cmd/ljqgen and cmd/ljqopt tools.
//
// The format is a direct rendering of the catalog types:
//
//	{
//	  "relations": [
//	    {"name": "orders", "cardinality": 100000,
//	     "selections": [{"selectivity": 0.1}]},
//	    ...
//	  ],
//	  "predicates": [
//	    {"left": 0, "right": 1,
//	     "leftDistinct": 500, "rightDistinct": 500,
//	     "selectivity": 0}          // 0 = derive from distinct counts
//	  ]
//	}
package qfile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"joinopt/internal/catalog"
)

// jsonQuery mirrors catalog.Query with JSON tags.
type jsonQuery struct {
	Relations  []jsonRelation  `json:"relations"`
	Predicates []jsonPredicate `json:"predicates"`
}

type jsonRelation struct {
	Name        string          `json:"name,omitempty"`
	Cardinality int64           `json:"cardinality"`
	Selections  []jsonSelection `json:"selections,omitempty"`
}

type jsonSelection struct {
	Selectivity float64 `json:"selectivity"`
}

type jsonPredicate struct {
	Left          int            `json:"left"`
	Right         int            `json:"right"`
	LeftDistinct  float64        `json:"leftDistinct,omitempty"`
	RightDistinct float64        `json:"rightDistinct,omitempty"`
	Selectivity   float64        `json:"selectivity,omitempty"`
	LeftHist      *jsonHistogram `json:"leftHist,omitempty"`
	RightHist     *jsonHistogram `json:"rightHist,omitempty"`
}

type jsonHistogram struct {
	Domain int64     `json:"domain"`
	Counts []float64 `json:"counts"`
}

func histToJSON(h *catalog.Histogram) *jsonHistogram {
	if h == nil {
		return nil
	}
	return &jsonHistogram{Domain: h.Domain, Counts: append([]float64(nil), h.Counts...)}
}

func histFromJSON(j *jsonHistogram) *catalog.Histogram {
	if j == nil {
		return nil
	}
	return &catalog.Histogram{Domain: j.Domain, Counts: append([]float64(nil), j.Counts...)}
}

func toJSON(q *catalog.Query) *jsonQuery {
	out := &jsonQuery{}
	for _, r := range q.Relations {
		jr := jsonRelation{Name: r.Name, Cardinality: r.Cardinality}
		for _, s := range r.Selections {
			jr.Selections = append(jr.Selections, jsonSelection{Selectivity: s.Selectivity})
		}
		out.Relations = append(out.Relations, jr)
	}
	for _, p := range q.Predicates {
		out.Predicates = append(out.Predicates, jsonPredicate{
			Left: int(p.Left), Right: int(p.Right),
			LeftDistinct: p.LeftDistinct, RightDistinct: p.RightDistinct,
			Selectivity: p.Selectivity,
			LeftHist:    histToJSON(p.LeftHist),
			RightHist:   histToJSON(p.RightHist),
		})
	}
	return out
}

func fromJSON(j *jsonQuery) *catalog.Query {
	q := &catalog.Query{}
	for _, r := range j.Relations {
		cr := catalog.Relation{Name: r.Name, Cardinality: r.Cardinality}
		for _, s := range r.Selections {
			cr.Selections = append(cr.Selections, catalog.Selection{Selectivity: s.Selectivity})
		}
		q.Relations = append(q.Relations, cr)
	}
	for _, p := range j.Predicates {
		q.Predicates = append(q.Predicates, catalog.Predicate{
			Left: catalog.RelID(p.Left), Right: catalog.RelID(p.Right),
			LeftDistinct: p.LeftDistinct, RightDistinct: p.RightDistinct,
			Selectivity: p.Selectivity,
			LeftHist:    histFromJSON(p.LeftHist),
			RightHist:   histFromJSON(p.RightHist),
		})
	}
	return q
}

// Write serializes the query as indented JSON.
func Write(w io.Writer, q *catalog.Query) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSON(q))
}

// ReadLimit parses a query from an untrusted reader, refusing inputs
// larger than max bytes with an error satisfying errors.Is(err,
// catalog.ErrTooLarge). The serve boundary reads request bodies
// through this entry point. A non-positive max means no cap.
func ReadLimit(r io.Reader, max int64) (*catalog.Query, error) {
	// Slurp through the cap before decoding: json.Decoder stops at the
	// end of the value and would never read the bytes that breach the
	// cap (e.g. a trailing newline), silently accepting an oversized
	// body. Memory use is bounded by max.
	data, err := io.ReadAll(catalog.CapReader(r, max))
	if err != nil {
		return nil, fmt.Errorf("qfile: %w", err)
	}
	return Read(bytes.NewReader(data))
}

// Read parses and validates a query.
func Read(r io.Reader) (*catalog.Query, error) {
	var j jsonQuery
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("qfile: %w", err)
	}
	q := fromJSON(&j)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q.Normalize()
	return q, nil
}

// WriteFile writes the query to a file path ("-" = stdout).
func WriteFile(path string, q *catalog.Query) error {
	if path == "-" {
		return Write(os.Stdout, q)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, q); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a query from a file path ("-" = stdin).
func ReadFile(path string) (*catalog.Query, error) {
	if path == "-" {
		return Read(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
