package qfile

import (
	"bytes"
	"errors"
	"testing"

	"joinopt/internal/catalog"
)

func sampleJSON(t *testing.T) []byte {
	t.Helper()
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 100},
			{Name: "b", Cardinality: 200},
		},
		Predicates: []catalog.Predicate{{Left: 0, Right: 1, Selectivity: 0.1}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, q); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadLimitUnderCap(t *testing.T) {
	b := sampleJSON(t)
	q, err := ReadLimit(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 2 {
		t.Fatalf("relations = %d", len(q.Relations))
	}
}

func TestReadLimitOverCap(t *testing.T) {
	b := sampleJSON(t)
	_, err := ReadLimit(bytes.NewReader(b), int64(len(b))-1)
	if !errors.Is(err, catalog.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}
