package plan

import (
	"math"
	"strings"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
)

func chooserFixture() (*Evaluator, *catalog.Query) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "big", Cardinality: 100000},
			{Name: "tiny", Cardinality: 2},
			{Name: "mid", Cardinality: 5000},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, Selectivity: 0.5},
			{Left: 0, Right: 2, Selectivity: 0.001},
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	return NewEvaluator(st, cost.NewChooser(), cost.Unlimited()), q
}

func TestDescribeStepsSumToCost(t *testing.T) {
	e, _ := chooserFixture()
	p := Perm{0, 1, 2}
	steps := Describe(e, p)
	if len(steps) != 2 {
		t.Fatalf("got %d steps", len(steps))
	}
	sum := 0.0
	for _, s := range steps {
		sum += s.Cost
	}
	if total := e.Cost(p); math.Abs(sum-total) > total*1e-9 {
		t.Fatalf("steps sum %g, plan cost %g", sum, total)
	}
}

func TestDescribeChoosesMethods(t *testing.T) {
	e, _ := chooserFixture()
	steps := Describe(e, Perm{0, 1, 2})
	// Joining the 2-tuple relation into a 100k outer: nested loop wins.
	if steps[0].Inner != 1 || steps[0].Method != "nested-loop" {
		t.Fatalf("step 0: %+v", steps[0])
	}
	for _, s := range steps {
		if s.Method == "" {
			t.Fatalf("step without method: %+v", s)
		}
		if s.ResultSize <= 0 || s.InnerSize <= 0 {
			t.Fatalf("degenerate sizes: %+v", s)
		}
	}
}

func TestDescribeSingleMethodModel(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 10}, {Cardinality: 10},
		},
		Predicates: []catalog.Predicate{{Left: 0, Right: 1, Selectivity: 0.1}},
	}
	q.Normalize()
	g := joingraph.New(q)
	e := NewEvaluator(estimate.NewStats(q, g), cost.NewMemoryModel(), cost.Unlimited())
	steps := Describe(e, Perm{0, 1})
	if steps[0].Method != "memory" {
		t.Fatalf("method %q", steps[0].Method)
	}
}

func TestDescribeDoesNotChargeBudget(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 10}, {Cardinality: 10},
		},
		Predicates: []catalog.Predicate{{Left: 0, Right: 1, Selectivity: 0.1}},
	}
	q.Normalize()
	g := joingraph.New(q)
	b := cost.NewBudget(100)
	e := NewEvaluator(estimate.NewStats(q, g), cost.NewMemoryModel(), b)
	Describe(e, Perm{0, 1})
	if b.Used() != 0 {
		t.Fatalf("Describe charged %d units", b.Used())
	}
}

func TestDescribeTrivial(t *testing.T) {
	e, _ := chooserFixture()
	if Describe(e, Perm{0}) != nil || Describe(e, nil) != nil {
		t.Fatal("trivial permutations should describe to nil")
	}
}

func TestExplainDetailed(t *testing.T) {
	e, q := chooserFixture()
	pl := Assemble(e, []Result{{Perm: Perm{0, 1, 2}, Cost: e.Cost(Perm{0, 1, 2})}})
	out := pl.ExplainDetailed(e, q)
	for _, want := range []string{"scan big", "tiny", "nested-loop", "result=", "total cost"} {
		if !strings.Contains(out, want) {
			t.Fatalf("detailed explain missing %q:\n%s", want, out)
		}
	}
}
