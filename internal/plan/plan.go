// Package plan represents outer linear (left-deep) join trees as
// permutations of relations, checks their validity (no cross product
// inside a connected component of the join graph), and prices them
// against a cost model while metering the optimization budget.
//
// Per the paper's §2, each join tree over one component is equivalently a
// permutation: the inner operand of every join is a base relation and the
// outer operand is the intermediate result of the prefix. Queries whose
// join graph has several components are handled by the "postpone cross
// products as late as possible" heuristic: each component is optimized
// separately and the component results are then joined by cross products.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"joinopt/internal/analysis/invariant"
	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
)

// EvalUnitsPerJoin is the budget charge per join inside a cost-function
// evaluation. A full evaluation step does strictly more work than the
// single-selectivity scans the heuristics and validity checks pay one
// unit for: size estimation plus cost-model arithmetic plus, in
// move-based search, candidate-state construction. The ratio sets the
// relative speed of heuristic state generation versus move-based
// descent, which is what positions the paper's AGI→IAI crossover;
// BenchmarkAblationUnitScale probes the overall budget scale's effect.
const EvalUnitsPerJoin = 4

// Perm is an ordering of relation IDs: the left-deep join order.
type Perm []catalog.RelID

// Clone returns a copy of the permutation.
func (p Perm) Clone() Perm {
	c := make(Perm, len(p))
	copy(c, p)
	return c
}

// String renders the permutation in the paper's notation, e.g.
// "(R0 R3 R1 R2)".
func (p Perm) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, r := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "R%d", r)
	}
	b.WriteByte(')')
	return b.String()
}

// FaultInjector is an optional test hook an Evaluator consults once per
// full cost evaluation. Implementations may panic (simulating a crash in
// cost-model or estimator code) or corrupt the returned cost (NaN/±Inf),
// and may cancel the budget on the side (starvation). The canonical
// implementation is internal/faultinject; the interface lives here so
// the plan package does not depend on the harness.
type FaultInjector interface {
	// Eval receives the computed total cost and returns the cost the
	// evaluator should report. It is called after the budget charge.
	Eval(cost float64) float64
}

// Evaluator prices permutations for one query under one cost model,
// debiting one budget unit per join costed. It is not safe for
// concurrent use; create one per goroutine.
type Evaluator struct {
	stats  *estimate.Stats
	model  cost.Model
	budget *cost.Budget
	prefix *estimate.Prefix
	fault  FaultInjector
}

// NewEvaluator returns an evaluator over the query statistics. budget
// may be cost.Unlimited().
func NewEvaluator(stats *estimate.Stats, model cost.Model, budget *cost.Budget) *Evaluator {
	return &Evaluator{
		stats:  stats,
		model:  model,
		budget: budget,
		prefix: estimate.NewPrefix(stats),
	}
}

// Stats returns the underlying statistics.
func (e *Evaluator) Stats() *estimate.Stats { return e.stats }

// Model returns the cost model.
func (e *Evaluator) Model() cost.Model { return e.model }

// Budget returns the shared budget.
func (e *Evaluator) Budget() *cost.Budget { return e.budget }

// SetFaultInjector installs (or, with nil, removes) a fault-injection
// hook consulted on every cost evaluation. Test-only machinery: the
// production path never sets one.
func (e *Evaluator) SetFaultInjector(fi FaultInjector) { e.fault = fi }

// Cost prices the permutation: the sum of join costs along the prefix.
// It charges EvalUnitsPerJoin budget units per join. Validity is not
// checked; an invalid permutation is priced with the implied cross
// products.
func (e *Evaluator) Cost(p Perm) float64 {
	e.prefix.Reset()
	total := 0.0
	for i, r := range p {
		outer, inner, result := e.prefix.Extend(r)
		if i == 0 {
			continue
		}
		total += e.model.JoinCost(outer, inner, result)
		e.budget.Charge(EvalUnitsPerJoin)
	}
	// +Inf is legitimate saturation (estimator overflow), NaN never is.
	// Asserted before fault injection: injected NaN is the test
	// machinery's deliberate poison and must pass through.
	if invariant.Enabled {
		invariant.NotNaN(total, "evaluator total cost")
	}
	if e.fault != nil {
		total = e.fault.Eval(total)
	}
	return total
}

// PrefixCost prices only the first k relations of p (k-1 joins),
// charging EvalUnitsPerJoin units per join. Used by local improvement
// to price cluster rearrangements cheaply.
func (e *Evaluator) PrefixCost(p Perm, k int) float64 {
	if k > len(p) {
		k = len(p)
	}
	e.prefix.Reset()
	total := 0.0
	for i := 0; i < k; i++ {
		outer, inner, result := e.prefix.Extend(p[i])
		if i == 0 {
			continue
		}
		total += e.model.JoinCost(outer, inner, result)
		e.budget.Charge(EvalUnitsPerJoin)
	}
	if invariant.Enabled {
		invariant.NotNaN(total, "evaluator prefix cost")
	}
	return total
}

// Valid reports whether p is a valid permutation of one component:
// every relation after the first joins with at least one predecessor.
// Each per-relation frontier check debits one budget unit — checking
// validity is adjacency work of the same order as a join-size
// computation, and it is a real cost of move-based search (most random
// swaps of a valid permutation are invalid, so descent pays for many
// checks per accepted move, exactly as wall-clock time charged the
// paper's optimizers).
func (e *Evaluator) Valid(p Perm) bool {
	if len(p) <= 1 {
		return true
	}
	e.prefix.Reset()
	e.prefix.Extend(p[0])
	for _, r := range p[1:] {
		e.budget.Charge(1)
		if !e.prefix.Joins(r) {
			return false
		}
		e.prefix.Extend(r)
	}
	return true
}

// ValidSuffixFrom reports whether p would remain valid if positions
// from..len(p)-1 keep their relations, assuming the prefix [0,from) is
// already known valid. Used to short-circuit move validity checks.
// Budget is charged per frontier check, as in Valid.
func (e *Evaluator) ValidSuffixFrom(p Perm, from int) bool {
	if from <= 0 {
		return e.Valid(p)
	}
	e.prefix.Reset()
	for i := 0; i < from; i++ {
		e.prefix.Extend(p[i])
	}
	for i := from; i < len(p); i++ {
		e.budget.Charge(1)
		if !e.prefix.Joins(p[i]) {
			return false
		}
		e.prefix.Extend(p[i])
	}
	return true
}

// Result carries an optimized permutation of one component with its cost.
type Result struct {
	Perm Perm
	Cost float64
}

// Degradation reasons recorded in Plan.DegradeReason. A run can degrade
// for several reasons at once; the recorded reason is the most severe
// (panic > cancellation > starvation).
const (
	// DegradePanic: a strategy phase panicked; the plan is the incumbent
	// found before the crash or a heuristic/random fallback.
	DegradePanic = "panic"
	// DegradeCancelled: the run was cancelled (context or Budget.Cancel)
	// before the strategy finished; the plan is the best found so far.
	DegradeCancelled = "cancelled"
	// DegradeStarved: the budget was exhausted (or the strategy produced
	// nothing) before any search result existed; the plan comes from the
	// deterministic augmentation fallback or a random valid state.
	DegradeStarved = "starved"
)

// Plan is a complete query evaluation plan: the per-component join
// orders (already optimized), the order in which component results are
// combined by cross products, and the total cost.
type Plan struct {
	// Components holds one optimized result per join-graph component, in
	// combination order (smallest result first, per the postpone-cross-
	// products heuristic).
	Components []Result
	// CrossCost is the cost of the cross-product joins combining the
	// component results (zero for connected queries).
	CrossCost float64
	// TotalCost is the sum of component costs plus CrossCost.
	TotalCost float64
	// Degraded reports that the optimizer could not complete normally —
	// it was cancelled, a phase panicked, or the budget starved before
	// any search result existed — and fell back per the anytime
	// contract. The plan is still valid and executable; Degraded flags
	// that its quality is whatever the fallback chain could salvage.
	// Ordinary unit-limit exhaustion is NOT degradation: stopping on
	// budget is the normal anytime stop.
	Degraded bool
	// DegradeReason is one of the Degrade* constants when Degraded, with
	// optional detail after a ": " separator (e.g. the panic value).
	DegradeReason string
}

// Order returns the full relation ordering of the plan: the
// concatenation of component permutations in combination order.
func (pl *Plan) Order() Perm {
	var out Perm
	for _, c := range pl.Components {
		out = append(out, c.Perm...)
	}
	return out
}

// Explain renders a human-readable description of the plan.
func (pl *Plan) Explain(q *catalog.Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: total cost %.6g\n", pl.TotalCost)
	if pl.Degraded {
		fmt.Fprintf(&b, "  DEGRADED (%s): the optimizer could not complete normally; this is the fallback plan\n", pl.DegradeReason)
	}
	for i, c := range pl.Components {
		fmt.Fprintf(&b, "  component %d (cost %.6g): ", i, c.Cost)
		for j, r := range c.Perm {
			if j > 0 {
				b.WriteString(" ⋈ ")
			}
			b.WriteString(q.RelationName(r))
		}
		b.WriteByte('\n')
	}
	if len(pl.Components) > 1 {
		fmt.Fprintf(&b, "  cross products: cost %.6g\n", pl.CrossCost)
	}
	return b.String()
}

// Assemble combines per-component optimized results into a full plan,
// pricing the cross products that join the component results. Component
// results are combined in order of increasing estimated size, which
// postpones the largest cross products as long as possible.
func Assemble(e *Evaluator, comps []Result) *Plan {
	pl := &Plan{Components: append([]Result(nil), comps...)}
	// Estimated final size of each component result.
	sizes := make([]float64, len(pl.Components))
	for i, c := range pl.Components {
		sizes[i] = componentSize(e.stats, c.Perm)
	}
	idx := make([]int, len(pl.Components))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return sizes[idx[a]] < sizes[idx[b]] })
	ordered := make([]Result, len(idx))
	for i, j := range idx {
		ordered[i] = pl.Components[j]
	}
	pl.Components = ordered

	total := 0.0
	for _, c := range pl.Components {
		total += c.Cost
	}
	// Cross products between component results.
	if len(pl.Components) > 1 {
		acc := componentSize(e.stats, pl.Components[0].Perm)
		for i := 1; i < len(pl.Components); i++ {
			sz := componentSize(e.stats, pl.Components[i].Perm)
			result := acc * sz
			pl.CrossCost += e.model.JoinCost(acc, sz, result)
			e.budget.Charge(1)
			acc = result
		}
	}
	pl.TotalCost = total + pl.CrossCost
	return pl
}

// componentSize estimates the result size of a component's permutation.
//
//ljqlint:allow budgetcharge -- assembly-time sizing outside the search loop; charging here would perturb the Used() counts the determinism tests pin
func componentSize(s *estimate.Stats, p Perm) float64 {
	pre := estimate.NewPrefix(s)
	for _, r := range p {
		pre.Extend(r)
	}
	return pre.Size()
}
