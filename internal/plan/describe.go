package plan

import (
	"fmt"
	"strings"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
)

// JoinStep describes one join of a left-deep plan: what is joined, the
// estimated sizes, the cost, and — when the cost model selects among
// join methods — which method was chosen.
type JoinStep struct {
	// Inner is the base relation joined at this step.
	Inner catalog.RelID
	// OuterSize, InnerSize and ResultSize are the estimated operand and
	// result cardinalities.
	OuterSize, InnerSize, ResultSize float64
	// Cost is this join's cost under the evaluator's model.
	Cost float64
	// Method names the join method ("hash", "nested-loop", ...); for
	// single-method models it is the model's name.
	Method string
}

// methodChooser is satisfied by cost models that select among join
// methods per join (cost.Chooser).
type methodChooser interface {
	Choose(outer, inner, result float64) (cost.Model, float64)
}

// Describe prices the permutation step by step, returning one JoinStep
// per join. No budget is charged: Describe explains an already-chosen
// plan, it is not part of the optimization loop.
//
//ljqlint:allow budgetcharge -- explain path, documented above as uncharged: it reports on a finished plan and never runs inside the metered search loop
func Describe(e *Evaluator, p Perm) []JoinStep {
	if len(p) < 2 {
		return nil
	}
	pre := estimate.NewPrefix(e.Stats())
	chooser, hasChooser := e.Model().(methodChooser)
	steps := make([]JoinStep, 0, len(p)-1)
	for i, r := range p {
		outer, inner, result := pre.Extend(r)
		if i == 0 {
			continue
		}
		st := JoinStep{
			Inner:      r,
			OuterSize:  outer,
			InnerSize:  inner,
			ResultSize: result,
		}
		if hasChooser {
			m, c := chooser.Choose(outer, inner, result)
			st.Method = m.Name()
			st.Cost = c
		} else {
			st.Method = e.Model().Name()
			st.Cost = e.Model().JoinCost(outer, inner, result)
		}
		steps = append(steps, st)
	}
	return steps
}

// ExplainDetailed renders the plan with per-join sizes, costs and
// chosen join methods.
func (pl *Plan) ExplainDetailed(e *Evaluator, q *catalog.Query) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: total cost %.6g\n", pl.TotalCost)
	for ci, c := range pl.Components {
		fmt.Fprintf(&b, "component %d (cost %.6g):\n", ci, c.Cost)
		if len(c.Perm) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  scan %s\n", q.RelationName(c.Perm[0]))
		for _, st := range Describe(e, c.Perm) {
			fmt.Fprintf(&b, "  ⋈ %-12s [%s]  outer=%.4g inner=%.4g result=%.4g cost=%.6g\n",
				q.RelationName(st.Inner), st.Method,
				st.OuterSize, st.InnerSize, st.ResultSize, st.Cost)
		}
	}
	if len(pl.Components) > 1 {
		fmt.Fprintf(&b, "cross products: cost %.6g\n", pl.CrossCost)
	}
	return b.String()
}
