package plan

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
)

// fixture builds a 4-relation chain query evaluator with an unlimited
// budget (unless one is supplied).
func fixture(b *cost.Budget) (*Evaluator, *catalog.Query) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 10},
			{Name: "b", Cardinality: 20},
			{Name: "c", Cardinality: 30},
			{Name: "d", Cardinality: 40},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, Selectivity: 0.1},
			{Left: 1, Right: 2, Selectivity: 0.1},
			{Left: 2, Right: 3, Selectivity: 0.1},
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	if b == nil {
		b = cost.Unlimited()
	}
	return NewEvaluator(st, cost.NewMemoryModel(), b), q
}

func TestPermString(t *testing.T) {
	p := Perm{2, 0, 1}
	if got := p.String(); got != "(R2 R0 R1)" {
		t.Fatalf("got %q", got)
	}
}

func TestPermClone(t *testing.T) {
	p := Perm{1, 2, 3}
	c := p.Clone()
	c[0] = 9
	if p[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestCostMatchesManualSum(t *testing.T) {
	e, _ := fixture(nil)
	m := cost.NewMemoryModel()
	p := Perm{0, 1, 2, 3}
	// Manual: sizes 10 → 10·20·0.1=20 → 20·30·0.1=60 → 60·40·0.1=240.
	want := m.JoinCost(10, 20, 20) + m.JoinCost(20, 30, 60) + m.JoinCost(60, 40, 240)
	if got := e.Cost(p); math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g, want %g", got, want)
	}
}

func TestCostChargesBudget(t *testing.T) {
	b := cost.NewBudget(1000)
	e, _ := fixture(b)
	e.Cost(Perm{0, 1, 2, 3})
	if got := b.Used(); got != 3*EvalUnitsPerJoin {
		t.Fatalf("charged %d units, want %d", got, 3*EvalUnitsPerJoin)
	}
}

func TestValid(t *testing.T) {
	e, _ := fixture(nil)
	cases := []struct {
		p    Perm
		want bool
	}{
		{Perm{0, 1, 2, 3}, true},
		{Perm{3, 2, 1, 0}, true},
		{Perm{1, 0, 2, 3}, true},
		{Perm{0, 2, 1, 3}, false}, // 2 does not join {0}
		{Perm{0, 3, 1, 2}, false},
		{Perm{0}, true},
		{Perm{}, true},
	}
	for _, tc := range cases {
		if got := e.Valid(tc.p); got != tc.want {
			t.Errorf("Valid(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestValidSuffixFromAgreesWithValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, _ := fixture(nil)
		p := Perm{0, 1, 2, 3}
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		from := rng.Intn(len(p))
		// ValidSuffixFrom assumes the prefix is valid; emulate a caller
		// that knows the full answer.
		full := e.Valid(p)
		prefixValid := e.Valid(p[:from])
		if !prefixValid {
			return true // precondition not met; nothing to check
		}
		return e.ValidSuffixFrom(p, from) == full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixCostIsPrefixOfCost(t *testing.T) {
	e, _ := fixture(nil)
	p := Perm{0, 1, 2, 3}
	full := e.Cost(p)
	if got := e.PrefixCost(p, 4); math.Abs(got-full) > 1e-9 {
		t.Fatalf("PrefixCost(all) = %g, want %g", got, full)
	}
	k2 := e.PrefixCost(p, 2)
	m := cost.NewMemoryModel()
	if want := m.JoinCost(10, 20, 20); math.Abs(k2-want) > 1e-9 {
		t.Fatalf("PrefixCost(2) = %g, want %g", k2, want)
	}
	if got := e.PrefixCost(p, 99); math.Abs(got-full) > 1e-9 {
		t.Fatal("PrefixCost clamps k at len(p)")
	}
}

func TestPlanOrderAndExplain(t *testing.T) {
	e, q := fixture(nil)
	pl := Assemble(e, []Result{{Perm: Perm{0, 1, 2, 3}, Cost: 42}})
	if len(pl.Order()) != 4 {
		t.Fatalf("order covers %d relations", len(pl.Order()))
	}
	if pl.TotalCost != 42 || pl.CrossCost != 0 {
		t.Fatalf("single component totals: %g / %g", pl.TotalCost, pl.CrossCost)
	}
	ex := pl.Explain(q)
	for _, name := range []string{"a", "b", "c", "d"} {
		if !strings.Contains(ex, name) {
			t.Fatalf("explain missing %q:\n%s", name, ex)
		}
	}
	if strings.Contains(ex, "cross products") {
		t.Fatal("single-component plan mentions cross products")
	}
}

// disconnected builds a query whose join graph has two components:
// {0,1} and {2,3}.
func disconnected() (*Evaluator, *catalog.Query) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 10},
			{Name: "b", Cardinality: 20},
			{Name: "c", Cardinality: 1000},
			{Name: "d", Cardinality: 2000},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, Selectivity: 0.1},
			{Left: 2, Right: 3, Selectivity: 0.001},
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	return NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited()), q
}

func TestAssembleOrdersComponentsBySize(t *testing.T) {
	e, _ := disconnected()
	// Component {2,3} result: 1000·2000·0.001 = 2000 tuples;
	// component {0,1}: 10·20·0.1 = 20 tuples → {0,1} must come first.
	pl := Assemble(e, []Result{
		{Perm: Perm{2, 3}, Cost: 5},
		{Perm: Perm{0, 1}, Cost: 3},
	})
	if pl.Components[0].Perm[0] != 0 {
		t.Fatalf("smaller component not first: %v", pl.Components[0].Perm)
	}
	if pl.CrossCost <= 0 {
		t.Fatal("cross product not priced")
	}
	wantCross := cost.NewMemoryModel().JoinCost(20, 2000, 40000)
	if math.Abs(pl.CrossCost-wantCross) > 1e-9 {
		t.Fatalf("cross cost %g, want %g", pl.CrossCost, wantCross)
	}
	if math.Abs(pl.TotalCost-(8+wantCross)) > 1e-9 {
		t.Fatalf("total %g", pl.TotalCost)
	}
	if !strings.Contains(pl.Explain(e.Stats().Query()), "cross products") {
		t.Fatal("explain omits cross products")
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	b := cost.NewBudget(5)
	e, _ := fixture(b)
	if e.Budget() != b {
		t.Fatal("Budget accessor")
	}
	if e.Model().Name() != "memory" {
		t.Fatal("Model accessor")
	}
	if e.Stats() == nil {
		t.Fatal("Stats accessor")
	}
}
