package plancache

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"joinopt/internal/plan"
)

// key fabricates a distinct fingerprint from an integer.
func key(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[2] = byte(i >> 16)
	k[31] = 0xaa
	return k
}

func entry(i int, budget int64) *Entry {
	return &Entry{
		Fingerprint: key(i),
		Plan:        &plan.Plan{TotalCost: float64(i)},
		BudgetUsed:  budget,
	}
}

func TestPutGetLRU(t *testing.T) {
	c := New(Config{Capacity: 4, Shards: 1})
	for i := 0; i < 4; i++ {
		if !c.Put(entry(i, 10)) {
			t.Fatalf("entry %d not admitted", i)
		}
	}
	// Touch 0 so 1 becomes LRU; insert 4 and expect 1 evicted.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("entry 0 missing")
	}
	if !c.Put(entry(4, 10)) {
		t.Fatal("entry 4 not admitted")
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("LRU entry 1 should have been evicted")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if _, ok := c.Get(key(i)); !ok {
			t.Fatalf("entry %d should be cached", i)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4", st.Entries)
	}
}

func TestCostAwareAdmission(t *testing.T) {
	c := New(Config{Capacity: 2, Shards: 1, CostAware: true, AdmissionScan: 2})
	c.Put(entry(0, 1000))
	c.Put(entry(1, 2000))
	// A cheap candidate may not displace expensive incumbents.
	if c.Put(entry(2, 10)) {
		t.Fatal("cheap candidate displaced an expensive incumbent")
	}
	if c.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	// An expensive candidate evicts the LRU (entry 0).
	if !c.Put(entry(3, 5000)) {
		t.Fatal("expensive candidate rejected")
	}
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("entry 0 should have been evicted")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("entry 1 should survive")
	}
}

func TestDegradedNotAdmitted(t *testing.T) {
	c := New(Config{Capacity: 4, Shards: 1})
	e := entry(0, 10)
	e.Plan.Degraded = true
	e.Plan.DegradeReason = plan.DegradeCancelled
	if c.Put(e) {
		t.Fatal("degraded plan admitted")
	}
	ca := New(Config{Capacity: 4, Shards: 1, AdmitDegraded: true})
	if !ca.Put(e) {
		t.Fatal("AdmitDegraded cache refused degraded plan")
	}
}

func TestGetOrComputeFlow(t *testing.T) {
	c := New(Config{Capacity: 8, Shards: 2})
	ctx := context.Background()
	calls := 0
	compute := func(context.Context) (*Entry, error) {
		calls++
		return entry(7, 42), nil
	}
	e, hit, shared, err := c.GetOrCompute(ctx, key(7), compute)
	if err != nil || hit || shared || e == nil || e.BudgetUsed != 42 {
		t.Fatalf("first call: e=%v hit=%v shared=%v err=%v", e, hit, shared, err)
	}
	e, hit, _, err = c.GetOrCompute(ctx, key(7), compute)
	if err != nil || !hit || e == nil {
		t.Fatalf("second call: hit=%v err=%v", hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestGetOrComputeError(t *testing.T) {
	c := New(Config{Capacity: 8, Shards: 1})
	boom := errors.New("boom")
	_, _, _, err := c.GetOrCompute(context.Background(), key(1), func(context.Context) (*Entry, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Errors are not cached: the next call recomputes.
	e, hit, _, err := c.GetOrCompute(context.Background(), key(1), func(context.Context) (*Entry, error) {
		return entry(1, 5), nil
	})
	if err != nil || hit || e == nil {
		t.Fatalf("retry after error: e=%v hit=%v err=%v", e, hit, err)
	}
}

func TestGetOrComputePanicIsolated(t *testing.T) {
	c := New(Config{Capacity: 8, Shards: 1})
	_, _, _, err := c.GetOrCompute(context.Background(), key(2), func(context.Context) (*Entry, error) {
		panic("injected crash")
	})
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	// The flight must be cleared so the key is computable again.
	e, _, _, err := c.GetOrCompute(context.Background(), key(2), func(context.Context) (*Entry, error) {
		return entry(2, 5), nil
	})
	if err != nil || e == nil {
		t.Fatalf("key wedged after panic: %v", err)
	}
}

// TestWaiterHonorsOwnDeadline: a coalesced waiter with a short deadline
// must not wait for a slow flight.
func TestWaiterHonorsOwnDeadline(t *testing.T) {
	c := New(Config{Capacity: 8, Shards: 1})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer func() { recover() }() // test goroutine barrier (panicguard)
		defer close(leaderDone)
		_, _, _, _ = c.GetOrCompute(context.Background(), key(3), func(context.Context) (*Entry, error) {
			<-release
			return entry(3, 9), nil
		})
	}()
	// Wait until the flight is registered.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never registered")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, shared, err := c.GetOrCompute(ctx, key(3), func(context.Context) (*Entry, error) {
		t.Error("waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", err)
	}
	if !shared {
		t.Fatal("waiter should have been coalesced")
	}
	if time.Since(start) > time.Second {
		t.Fatal("waiter did not honor its own deadline promptly")
	}
	close(release)
	<-leaderDone
	// The flight's result must still have been cached for future hits.
	if _, ok := c.Get(key(3)); !ok {
		t.Fatal("flight result was not cached after waiter timeout")
	}
}

// TestSingleflightStress hammers the cache from 32 goroutines with
// overlapping fingerprints and asserts exactly one compute per key and
// no lost deadlines. Run under -race in CI.
func TestSingleflightStress(t *testing.T) {
	const (
		goroutines = 32
		keys       = 8
		rounds     = 25
	)
	c := New(Config{Capacity: 256, Shards: 4})
	var computes [keys]atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("goroutine %d panicked: %v", g, r)
				}
				wg.Done()
			}()
			<-gate
			for r := 0; r < rounds; r++ {
				ki := (g + r) % keys
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				e, _, _, err := c.GetOrCompute(ctx, key(ki), func(context.Context) (*Entry, error) {
					computes[ki].Add(1)
					time.Sleep(time.Duration(ki%3) * time.Millisecond)
					return entry(ki, int64(100+ki)), nil
				})
				cancel()
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
				if e == nil || e.Fingerprint != key(ki) {
					errs <- fmt.Errorf("goroutine %d round %d: wrong entry", g, r)
					return
				}
			}
		}(g)
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for ki := 0; ki < keys; ki++ {
		if n := computes[ki].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want exactly 1", ki, n)
		}
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
	if st.Hits+st.Coalesced+st.Misses != goroutines*rounds {
		t.Errorf("hits(%d)+coalesced(%d)+misses(%d) != %d requests",
			st.Hits, st.Coalesced, st.Misses, goroutines*rounds)
	}
}

// TestShardDistribution: hash-distributed fingerprints spread across
// shards (the shard selector reads the fingerprint's leading bytes,
// which for real keys — SHA-256 outputs — are uniform).
func TestShardDistribution(t *testing.T) {
	c := New(Config{Capacity: 4096, Shards: 8})
	for i := 0; i < 512; i++ {
		k := Key(sha256.Sum256([]byte{byte(i), byte(i >> 8)}))
		c.Put(&Entry{Fingerprint: k, Plan: &plan.Plan{}, BudgetUsed: 1})
	}
	st := c.Stats()
	for i, n := range st.Shards {
		if n == 0 {
			t.Errorf("shard %d received no entries", i)
		}
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := New(Config{Capacity: 1024})
	k := key(5)
	c.Put(&Entry{Fingerprint: k, Plan: &plan.Plan{TotalCost: 1}, BudgetUsed: 100})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkGetOrComputeHit(b *testing.B) {
	c := New(Config{Capacity: 1024})
	k := key(6)
	ctx := context.Background()
	c.Put(&Entry{Fingerprint: k, Plan: &plan.Plan{TotalCost: 1}, BudgetUsed: 100})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hit, _, err := c.GetOrCompute(ctx, k, func(context.Context) (*Entry, error) {
			b.Fatal("must not compute")
			return nil, nil
		})
		if err != nil || !hit {
			b.Fatal("miss")
		}
	}
}

func tierEntry(i int, budget int64, tier uint8) *Entry {
	e := entry(i, budget)
	e.Tier = tier
	return e
}

func TestTierUpgradeOnlyReplacement(t *testing.T) {
	c := New(Config{Capacity: 8, Shards: 1})

	// Tier-1 in, Tier-2 upgrade replaces it.
	if !c.Put(tierEntry(1, 10, TierGreedy)) {
		t.Fatal("greedy entry not admitted")
	}
	up := tierEntry(1, 500, TierFull)
	up.Plan = &plan.Plan{TotalCost: 999}
	if !c.Put(up) {
		t.Fatal("tier upgrade not admitted")
	}
	got, ok := c.Get(key(1))
	if !ok || got.Tier != TierFull || got.Plan.TotalCost != 999 {
		t.Fatalf("upgrade did not land: %+v", got)
	}
	if got.BudgetUsed != 500 {
		t.Fatalf("upgraded BudgetUsed = %d, want 500", got.BudgetUsed)
	}

	// A late greedy insert (the singleflight race) must be refused and
	// counted, leaving the Tier-2 plan untouched.
	if c.Put(tierEntry(1, 10_000, TierGreedy)) {
		t.Fatal("greedy insert downgraded a Tier-2 entry")
	}
	got, _ = c.Get(key(1))
	if got.Tier != TierFull || got.Plan.TotalCost != 999 {
		t.Fatalf("Tier-2 entry clobbered by late greedy insert: %+v", got)
	}
	if st := c.Stats(); st.TierRejected != 1 {
		t.Fatalf("TierRejected = %d, want 1", st.TierRejected)
	}

	// Legacy untagged entries (Tier 0) rank as full: greedy must not
	// replace them either.
	if !c.Put(tierEntry(2, 50, 0)) {
		t.Fatal("legacy entry not admitted")
	}
	if c.Put(tierEntry(2, 50, TierGreedy)) {
		t.Fatal("greedy insert replaced a legacy (rank-full) entry")
	}

	// Upgrades keep the larger budget weight when the old entry's is
	// bigger (total search spent on the shape).
	if !c.Put(tierEntry(3, 700, TierGreedy)) {
		t.Fatal("greedy entry 3 not admitted")
	}
	if !c.Put(tierEntry(3, 40, TierFull)) {
		t.Fatal("upgrade of entry 3 not admitted")
	}
	got, _ = c.Get(key(3))
	if got.Tier != TierFull || got.BudgetUsed != 700 {
		t.Fatalf("upgrade lost budget weight: tier=%d budget=%d, want tier=%d budget=700", got.Tier, got.BudgetUsed, TierFull)
	}
}

func TestTierCounts(t *testing.T) {
	c := New(Config{Capacity: 16, Shards: 2})
	for i := 0; i < 3; i++ {
		c.Put(tierEntry(i, 10, TierGreedy))
	}
	c.Put(tierEntry(10, 10, TierFull))
	c.Put(tierEntry(11, 10, 0)) // legacy counts as full
	g, f := c.TierCounts()
	if g != 3 || f != 2 {
		t.Fatalf("TierCounts = (%d, %d), want (3, 2)", g, f)
	}
	// Upgrading one greedy entry shifts the composition.
	c.Put(tierEntry(0, 20, TierFull))
	g, f = c.TierCounts()
	if g != 2 || f != 3 {
		t.Fatalf("after upgrade TierCounts = (%d, %d), want (2, 3)", g, f)
	}
}

func TestTierRank(t *testing.T) {
	if TierRank(0) != TierFull {
		t.Fatal("zero tier must rank as full")
	}
	if TierRank(TierGreedy) != TierGreedy || TierRank(TierFull) != TierFull {
		t.Fatal("explicit tiers must rank as themselves")
	}
}

func TestEvictWhereTargetsExactlyMatchingKeys(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 4})
	for i := 0; i < 20; i++ {
		if !c.Put(entry(i, 10)) {
			t.Fatalf("entry %d not admitted", i)
		}
	}
	// Evict the even keys: the rebalancer's "arcs I no longer own"
	// predicate in miniature.
	n := c.EvictWhere(func(k Key) bool { return k[0]%2 == 0 })
	if n != 10 {
		t.Fatalf("EvictWhere removed %d, want 10", n)
	}
	for i := 0; i < 20; i++ {
		_, ok := c.Peek(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("entry %d present=%v, want %v", i, ok, want)
		}
	}
	st := c.Stats()
	if st.TargetedEvictions != 10 {
		t.Fatalf("targetedEvictions = %d, want 10", st.TargetedEvictions)
	}
	if st.Evictions != 0 {
		t.Fatalf("capacity evictions = %d: targeted eviction leaked into the capacity counter", st.Evictions)
	}
	if st.Entries != 10 {
		t.Fatalf("entries = %d, want 10", st.Entries)
	}
}

// TestEvictWhereSkipsInFlightKeys: a key with an in-flight
// singleflight computation is never evicted mid-flight — the predicate
// may claim it, but the eviction pass must leave it alone so waiters
// land on a consistent entry.
func TestEvictWhereSkipsInFlightKeys(t *testing.T) {
	c := New(Config{Capacity: 64, Shards: 1})
	c.Put(entry(1, 10))

	computing := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _, err := c.GetOrCompute(context.Background(), key(2), func(context.Context) (*Entry, error) {
			close(computing)
			<-release
			return entry(2, 10), nil
		})
		if err != nil {
			t.Errorf("GetOrCompute: %v", err)
		}
	}()
	<-computing

	// Predicate claims everything; only the settled entry may go.
	if n := c.EvictWhere(func(Key) bool { return true }); n != 1 {
		t.Fatalf("EvictWhere removed %d, want 1 (the settled entry only)", n)
	}
	close(release)
	<-done
	if _, ok := c.Peek(key(2)); !ok {
		t.Fatal("in-flight entry lost: eviction raced the singleflight")
	}
}

// TestWarmConcurrentWithLiveGets: Warm (bulk snapshot/arc ingest) must
// be safe against concurrent readers of the same keys — the cluster
// pushes arcs into serving nodes while traffic reads them.
func TestWarmConcurrentWithLiveGets(t *testing.T) {
	c := New(Config{Capacity: 4096, Shards: 8})
	const keys = 256
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key((i + g) % keys)
				if e, ok := c.Get(k); ok && e.Plan == nil {
					t.Error("Get observed a torn entry")
					return
				}
			}
		}(g)
	}
	for round := 0; round < 8; round++ {
		for i := 0; i < keys; i++ {
			c.Warm(entry(i, int64(10+round)))
		}
	}
	close(stop)
	wg.Wait()
	if st := c.Stats(); st.Entries != keys {
		t.Fatalf("entries = %d, want %d", st.Entries, keys)
	}
}
