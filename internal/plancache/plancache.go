// Package plancache is the serving layer's memory of past
// optimizations: a sharded LRU cache of optimized plans keyed by
// canonical query fingerprint (internal/fingerprint), with a
// hand-rolled singleflight layer that coalesces concurrent misses for
// the same key into exactly one optimizer run.
//
// Design points:
//
//   - Sharding: a power-of-two number of shards, each with its own
//     mutex, LRU list and in-flight table; the shard is selected from
//     the first fingerprint bytes, so contention scales with
//     concurrency, not with cache size.
//   - Singleflight: the first miss for a key becomes the leader and
//     runs the compute function on a worker goroutine (behind a
//     recover barrier); every concurrent request for the same key —
//     including the leader — waits for either the shared result or its
//     own context, whichever comes first. Losers therefore still honor
//     their own deadlines: a waiter whose context expires returns
//     ctx.Err() immediately while the flight continues for the others.
//   - Cost-aware admission: optionally, an entry is only admitted by
//     evicting a victim whose recorded search budget is not larger
//     than the candidate's — a plan that took 10M units to find is not
//     displaced by one that took 10k. If no admissible victim is found
//     within the scan window the candidate is simply not cached (it is
//     still returned to its requesters).
//   - Degraded plans (cancelled, panicked, starved runs — see the
//     anytime contract in internal/plan) are never admitted unless
//     AdmitDegraded is set: a plan truncated by one caller's deadline
//     must not become every future caller's answer.
//
// Statistics are atomic counters (hits, misses, coalesced waiters,
// evictions, admission rejections) plus per-shard sizes, snapshotted
// by Stats for /statusz and expvar export.
package plancache

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"joinopt/internal/fingerprint"
	"joinopt/internal/plan"
	"joinopt/internal/telemetry"
)

// Key is the cache key: a canonical query fingerprint.
type Key = fingerprint.Fingerprint

// Entry is one cached optimization result. Plan permutations are
// expressed in *canonical* relation coordinates (position i of the
// fingerprint's canonical order), so one entry serves every query
// isomorphic to the one that populated it; the serve layer translates
// back into each requester's labeling.
type Entry struct {
	// Fingerprint is the key the entry is stored under.
	Fingerprint Key
	// Plan is the optimized plan in canonical coordinates.
	Plan *plan.Plan
	// BudgetUsed is the number of budget units the optimizer spent
	// finding the plan — the entry's replacement-resistance weight
	// under cost-aware admission.
	BudgetUsed int64
	// Tier records which planning tier produced the plan: TierGreedy
	// for the fast-path greedy planner, TierFull for the full anytime
	// search. Zero (entries from before tiering existed) ranks as
	// TierFull — see TierRank. Replacement is upgrade-only: an entry
	// never moves to a lower-ranked tier in place.
	Tier uint8
}

// Planning tiers, ordered by rank: a higher tier may replace a lower
// one under the same key, never the reverse.
const (
	// TierGreedy marks plans from the Tier-1 greedy fast path
	// (internal/greedy): served immediately on a miss, upgraded in the
	// background.
	TierGreedy uint8 = 1
	// TierFull marks plans from the full anytime search
	// (internal/core).
	TierFull uint8 = 2
)

// TierRank maps an entry's Tier to its replacement rank. The zero Tier
// (entries persisted or constructed before tiering) ranks as TierFull:
// those plans came from the full search, and warm-started snapshots
// must not be clobbered by greedy plans after an upgrade.
func TierRank(t uint8) uint8 {
	if t == 0 {
		return TierFull
	}
	return t
}

// Config tunes a cache.
type Config struct {
	// Capacity is the total entry budget across shards (default 1024,
	// minimum 1 per shard).
	Capacity int
	// Shards is rounded up to a power of two (default 16).
	Shards int
	// CostAware enables cost-aware admission: an incoming entry may
	// only evict a victim whose BudgetUsed does not exceed its own.
	CostAware bool
	// AdmissionScan is how many LRU-end entries are considered as
	// eviction victims under CostAware before the candidate is
	// rejected (default 4).
	AdmissionScan int
	// AdmitDegraded admits plans flagged Degraded (default false:
	// degraded plans are returned to their requesters but not cached).
	AdmitDegraded bool
	// Trace, if non-nil, receives cache hit/miss/coalesce events. Hits
	// are stamped with the cached entry's BudgetUsed (the work units the
	// served plan originally cost to find — the cache's whole value
	// proposition in one number); misses and coalesces carry 0, since no
	// budget meter exists yet at that point. nil is the zero-overhead
	// path.
	Trace *telemetry.Tracer
}

func (c *Config) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	c.Shards = ceilPow2(c.Shards)
	if c.AdmissionScan <= 0 {
		c.AdmissionScan = 4
	}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Stats is an atomic snapshot of cache counters, JSON-ready for
// /statusz and expvar.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	Rejected  uint64 `json:"rejected"`
	// Warmed counts entries admitted through the recovery path (Warm)
	// rather than by live optimizations.
	Warmed uint64 `json:"warmed"`
	// TierRejected counts inserts refused because they would downgrade
	// an entry to a lower planning tier (a late greedy result arriving
	// after the background upgrade already landed).
	TierRejected uint64 `json:"tierRejected"`
	// TargetedEvictions counts entries removed by EvictWhere (cluster
	// ownership eviction on ring epoch changes), separate from
	// capacity-pressure Evictions.
	TargetedEvictions uint64 `json:"targetedEvictions"`
	Entries           int    `json:"entries"`
	InFlight          int    `json:"inFlight"`
	Shards            []int  `json:"shardEntries"`
}

// Hooks observe cache mutations, for the durability layer
// (internal/persist journals admissions and snapshots the surviving
// set). Hooks run after the shard lock is released — an OnAdmit that
// fsyncs a journal must not serialize unrelated shards — so a hook
// observes admissions in per-key order but not in a global total
// order. Hooks must not call back into the cache for the same key.
type Hooks struct {
	// OnAdmit fires after e is admitted (inserted or refreshed in
	// place). Warm-path admissions (recovery) do not fire it.
	OnAdmit func(e *Entry)
	// OnEvict fires after victim is displaced to admit another entry.
	OnEvict func(victim *Entry)
}

// Cache is a sharded LRU plan cache with request coalescing. The zero
// value is not usable; construct with New.
type Cache struct {
	shards   []shard
	mask     uint64
	perShard int

	costAware     bool
	admissionScan int
	admitDegraded bool
	trace         *telemetry.Tracer
	hooks         atomic.Pointer[Hooks]

	hits         atomic.Uint64
	misses       atomic.Uint64
	coalesced    atomic.Uint64
	evictions    atomic.Uint64
	rejected     atomic.Uint64
	warmed       atomic.Uint64
	tierRejected atomic.Uint64
	// targetedEvictions counts EvictWhere removals (cluster ownership
	// eviction), distinct from capacity-pressure evictions.
	targetedEvictions atomic.Uint64
}

// New builds a cache from cfg (zero value = defaults).
func New(cfg Config) *Cache {
	cfg.fill()
	per := cfg.Capacity / cfg.Shards
	if per < 1 {
		per = 1
	}
	c := &Cache{
		shards:        make([]shard, cfg.Shards),
		mask:          uint64(cfg.Shards - 1),
		perShard:      per,
		costAware:     cfg.CostAware,
		admissionScan: cfg.AdmissionScan,
		admitDegraded: cfg.AdmitDegraded,
		trace:         cfg.Trace,
	}
	for i := range c.shards {
		c.shards[i].init()
	}
	return c
}

//ljqlint:hotpath
func (c *Cache) shardOf(k Key) *shard {
	// The fingerprint is a cryptographic hash; its first bytes are
	// uniformly distributed, so they select the shard directly.
	idx := (uint64(k[0]) | uint64(k[1])<<8 | uint64(k[2])<<16 | uint64(k[3])<<24) & c.mask
	return &c.shards[idx]
}

// Get returns the cached entry, if present, bumping its recency.
//
//ljqlint:hotpath
func (c *Cache) Get(k Key) (*Entry, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	n, ok := s.items[k]
	if ok {
		s.moveFront(n)
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if tr := c.trace; tr != nil {
			tr.Emit(telemetry.EvCacheHit, n.entry.BudgetUsed, "")
		}
		return n.entry, true
	}
	c.misses.Add(1)
	if tr := c.trace; tr != nil {
		tr.Emit(telemetry.EvCacheMiss, 0, "")
	}
	return nil, false
}

// Peek returns the cached entry without bumping recency or touching
// the hit/miss counters: a pure read for observers that must not
// distort the LRU order or the cache's serving statistics (the cluster
// router's read-repair comparison, tests).
func (c *Cache) Peek(k Key) (*Entry, bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	n, ok := s.items[k]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return n.entry, true
}

// EvictWhere removes every cached entry whose key satisfies pred and
// returns how many were removed — the cluster rebalancer's ownership
// eviction: when an epoch change moves an arc away, the old owner
// drops exactly the fingerprints it no longer owns. Keys with an
// in-flight singleflight computation are skipped (the flight's finish
// will re-insert momentarily; evicting under it would only thrash),
// as are keys whose pred says keep. Removals are counted in
// Stats.TargetedEvictions, separate from capacity evictions. Hooks do
// not fire: ownership eviction is not a capacity displacement, and the
// durability layer's next compacting snapshot (built from Dump)
// reflects the shrunken set naturally.
func (c *Cache) EvictWhere(pred func(Key) bool) int {
	evicted := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var victims []*node
		//ljqlint:allow detrand -- victim selection is order-independent: the evicted SET is pred-determined, and counters are sums
		for k, n := range s.items {
			if _, inFlight := s.flights[k]; inFlight {
				continue
			}
			if pred(k) {
				victims = append(victims, n)
			}
		}
		for _, n := range victims {
			s.remove(n)
			delete(s.items, n.entry.Fingerprint)
		}
		s.mu.Unlock()
		evicted += len(victims)
	}
	if evicted > 0 {
		c.targetedEvictions.Add(uint64(evicted))
	}
	return evicted
}

// SetHooks installs (or with a zero Hooks, clears) the mutation
// observers. Typically called once at startup, after recovery has
// warmed the cache and before traffic — installing the journal hook
// first would re-journal every recovered entry.
func (c *Cache) SetHooks(h Hooks) {
	c.hooks.Store(&h)
}

// fireHooks invokes the installed observers for one completed insert,
// outside the shard lock.
func (c *Cache) fireHooks(stored, victim *Entry) {
	h := c.hooks.Load()
	if h == nil {
		return
	}
	if victim != nil && h.OnEvict != nil {
		h.OnEvict(victim)
	}
	if stored != nil && h.OnAdmit != nil {
		h.OnAdmit(stored)
	}
}

// Put inserts e under its fingerprint, applying the admission policy.
// It reports whether the entry was admitted.
func (c *Cache) Put(e *Entry) bool {
	if e == nil || e.Plan == nil {
		return false
	}
	if e.Plan.Degraded && !c.admitDegraded {
		c.rejected.Add(1)
		return false
	}
	s := c.shardOf(e.Fingerprint)
	s.mu.Lock()
	stored, victim := c.insertLocked(s, e)
	s.mu.Unlock()
	c.fireHooks(stored, victim)
	return stored != nil
}

// Warm admits e through the normal admission policy without firing
// hooks: the recovery path (internal/persist) replays journaled
// entries through Warm so they are not immediately re-journaled.
// Degraded plans are still refused (defense in depth: the journal
// never contains them, but a warmed entry must satisfy the same
// invariants as an admitted one).
func (c *Cache) Warm(e *Entry) bool {
	if e == nil || e.Plan == nil {
		return false
	}
	if e.Plan.Degraded && !c.admitDegraded {
		c.rejected.Add(1)
		return false
	}
	s := c.shardOf(e.Fingerprint)
	s.mu.Lock()
	stored, _ := c.insertLocked(s, e)
	s.mu.Unlock()
	if stored != nil {
		c.warmed.Add(1)
	}
	return stored != nil
}

// Dump returns a copy of the current entry set, sorted by fingerprint
// bytes. The sort makes persisted snapshots byte-stable: two dumps of
// the same logical state serialize identically regardless of shard
// map iteration order. Entries are the live pointers (entries are
// immutable once admitted); the slice is the caller's.
func (c *Cache) Dump() []*Entry {
	var out []*Entry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		//ljqlint:allow detrand -- map-order iteration is made deterministic by the fingerprint sort below
		for _, n := range s.items {
			out = append(out, n.entry)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		return bytes.Compare(out[a].Fingerprint[:], out[b].Fingerprint[:]) < 0
	})
	return out
}

// insertLocked performs insert-with-eviction under the shard lock.
// stored is the entry now held under the key (nil if admission was
// refused); victim is the entry evicted to make room, if any.
func (c *Cache) insertLocked(s *shard, e *Entry) (stored, victim *Entry) {
	if n, ok := s.items[e.Fingerprint]; ok {
		er, nr := TierRank(n.entry.Tier), TierRank(e.Tier)
		switch {
		case nr < er:
			// Upgrade-only replacement: a lower-tier plan never
			// displaces a higher-tier one. This is also what makes the
			// background upgrade safe against the singleflight: if the
			// Tier-2 upgrade lands while the original greedy flight is
			// still finishing, the flight's late Tier-1 insert is
			// refused here instead of clobbering the better plan.
			c.tierRejected.Add(1)
			return nil, nil
		case nr > er:
			// Tier upgrade: the new plan wins wholesale, keeping the
			// larger budget weight (the shape has had that much search
			// spent on it in total).
			if n.entry.BudgetUsed > e.BudgetUsed {
				e = &Entry{Fingerprint: e.Fingerprint, Plan: e.Plan, BudgetUsed: n.entry.BudgetUsed, Tier: e.Tier}
			}
			n.entry = e
		case e.BudgetUsed > n.entry.BudgetUsed:
			// Same tier, refresh in place: a newer optimization of the
			// same shape replaces the old plan (keep the larger budget
			// weight).
			n.entry = e
		default:
			old := n.entry
			n.entry = &Entry{Fingerprint: old.Fingerprint, Plan: e.Plan, BudgetUsed: old.BudgetUsed, Tier: old.Tier}
		}
		s.moveFront(n)
		return n.entry, nil
	}
	if len(s.items) >= c.perShard {
		v := s.evictionVictim(c.costAware, c.admissionScan, e.BudgetUsed)
		if v == nil {
			c.rejected.Add(1)
			return nil, nil
		}
		s.remove(v)
		delete(s.items, v.entry.Fingerprint)
		c.evictions.Add(1)
		victim = v.entry
	}
	n := &node{entry: e}
	s.items[e.Fingerprint] = n
	s.pushFront(n)
	return e, victim
}

// GetOrCompute returns the entry for k, computing it at most once per
// concurrent burst: one caller becomes the leader (its compute runs on
// a worker goroutine under the leader's ctx), the rest coalesce onto
// the shared result. Coalesced losers still honor their own ctx: if a
// waiter's ctx expires first, its GetOrCompute returns ctx.Err() while
// the flight continues for the remaining waiters. The leader instead
// waits for its flight to resolve — the flight runs under the leader's
// ctx, so its deadline bounds the computation transitively (compute
// functions must be ctx-aware, as core.Optimizer.RunContext is).
//
// hit reports a cache hit; shared reports that the result came from a
// flight started by another request.
func (c *Cache) GetOrCompute(ctx context.Context, k Key, compute func(ctx context.Context) (*Entry, error)) (e *Entry, hit, shared bool, err error) {
	s := c.shardOf(k)
	s.mu.Lock()
	if n, ok := s.items[k]; ok {
		s.moveFront(n)
		s.mu.Unlock()
		c.hits.Add(1)
		if tr := c.trace; tr != nil {
			tr.Emit(telemetry.EvCacheHit, n.entry.BudgetUsed, "")
		}
		return n.entry, true, false, nil
	}
	if fl, ok := s.flights[k]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		if tr := c.trace; tr != nil {
			tr.Emit(telemetry.EvCacheCoalesce, 0, "")
		}
		return c.wait(ctx, fl, true)
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[k] = fl
	s.mu.Unlock()
	c.misses.Add(1)
	if tr := c.trace; tr != nil {
		tr.Emit(telemetry.EvCacheMiss, 0, "")
	}

	go func() {
		defer func() {
			if r := recover(); r != nil {
				// The panic barrier required of singleflight workers:
				// a crash in compute must resolve the flight (waiters
				// would otherwise hang forever) and surface as an
				// error, not kill the process.
				fl.err = fmt.Errorf("plancache: compute panicked: %v", r)
				c.finish(s, k, fl)
			}
		}()
		fl.entry, fl.err = compute(ctx)
		c.finish(s, k, fl)
	}()
	// The leader waits for its own flight unconditionally: the flight
	// runs under the leader's ctx, so a deadline stops the computation
	// itself (the anytime optimizer returns its incumbent, flagged
	// degraded) and the flight resolves promptly — racing ctx here
	// would discard that incumbent. Only coalesced waiters race their
	// own deadline against someone else's flight.
	<-fl.done
	return fl.entry, false, false, fl.err
}

// finish publishes a flight's result: admits the entry, removes the
// flight, and wakes every waiter. Idempotence is not needed — each
// flight finishes exactly once (the recover path only runs when the
// normal path did not).
func (c *Cache) finish(s *shard, k Key, fl *flight) {
	var stored, victim *Entry
	s.mu.Lock()
	if fl.err == nil && fl.entry != nil && fl.entry.Plan != nil &&
		(!fl.entry.Plan.Degraded || c.admitDegraded) {
		stored, victim = c.insertLocked(s, fl.entry)
	} else if fl.err == nil && fl.entry != nil {
		c.rejected.Add(1)
	}
	delete(s.flights, k)
	s.mu.Unlock()
	close(fl.done)
	c.fireHooks(stored, victim)
}

// wait blocks until the flight resolves or ctx expires, whichever is
// first.
func (c *Cache) wait(ctx context.Context, fl *flight, shared bool) (*Entry, bool, bool, error) {
	select {
	case <-fl.done:
		return fl.entry, false, shared, fl.err
	case <-ctx.Done():
		return nil, false, shared, ctx.Err()
	}
}

// TierCounts reports the cache's tier composition: how many resident
// entries hold greedy (Tier-1) plans awaiting upgrade versus
// full-search plans (Tier-2; legacy untagged entries count as full —
// see TierRank).
func (c *Cache) TierCounts() (greedy, full int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		//ljqlint:allow detrand -- counting by tier is iteration-order independent
		for _, n := range s.items {
			if TierRank(n.entry.Tier) == TierGreedy {
				greedy++
			} else {
				full++
			}
		}
		s.mu.Unlock()
	}
	return greedy, full
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Coalesced:         c.coalesced.Load(),
		Evictions:         c.evictions.Load(),
		Rejected:          c.rejected.Load(),
		Warmed:            c.warmed.Load(),
		TierRejected:      c.tierRejected.Load(),
		TargetedEvictions: c.targetedEvictions.Load(),
		Shards:            make([]int, len(c.shards)),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Shards[i] = len(s.items)
		st.Entries += len(s.items)
		st.InFlight += len(s.flights)
		s.mu.Unlock()
	}
	return st
}

// RegisterMetrics exports the cache's atomic counters into reg under
// the given metric-name prefix (say "ljq_plancache"). The registered
// readers snapshot the live atomics at scrape time — there is no
// second bookkeeping path to drift out of sync with Stats.
func (c *Cache) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.CounterFunc(prefix+"_hits_total", "Plan cache hits.", c.hits.Load)
	reg.CounterFunc(prefix+"_misses_total", "Plan cache misses.", c.misses.Load)
	reg.CounterFunc(prefix+"_coalesced_total", "Requests coalesced onto another request's in-flight optimization.", c.coalesced.Load)
	reg.CounterFunc(prefix+"_evictions_total", "Entries evicted to admit newer plans.", c.evictions.Load)
	reg.CounterFunc(prefix+"_rejected_total", "Entries refused admission (degraded plans, cost-aware policy).", c.rejected.Load)
	reg.CounterFunc(prefix+"_tier_downgrades_refused_total", "Inserts refused because they would downgrade a cached entry's planning tier.", c.tierRejected.Load)
	reg.CounterFunc(prefix+"_targeted_evictions_total", "Entries removed by EvictWhere (cluster ownership eviction).", c.targetedEvictions.Load)
	reg.GaugeFunc(prefix+"_entries", "Entries currently cached.", func() float64 {
		return float64(c.Len())
	})
	reg.GaugeFunc(prefix+"_tier1_entries", "Cached greedy (Tier-1) plans awaiting background upgrade.", func() float64 {
		g, _ := c.TierCounts()
		return float64(g)
	})
	reg.GaugeFunc(prefix+"_tier2_entries", "Cached full-search (Tier-2) plans.", func() float64 {
		_, f := c.TierCounts()
		return float64(f)
	})
	reg.GaugeFunc(prefix+"_inflight_flights", "Singleflight computations currently in progress.", func() float64 {
		total := 0
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			total += len(s.flights)
			s.mu.Unlock()
		}
		return float64(total)
	})
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.items)
		s.mu.Unlock()
	}
	return total
}

// ---------------------------------------------------------------------

// flight is one in-progress computation shared by its waiters. entry
// and err are written once, before done is closed; waiters read them
// only after <-done (the close is the happens-before edge).
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// node is an intrusive LRU list node.
type node struct {
	prev, next *node
	entry      *Entry
}

// shard is one lock domain: an LRU list (sentinel ring), its index,
// and the in-flight table.
type shard struct {
	mu      sync.Mutex
	items   map[Key]*node
	flights map[Key]*flight
	head    node // sentinel: head.next = most recent, head.prev = LRU
}

func (s *shard) init() {
	s.items = make(map[Key]*node)
	s.flights = make(map[Key]*flight)
	s.head.next = &s.head
	s.head.prev = &s.head
}

func (s *shard) pushFront(n *node) {
	n.prev = &s.head
	n.next = s.head.next
	n.prev.next = n
	n.next.prev = n
}

func (s *shard) remove(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

//ljqlint:hotpath
func (s *shard) moveFront(n *node) {
	s.remove(n)
	s.pushFront(n)
}

// evictionVictim picks the entry to displace: the LRU entry, unless
// cost-aware admission is on, in which case the first of the scan-many
// least-recent entries whose BudgetUsed does not exceed the
// candidate's. nil means the candidate should be rejected.
func (s *shard) evictionVictim(costAware bool, scan int, candidateBudget int64) *node {
	lru := s.head.prev
	if lru == &s.head {
		return nil
	}
	if !costAware {
		return lru
	}
	n := lru
	for i := 0; i < scan && n != &s.head; i++ {
		if n.entry.BudgetUsed <= candidateBudget {
			return n
		}
		n = n.prev
	}
	return nil
}
