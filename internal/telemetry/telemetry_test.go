package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	// Get-or-create returns the same instance.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("counter re-registration returned a different instance")
	}
	if r.Gauge("g", "a gauge") != g {
		t.Fatal("gauge re-registration returned a different instance")
	}
}

func TestNilMetricsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Dropped() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x", "h")
}

func TestHistogramBucketsAndDrops(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", h.Dropped())
	}
	if got, want := h.Sum(), 0.5+1+5+50+500; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,    // 0.5 and 1 (le is inclusive)
		`lat_bucket{le="10"} 3`,   // +5
		`lat_bucket{le="100"} 4`,  // +50
		`lat_bucket{le="+Inf"} 5`, // +500
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusRenderingSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{code="503"}`, "requests").Add(2)
	r.Counter(`req_total{code="200"}`, "requests").Add(9)
	r.Gauge("a_gauge", "alpha").Set(-3)
	r.CounterFunc("zfunc_total", "from a func", func() uint64 { return 42 })
	r.GaugeFunc("fgauge", "float gauge", func() float64 { return 2.5 })

	var b1, b2 strings.Builder
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("two scrapes of identical state differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	// Labelled variants share one HELP/TYPE header and sort by label.
	if strings.Count(out, "# TYPE req_total counter") != 1 {
		t.Fatalf("want exactly one TYPE header for req_total:\n%s", out)
	}
	i200 := strings.Index(out, `req_total{code="200"} 9`)
	i503 := strings.Index(out, `req_total{code="503"} 2`)
	if i200 < 0 || i503 < 0 || i200 > i503 {
		t.Fatalf("labelled samples missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "zfunc_total 42") || !strings.Contains(out, "fgauge 2.5") {
		t.Fatalf("func metrics missing:\n%s", out)
	}
	if !strings.Contains(out, "a_gauge -3") {
		t.Fatalf("gauge missing:\n%s", out)
	}
}

// TestRegistryConcurrency is the satellite concurrency test: 32 writers
// hammer counters, gauges, histograms and registration while a scraper
// renders — run under -race in CI.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const writers = 32
	const perWriter = 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer func() {
				if rec := recover(); rec != nil {
					t.Errorf("writer panicked: %v", rec)
				}
				wg.Done()
			}()
			c := r.Counter("shared_total", "shared counter")
			g := r.Gauge("shared_gauge", "shared gauge")
			h := r.Histogram("shared_hist", "shared histogram", []float64{10, 100, 1000})
			own := r.Counter("own_total{w=\""+string(rune('a'+w%26))+"\"}", "per-writer counter")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i))
				own.Inc()
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Errorf("scrape: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "shared counter").Value(); got != writers*perWriter {
		t.Fatalf("shared counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Gauge("shared_gauge", "shared gauge").Value(); got != writers*perWriter {
		t.Fatalf("shared gauge = %d, want %d", got, writers*perWriter)
	}
	h := r.Histogram("shared_hist", "shared histogram", []float64{10, 100, 1000})
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
	// Each writer observes 0..perWriter-1, so the sum is exact in
	// float64 (all integers well under 2^53) regardless of order.
	want := float64(writers) * float64(perWriter*(perWriter-1)) / 2
	if math.Abs(h.Sum()-want) > 0.5 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(100, 10, 4)
	want := []float64{100, 1000, 10000, 100000}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{2.5, "2.5"},
		{1e21, "1e+21"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Fatalf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := FormatFloat(math.NaN()); got != "NaN" {
		t.Fatalf("FormatFloat(NaN) = %q", got)
	}
}
