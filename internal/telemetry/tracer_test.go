package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvRestart, 1, "x")
	tr.EmitCost(EvImprove, 2, 3.5, "")
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Count(EvImprove) != 0 {
		t.Fatal("nil tracer must read as zero")
	}
	if ev := tr.Events(); ev != nil {
		t.Fatalf("nil tracer events = %v", ev)
	}
	var b strings.Builder
	if err := tr.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "disabled") {
		t.Fatalf("nil dump = %q", b.String())
	}
}

func TestTracerOrderAndPayloads(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(EvStrategyStart, 0, "IAI")
	tr.EmitCost(EvMoveProposed, 4, 10.5, "")
	tr.EmitCost(EvMoveAccepted, 4, 10.5, "")
	tr.EmitCost(EvImprove, 4, 10.5, "")
	tr.Emit(EvMoveRejected, 8, "")
	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("len = %d, want 5", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if ev[0].Kind != EvStrategyStart || ev[0].Label != "IAI" || ev[0].HasCost {
		t.Fatalf("bad first event %+v", ev[0])
	}
	if !ev[1].HasCost || ev[1].Units != 4 {
		t.Fatalf("bad proposal event %+v", ev[1])
	}
	if tr.Count(EvMoveProposed) != 1 || tr.Count(EvImprove) != 1 {
		t.Fatal("per-kind counts wrong")
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EvMoveRejected, int64(i), "")
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if tr.Count(EvMoveRejected) != 10 {
		t.Fatalf("lifetime count = %d, want 10", tr.Count(EvMoveRejected))
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("retained event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(4)
	tr.Emit(EvRestart, 1, "")
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Count(EvRestart) != 0 {
		t.Fatal("reset did not clear state")
	}
	tr.Emit(EvRestart, 1, "")
	if tr.Events()[0].Seq != 0 {
		t.Fatal("sequence not reset")
	}
}

// TestTracerDumpDeterminism: identical event streams must render
// byte-identically (the per-run half of the determinism contract; the
// cross-run half lives in internal/core's trace tests).
func TestTracerDumpDeterminism(t *testing.T) {
	mk := func() *Tracer {
		tr := NewTracer(8)
		tr.Emit(EvStrategyStart, 0, "II")
		tr.EmitCost(EvImprove, 12, 99.25, "")
		tr.Emit(EvRestart, 40, "")
		tr.EmitCost(EvStrategyEnd, 80, 99.25, "II")
		return tr
	}
	var b1, b2 strings.Builder
	if err := mk().WriteText(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("dumps differ:\n%s---\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	for _, want := range []string{"strategy-start", "improve", "cost=99.25", "totals:", "restart=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestTracerConcurrency: concurrent emitters under -race; lifetime
// counts must be exact even with ring drops.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(64)
	const writers = 32
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Errorf("emitter panicked: %v", rec)
				}
				wg.Done()
			}()
			for i := 0; i < per; i++ {
				tr.EmitCost(EvMoveProposed, int64(i), float64(i), "")
			}
		}()
	}
	wg.Wait()
	if got := tr.Count(EvMoveProposed); got != writers*per {
		t.Fatalf("count = %d, want %d", got, writers*per)
	}
	if tr.Len() != 64 {
		t.Fatalf("retained = %d, want 64", tr.Len())
	}
	if got := tr.Dropped(); got != writers*per-64 {
		t.Fatalf("dropped = %d, want %d", got, writers*per-64)
	}
}
