package telemetry

import (
	"io"
	"strconv"
	"strings"
	"sync"
)

// EventKind classifies one search-trace event. The taxonomy covers the
// paper's search dynamics (moves, restarts, incumbent improvements),
// the anytime contract (degradation steps), and the serving layer's
// cache (hit/miss/singleflight-coalesce).
type EventKind uint8

const (
	// EvStrategyStart marks the start of one strategy run over one
	// join-graph component; the label names the strategy.
	EvStrategyStart EventKind = iota
	// EvStrategyEnd marks the end of the run; the cost is the
	// component incumbent at the stop point (+Inf if none).
	EvStrategyEnd
	// EvMoveProposed is a valid neighbor proposal, priced.
	EvMoveProposed
	// EvMoveAccepted is a proposal the strategy moved to.
	EvMoveAccepted
	// EvMoveRejected is a proposal the strategy declined.
	EvMoveRejected
	// EvRestart is a restart from a fresh start state (II's next start,
	// tabu's stall restart, the perturbation walk's dead ends).
	EvRestart
	// EvImprove is an improvement of the component incumbent.
	EvImprove
	// EvDegrade is one step of the anytime degradation ladder (fallback
	// state generation, or the final plan-level degradation verdict);
	// the label carries the reason.
	EvDegrade
	// EvCacheHit / EvCacheMiss / EvCacheCoalesce are plan-cache lookup
	// outcomes; the label carries the short fingerprint.
	EvCacheHit
	EvCacheMiss
	EvCacheCoalesce

	numEventKinds
)

// NumEventKinds is the number of distinct event kinds; Counts returns
// an array of this length, indexed by EventKind.
const NumEventKinds = int(numEventKinds)

var eventNames = [numEventKinds]string{
	EvStrategyStart: "strategy-start",
	EvStrategyEnd:   "strategy-end",
	EvMoveProposed:  "move-proposed",
	EvMoveAccepted:  "move-accepted",
	EvMoveRejected:  "move-rejected",
	EvRestart:       "restart",
	EvImprove:       "improve",
	EvDegrade:       "degrade",
	EvCacheHit:      "cache-hit",
	EvCacheMiss:     "cache-miss",
	EvCacheCoalesce: "cache-coalesce",
}

// String names the kind.
func (k EventKind) String() string {
	if k >= numEventKinds {
		return "event(" + strconv.Itoa(int(k)) + ")"
	}
	return eventNames[k]
}

// Event is one trace record. Units is the emitter's budget consumption
// (cost.Budget.Used()) at emission time — the deterministic substitute
// for a timestamp: the same seed and budget reproduce the same unit
// stamps byte for byte, where wall-clock stamps never would.
type Event struct {
	// Seq is the tracer-local emission index (monotonic, starts at 0),
	// preserved across ring-buffer overwrites so dumps show how far
	// into the run the retained window starts.
	Seq uint64
	// Units is the budget meter reading at emission.
	Units int64
	// Kind classifies the event.
	Kind EventKind
	// Cost is the event's cost payload when HasCost is set (a proposal
	// price, an incumbent, a strategy's final best).
	Cost    float64
	HasCost bool
	// Label carries deterministic context: a strategy name, a degrade
	// reason, a fingerprint prefix. Never a timestamp or address.
	Label string
}

// DefaultTraceCapacity is the ring size NewTracer uses for capacity <= 0.
const DefaultTraceCapacity = 4096

// Tracer is a bounded, budget-indexed event recorder. The ring keeps
// the most recent capacity events (older ones are counted, not kept);
// per-kind totals are exact regardless of drops.
//
// All methods are safe on a nil *Tracer (they do nothing and return
// zeros) — the disabled-tracing fast path is a nil check. A non-nil
// tracer is safe for concurrent use; note that events emitted from
// multiple goroutines interleave in lock order, so the byte-identical
// determinism guarantee applies to single-goroutine runs (one
// optimizer, one budget), which is exactly how `ljqopt -trace` and the
// determinism tests use it.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest retained event
	n       int // number of retained events
	seq     uint64
	dropped uint64
	counts  [numEventKinds]uint64
}

// NewTracer returns a tracer retaining up to capacity events
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records a cost-less event.
func (t *Tracer) Emit(kind EventKind, units int64, label string) {
	if t == nil {
		return
	}
	t.push(Event{Units: units, Kind: kind, Label: label})
}

// EmitCost records an event carrying a cost payload.
func (t *Tracer) EmitCost(kind EventKind, units int64, cost float64, label string) {
	if t == nil {
		return
	}
	t.push(Event{Units: units, Kind: kind, Cost: cost, HasCost: true, Label: label})
}

func (t *Tracer) push(e Event) {
	t.mu.Lock()
	e.Seq = t.seq
	t.seq++
	if e.Kind < numEventKinds {
		t.counts[e.Kind]++
	}
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
	} else {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
		t.dropped++
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events fell off the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Count returns the exact number of events of the kind emitted over the
// tracer's lifetime (drops included).
func (t *Tracer) Count(kind EventKind) uint64 {
	if t == nil || kind >= numEventKinds {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[kind]
}

// Counts returns the per-kind lifetime totals, indexed by EventKind.
// The return type is a comparable array so two snapshots can be
// checked for equality directly (the determinism tests do).
func (t *Tracer) Counts() [NumEventKinds]uint64 {
	if t == nil {
		return [NumEventKinds]uint64{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts
}

// Reset clears the ring, the sequence counter and the per-kind totals.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.start, t.n, t.seq, t.dropped = 0, 0, 0, 0
	t.counts = [numEventKinds]uint64{}
	t.mu.Unlock()
}

// WriteText renders a human-readable dump: a header, one line per
// retained event (sequence, unit stamp, kind, payload), and a per-kind
// summary. Output is a pure function of the recorded events — no
// wall-clock, no addresses — so identical runs dump identically.
func (t *Tracer) WriteText(w io.Writer) error {
	var b strings.Builder
	if t == nil {
		b.WriteString("trace: disabled\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	events := t.Events()
	t.mu.Lock()
	dropped := t.dropped
	counts := t.counts
	t.mu.Unlock()

	b.WriteString("trace: ")
	b.WriteString(strconv.Itoa(len(events)))
	b.WriteString(" events retained, ")
	b.WriteString(strconv.FormatUint(dropped, 10))
	b.WriteString(" dropped (ring capacity ")
	b.WriteString(strconv.Itoa(len(t.buf)))
	b.WriteString(")\n")
	for _, e := range events {
		b.WriteByte('#')
		pad(&b, strconv.FormatUint(e.Seq, 10), 6)
		b.WriteString("  [")
		pad(&b, strconv.FormatInt(e.Units, 10), 9)
		b.WriteString("u] ")
		name := e.Kind.String()
		b.WriteString(name)
		for i := len(name); i < 15; i++ {
			b.WriteByte(' ')
		}
		if e.HasCost {
			b.WriteString(" cost=")
			b.WriteString(FormatFloat(e.Cost))
		}
		if e.Label != "" {
			b.WriteByte(' ')
			b.WriteString(e.Label)
		}
		b.WriteByte('\n')
	}
	b.WriteString("totals:")
	for k := EventKind(0); k < numEventKinds; k++ {
		if counts[k] == 0 {
			continue
		}
		b.WriteByte(' ')
		b.WriteString(k.String())
		b.WriteByte('=')
		b.WriteString(strconv.FormatUint(counts[k], 10))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// pad right-aligns s to width with spaces.
func pad(b *strings.Builder, s string, width int) {
	for i := len(s); i < width; i++ {
		b.WriteByte(' ')
	}
	b.WriteString(s)
}
