// Package telemetry is the reproduction's deterministic observability
// layer: metrics (atomic counters, gauges and fixed-bucket histograms
// in a sharded registry with Prometheus-text export) and a
// budget-indexed search tracer (see tracer.go).
//
// Two properties distinguish it from an off-the-shelf metrics library:
//
//   - Dependency-free: only the standard library. The whole repository
//     builds without external modules, and telemetry keeps it that way.
//   - Deterministic: nothing in this package reads the wall clock or
//     draws randomness. Trace events are stamped with optimization
//     *work units* (cost.Budget.Used()), not timestamps, so two runs of
//     the same seed and budget produce byte-identical traces; the
//     Prometheus rendering sorts metric names, so two scrapes of
//     identical counter states produce byte-identical text.
//
// The zero-overhead contract: a nil *Tracer is a valid tracer whose
// methods do nothing, and hot paths additionally guard emissions with a
// plain nil check so the disabled path costs one predictable branch —
// bench_test.go's strategy benchmarks are the regression gate.
package telemetry

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------
// Metric primitives

// Counter is a monotonically increasing atomic counter. The nil counter
// is valid and discards updates (the same zero-overhead contract as the
// nil tracer).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil gauge discards
// updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram: upper bounds are
// chosen at construction and never change, so Observe is a binary
// search plus two atomic adds — no locks, no allocation. Non-finite
// observations (NaN, ±Inf) are not representable in a float sum and are
// diverted to a drop counter instead of poisoning the distribution.
// The nil histogram discards observations.
type Histogram struct {
	uppers  []float64 // sorted bucket upper bounds (exclusive of +Inf)
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	dropped atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	us := append([]float64(nil), uppers...)
	sort.Float64s(us)
	return &Histogram{
		uppers: us,
		counts: make([]atomic.Uint64, len(us)+1), // +1 for the +Inf bucket
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.dropped.Add(1)
		return
	}
	// First bucket whose upper bound is >= v (Prometheus `le` buckets).
	h.counts[sort.SearchFloat64s(h.uppers, v)].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of (finite) observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Dropped returns the number of non-finite observations diverted away
// from the distribution.
func (h *Histogram) Dropped() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// ---------------------------------------------------------------------
// Registry

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// sampler renders one registered metric's sample lines.
type sampler interface {
	sample(b *strings.Builder, fullName string)
}

type registered struct {
	fullName string // possibly with a literal {label="..."} suffix
	baseName string // fullName with the label suffix stripped
	typ      metricType
	help     string
	s        sampler
}

// registryShards is the shard count of the registry's name index: a
// small power of two so concurrent registration and scraping from many
// goroutines contend on different locks. Metric *updates* never touch
// the registry at all — they are atomics on the metric itself.
const registryShards = 16

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Create with NewRegistry; safe for concurrent use.
//
// Names may carry a literal label suffix (`requests_total{code="200"}`);
// HELP/TYPE headers are emitted once per base name. Histograms must be
// label-free (their sample lines synthesize the `le` label).
type Registry struct {
	shards [registryShards]regShard
}

type regShard struct {
	mu      sync.Mutex
	metrics map[string]*registered
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].metrics = make(map[string]*registered)
	}
	return r
}

func (r *Registry) shardOf(name string) *regShard {
	// FNV-1a over the name selects the shard.
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return &r.shards[h&(registryShards-1)]
}

// register get-or-creates a metric entry. make is called under the
// shard lock to build the metric on first registration.
func (r *Registry) register(name, help string, typ metricType, make func() sampler) sampler {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	s := r.shardOf(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if got, ok := s.metrics[name]; ok {
		if got.typ != typ {
			panic("telemetry: metric " + name + " re-registered as " + typ.String() +
				" (was " + got.typ.String() + ")")
		}
		return got.s
	}
	reg := &registered{
		fullName: name,
		baseName: baseName(name),
		typ:      typ,
		help:     help,
		s:        make(),
	}
	s.metrics[name] = reg
	return reg.s
}

func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter get-or-creates a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, func() sampler { return &Counter{} }).(*Counter)
}

// Gauge get-or-creates a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, func() sampler { return &Gauge{} }).(*Gauge)
}

// Histogram get-or-creates a fixed-bucket histogram with the given
// upper bounds (an implicit +Inf bucket is always appended). The bounds
// of an existing histogram are not changed.
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	if strings.IndexByte(name, '{') >= 0 {
		panic("telemetry: histogram " + name + " must be label-free")
	}
	return r.register(name, help, typeHistogram, func() sampler { return newHistogram(uppers) }).(*Histogram)
}

// counterFunc adapts an external atomic (e.g. a plancache stat) into a
// scraped counter.
type counterFunc struct{ fn func() uint64 }

// gaugeFunc adapts an external value into a scraped gauge.
type gaugeFunc struct{ fn func() float64 }

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomic
// counters (plancache, serve). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, typeCounter, func() sampler { return counterFunc{fn} })
}

// GaugeFunc registers a gauge read from fn at scrape time. fn must be
// safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, func() sampler { return gaugeFunc{fn} })
}

// ---------------------------------------------------------------------
// Prometheus text rendering

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, sorted by name so identical metric states
// render byte-identically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var all []*registered
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		//ljqlint:allow detrand -- collection into a slice that is sorted immediately below; the map visit order cannot reach the output
		for _, reg := range s.metrics {
			all = append(all, reg)
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].baseName != all[j].baseName {
			return all[i].baseName < all[j].baseName
		}
		return all[i].fullName < all[j].fullName
	})

	var b strings.Builder
	prevBase := ""
	for _, reg := range all {
		if reg.baseName != prevBase {
			b.WriteString("# HELP ")
			b.WriteString(reg.baseName)
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(reg.help, "\n", " "))
			b.WriteByte('\n')
			b.WriteString("# TYPE ")
			b.WriteString(reg.baseName)
			b.WriteByte(' ')
			b.WriteString(reg.typ.String())
			b.WriteByte('\n')
			prevBase = reg.baseName
		}
		reg.s.sample(&b, reg.fullName)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Counter) sample(b *strings.Builder, fullName string) {
	b.WriteString(fullName)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.Value(), 10))
	b.WriteByte('\n')
}

func (g *Gauge) sample(b *strings.Builder, fullName string) {
	b.WriteString(fullName)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.Value(), 10))
	b.WriteByte('\n')
}

func (f counterFunc) sample(b *strings.Builder, fullName string) {
	b.WriteString(fullName)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(f.fn(), 10))
	b.WriteByte('\n')
}

func (f gaugeFunc) sample(b *strings.Builder, fullName string) {
	b.WriteString(fullName)
	b.WriteByte(' ')
	b.WriteString(FormatFloat(f.fn()))
	b.WriteByte('\n')
}

func (h *Histogram) sample(b *strings.Builder, fullName string) {
	var cum uint64
	writeBucket := func(le string, v uint64) {
		b.WriteString(fullName)
		b.WriteString(`_bucket{le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(v, 10))
		b.WriteByte('\n')
	}
	for i, ub := range h.uppers {
		cum += h.counts[i].Load()
		writeBucket(FormatFloat(ub), cum)
	}
	cum += h.counts[len(h.uppers)].Load()
	writeBucket("+Inf", cum)
	b.WriteString(fullName)
	b.WriteString("_sum ")
	b.WriteString(FormatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(fullName)
	b.WriteString("_count ")
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// FormatFloat renders a float the way the trace and metrics output do:
// shortest round-trippable decimal, with Prometheus-style spellings for
// the non-finite values.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpBuckets returns n exponential histogram bucket bounds starting at
// start and multiplying by factor — the standard shape for work-unit
// and size distributions.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}
