package fingerprint

import (
	"math/rand"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/workload"
)

// permute relabels q under perm (new id = perm[old id]), shuffles the
// predicate list, and re-normalizes — an isomorphic copy with fully
// scrambled labels and edge order.
func permute(q *catalog.Query, perm []int, rng *rand.Rand) *catalog.Query {
	out := &catalog.Query{
		Relations:  make([]catalog.Relation, len(q.Relations)),
		Predicates: make([]catalog.Predicate, len(q.Predicates)),
	}
	for old, rel := range q.Relations {
		r := rel
		r.Selections = append([]catalog.Selection(nil), rel.Selections...)
		out.Relations[perm[old]] = r
	}
	for i, p := range q.Predicates {
		np := p
		np.Left = catalog.RelID(perm[p.Left])
		np.Right = catalog.RelID(perm[p.Right])
		np.Normalize()
		out.Predicates[i] = np
	}
	rng.Shuffle(len(out.Predicates), func(a, b int) {
		out.Predicates[a], out.Predicates[b] = out.Predicates[b], out.Predicates[a]
	})
	return out
}

func genQueries(t *testing.T) []*catalog.Query {
	t.Helper()
	var qs []*catalog.Query
	rng := rand.New(rand.NewSource(7))
	for _, spec := range []int{0, 7, 8, 9} { // default, dense, star, chain
		s := workload.Default()
		if spec != 0 {
			var err error
			s, err = workload.Benchmark(spec)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []int{3, 10, 25} {
			qs = append(qs, s.Generate(n, rng))
		}
	}
	return qs
}

// TestRelabelInvariance: fingerprints are invariant under random RelID
// permutations and join-edge reordering (the property the plan cache
// key rests on).
func TestRelabelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for qi, q := range genQueries(t) {
		want := Of(q)
		for trial := 0; trial < 8; trial++ {
			perm := rng.Perm(len(q.Relations))
			qp := permute(q, perm, rng)
			if got := Of(qp); got != want {
				t.Fatalf("query %d trial %d: permuted fingerprint %s != original %s",
					qi, trial, got.Short(), want.Short())
			}
		}
	}
}

// TestMutationSensitivity: any single statistic or shape mutation
// changes the fingerprint.
func TestMutationSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for qi, q := range genQueries(t) {
		want := Of(q)
		// Mutate one relation cardinality.
		m := q.Clone()
		ri := rng.Intn(len(m.Relations))
		m.Relations[ri].Cardinality += 17
		if Of(m) == want {
			t.Fatalf("query %d: cardinality mutation did not change fingerprint", qi)
		}
		// Mutate (or add) one selection selectivity.
		m = q.Clone()
		if len(m.Relations[ri].Selections) > 0 {
			m.Relations[ri].Selections[0].Selectivity *= 0.5
		} else {
			m.Relations[ri].Selections = append(m.Relations[ri].Selections,
				catalog.Selection{Selectivity: 0.25})
		}
		if Of(m) == want {
			t.Fatalf("query %d: selection mutation did not change fingerprint", qi)
		}
		if len(q.Predicates) > 0 {
			pi := rng.Intn(len(q.Predicates))
			// Mutate a join selectivity.
			m = q.Clone()
			m.Normalize() // fill derived selectivity, then perturb it
			m.Predicates[pi].Selectivity = m.Predicates[pi].Selectivity * 0.5
			if Of(m) == want {
				t.Fatalf("query %d: join-selectivity mutation did not change fingerprint", qi)
			}
			// Mutate a distinct count.
			m = q.Clone()
			m.Predicates[pi].LeftDistinct += 3
			if Of(m) == want {
				t.Fatalf("query %d: distinct-count mutation did not change fingerprint", qi)
			}
			// Remove an edge (keeping the query valid is not required for
			// hashing, but dropping a non-bridge edge keeps it connected
			// often enough; fingerprinting does not validate).
			m = q.Clone()
			m.Predicates = append(m.Predicates[:pi], m.Predicates[pi+1:]...)
			if Of(m) == want {
				t.Fatalf("query %d: edge removal did not change fingerprint", qi)
			}
		}
		// Add an edge between two previously-unlinked relations, if any.
		m = q.Clone()
		if added := addFreshEdge(m); added && Of(m) == want {
			t.Fatalf("query %d: edge addition did not change fingerprint", qi)
		}
	}
}

func addFreshEdge(q *catalog.Query) bool {
	linked := make(map[[2]catalog.RelID]bool)
	for _, p := range q.Predicates {
		linked[[2]catalog.RelID{p.Left, p.Right}] = true
	}
	n := catalog.RelID(len(q.Relations))
	for a := catalog.RelID(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !linked[[2]catalog.RelID{a, b}] {
				q.Predicates = append(q.Predicates, catalog.Predicate{
					Left: a, Right: b, Selectivity: 0.3,
				})
				return true
			}
		}
	}
	return false
}

// TestSymmetricTies: a star with identical leaves is maximally
// symmetric (WL refinement cannot split the leaves); the
// individualization stage must still produce identical fingerprints
// for relabelings, and the canonical order must be a permutation.
func TestSymmetricTies(t *testing.T) {
	star := &catalog.Query{}
	star.Relations = append(star.Relations, catalog.Relation{Name: "hub", Cardinality: 1000})
	for i := 0; i < 6; i++ {
		star.Relations = append(star.Relations, catalog.Relation{Name: "leaf", Cardinality: 50})
		star.Predicates = append(star.Predicates, catalog.Predicate{
			Left: 0, Right: catalog.RelID(i + 1), LeftDistinct: 100, RightDistinct: 10,
		})
	}
	want := Of(star)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(star.Relations))
		if got := Of(permute(star, perm, rng)); got != want {
			t.Fatalf("trial %d: symmetric star relabeling changed fingerprint", trial)
		}
	}
	_, order := Canonical(star)
	seen := make([]bool, len(star.Relations))
	for _, r := range order {
		if int(r) >= len(seen) || seen[r] {
			t.Fatalf("canonical order %v is not a permutation", order)
		}
		seen[r] = true
	}
}

// TestCanonicalQueryIsomorphismFixed: the canonical query of any
// relabeling is statistically identical — optimizing it makes the plan
// a function of the fingerprint alone.
func TestCanonicalQueryIsomorphismFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := workload.Default().Generate(15, rng)
	_, _, base := CanonicalQuery(q)
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(q.Relations))
		fp, _, cq := CanonicalQuery(permute(q, perm, rng))
		if fp != Of(q) {
			t.Fatalf("trial %d: fingerprint drifted", trial)
		}
		if len(cq.Relations) != len(base.Relations) || len(cq.Predicates) != len(base.Predicates) {
			t.Fatalf("trial %d: canonical query shape differs", trial)
		}
		for i := range cq.Relations {
			if cq.Relations[i].Cardinality != base.Relations[i].Cardinality {
				t.Fatalf("trial %d: canonical relation %d cardinality %d != %d",
					trial, i, cq.Relations[i].Cardinality, base.Relations[i].Cardinality)
			}
		}
		for i := range cq.Predicates {
			a, b := cq.Predicates[i], base.Predicates[i]
			if a.Left != b.Left || a.Right != b.Right {
				t.Fatalf("trial %d: canonical predicate %d endpoints (%d,%d) != (%d,%d)",
					trial, i, a.Left, a.Right, b.Left, b.Right)
			}
		}
	}
}

// TestParseRoundTrip covers the hex codec.
func TestParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := Of(workload.Default().Generate(5, rng))
	got, err := Parse(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatalf("round trip mismatch")
	}
	if _, err := Parse("zz"); err == nil {
		t.Fatal("Parse accepted invalid hex")
	}
	if _, err := Parse("ab"); err == nil {
		t.Fatal("Parse accepted short input")
	}
	if len(f.Short()) != 16 {
		t.Fatalf("Short() length %d != 16", len(f.Short()))
	}
}

// TestDeterminism: same query, repeated hashing, identical result (no
// map-order or allocation-order leakage).
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := workload.Default().Generate(30, rng)
	want := Of(q)
	for i := 0; i < 20; i++ {
		if Of(q) != want {
			t.Fatal("fingerprint is not deterministic across calls")
		}
	}
}

func BenchmarkFingerprint20(b *testing.B) { benchFingerprint(b, 20) }
func BenchmarkFingerprint60(b *testing.B) { benchFingerprint(b, 60) }

func benchFingerprint(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(29))
	q := workload.Default().Generate(n, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Of(q)
	}
}

// BenchmarkFingerprintBitset20/60 measure the steady-state hot path: a
// warm reusable Hasher fingerprinting the same query (the serving
// daemon's per-request shape, minus pool traffic). ALLOC_BUDGETS.json
// pins these at 0 allocs/op.
func BenchmarkFingerprintBitset20(b *testing.B) { benchFingerprintBitset(b, 20) }
func BenchmarkFingerprintBitset60(b *testing.B) { benchFingerprintBitset(b, 60) }

func benchFingerprintBitset(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(29))
	q := workload.Default().Generate(n, rng)
	h := NewHasher()
	h.Of(q) // warm the buffers: steady state is what the budget pins
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Of(q)
	}
}
