package fingerprint

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"joinopt/internal/qdsl"
	"joinopt/internal/workload"
)

// The golden fingerprint corpus: a checked-in fixture of qdsl query
// texts and the hex digests this package produced for them when the
// fixture was written. Same-run determinism is covered elsewhere
// (TestDeterminism); this file is the *cross-version* pin — any change
// to the canonical encoding, the refinement procedure, or the IR
// tie-breaking shows up as a digest drift against the fixture and
// fails tier-1 loudly. If a drift is intentional, regenerate with
//
//	go test ./internal/fingerprint -run TestGoldenCorpus -update-golden
//
// and bump SchemaVersion in the same change (the persist layer stamps
// it into journal headers precisely so stale fingerprints cold-start
// instead of poisoning the cache).

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_fingerprints.txt from the current implementation")

const goldenPath = "testdata/golden_fingerprints.txt"

const caseMarker = "=== "
const digestMarker = "--- digest: "

// goldenQueries builds the corpus deterministically: every canonical
// shape at small/medium/large sizes plus hand-written edge cases
// (single join, parallel predicates folded by qdsl into re-declared
// joins, selections). All cases must survive a qdsl round trip, since
// the fixture stores qdsl text.
func goldenQueries(t *testing.T) (names []string, texts []string) {
	t.Helper()
	add := func(name, text string) {
		names = append(names, name)
		texts = append(texts, text)
	}
	add("two-relations-minimal", strings.Join([]string{
		"relation a 100",
		"relation b 200",
		"join a b distinct 10 20",
	}, "\n")+"\n")
	add("selections-and-explicit-selectivity", strings.Join([]string{
		"relation orders 1000000 select 0.1 0.5",
		"relation customers 50000 select 0.25",
		"relation nation 25",
		"join orders customers distinct 50000 50000",
		"join customers nation selectivity 0.04",
	}, "\n")+"\n")
	add("symmetric-star-tied-leaves", strings.Join([]string{
		"relation hub 1000000",
		"relation l1 500",
		"relation l2 500",
		"relation l3 500",
		"join hub l1 distinct 100 50",
		"join hub l2 distinct 100 50",
		"join hub l3 distinct 100 50",
	}, "\n")+"\n")
	rng := rand.New(rand.NewSource(2026))
	spec := workload.Default()
	for _, shape := range workload.Shapes {
		for _, n := range []int{5, 20, 60} {
			q, err := spec.GenerateShape(shape, n, rng)
			if err != nil {
				t.Fatal(err)
			}
			add(fmt.Sprintf("%s-%d", shape, n), qdsl.Format(q))
		}
	}
	return names, texts
}

func TestGoldenCorpus(t *testing.T) {
	names, texts := goldenQueries(t)

	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# Golden fingerprint corpus — qdsl query texts and their canonical\n")
		sb.WriteString("# digests. Regenerate with: go test ./internal/fingerprint -run\n")
		sb.WriteString("# TestGoldenCorpus -update-golden (and bump SchemaVersion: a digest\n")
		sb.WriteString("# change invalidates every persisted fingerprint).\n")
		for i, name := range names {
			sb.WriteString(caseMarker + name + "\n")
			sb.WriteString(texts[i])
			q, err := qdsl.ParseString(texts[i])
			if err != nil {
				t.Fatalf("case %s: %v", name, err)
			}
			sb.WriteString(digestMarker + Of(q).String() + "\n")
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath, len(names))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden fixture missing (regenerate with -update-golden): %v", err)
	}
	type goldenCase struct{ name, text, digest string }
	var cases []goldenCase
	var cur *goldenCase
	for _, line := range strings.SplitAfter(string(raw), "\n") {
		trimmed := strings.TrimSuffix(line, "\n")
		switch {
		case strings.HasPrefix(trimmed, "#"):
		case strings.HasPrefix(trimmed, caseMarker):
			cases = append(cases, goldenCase{name: strings.TrimPrefix(trimmed, caseMarker)})
			cur = &cases[len(cases)-1]
		case strings.HasPrefix(trimmed, digestMarker):
			cur.digest = strings.TrimPrefix(trimmed, digestMarker)
			cur = nil
		case cur != nil:
			cur.text += line
		}
	}
	if len(cases) == 0 {
		t.Fatal("golden fixture parsed to zero cases")
	}

	// The corpus on disk must match what goldenQueries generates —
	// otherwise the fixture silently pins fewer cases than intended.
	if len(cases) != len(names) {
		t.Fatalf("fixture has %d cases, generator produces %d (regenerate with -update-golden)", len(cases), len(names))
	}
	for i, c := range cases {
		if c.name != names[i] {
			t.Fatalf("fixture case %d is %q, generator says %q (regenerate with -update-golden)", i, c.name, names[i])
		}
		if c.text != texts[i] {
			t.Fatalf("fixture case %q text drifted from generator (regenerate with -update-golden)", c.name)
		}
	}

	for _, c := range cases {
		q, err := qdsl.ParseString(c.text)
		if err != nil {
			t.Fatalf("case %s: parse: %v", c.name, err)
		}
		want, err := Parse(c.digest)
		if err != nil {
			t.Fatalf("case %s: bad fixture digest: %v", c.name, err)
		}
		if got := Of(q); got != want {
			t.Errorf("case %s: digest drift: got %s, fixture has %s — the canonical encoding changed; if intentional, bump SchemaVersion and regenerate",
				c.name, got.String(), want.String())
		}
		// Cross-check the frozen legacy path too: fixture, live path and
		// legacy path must all agree.
		if got := LegacyOf(q); got != want {
			t.Errorf("case %s: legacy path disagrees with fixture: %s vs %s", c.name, got.String(), want.String())
		}
	}
}
