// Frozen reference implementation of canonical fingerprinting.
//
// This file is the pre-bitset canonicalizer, kept verbatim as the
// differential oracle for the zero-alloc rewrite in fingerprint.go: the
// equivalence suite (differential_test.go) asserts the rewrite produces
// byte-identical digests and identical canonical orders across
// randomized graph shapes, and the golden corpus pins both against
// checked-in hex digests. Do not "improve" this file — its only job is
// to stay exactly what PR 3 shipped, so any behavioral drift in the
// live path fails loudly against it.
//
// The legacy path allocates freely (clone, per-round slices, per-record
// buffers); that cost is why it was replaced, and why it is only
// reachable from tests via the exported Legacy* entry points.
package fingerprint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"

	"joinopt/internal/catalog"
)

// LegacyOf returns the canonical fingerprint of q computed by the
// frozen reference implementation. Test use only.
func LegacyOf(q *catalog.Query) Fingerprint {
	f, _ := LegacyCanonical(q)
	return f
}

// LegacyCanonical returns the fingerprint and canonical relation order
// computed by the frozen reference implementation. Test use only.
func LegacyCanonical(q *catalog.Query) (Fingerprint, []catalog.RelID) {
	qc := q.Clone()
	qc.Normalize()
	g := buildLegacyGraph(qc)
	enc, ord := g.canonicalize()
	order := make([]catalog.RelID, len(ord))
	for i, v := range ord {
		order[i] = catalog.RelID(v)
	}
	return sha256.Sum256(enc), order
}

// LegacyCanonicalQuery returns the fingerprint, canonical order, and
// relabeled query computed by the frozen reference implementation.
// Test use only.
func LegacyCanonicalQuery(q *catalog.Query) (Fingerprint, []catalog.RelID, *catalog.Query) {
	f, order := LegacyCanonical(q)
	return f, order, Relabel(q, order)
}

// legacyHalfEdge is one predicate seen from one endpoint.
type legacyHalfEdge struct {
	to int
	// mySide/otherSide hash the endpoint-local statistics (distinct
	// count, histogram); sel hashes the join selectivity. Orientation
	// matters: a predicate with asymmetric distinct counts must
	// contribute differently to its two endpoints.
	mySide, otherSide uint64
	sel               uint64
}

type legacyGraph struct {
	q   *catalog.Query
	n   int
	adj [][]legacyHalfEdge
	// initial per-vertex colors from exact relation statistics.
	init []uint64
	// searchBudget bounds individualization-refinement: the number of
	// individualizations tried across the whole search. Each tied cell
	// always gets at least its first candidate, so canonicalization
	// terminates regardless; the budget only caps how exhaustively
	// highly symmetric queries are disambiguated.
	searchBudget int
}

func buildLegacyGraph(q *catalog.Query) *legacyGraph {
	n := len(q.Relations)
	g := &legacyGraph{q: q, n: n, adj: make([][]legacyHalfEdge, n), init: make([]uint64, n), searchBudget: irSearchBudget}
	for _, p := range q.Predicates {
		l, r := int(p.Left), int(p.Right)
		ls := sideHash(p.LeftDistinct, p.LeftHist)
		rs := sideHash(p.RightDistinct, p.RightHist)
		sel := mixFloat(fnvOffset, p.Selectivity)
		g.adj[l] = append(g.adj[l], legacyHalfEdge{to: r, mySide: ls, otherSide: rs, sel: sel})
		g.adj[r] = append(g.adj[r], legacyHalfEdge{to: l, mySide: rs, otherSide: ls, sel: sel})
	}
	for v, rel := range q.Relations {
		acc := fnvOffset
		acc = mix(acc, uint64(rel.Cardinality))
		sels := make([]uint64, 0, len(rel.Selections))
		for _, s := range rel.Selections {
			sels = append(sels, math.Float64bits(s.Selectivity))
		}
		sortU64(sels)
		acc = mix(acc, uint64(len(sels)))
		for _, s := range sels {
			acc = mix(acc, s)
		}
		g.init[v] = acc
	}
	return g
}

// refineStep computes one WL round: each color becomes a hash of
// itself and the sorted multiset of (edge statistics, neighbor color).
func (g *legacyGraph) refineStep(colors, out []uint64, scratch []uint64) {
	for v := 0; v < g.n; v++ {
		contrib := scratch[:0]
		for _, he := range g.adj[v] {
			h := fnvOffset
			h = mix(h, he.mySide)
			h = mix(h, he.otherSide)
			h = mix(h, he.sel)
			h = mix(h, colors[he.to])
			contrib = append(contrib, h)
		}
		sortU64(contrib)
		acc := mix(fnvOffset, colors[v])
		acc = mix(acc, uint64(len(contrib)))
		for _, c := range contrib {
			acc = mix(acc, c)
		}
		out[v] = acc
	}
}

// legacyClasses counts distinct colors.
func legacyClasses(colors []uint64) int {
	s := append([]uint64(nil), colors...)
	sortU64(s)
	k := 0
	for i, c := range s {
		if i == 0 || c != s[i-1] {
			k++
		}
	}
	return k
}

// refineToStable iterates refinement until the number of color classes
// stops growing (at most n rounds). colors is consumed; the returned
// slice is freshly allocated state.
func (g *legacyGraph) refineToStable(colors []uint64) []uint64 {
	cur := append([]uint64(nil), colors...)
	next := make([]uint64, g.n)
	maxDeg := 0
	for _, adj := range g.adj {
		if len(adj) > maxDeg {
			maxDeg = len(adj)
		}
	}
	scratch := make([]uint64, 0, maxDeg)
	k := legacyClasses(cur)
	for round := 0; round < g.n; round++ {
		g.refineStep(cur, next, scratch)
		nk := legacyClasses(next)
		cur, next = next, cur
		if nk == k {
			break
		}
		k = nk
	}
	return cur
}

// legacyFirstTiedCell returns the members of the first (by color value)
// color class with more than one vertex, or nil if the partition is
// discrete.
func legacyFirstTiedCell(colors []uint64) []int {
	type vc struct {
		v int
		c uint64
	}
	vs := make([]vc, len(colors))
	for v, c := range colors {
		vs[v] = vc{v, c}
	}
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].c != vs[b].c {
			return vs[a].c < vs[b].c
		}
		return vs[a].v < vs[b].v
	})
	for i := 0; i < len(vs); {
		j := i
		for j < len(vs) && vs[j].c == vs[i].c {
			j++
		}
		if j-i > 1 {
			cell := make([]int, 0, j-i)
			for k := i; k < j; k++ {
				cell = append(cell, vs[k].v)
			}
			return cell
		}
		i = j
	}
	return nil
}

// legacyOrderFromDiscrete sorts vertices by their (all-distinct) colors.
func legacyOrderFromDiscrete(colors []uint64) []int {
	ord := make([]int, len(colors))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return colors[ord[a]] < colors[ord[b]] })
	return ord
}

// canonicalize produces the canonical encoding and relation order via
// individualization-refinement.
func (g *legacyGraph) canonicalize() ([]byte, []int) {
	budget := g.searchBudget
	return g.search(g.init, &budget)
}

func (g *legacyGraph) search(colors []uint64, budget *int) ([]byte, []int) {
	stable := g.refineToStable(colors)
	cell := legacyFirstTiedCell(stable)
	if cell == nil {
		ord := legacyOrderFromDiscrete(stable)
		return g.encode(ord), ord
	}
	var bestEnc []byte
	var bestOrd []int
	for _, v := range cell {
		if bestEnc != nil && *budget <= 0 {
			break
		}
		*budget--
		indiv := append([]uint64(nil), stable...)
		// Individualize v: give it a color derived from, but distinct
		// from, its cell color.
		indiv[v] = mix(mix(fnvOffset, indiv[v]), irIndivSalt)
		enc, ord := g.search(indiv, budget)
		if bestEnc == nil || bytes.Compare(enc, bestEnc) < 0 {
			bestEnc, bestOrd = enc, ord
		}
	}
	return bestEnc, bestOrd
}

// encode writes the exact query statistics under the given relation
// order: relations in order with cardinality and sorted selection
// selectivities, then predicates renumbered to canonical positions,
// sides oriented low-position-first, sorted bytewise.
func (g *legacyGraph) encode(ord []int) []byte {
	var buf bytes.Buffer
	buf.WriteString(encodingMagic)
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	writeU64(uint64(g.n))
	writeU64(uint64(len(g.q.Predicates)))

	pos := make([]int, g.n)
	for i, v := range ord {
		pos[v] = i
	}
	for _, v := range ord {
		rel := &g.q.Relations[v]
		writeU64(uint64(rel.Cardinality))
		sels := make([]uint64, 0, len(rel.Selections))
		for _, s := range rel.Selections {
			sels = append(sels, math.Float64bits(s.Selectivity))
		}
		sortU64(sels)
		writeU64(uint64(len(sels)))
		for _, s := range sels {
			writeU64(s)
		}
	}

	recs := make([][]byte, 0, len(g.q.Predicates))
	for _, p := range g.q.Predicates {
		a, b := pos[p.Left], pos[p.Right]
		ad, bd := p.LeftDistinct, p.RightDistinct
		ah, bh := p.LeftHist, p.RightHist
		if a > b {
			a, b = b, a
			ad, bd = bd, ad
			ah, bh = bh, ah
		}
		var rb bytes.Buffer
		w := func(v uint64) {
			var x [8]byte
			binary.BigEndian.PutUint64(x[:], v)
			rb.Write(x[:])
		}
		w(uint64(a))
		w(uint64(b))
		w(math.Float64bits(p.Selectivity))
		w(math.Float64bits(ad))
		w(math.Float64bits(bd))
		for _, h := range []*catalog.Histogram{ah, bh} {
			if h == nil {
				w(0)
				continue
			}
			w(1)
			w(uint64(h.Domain))
			w(uint64(len(h.Counts)))
			for _, c := range h.Counts {
				w(math.Float64bits(c))
			}
		}
		recs = append(recs, rb.Bytes())
	}
	sort.Slice(recs, func(a, b int) bool { return bytes.Compare(recs[a], recs[b]) < 0 })
	for _, r := range recs {
		buf.Write(r)
	}
	return buf.Bytes()
}
