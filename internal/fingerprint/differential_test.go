package fingerprint

import (
	"math/rand"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/workload"
)

// The differential equivalence suite: the zero-alloc bitset/CSR
// fingerprint path (fingerprint.go) against the frozen pre-rewrite
// implementation (legacy.go). The rewrite's contract is byte-identical
// digests and identical canonical orders — cached plans and persisted
// snapshots written before the rewrite must stay valid — so every
// divergence here is a release blocker, not a flake.

// diffQueries generates the equivalence corpus: every canonical shape
// (chain, star, cycle, clique, grid) at sizes up to 60 relations, plus
// random queries from the default and benchmark workload specs. Shapes
// matter because they pin the symmetric cases (star leaves, cycle
// rotations, clique automorphisms) where individualization-refinement
// does real work and the IR budget actually decrements.
func diffQueries(t testing.TB) []*catalog.Query {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	var qs []*catalog.Query
	spec := workload.Default()
	for _, shape := range workload.Shapes {
		for _, n := range []int{2, 3, 5, 12, 30, 60} {
			q, err := spec.GenerateShape(shape, n, rng)
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, q)
		}
	}
	for _, bench := range []int{0, 7, 8, 9} { // default, dense, star, chain
		s := spec
		if bench != 0 {
			var err error
			s, err = workload.Benchmark(bench)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []int{3, 10, 25, 60} {
			qs = append(qs, s.Generate(n, rng))
		}
	}
	return qs
}

// TestDifferentialDigests: the live path and the frozen legacy path
// produce the same fingerprint and the same canonical order for every
// corpus query.
func TestDifferentialDigests(t *testing.T) {
	for qi, q := range diffQueries(t) {
		gotF, gotOrd := Canonical(q)
		wantF, wantOrd := LegacyCanonical(q)
		if gotF != wantF {
			t.Fatalf("query %d (n=%d): digest mismatch: new %s, legacy %s",
				qi, len(q.Relations), gotF.Short(), wantF.Short())
		}
		if len(gotOrd) != len(wantOrd) {
			t.Fatalf("query %d: order length %d != %d", qi, len(gotOrd), len(wantOrd))
		}
		for i := range gotOrd {
			if gotOrd[i] != wantOrd[i] {
				t.Fatalf("query %d: canonical order diverges at %d: new %v, legacy %v",
					qi, i, gotOrd, wantOrd)
			}
		}
	}
}

// TestDifferentialRelabeling: the canonically relabeled queries are
// identical between paths — same relations in the same order, same
// sorted predicate list, statistic for statistic.
func TestDifferentialRelabeling(t *testing.T) {
	for qi, q := range diffQueries(t) {
		_, _, gotQ := CanonicalQuery(q)
		_, _, wantQ := LegacyCanonicalQuery(q)
		if len(gotQ.Relations) != len(wantQ.Relations) || len(gotQ.Predicates) != len(wantQ.Predicates) {
			t.Fatalf("query %d: relabeled sizes differ", qi)
		}
		for i := range gotQ.Relations {
			if gotQ.Relations[i].Name != wantQ.Relations[i].Name ||
				gotQ.Relations[i].Cardinality != wantQ.Relations[i].Cardinality {
				t.Fatalf("query %d: relation %d differs: %+v vs %+v",
					qi, i, gotQ.Relations[i], wantQ.Relations[i])
			}
		}
		for i := range gotQ.Predicates {
			gp, wp := gotQ.Predicates[i], wantQ.Predicates[i]
			if gp.Left != wp.Left || gp.Right != wp.Right ||
				gp.Selectivity != wp.Selectivity ||
				gp.LeftDistinct != wp.LeftDistinct || gp.RightDistinct != wp.RightDistinct {
				t.Fatalf("query %d: predicate %d differs: %+v vs %+v", qi, i, gp, wp)
			}
		}
	}
}

// TestDifferentialUnderPermutation: both paths agree on every random
// relabeling of every corpus query (and, transitively with
// TestRelabelInvariance, stay equal to the original's digest).
func TestDifferentialUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for qi, q := range diffQueries(t) {
		if len(q.Relations) > 30 {
			continue // permutation trials at the large sizes add time, not coverage
		}
		for trial := 0; trial < 4; trial++ {
			perm := rng.Perm(len(q.Relations))
			qp := permute(q, perm, rng)
			if got, want := Of(qp), LegacyOf(qp); got != want {
				t.Fatalf("query %d trial %d: permuted digest mismatch: new %s, legacy %s",
					qi, trial, got.Short(), want.Short())
			}
		}
	}
}

// TestDifferentialUnderMutation: after a single-statistic mutation the
// two paths still agree (both must move to the same new digest — the
// sensitivity property itself is TestMutationSensitivity, which runs
// against the live path).
func TestDifferentialUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for qi, q := range diffQueries(t) {
		qm := q.Clone()
		switch qi % 3 {
		case 0:
			qm.Relations[rng.Intn(len(qm.Relations))].Cardinality += 17
		case 1:
			p := &qm.Predicates[rng.Intn(len(qm.Predicates))]
			p.Selectivity = p.Selectivity*0.5 + 1e-7
		case 2:
			p := &qm.Predicates[rng.Intn(len(qm.Predicates))]
			p.LeftDistinct += 3
		}
		if got, want := Of(qm), LegacyOf(qm); got != want {
			t.Fatalf("query %d: mutated digest mismatch: new %s, legacy %s",
				qi, got.Short(), want.Short())
		}
	}
}

// TestHasherReuseAcrossSizes: one Hasher fed queries of wildly varying
// sizes (buffer grow/shrink churn) returns exactly what fresh Hashers
// return. This is the pool-hygiene property the sync.Pool path rests
// on.
func TestHasherReuseAcrossSizes(t *testing.T) {
	h := NewHasher()
	var order []catalog.RelID
	qs := diffQueries(t)
	// Interleave large and small so the reused buffers are repeatedly
	// larger than the query needs (stale-tail bugs surface here).
	for pass := 0; pass < 2; pass++ {
		for i := len(qs) - 1; i >= 0; i-- {
			q := qs[i]
			var gotF Fingerprint
			gotF, order = h.Canonical(q, order)
			wantF, wantOrd := LegacyCanonical(q)
			if gotF != wantF {
				t.Fatalf("pass %d query %d: reused-hasher digest %s != fresh %s",
					pass, i, gotF.Short(), wantF.Short())
			}
			for j := range order {
				if order[j] != wantOrd[j] {
					t.Fatalf("pass %d query %d: reused-hasher order %v != fresh %v",
						pass, i, order, wantOrd)
				}
			}
		}
	}
}

// TestOfDoesNotMutateQuery: the zero-clone hot path must leave the
// caller's query untouched, including denormalized predicates (Left >
// Right, zero selectivity) that the legacy path handled by cloning.
func TestOfDoesNotMutateQuery(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 100}, {Cardinality: 2000}, {Cardinality: 30},
		},
		Predicates: []catalog.Predicate{
			// Deliberately denormalized: Right < Left, Selectivity unset.
			{Left: 2, Right: 0, LeftDistinct: 10, RightDistinct: 40},
			{Left: 1, Right: 2, Selectivity: 0.25},
		},
	}
	snap := q.Clone()
	_ = Of(q)
	_, _ = Canonical(q)
	for i := range q.Predicates {
		if q.Predicates[i] != snap.Predicates[i] {
			t.Fatalf("predicate %d mutated: %+v, was %+v", i, q.Predicates[i], snap.Predicates[i])
		}
	}
	for i := range q.Relations {
		if q.Relations[i].Cardinality != snap.Relations[i].Cardinality {
			t.Fatalf("relation %d mutated", i)
		}
	}
	// And the digest must equal the normalized form's (Of normalizes
	// internally, exactly like the legacy clone+normalize did).
	if got, want := Of(q), LegacyOf(q); got != want {
		t.Fatalf("denormalized query digest mismatch: new %s, legacy %s", got.Short(), want.Short())
	}
}
