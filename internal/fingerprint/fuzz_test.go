package fingerprint

import (
	"math/rand"
	"testing"

	"joinopt/internal/workload"
)

// FuzzFingerprintPermutation fuzzes the plan cache's key invariant:
// relabeling a query's relations (and shuffling its predicate list)
// must not change the canonical fingerprint, and the canonical order
// returned with it must map the relabeled query onto the same
// canonical form. The fuzzer drives the query generator and the
// permutation from its own entropy, so it explores corners (repeated
// cardinalities, symmetric shapes) that the fixed-seed table test
// does not.
func FuzzFingerprintPermutation(f *testing.F) {
	f.Add(int64(1), uint8(5), int64(42))
	f.Add(int64(7), uint8(2), int64(0))
	f.Add(int64(-3), uint8(30), int64(99))
	f.Add(int64(0), uint8(1), int64(1))

	f.Fuzz(func(t *testing.T, qSeed int64, sz uint8, permSeed int64) {
		n := 2 + int(sz%30)
		q := workload.Default().Generate(n, rand.New(rand.NewSource(qSeed)))
		fp, order := Canonical(q)
		if len(order) != len(q.Relations) {
			t.Fatalf("canonical order covers %d of %d relations", len(order), len(q.Relations))
		}

		rng := rand.New(rand.NewSource(permSeed))
		perm := rng.Perm(len(q.Relations))
		relabeled := permute(q, perm, rng)
		relabeled.Normalize()

		fp2, order2 := Canonical(relabeled)
		if fp != fp2 {
			t.Fatalf("fingerprint changed under relabeling:\n  %s\n  %s\n(perm %v)", fp, fp2, perm)
		}
		if len(order2) != len(order) {
			t.Fatalf("canonical order length drifted: %d vs %d", len(order2), len(order))
		}

		// The two canonical queries must be structurally identical: the
		// whole point of canonicalization is that isomorphic queries
		// collapse to one cache entry.
		_, _, cq1 := CanonicalQuery(q)
		_, _, cq2 := CanonicalQuery(relabeled)
		if len(cq1.Relations) != len(cq2.Relations) || len(cq1.Predicates) != len(cq2.Predicates) {
			t.Fatalf("canonical forms differ in size")
		}
		for i := range cq1.Relations {
			if cq1.Relations[i].Cardinality != cq2.Relations[i].Cardinality {
				t.Fatalf("canonical relation %d cardinality differs: %d vs %d",
					i, cq1.Relations[i].Cardinality, cq2.Relations[i].Cardinality)
			}
		}
	})
}
