// Package fingerprint computes a canonical, collision-resistant
// identity for a catalog.Query: the cache key of the serving layer
// (internal/plancache, internal/serve).
//
// The fingerprint is invariant under relation relabeling and join-edge
// ordering — two queries that differ only by a permutation of RelIDs
// (and the induced renumbering of predicate endpoints, in any order)
// hash equal — while any change to a cardinality, a selection or join
// selectivity, a distinct count, a histogram, or the join-graph shape
// changes the hash (modulo SHA-256 collisions).
//
// Canonicalization is iterated neighborhood refinement over the join
// graph (Weisfeiler–Leman color refinement): each relation starts with
// a color derived from its exact statistics (cardinality, sorted
// selection selectivities), and rounds replace every color with a hash
// of itself plus the sorted multiset of (edge statistics, neighbor
// color) over incident join predicates. When the stable partition still
// holds ties — symmetric queries: identical leaves of a star, say —
// individualization-refinement resolves them: each tied relation is
// distinguished in turn, refinement re-runs, and the lexicographically
// smallest canonical encoding wins. The final fingerprint is the
// SHA-256 of the canonical byte encoding (exact statistics written in
// canonical relation order, predicates sorted by canonical endpoints).
//
// Everything is deterministic and label-free: no map iteration order,
// no wall clock, no randomness (the detrand analyzer is in force).
package fingerprint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"slices"
	"sort"

	"joinopt/internal/catalog"
)

// Size is the fingerprint length in bytes (SHA-256).
const Size = 32

// SchemaVersion identifies the canonical-encoding scheme this package
// currently produces. Any change to the canonical byte encoding — the
// statistics written, their order, the refinement procedure — changes
// what bytes a given query hashes to, which silently invalidates every
// fingerprint persisted under the old scheme. Bump this constant with
// any such change: the plan-cache journal (internal/persist) stamps it
// into its file headers and refuses to replay files written under a
// different schema, turning a silent cache-poisoning hazard into a
// loud cold start.
const SchemaVersion = 1

// Fingerprint is the canonical identity of a query shape: equal for
// isomorphic queries, distinct (collision-resistantly) otherwise.
type Fingerprint [Size]byte

// String renders the full fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short renders the first eight bytes as hex — the operator-friendly
// prefix used in logs and status pages.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:8]) }

// Parse decodes a full-length hex fingerprint (as printed by String).
func Parse(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("fingerprint: %w", err)
	}
	if len(b) != Size {
		return f, fmt.Errorf("fingerprint: want %d hex bytes, got %d", Size, len(b))
	}
	copy(f[:], b)
	return f, nil
}

// Of returns the canonical fingerprint of q. The query is cloned and
// normalized internally; q itself is not mutated.
func Of(q *catalog.Query) Fingerprint {
	f, _ := Canonical(q)
	return f
}

// Canonical returns the fingerprint together with the canonical
// relation order: order[i] is the original RelID placed at canonical
// position i. The order is what lets a cached plan (stored in
// canonical coordinates) be translated into any isomorphic query's
// labeling. q is not mutated.
func Canonical(q *catalog.Query) (Fingerprint, []catalog.RelID) {
	qc := q.Clone()
	qc.Normalize()
	g := buildGraph(qc)
	enc, ord := g.canonicalize()
	order := make([]catalog.RelID, len(ord))
	for i, v := range ord {
		order[i] = catalog.RelID(v)
	}
	return sha256.Sum256(enc), order
}

// CanonicalQuery returns the fingerprint, the canonical order, and the
// canonically relabeled query itself: relations appear in canonical
// order (position i holds the original relation order[i], name kept),
// predicate endpoints are renumbered and the predicate list is sorted
// canonically. Optimizing the canonical query instead of the original
// makes the search trajectory — and hence the cached plan — a pure
// function of the fingerprint and seed, independent of how the client
// happened to label its relations.
func CanonicalQuery(q *catalog.Query) (Fingerprint, []catalog.RelID, *catalog.Query) {
	f, order := Canonical(q)
	qc := q.Clone()
	qc.Normalize()
	n := len(qc.Relations)
	pos := make([]int, n)
	for i, old := range order {
		pos[old] = i
	}
	out := &catalog.Query{
		Relations:  make([]catalog.Relation, n),
		Predicates: make([]catalog.Predicate, len(qc.Predicates)),
	}
	for i, old := range order {
		out.Relations[i] = qc.Relations[old]
	}
	for i, p := range qc.Predicates {
		np := p
		np.Left = catalog.RelID(pos[p.Left])
		np.Right = catalog.RelID(pos[p.Right])
		np.Normalize() // restore Left < Right, swapping sides if needed
		out.Predicates[i] = np
	}
	sortPredicates(out.Predicates)
	return f, order, out
}

// sortPredicates orders predicates by (Left, Right, selectivity bits,
// distinct bits) — a total, label-free order once endpoints are
// canonical positions.
func sortPredicates(ps []catalog.Predicate) {
	sort.SliceStable(ps, func(a, b int) bool {
		pa, pb := &ps[a], &ps[b]
		if pa.Left != pb.Left {
			return pa.Left < pb.Left
		}
		if pa.Right != pb.Right {
			return pa.Right < pb.Right
		}
		if sa, sb := math.Float64bits(pa.Selectivity), math.Float64bits(pb.Selectivity); sa != sb {
			return sa < sb
		}
		if la, lb := math.Float64bits(pa.LeftDistinct), math.Float64bits(pb.LeftDistinct); la != lb {
			return la < lb
		}
		return math.Float64bits(pa.RightDistinct) < math.Float64bits(pb.RightDistinct)
	})
}

// ---------------------------------------------------------------------
// Internal machinery: join graph with hashed statistics, WL refinement,
// individualization-refinement, canonical encoding.

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// mix folds one 64-bit word into an FNV-1a state, byte by byte.
//
//ljqlint:hotpath
func mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

//ljqlint:hotpath
func mixFloat(h uint64, f float64) uint64 { return mix(h, math.Float64bits(f)) }

// halfEdge is one predicate seen from one endpoint.
type halfEdge struct {
	to int
	// mySide/otherSide hash the endpoint-local statistics (distinct
	// count, histogram); sel hashes the join selectivity. Orientation
	// matters: a predicate with asymmetric distinct counts must
	// contribute differently to its two endpoints.
	mySide, otherSide uint64
	sel               uint64
}

type graph struct {
	q   *catalog.Query
	n   int
	adj [][]halfEdge
	// initial per-vertex colors from exact relation statistics.
	init []uint64
	// searchBudget bounds individualization-refinement: the number of
	// individualizations tried across the whole search. Each tied cell
	// always gets at least its first candidate, so canonicalization
	// terminates regardless; the budget only caps how exhaustively
	// highly symmetric queries are disambiguated.
	searchBudget int
}

//ljqlint:hotpath
func histHash(h *catalog.Histogram) uint64 {
	acc := fnvOffset
	if h == nil {
		return mix(acc, 0xdead)
	}
	acc = mix(acc, uint64(h.Domain))
	acc = mix(acc, uint64(len(h.Counts)))
	for _, c := range h.Counts {
		acc = mixFloat(acc, c)
	}
	return acc
}

//ljqlint:hotpath
func sideHash(distinct float64, h *catalog.Histogram) uint64 {
	acc := fnvOffset
	acc = mixFloat(acc, distinct)
	acc = mix(acc, histHash(h))
	return acc
}

func buildGraph(q *catalog.Query) *graph {
	n := len(q.Relations)
	g := &graph{q: q, n: n, adj: make([][]halfEdge, n), init: make([]uint64, n), searchBudget: 256}
	for _, p := range q.Predicates {
		l, r := int(p.Left), int(p.Right)
		ls := sideHash(p.LeftDistinct, p.LeftHist)
		rs := sideHash(p.RightDistinct, p.RightHist)
		sel := mixFloat(fnvOffset, p.Selectivity)
		g.adj[l] = append(g.adj[l], halfEdge{to: r, mySide: ls, otherSide: rs, sel: sel})
		g.adj[r] = append(g.adj[r], halfEdge{to: l, mySide: rs, otherSide: ls, sel: sel})
	}
	for v, rel := range q.Relations {
		acc := fnvOffset
		acc = mix(acc, uint64(rel.Cardinality))
		sels := make([]uint64, 0, len(rel.Selections))
		for _, s := range rel.Selections {
			sels = append(sels, math.Float64bits(s.Selectivity))
		}
		sortU64(sels)
		acc = mix(acc, uint64(len(sels)))
		for _, s := range sels {
			acc = mix(acc, s)
		}
		g.init[v] = acc
	}
	return g
}

// sortU64 sorts in place. slices.Sort rather than sort.Slice: the
// latter boxes the slice header into a sort.Interface, a heap
// allocation per call that the escape gate flags inside refineStep's
// //ljqlint:hotpath inner loop (n vertices × WL rounds of them).
func sortU64(s []uint64) { slices.Sort(s) }

// refineStep computes one WL round: each color becomes a hash of
// itself and the sorted multiset of (edge statistics, neighbor color).
//
//ljqlint:hotpath
func (g *graph) refineStep(colors, out []uint64, scratch []uint64) {
	for v := 0; v < g.n; v++ {
		contrib := scratch[:0]
		for _, he := range g.adj[v] {
			h := fnvOffset
			h = mix(h, he.mySide)
			h = mix(h, he.otherSide)
			h = mix(h, he.sel)
			h = mix(h, colors[he.to])
			contrib = append(contrib, h) //ljqlint:allow hotalloc -- scratch is pre-sized to max degree by the caller; this append never grows it
		}
		sortU64(contrib)
		acc := mix(fnvOffset, colors[v])
		acc = mix(acc, uint64(len(contrib)))
		for _, c := range contrib {
			acc = mix(acc, c)
		}
		out[v] = acc
	}
}

// classes counts distinct colors.
func classes(colors []uint64) int {
	s := append([]uint64(nil), colors...)
	sortU64(s)
	k := 0
	for i, c := range s {
		if i == 0 || c != s[i-1] {
			k++
		}
	}
	return k
}

// refineToStable iterates refinement until the number of color classes
// stops growing (at most n rounds). colors is consumed; the returned
// slice is freshly allocated state.
func (g *graph) refineToStable(colors []uint64) []uint64 {
	cur := append([]uint64(nil), colors...)
	next := make([]uint64, g.n)
	// Pre-size scratch to the maximum degree: refineStep's append into
	// it must never grow (growth inside the loop would be re-paid every
	// round, since the grown header can't propagate back here).
	maxDeg := 0
	for _, adj := range g.adj {
		if len(adj) > maxDeg {
			maxDeg = len(adj)
		}
	}
	scratch := make([]uint64, 0, maxDeg)
	k := classes(cur)
	for round := 0; round < g.n; round++ {
		g.refineStep(cur, next, scratch)
		nk := classes(next)
		cur, next = next, cur
		if nk == k {
			break
		}
		k = nk
	}
	return cur
}

// firstTiedCell returns the members of the first (by color value)
// color class with more than one vertex, or nil if the partition is
// discrete. Member order within the cell follows vertex index — it
// only determines the order candidates are *tried* in, never the
// result (all candidates are explored and the minimum encoding wins,
// budget permitting).
func firstTiedCell(colors []uint64) []int {
	type vc struct {
		v int
		c uint64
	}
	vs := make([]vc, len(colors))
	for v, c := range colors {
		vs[v] = vc{v, c}
	}
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].c != vs[b].c {
			return vs[a].c < vs[b].c
		}
		return vs[a].v < vs[b].v
	})
	for i := 0; i < len(vs); {
		j := i
		for j < len(vs) && vs[j].c == vs[i].c {
			j++
		}
		if j-i > 1 {
			cell := make([]int, 0, j-i)
			for k := i; k < j; k++ {
				cell = append(cell, vs[k].v)
			}
			return cell
		}
		i = j
	}
	return nil
}

// orderFromDiscrete sorts vertices by their (all-distinct) colors.
func orderFromDiscrete(colors []uint64) []int {
	ord := make([]int, len(colors))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return colors[ord[a]] < colors[ord[b]] })
	return ord
}

// canonicalize produces the canonical encoding and relation order via
// individualization-refinement.
func (g *graph) canonicalize() ([]byte, []int) {
	budget := g.searchBudget
	return g.search(g.init, &budget)
}

func (g *graph) search(colors []uint64, budget *int) ([]byte, []int) {
	stable := g.refineToStable(colors)
	cell := firstTiedCell(stable)
	if cell == nil {
		ord := orderFromDiscrete(stable)
		return g.encode(ord), ord
	}
	var bestEnc []byte
	var bestOrd []int
	for _, v := range cell {
		if bestEnc != nil && *budget <= 0 {
			break
		}
		*budget--
		indiv := append([]uint64(nil), stable...)
		// Individualize v: give it a color derived from, but distinct
		// from, its cell color.
		indiv[v] = mix(mix(fnvOffset, indiv[v]), 0x1d1d)
		enc, ord := g.search(indiv, budget)
		if bestEnc == nil || bytes.Compare(enc, bestEnc) < 0 {
			bestEnc, bestOrd = enc, ord
		}
	}
	return bestEnc, bestOrd
}

// encode writes the exact query statistics under the given relation
// order: relations in order with cardinality and sorted selection
// selectivities, then predicates renumbered to canonical positions,
// sides oriented low-position-first, sorted bytewise. Two isomorphic
// queries produce identical encodings under their canonical orders;
// any statistic or shape difference produces different bytes.
func (g *graph) encode(ord []int) []byte {
	var buf bytes.Buffer
	buf.WriteString("ljqfp1")
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		buf.Write(b[:])
	}
	writeU64(uint64(g.n))
	writeU64(uint64(len(g.q.Predicates)))

	pos := make([]int, g.n)
	for i, v := range ord {
		pos[v] = i
	}
	for _, v := range ord {
		rel := &g.q.Relations[v]
		writeU64(uint64(rel.Cardinality))
		sels := make([]uint64, 0, len(rel.Selections))
		for _, s := range rel.Selections {
			sels = append(sels, math.Float64bits(s.Selectivity))
		}
		sortU64(sels)
		writeU64(uint64(len(sels)))
		for _, s := range sels {
			writeU64(s)
		}
	}

	recs := make([][]byte, 0, len(g.q.Predicates))
	for _, p := range g.q.Predicates {
		a, b := pos[p.Left], pos[p.Right]
		ad, bd := p.LeftDistinct, p.RightDistinct
		ah, bh := p.LeftHist, p.RightHist
		if a > b {
			a, b = b, a
			ad, bd = bd, ad
			ah, bh = bh, ah
		}
		var rb bytes.Buffer
		w := func(v uint64) {
			var x [8]byte
			binary.BigEndian.PutUint64(x[:], v)
			rb.Write(x[:])
		}
		w(uint64(a))
		w(uint64(b))
		w(math.Float64bits(p.Selectivity))
		w(math.Float64bits(ad))
		w(math.Float64bits(bd))
		for _, h := range []*catalog.Histogram{ah, bh} {
			if h == nil {
				w(0)
				continue
			}
			w(1)
			w(uint64(h.Domain))
			w(uint64(len(h.Counts)))
			for _, c := range h.Counts {
				w(math.Float64bits(c))
			}
		}
		recs = append(recs, rb.Bytes())
	}
	sort.Slice(recs, func(a, b int) bool { return bytes.Compare(recs[a], recs[b]) < 0 })
	for _, r := range recs {
		buf.Write(r)
	}
	return buf.Bytes()
}
