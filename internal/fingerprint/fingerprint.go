// Package fingerprint computes a canonical, collision-resistant
// identity for a catalog.Query: the cache key of the serving layer
// (internal/plancache, internal/serve).
//
// The fingerprint is invariant under relation relabeling and join-edge
// ordering — two queries that differ only by a permutation of RelIDs
// (and the induced renumbering of predicate endpoints, in any order)
// hash equal — while any change to a cardinality, a selection or join
// selectivity, a distinct count, a histogram, or the join-graph shape
// changes the hash (modulo SHA-256 collisions).
//
// Canonicalization is iterated neighborhood refinement over the join
// graph (Weisfeiler–Leman color refinement): each relation starts with
// a color derived from its exact statistics (cardinality, sorted
// selection selectivities), and rounds replace every color with a hash
// of itself plus the sorted multiset of (edge statistics, neighbor
// color) over incident join predicates. When the stable partition still
// holds ties — symmetric queries: identical leaves of a star, say —
// individualization-refinement resolves them: each tied relation is
// distinguished in turn, refinement re-runs, and the lexicographically
// smallest canonical encoding wins. The final fingerprint is the
// SHA-256 of the canonical byte encoding (exact statistics written in
// canonical relation order, predicates sorted by canonical endpoints).
//
// The implementation is the serving hot path: every request hashes its
// query before the plan-cache lookup, so canonicalization runs over a
// flat half-edge CSR with all working state owned by a reusable Hasher
// (pooled behind the package-level entry points). Steady state is zero
// heap allocations per fingerprint; ALLOC_BUDGETS.json pins it. The
// pre-rewrite implementation is frozen verbatim in legacy.go and the
// differential suite proves the two produce byte-identical digests.
//
// Everything is deterministic and label-free: no map iteration order,
// no wall clock, no randomness (the detrand analyzer is in force).
package fingerprint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"joinopt/internal/catalog"
)

// Size is the fingerprint length in bytes (SHA-256).
const Size = 32

// SchemaVersion identifies the canonical-encoding scheme this package
// currently produces. Any change to the canonical byte encoding — the
// statistics written, their order, the refinement procedure — changes
// what bytes a given query hashes to, which silently invalidates every
// fingerprint persisted under the old scheme. Bump this constant with
// any such change: the plan-cache journal (internal/persist) stamps it
// into its file headers and refuses to replay files written under a
// different schema, turning a silent cache-poisoning hazard into a
// loud cold start. (The zero-alloc rewrite did NOT bump it: digests are
// byte-identical to the legacy path, proven by the differential suite
// and the golden corpus.)
const SchemaVersion = 1

// encodingMagic prefixes every canonical encoding; the trailing digit
// tracks SchemaVersion.
const encodingMagic = "ljqfp1"

// irSearchBudget bounds individualization-refinement: the number of
// individualizations tried across the whole search. Each tied cell
// always gets at least its first candidate, so canonicalization
// terminates regardless; the budget only caps how exhaustively highly
// symmetric queries are disambiguated.
const irSearchBudget = 256

// irIndivSalt distinguishes an individualized vertex's color from its
// cell color.
const irIndivSalt = 0x1d1d

// Fingerprint is the canonical identity of a query shape: equal for
// isomorphic queries, distinct (collision-resistantly) otherwise.
type Fingerprint [Size]byte

// String renders the full fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short renders the first eight bytes as hex — the operator-friendly
// prefix used in logs and status pages.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:8]) }

// Parse decodes a full-length hex fingerprint (as printed by String).
func Parse(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("fingerprint: %w", err)
	}
	if len(b) != Size {
		return f, fmt.Errorf("fingerprint: want %d hex bytes, got %d", Size, len(b))
	}
	copy(f[:], b)
	return f, nil
}

var hasherPool = sync.Pool{New: func() any { return NewHasher() }}

// Of returns the canonical fingerprint of q. q is not mutated. Uses a
// pooled Hasher: zero allocations steady-state.
func Of(q *catalog.Query) Fingerprint {
	h := hasherPool.Get().(*Hasher)
	f := h.Of(q)
	h.release()
	hasherPool.Put(h)
	return f
}

// Canonical returns the fingerprint together with the canonical
// relation order: order[i] is the original RelID placed at canonical
// position i. The order is what lets a cached plan (stored in
// canonical coordinates) be translated into any isomorphic query's
// labeling. q is not mutated. The returned order is freshly allocated;
// use Hasher.Canonical with a reused buffer to avoid even that.
func Canonical(q *catalog.Query) (Fingerprint, []catalog.RelID) {
	h := hasherPool.Get().(*Hasher)
	f, order := h.Canonical(q, nil)
	h.release()
	hasherPool.Put(h)
	return f, order
}

// CanonicalQuery returns the fingerprint, the canonical order, and the
// canonically relabeled query itself (see Relabel). Optimizing the
// canonical query instead of the original makes the search trajectory
// — and hence the cached plan — a pure function of the fingerprint and
// seed, independent of how the client happened to label its relations.
func CanonicalQuery(q *catalog.Query) (Fingerprint, []catalog.RelID, *catalog.Query) {
	f, order := Canonical(q)
	return f, order, Relabel(q, order)
}

// Relabel returns q rewritten into the canonical labeling given by
// order (as returned by Canonical): relations appear in canonical
// order (position i holds the original relation order[i], name kept),
// predicate endpoints are renumbered and the predicate list is sorted
// canonically. q is not mutated. Allocates; it belongs on the cache
// miss path, not the hit path.
func Relabel(q *catalog.Query, order []catalog.RelID) *catalog.Query {
	qc := q.Clone()
	qc.Normalize()
	n := len(qc.Relations)
	pos := make([]int, n)
	for i, old := range order {
		pos[old] = i
	}
	out := &catalog.Query{
		Relations:  make([]catalog.Relation, n),
		Predicates: make([]catalog.Predicate, len(qc.Predicates)),
	}
	for i, old := range order {
		out.Relations[i] = qc.Relations[old]
	}
	for i, p := range qc.Predicates {
		np := p
		np.Left = catalog.RelID(pos[p.Left])
		np.Right = catalog.RelID(pos[p.Right])
		np.Normalize() // restore Left < Right, swapping sides if needed
		out.Predicates[i] = np
	}
	sortPredicates(out.Predicates)
	return out
}

// sortPredicates orders predicates by (Left, Right, selectivity bits,
// distinct bits) — a total, label-free order once endpoints are
// canonical positions.
func sortPredicates(ps []catalog.Predicate) {
	sort.SliceStable(ps, func(a, b int) bool {
		pa, pb := &ps[a], &ps[b]
		if pa.Left != pb.Left {
			return pa.Left < pb.Left
		}
		if pa.Right != pb.Right {
			return pa.Right < pb.Right
		}
		if sa, sb := math.Float64bits(pa.Selectivity), math.Float64bits(pb.Selectivity); sa != sb {
			return sa < sb
		}
		if la, lb := math.Float64bits(pa.LeftDistinct), math.Float64bits(pb.LeftDistinct); la != lb {
			return la < lb
		}
		return math.Float64bits(pa.RightDistinct) < math.Float64bits(pb.RightDistinct)
	})
}

// ---------------------------------------------------------------------
// Hot-path machinery: half-edge CSR, WL refinement over reused buffers,
// individualization-refinement with per-depth scratch levels.

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// mix folds one 64-bit word into an FNV-1a state, byte by byte.
// Fully unrolled: the FNV chain is serial (each step's multiply feeds
// the next), so the recoverable overhead is loop control. The unroll
// costs mix its inlinability, but measured end to end the straight-line
// body wins over the inlined loop.
//
//ljqlint:hotpath
func mix(h, v uint64) uint64 {
	h = (h ^ (v & 0xff)) * fnvPrime
	h = (h ^ ((v >> 8) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 16) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 24) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 32) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 40) & 0xff)) * fnvPrime
	h = (h ^ ((v >> 48) & 0xff)) * fnvPrime
	h = (h ^ (v >> 56)) * fnvPrime
	return h
}

//ljqlint:hotpath
func mixFloat(h uint64, f float64) uint64 { return mix(h, math.Float64bits(f)) }

// histNilHash is histHash(nil), folded at package init: the common
// no-histogram case pays zero mix steps for it.
var histNilHash = mix(fnvOffset, 0xdead)

//ljqlint:hotpath
func histHash(h *catalog.Histogram) uint64 {
	acc := fnvOffset
	if h == nil {
		return histNilHash
	}
	acc = mix(acc, uint64(h.Domain))
	acc = mix(acc, uint64(len(h.Counts)))
	for _, c := range h.Counts {
		acc = mixFloat(acc, c)
	}
	return acc
}

//ljqlint:hotpath
func sideHash(distinct float64, h *catalog.Histogram) uint64 {
	acc := fnvOffset
	acc = mixFloat(acc, distinct)
	acc = mix(acc, histHash(h))
	return acc
}

// sortU64 sorts in place. slices.Sort rather than sort.Slice: the
// latter boxes the slice header into a sort.Interface, a heap
// allocation per call that the escape gate flags inside refineStep's
// //ljqlint:hotpath inner loop (n vertices × WL rounds of them).
func sortU64(s []uint64) { slices.Sort(s) }

// vcPair pairs a vertex with its color for partition-cell scans.
type vcPair struct {
	c uint64
	v int32
}

// cmpVC orders by (color, vertex). A named top-level function: passing
// it to slices.SortFunc costs no closure allocation, unlike a capturing
// literal.
func cmpVC(a, b vcPair) int {
	switch {
	case a.c < b.c:
		return -1
	case a.c > b.c:
		return 1
	case a.v < b.v:
		return -1
	case a.v > b.v:
		return 1
	}
	return 0
}

// irLevel is the per-recursion-depth scratch of the IR search: color
// buffers for refinement, the tied cell, and the incumbent best
// (encoding, order) among the depth's individualization candidates.
// One level is reused across all candidates tried at its depth.
type irLevel struct {
	cur, next, indiv []uint64
	cell, ord        []int
	bestOrd          []int
	enc, bestEnc     []byte
}

// Hasher computes canonical fingerprints with all working state held in
// reusable buffers: after warm-up, a Hasher fingerprints queries of any
// previously-seen size with zero heap allocations. Not safe for
// concurrent use; the package-level Of/Canonical wrap a sync.Pool of
// Hashers for concurrent callers.
type Hasher struct {
	q     *catalog.Query
	n     int
	npred int

	// preds holds normalized copies of q's predicates (Left < Right,
	// selectivity filled) so q itself is never mutated and never cloned.
	preds []catalog.Predicate

	// Half-edge CSR: the incidences of vertex v live at
	// heTo/hePre[heOff[v]:heOff[v+1]]. Unlike joingraph.Graph — which
	// merges parallel predicates into one edge — fingerprinting keeps
	// every predicate as its own half-edge pair: the multiset of
	// per-predicate statistics is part of the identity. hePre is the
	// half-edge's statistics hash chain mix(mix(mix(fnv, mySide),
	// otherSide), sel), folded once at reset: it is constant across WL
	// rounds and IR nodes, so refineStep pays one mix per edge instead
	// of four.
	heOff                 []int32
	heTo                  []int32
	hePre                 []uint64
	initCol               []uint64
	contrib, clsBuf, sels []uint64
	pairs                 []vcPair
	pos                   []int

	// encode scratch: predicate records are appended into recBuf with
	// recOff boundaries, then sliced into recs for the bytewise sort.
	recBuf []byte
	recOff []int
	recs   [][]byte

	levels []*irLevel
	budget int
}

// NewHasher returns an empty Hasher. Buffers grow on first use and are
// reused afterwards.
func NewHasher() *Hasher { return &Hasher{} }

// Of returns the canonical fingerprint of q. q is not mutated. Zero
// allocations once the Hasher has seen a query at least this large.
//
//ljqlint:hotpath
func (h *Hasher) Of(q *catalog.Query) Fingerprint {
	h.reset(q)
	enc, _ := h.search(0, h.initCol)
	return sha256.Sum256(enc)
}

// Canonical returns the fingerprint and the canonical relation order,
// appended into dst (pass a reused buffer for zero allocations).
func (h *Hasher) Canonical(q *catalog.Query, dst []catalog.RelID) (Fingerprint, []catalog.RelID) {
	h.reset(q)
	enc, ord := h.search(0, h.initCol)
	dst = dst[:0]
	for _, v := range ord {
		dst = append(dst, catalog.RelID(v))
	}
	return sha256.Sum256(enc), dst
}

// release drops references into the caller's query so a pooled Hasher
// does not pin relations, selections, or histograms across uses.
func (h *Hasher) release() {
	h.q = nil
	for i := range h.preds {
		h.preds[i].LeftHist = nil
		h.preds[i].RightHist = nil
	}
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// reset points the Hasher at q and rebuilds the half-edge CSR and
// initial colors in place. Deliberately NOT //ljqlint:hotpath: the
// grow-on-demand branches contain heap allocations by design — they
// run only the first time the Hasher sees a given size class, and the
// 0-allocs/op benchmark ceilings prove they stay cold in steady state.
func (h *Hasher) reset(q *catalog.Query) {
	h.q = q
	h.n = len(q.Relations)
	h.npred = len(q.Predicates)
	h.budget = irSearchBudget

	if cap(h.preds) < h.npred {
		h.preds = make([]catalog.Predicate, h.npred)
	} else {
		h.preds = h.preds[:h.npred]
	}
	copy(h.preds, q.Predicates)
	for i := range h.preds {
		h.preds[i].Normalize()
	}

	h.heOff = growI32(h.heOff, h.n+1)
	for i := range h.heOff {
		h.heOff[i] = 0
	}
	for i := range h.preds {
		h.heOff[int(h.preds[i].Left)+1]++
		h.heOff[int(h.preds[i].Right)+1]++
	}
	maxDeg := int32(0)
	for v := 1; v <= h.n; v++ {
		if h.heOff[v] > maxDeg {
			maxDeg = h.heOff[v]
		}
		h.heOff[v] += h.heOff[v-1]
	}
	if cap(h.contrib) < int(maxDeg) {
		h.contrib = make([]uint64, 0, maxDeg)
	}

	nhe := 2 * h.npred
	h.heTo = growI32(h.heTo, nhe)
	h.hePre = growU64(h.hePre, nhe)
	h.pos = growInt(h.pos, h.n)
	for v := 0; v < h.n; v++ {
		h.pos[v] = int(h.heOff[v])
	}
	for i := range h.preds {
		p := &h.preds[i]
		ls := sideHash(p.LeftDistinct, p.LeftHist)
		rs := sideHash(p.RightDistinct, p.RightHist)
		sel := mixFloat(fnvOffset, p.Selectivity)
		l, r := int(p.Left), int(p.Right)
		j := h.pos[l]
		h.heTo[j], h.hePre[j] = int32(r), mix(mix(mix(fnvOffset, ls), rs), sel)
		h.pos[l]++
		j = h.pos[r]
		h.heTo[j], h.hePre[j] = int32(l), mix(mix(mix(fnvOffset, rs), ls), sel)
		h.pos[r]++
	}

	h.initCol = growU64(h.initCol, h.n)
	for v := range q.Relations {
		rel := &q.Relations[v]
		acc := mix(fnvOffset, uint64(rel.Cardinality))
		sels := h.sels[:0]
		for _, s := range rel.Selections {
			sels = append(sels, math.Float64bits(s.Selectivity))
		}
		sortU64(sels)
		h.sels = sels
		acc = mix(acc, uint64(len(sels)))
		for _, s := range sels {
			acc = mix(acc, s)
		}
		h.initCol[v] = acc
	}

	h.clsBuf = growU64(h.clsBuf, h.n)
	if cap(h.pairs) < h.n {
		h.pairs = make([]vcPair, h.n)
	} else {
		h.pairs = h.pairs[:h.n]
	}
}

// refineStep computes one WL round: each color becomes a hash of
// itself and the sorted multiset of (edge statistics, neighbor color).
//
//ljqlint:hotpath
func (h *Hasher) refineStep(colors, out []uint64) {
	for v := 0; v < h.n; v++ {
		contrib := h.contrib[:0]
		for i := h.heOff[v]; i < h.heOff[v+1]; i++ {
			contrib = append(contrib, mix(h.hePre[i], colors[h.heTo[i]])) //ljqlint:allow hotalloc -- contrib is pre-sized to max degree in reset; this append never grows it
		}
		sortU64(contrib)
		acc := mix(fnvOffset, colors[v])
		acc = mix(acc, uint64(len(contrib)))
		for _, c := range contrib {
			acc = mix(acc, c)
		}
		out[v] = acc
	}
}

// classes counts distinct colors using the shared scratch buffer.
//
//ljqlint:hotpath
func (h *Hasher) classes(colors []uint64) int {
	s := h.clsBuf[:len(colors)]
	copy(s, colors)
	sortU64(s)
	k := 0
	for i, c := range s {
		if i == 0 || c != s[i-1] {
			k++
		}
	}
	return k
}

// level returns depth d's scratch, growing the level stack and its
// buffers as needed (only on first use at a given depth/size).
func (h *Hasher) level(d int) *irLevel {
	for len(h.levels) <= d {
		h.levels = append(h.levels, &irLevel{})
	}
	lv := h.levels[d]
	lv.cur = growU64(lv.cur, h.n)
	lv.next = growU64(lv.next, h.n)
	lv.indiv = growU64(lv.indiv, h.n)
	return lv
}

// search is individualization-refinement at recursion depth d: refine
// colors to a stable partition; if discrete, encode under the induced
// order; otherwise individualize each member of the first tied cell in
// turn and keep the lexicographically smallest encoding. The returned
// slices alias the depth's level buffers — callers copy before the
// level is reused.
//
// Control flow (candidate visit order, budget decrements, tie-breaks)
// mirrors the frozen legacy path exactly; the differential suite holds
// the two to byte-identical outputs.
func (h *Hasher) search(d int, colors []uint64) ([]byte, []int) {
	lv := h.level(d)
	cur, next := lv.cur, lv.next
	copy(cur, colors)
	k := h.classes(cur)
	for round := 0; round < h.n; round++ {
		h.refineStep(cur, next)
		nk := h.classes(next)
		cur, next = next, cur
		if nk == k {
			break
		}
		k = nk
	}
	lv.cur, lv.next = cur, next
	stable := cur

	// Partition scan over (color, vertex) pairs: the first cell with
	// more than one member is the tied cell; if none, the sorted pair
	// order is the canonical vertex order.
	pairs := h.pairs[:h.n]
	for v := 0; v < h.n; v++ {
		pairs[v] = vcPair{c: stable[v], v: int32(v)}
	}
	slices.SortFunc(pairs, cmpVC)
	cell := lv.cell[:0]
	for i := 0; i < h.n; {
		j := i
		for j < h.n && pairs[j].c == pairs[i].c {
			j++
		}
		if j-i > 1 {
			for m := i; m < j; m++ {
				cell = append(cell, int(pairs[m].v))
			}
			break
		}
		i = j
	}
	lv.cell = cell

	if len(cell) == 0 {
		ord := lv.ord[:0]
		for i := 0; i < h.n; i++ {
			ord = append(ord, int(pairs[i].v))
		}
		lv.ord = ord
		lv.enc = h.encode(ord, lv.enc[:0])
		return lv.enc, lv.ord
	}

	hasBest := false
	for _, v := range cell {
		if hasBest && h.budget <= 0 {
			break
		}
		h.budget--
		copy(lv.indiv, stable)
		// Individualize v: give it a color derived from, but distinct
		// from, its cell color.
		lv.indiv[v] = mix(mix(fnvOffset, lv.indiv[v]), irIndivSalt)
		enc, ord := h.search(d+1, lv.indiv)
		if !hasBest || bytes.Compare(enc, lv.bestEnc) < 0 {
			lv.bestEnc = append(lv.bestEnc[:0], enc...)
			lv.bestOrd = append(lv.bestOrd[:0], ord...)
			hasBest = true
		}
	}
	return lv.bestEnc, lv.bestOrd
}

//ljqlint:hotpath
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// encode appends the canonical byte encoding under the given relation
// order to dst: relations in order with cardinality and sorted
// selection selectivities, then predicates renumbered to canonical
// positions, sides oriented low-position-first, sorted bytewise. Two
// isomorphic queries produce identical encodings under their canonical
// orders; any statistic or shape difference produces different bytes.
func (h *Hasher) encode(ord []int, dst []byte) []byte {
	dst = append(dst, encodingMagic...)
	dst = appendU64(dst, uint64(h.n))
	dst = appendU64(dst, uint64(h.npred))

	pos := h.pos
	for i, v := range ord {
		pos[v] = i
	}
	for _, v := range ord {
		rel := &h.q.Relations[v]
		dst = appendU64(dst, uint64(rel.Cardinality))
		sels := h.sels[:0]
		for _, s := range rel.Selections {
			sels = append(sels, math.Float64bits(s.Selectivity))
		}
		sortU64(sels)
		h.sels = sels
		dst = appendU64(dst, uint64(len(sels)))
		for _, s := range sels {
			dst = appendU64(dst, s)
		}
	}

	// Build the predicate records into the shared buffer, then sort
	// views of them bytewise. recBuf may reallocate while growing, so
	// the record views are sliced only after all appends are done.
	rb := h.recBuf[:0]
	off := h.recOff[:0]
	for i := range h.preds {
		p := &h.preds[i]
		off = append(off, len(rb))
		a, b := pos[p.Left], pos[p.Right]
		ad, bd := p.LeftDistinct, p.RightDistinct
		ah, bh := p.LeftHist, p.RightHist
		if a > b {
			a, b = b, a
			ad, bd = bd, ad
			ah, bh = bh, ah
		}
		rb = appendU64(rb, uint64(a))
		rb = appendU64(rb, uint64(b))
		rb = appendU64(rb, math.Float64bits(p.Selectivity))
		rb = appendU64(rb, math.Float64bits(ad))
		rb = appendU64(rb, math.Float64bits(bd))
		for _, hg := range [2]*catalog.Histogram{ah, bh} {
			if hg == nil {
				rb = appendU64(rb, 0)
				continue
			}
			rb = appendU64(rb, 1)
			rb = appendU64(rb, uint64(hg.Domain))
			rb = appendU64(rb, uint64(len(hg.Counts)))
			for _, c := range hg.Counts {
				rb = appendU64(rb, math.Float64bits(c))
			}
		}
	}
	off = append(off, len(rb))
	h.recBuf, h.recOff = rb, off

	recs := h.recs[:0]
	for i := 0; i < h.npred; i++ {
		recs = append(recs, rb[off[i]:off[i+1]])
	}
	h.recs = recs
	slices.SortFunc(recs, bytes.Compare)
	for _, r := range recs {
		dst = append(dst, r...)
	}
	return dst
}
