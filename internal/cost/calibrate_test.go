package cost

import (
	"math"
	"math/rand"
	"testing"
)

// synthetic samples from known coefficients (exact, deterministic).
func syntheticSamples(build, probe, result float64, noise float64, rng *rand.Rand) []JoinSample {
	var out []JoinSample
	for _, o := range []float64{100, 1000, 5000, 20000} {
		for _, i := range []float64{50, 800, 4000} {
			for _, r := range []float64{10, 600, 9000} {
				m := build*i + probe*o + result*r
				if noise > 0 {
					m *= 1 + noise*(rng.Float64()*2-1)
				}
				out = append(out, JoinSample{Outer: o, Inner: i, Result: r, Measured: m})
			}
		}
	}
	return out
}

func TestCalibrateRecoversExactCoefficients(t *testing.T) {
	samples := syntheticSamples(2.5, 1.0, 0.75, 0, nil)
	m, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized to Probe = 1: ratios must match exactly.
	if math.Abs(m.Probe-1) > 1e-9 || math.Abs(m.Build-2.5) > 1e-6 || math.Abs(m.Result-0.75) > 1e-6 {
		t.Fatalf("fit %+v, want ratios 2.5/1/0.75", m)
	}
	if q := FitQuality(m, samples); q < 1-1e-9 {
		t.Fatalf("exact data R² = %g", q)
	}
}

func TestCalibrateHandlesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := syntheticSamples(3, 1, 0.5, 0.2, rng)
	m, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.Build < 1.5 || m.Build > 6 {
		t.Fatalf("noisy build estimate %g far from 3", m.Build)
	}
	if q := FitQuality(m, samples); q < 0.8 {
		t.Fatalf("noisy R² = %g", q)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	// Degenerate: all rows identical → singular system.
	same := make([]JoinSample, 5)
	for i := range same {
		same[i] = JoinSample{Outer: 10, Inner: 10, Result: 10, Measured: 30}
	}
	if _, err := Calibrate(same); err == nil {
		t.Fatal("singular system accepted")
	}
}

func TestFitQualityDegenerate(t *testing.T) {
	m := NewMemoryModel()
	if FitQuality(m, nil) != 0 {
		t.Fatal("empty fit quality")
	}
	same := []JoinSample{{1, 1, 1, 5}, {1, 1, 1, 5}}
	if FitQuality(m, same) != 0 {
		t.Fatal("zero-variance fit quality should be 0")
	}
}
