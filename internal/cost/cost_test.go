package cost

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMemoryModelArithmetic(t *testing.T) {
	m := &MemoryModel{Build: 2, Probe: 1, Result: 1}
	got := m.JoinCost(10, 20, 30)
	if got != 2*20+10+30 {
		t.Fatalf("got %g, want 80", got)
	}
	if m.Name() != "memory" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestMemoryModelMonotone(t *testing.T) {
	m := NewMemoryModel()
	f := func(a, b, c, da, db, dc uint16) bool {
		o, i, r := float64(a), float64(b), float64(c)
		base := m.JoinCost(o, i, r)
		return m.JoinCost(o+float64(da), i, r) >= base &&
			m.JoinCost(o, i+float64(db), r) >= base &&
			m.JoinCost(o, i, r+float64(dc)) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiskModelPages(t *testing.T) {
	m := NewDiskModel() // 100-byte tuples, 4096-byte pages
	if got := m.Pages(0); got != 0 {
		t.Fatalf("pages(0)=%g", got)
	}
	if got := m.Pages(1); got != 1 {
		t.Fatalf("pages(1)=%g, want 1", got)
	}
	if got := m.Pages(41); got != 2 { // 4100 bytes → 2 pages
		t.Fatalf("pages(41)=%g, want 2", got)
	}
}

func TestDiskModelInMemoryJoin(t *testing.T) {
	m := NewDiskModel()
	// Inner fits easily: pages(1000 tuples)=25, fudge 1.4 → 35 ≤ 500.
	got := m.JoinCost(1000, 1000, 1000)
	wantIO := m.Pages(1000)*2 + m.Pages(1000)
	wantCPU := m.CPUWeight * 3000
	if math.Abs(got-(wantIO+wantCPU)) > 1e-9 {
		t.Fatalf("in-memory grace join: got %g, want %g", got, wantIO+wantCPU)
	}
}

func TestDiskModelPartitioningKicksIn(t *testing.T) {
	m := NewDiskModel()
	// Inner of 10^6 tuples = 24414 pages ≫ 500-page memory: one
	// partitioning pass adds 2(pInner+pOuter) I/Os.
	small := m.JoinCost(1000, 1000, 1000)
	big := m.JoinCost(1000, 1e6, 1000)
	// Compare against a hypothetical without partitioning.
	noPart := m.Pages(1000) + m.Pages(1e6) + m.Pages(1000) + m.CPUWeight*(1000+1e6+1000)
	if big <= noPart {
		t.Fatalf("partitioning not charged: big=%g noPart=%g", big, noPart)
	}
	if big <= small {
		t.Fatal("bigger inner not more expensive")
	}
}

func TestDiskModelMonotone(t *testing.T) {
	m := NewDiskModel()
	f := func(a, b, c, d uint16) bool {
		o, i, r := float64(a)+1, float64(b)+1, float64(c)+1
		return m.JoinCost(o+float64(d), i, r) >= m.JoinCost(o, i, r) &&
			m.JoinCost(o, i+float64(d), r) >= m.JoinCost(o, i, r) &&
			m.JoinCost(o, i, r+float64(d)) >= m.JoinCost(o, i, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if m.Name() != "disk" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestBudgetBasics(t *testing.T) {
	b := NewBudget(10)
	if b.Exhausted() {
		t.Fatal("fresh budget exhausted")
	}
	b.Charge(4)
	if b.Used() != 4 || b.Remaining() != 6 {
		t.Fatalf("used=%d remaining=%d", b.Used(), b.Remaining())
	}
	b.Charge(7)
	if !b.Exhausted() {
		t.Fatal("over-charged budget not exhausted")
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining clamps at 0, got %d", b.Remaining())
	}
	b.Reset(5)
	if b.Exhausted() || b.Used() != 0 || b.Limit() != 5 {
		t.Fatal("reset incomplete")
	}
}

func TestUnlimitedBudget(t *testing.T) {
	b := Unlimited()
	b.Charge(1 << 40)
	if b.Exhausted() {
		t.Fatal("unlimited budget exhausted")
	}
	if b.Remaining() >= 0 {
		t.Fatalf("unlimited remaining should be negative, got %d", b.Remaining())
	}
}

func TestUnitsFor(t *testing.T) {
	if got := UnitsFor(9, 50); got != int64(9*50*50*UnitScale) {
		t.Fatalf("UnitsFor(9,50)=%d", got)
	}
	if got := UnitsFor(0, 0); got != 1 {
		t.Fatalf("degenerate UnitsFor should floor at 1, got %d", got)
	}
}

func TestBudgetDeadline(t *testing.T) {
	b := NewBudget(0).WithDeadline(5 * time.Millisecond)
	if b.Exhausted() {
		t.Fatal("fresh deadline budget exhausted")
	}
	// Burn charges until past the deadline.
	deadline := time.Now().Add(200 * time.Millisecond)
	for !b.Exhausted() {
		b.Charge(64)
		if time.Now().After(deadline) {
			t.Fatal("deadline budget never exhausted")
		}
		time.Sleep(time.Millisecond)
	}
	// Once timed out, it stays exhausted.
	if !b.Exhausted() {
		t.Fatal("timed-out budget reported un-exhausted")
	}
	b.Reset(10)
	if b.Exhausted() {
		t.Fatal("reset did not clear the deadline")
	}
}

func TestBudgetUnitLimitStillWinsWithDeadline(t *testing.T) {
	b := NewBudget(10).WithDeadline(time.Hour)
	b.Charge(11)
	if !b.Exhausted() {
		t.Fatal("unit limit ignored when a deadline is set")
	}
}
