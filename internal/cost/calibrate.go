package cost

import (
	"errors"
	"math"
)

// Calibration fits the main-memory model's coefficients to measured
// join executions — the discipline behind the paper's cost model
// ([Swa89a] is "A Validated Cost Model": its constants came from
// measurements, not guesses). Collect samples with
// engine.CalibrationSamples, fit with Calibrate, and optimize with a
// model whose ratios reflect the machine at hand.

// JoinSample is one measured join: operand/result sizes and the
// measured execution cost (any unit — seconds, ticks; only ratios
// matter).
type JoinSample struct {
	Outer, Inner, Result float64
	Measured             float64
}

// Calibrate least-squares-fits measured = B·inner + P·outer + R·result
// (no intercept) and returns the model normalized so Probe = 1 —
// absolute scale is meaningless to plan comparison, ratios are
// everything. Requires at least three samples with non-degenerate
// variation; coefficients are clamped to a small positive floor so the
// fitted model stays monotone.
func Calibrate(samples []JoinSample) (*MemoryModel, error) {
	if len(samples) < 3 {
		return nil, errors.New("cost: calibration needs at least 3 samples")
	}
	// Normal equations AᵀA x = Aᵀy for x = (B, P, R) over rows
	// (inner, outer, result).
	var ata [3][3]float64
	var aty [3]float64
	for _, s := range samples {
		row := [3]float64{s.Inner, s.Outer, s.Result}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * s.Measured
		}
	}
	x, err := solve3(ata, aty)
	if err != nil {
		return nil, err
	}
	// Normalize to Probe = 1, clamping to keep monotonicity.
	probe := x[1]
	if probe <= 0 {
		// Fall back to normalizing by the largest coefficient.
		probe = math.Max(x[0], math.Max(x[1], x[2]))
		if probe <= 0 {
			return nil, errors.New("cost: calibration produced no positive coefficient")
		}
	}
	clamp := func(v float64) float64 {
		v /= probe
		if v < 1e-3 {
			return 1e-3
		}
		return v
	}
	return &MemoryModel{Build: clamp(x[0]), Probe: clamp(x[1]), Result: clamp(x[2])}, nil
}

// solve3 solves a 3×3 linear system by Gaussian elimination with
// partial pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	var x [3]float64
	// Augment.
	m := [3][4]float64{}
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return x, errors.New("cost: calibration system is singular (samples lack variation)")
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	for i := 0; i < 3; i++ {
		x[i] = m[i][3] / m[i][i]
	}
	return x, nil
}

// FitQuality returns the coefficient of determination R² of the model
// against the samples (1 = perfect fit).
func FitQuality(m *MemoryModel, samples []JoinSample) float64 {
	if len(samples) == 0 {
		return 0
	}
	mean := 0.0
	for _, s := range samples {
		mean += s.Measured
	}
	mean /= float64(len(samples))
	ssTot, ssRes := 0.0, 0.0
	// The calibrated model is normalized (Probe = 1), so fit a single
	// global scale factor first: s* = Σ(pred·meas)/Σ(pred²).
	num, den := 0.0, 0.0
	for _, s := range samples {
		p := m.JoinCost(s.Outer, s.Inner, s.Result)
		num += p * s.Measured
		den += p * p
	}
	scale := 1.0
	if den > 0 {
		scale = num / den
	}
	for _, s := range samples {
		p := scale * m.JoinCost(s.Outer, s.Inner, s.Result)
		ssRes += (s.Measured - p) * (s.Measured - p)
		ssTot += (s.Measured - mean) * (s.Measured - mean)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
