package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNestedLoopModel(t *testing.T) {
	m := &NestedLoopModel{Compare: 0.25, Result: 1}
	if got := m.JoinCost(10, 20, 5); got != 0.25*200+5 {
		t.Fatalf("got %g", got)
	}
	if m.Name() != "nested-loop" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestSortMergeModel(t *testing.T) {
	m := &SortMergeModel{Sort: 1, Merge: 0.5, Result: 1}
	want := 8*3.0 + 4*2.0 + 0.5*12 + 7 // 8log8 + 4log4 + merge + result
	if got := m.JoinCost(8, 4, 7); math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g, want %g", got, want)
	}
	if m.Name() != "sort-merge" {
		t.Fatalf("name %q", m.Name())
	}
	// n·log n degenerates gracefully at and below 1.
	if nLogN(1) != 1 || nLogN(0.5) != 0.5 || nLogN(0) != 0 {
		t.Fatal("nLogN degenerate values")
	}
}

func TestChooserPicksMinimum(t *testing.T) {
	c := NewChooser()
	f := func(a, b, r uint16) bool {
		o, i, res := float64(a), float64(b), float64(r)
		got := c.JoinCost(o, i, res)
		min := math.Inf(1)
		for _, m := range c.Models {
			if v := m.JoinCost(o, i, res); v < min {
				min = v
			}
		}
		return got == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if c.Name() != "auto" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestChooseAgreesWithJoinCost(t *testing.T) {
	c := NewChooser()
	m, v := c.Choose(1000, 5, 100)
	if v != c.JoinCost(1000, 5, 100) {
		t.Fatal("Choose cost disagrees with JoinCost")
	}
	if m == nil {
		t.Fatal("no model chosen")
	}
}

// TestMethodCrossover: the calibrated defaults must make each method
// win somewhere sensible — nested loops for tiny inners (no build
// amortization), hash for bulk equi-joins.
func TestMethodCrossover(t *testing.T) {
	c := NewChooser()
	// Tiny inner, large outer: a hash table on 2 tuples cannot beat
	// 2 comparisons per outer tuple at Compare=0.25.
	m, _ := c.Choose(100000, 2, 100000)
	if m.Name() != "nested-loop" {
		t.Fatalf("tiny inner chose %s", m.Name())
	}
	// Bulk equi-join: hashing wins over O(n·m) comparisons.
	m, _ = c.Choose(100000, 100000, 100000)
	if m.Name() != "memory" {
		t.Fatalf("bulk join chose %s", m.Name())
	}
}

// TestNonASIShape documents the §4.2 point the sort-merge model exists
// to illustrate: its cost is not of the ASI form n₁·g(n₂) (cost at
// doubled outer is more than double, holding inner fixed, because of
// the n·log n sort term).
func TestNonASIShape(t *testing.T) {
	m := NewSortMergeModel()
	base := m.JoinCost(1000, 50, 0)
	doubled := m.JoinCost(2000, 50, 0)
	// ASI form would give doubled - fixed(inner) = 2·(base - fixed(inner));
	// with the sort term, strictly more.
	fixed := m.JoinCost(0, 50, 0)
	if doubled-fixed <= 2*(base-fixed) {
		t.Fatal("sort-merge cost unexpectedly ASI-linear in the outer")
	}
}
