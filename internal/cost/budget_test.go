package cost

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestBudgetConcurrentChargeExhaustedCancel hammers one budget from many
// goroutines mixing Charge, Exhausted, Used, Remaining and a late
// Cancel. Run under -race this is the concurrency-safety regression
// test: the pre-atomic budget had plain int64 fields and raced.
func TestBudgetConcurrentChargeExhaustedCancel(t *testing.T) {
	b := NewBudget(1_000_000).WithDeadline(time.Minute)
	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 20_000; i++ {
				b.Charge(1)
				if b.Exhausted() && b.Remaining() == 0 {
					// plausible consistency probe, no assertion: the point
					// is the race detector.
					_ = b.Used()
				}
				if w == 0 && i == 10_000 {
					b.Cancel()
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	if !b.Exhausted() {
		t.Fatal("cancelled budget not exhausted")
	}
	if !b.Cancelled() {
		t.Fatal("Cancelled not observed")
	}
	if got := b.Used(); got != workers*20_000 {
		t.Fatalf("lost charges: used %d, want %d", got, workers*20_000)
	}
	if b.Remaining() != 0 {
		t.Fatalf("cancelled budget has %d remaining", b.Remaining())
	}
}

// TestBudgetFirstStopWins composes all three stop conditions — unit
// limit, wall-clock deadline, context cancellation — and checks each
// fires independently of the others (first stop wins).
func TestBudgetFirstStopWins(t *testing.T) {
	t.Run("units-first", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b := NewBudget(10).WithDeadline(time.Hour).WithContext(ctx)
		b.Charge(10)
		if !b.Exhausted() {
			t.Fatal("unit limit did not stop the budget")
		}
		if b.Cancelled() {
			t.Fatal("unit-limit stop misreported as cancellation")
		}
	})
	t.Run("deadline-first", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b := NewBudget(1 << 40).WithDeadline(-time.Second).WithContext(ctx)
		// The clock is only consulted every deadlineCheckInterval units.
		b.Charge(deadlineCheckInterval)
		if !b.Exhausted() {
			t.Fatal("expired deadline did not stop the budget")
		}
		if b.Cancelled() {
			t.Fatal("deadline stop misreported as cancellation")
		}
	})
	t.Run("cancel-first", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		b := NewBudget(1 << 40).WithDeadline(time.Hour).WithContext(ctx)
		if b.Exhausted() {
			t.Fatal("fresh budget exhausted")
		}
		cancel()
		deadline := time.Now().Add(5 * time.Second)
		for !b.Exhausted() {
			if time.Now().After(deadline) {
				t.Fatal("context cancellation never reached the budget")
			}
			time.Sleep(time.Millisecond)
		}
		if !b.Cancelled() {
			t.Fatal("context stop not reported as cancellation")
		}
	})
}

// TestBudgetWithContextAlreadyCancelled: attaching a dead context
// cancels immediately (the zero-budget degradation path depends on it).
func TestBudgetWithContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Unlimited().WithContext(ctx)
	if !b.Exhausted() || !b.Cancelled() {
		t.Fatal("already-cancelled context did not cancel the budget")
	}
}

// TestBudgetWithContextBackground: a non-cancellable context must not
// register anything or stop the budget.
func TestBudgetWithContextBackground(t *testing.T) {
	b := NewBudget(100).WithContext(context.Background())
	b.Charge(1)
	if b.Exhausted() || b.Cancelled() {
		t.Fatal("background context stopped the budget")
	}
}

// TestBudgetResetClearsCancellation: Reset re-arms a cancelled budget.
func TestBudgetResetClearsCancellation(t *testing.T) {
	b := NewBudget(5)
	b.Cancel()
	if !b.Exhausted() {
		t.Fatal("cancel ignored")
	}
	b.Reset(5)
	if b.Exhausted() || b.Cancelled() || b.Used() != 0 {
		t.Fatal("Reset did not clear cancellation state")
	}
}
