package cost

import "time"

// Budget is the deterministic substitute for the paper's wall-clock time
// limits. The optimizer simulations in the paper are "completely CPU
// bound" and dominated by cost-function evaluations, so we meter those:
// every single-join cost computation debits one work unit. A paper time
// limit of t·N² corresponds to t·N²·UnitScale units (see UnitsFor).
//
// A Budget is shared by reference among all phases of a composite
// strategy so the whole strategy respects one limit, exactly as a single
// wall clock would.
type Budget struct {
	limit int64
	used  int64
	// deadline, when non-zero, exhausts the budget at a wall-clock
	// instant as well — the practitioner's stop condition, layered on
	// top of the deterministic unit meter.
	deadline time.Time
	// checkEvery controls how often Exhausted consults the clock (every
	// 2^k charges, amortizing the time.Now call).
	sinceCheck int64
	timedOut   bool
}

// UnitScale converts the paper's time coefficient into work units:
// limit(t, N) = t · N² · UnitScale. The default is calibrated so that the
// qualitative behaviour of the paper's Figures 4–6 (II/AGI ahead at small
// t, IAI ahead from t ≈ 1.5–1.8 on, convergence by t = 9) appears at the
// same coefficients.
const UnitScale = 5

// UnitsFor returns the work-unit budget equivalent to the paper's time
// limit t·N² for a query with n joins.
func UnitsFor(t float64, n int) int64 {
	u := t * float64(n) * float64(n) * UnitScale
	if u < 1 {
		return 1
	}
	return int64(u)
}

// NewBudget returns a budget of the given number of work units. A
// non-positive limit means unlimited.
func NewBudget(units int64) *Budget {
	return &Budget{limit: units}
}

// Unlimited returns a budget that never exhausts.
func Unlimited() *Budget { return &Budget{limit: 0} }

// WithDeadline attaches a wall-clock deadline: the budget also exhausts
// when the deadline passes, whichever comes first. Determinism is lost
// for the timed-out portion — use the unit limit alone for reproducible
// experiments and the deadline for production latency control.
func (b *Budget) WithDeadline(d time.Duration) *Budget {
	b.deadline = time.Now().Add(d)
	return b
}

// Charge debits n units.
func (b *Budget) Charge(n int64) {
	b.used += n
	b.sinceCheck += n
}

// deadlineCheckInterval spaces out time.Now calls: the clock is
// consulted at most once per this many charged units.
const deadlineCheckInterval = 256

// Exhausted reports whether the budget has run out (unit limit or
// deadline).
func (b *Budget) Exhausted() bool {
	if b.limit > 0 && b.used >= b.limit {
		return true
	}
	if b.timedOut {
		return true
	}
	if !b.deadline.IsZero() && b.sinceCheck >= deadlineCheckInterval {
		b.sinceCheck = 0
		if !time.Now().Before(b.deadline) {
			b.timedOut = true
			return true
		}
	}
	return false
}

// Used returns the units consumed so far.
func (b *Budget) Used() int64 { return b.used }

// Limit returns the configured limit (0 = unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// Remaining returns the units left, or a negative value when unlimited.
func (b *Budget) Remaining() int64 {
	if b.limit <= 0 {
		return -1
	}
	r := b.limit - b.used
	if r < 0 {
		return 0
	}
	return r
}

// Reset clears consumption (and any deadline state) and sets a new
// limit.
func (b *Budget) Reset(units int64) {
	b.limit = units
	b.used = 0
	b.deadline = time.Time{}
	b.sinceCheck = 0
	b.timedOut = false
}
