package cost

import (
	"context"
	"sync/atomic"
	"time"
)

// Budget is the deterministic substitute for the paper's wall-clock time
// limits. The optimizer simulations in the paper are "completely CPU
// bound" and dominated by cost-function evaluations, so we meter those:
// every single-join cost computation debits one work unit. A paper time
// limit of t·N² corresponds to t·N²·UnitScale units (see UnitsFor).
//
// A Budget is shared by reference among all phases of a composite
// strategy so the whole strategy respects one limit, exactly as a single
// wall clock would.
//
// Budgets are safe for concurrent use: Charge, Exhausted, Cancel, Used
// and Remaining may be called from multiple goroutines (a portfolio's
// members and a watchdog cancelling them, for example). Reset and the
// With* builders are setup-phase operations: call them before sharing
// the budget across goroutines.
//
// Beyond the deterministic unit meter a budget exhausts on three
// service-layer stop conditions, whichever fires first:
//
//   - the unit limit (NewBudget) — the paper's reproducible stop;
//   - a wall-clock deadline (WithDeadline) — latency control;
//   - cancellation (Cancel, or a context.Context via WithContext) —
//     callers and parent request scopes stopping the run.
type Budget struct {
	limit atomic.Int64
	used  atomic.Int64
	// deadlineNano, when non-zero, exhausts the budget at a wall-clock
	// instant as well — the practitioner's stop condition, layered on
	// top of the deterministic unit meter.
	deadlineNano atomic.Int64
	// sinceCheck controls how often Exhausted consults the clock
	// (amortizing the time.Now call over deadlineCheckInterval charges).
	sinceCheck atomic.Int64
	timedOut   atomic.Bool
	cancelled  atomic.Bool
}

// UnitScale converts the paper's time coefficient into work units:
// limit(t, N) = t · N² · UnitScale. The default is calibrated so that the
// qualitative behaviour of the paper's Figures 4–6 (II/AGI ahead at small
// t, IAI ahead from t ≈ 1.5–1.8 on, convergence by t = 9) appears at the
// same coefficients.
const UnitScale = 5

// UnitsFor returns the work-unit budget equivalent to the paper's time
// limit t·N² for a query with n joins.
func UnitsFor(t float64, n int) int64 {
	u := t * float64(n) * float64(n) * UnitScale
	if u < 1 {
		return 1
	}
	return int64(u)
}

// NewBudget returns a budget of the given number of work units. A
// non-positive limit means unlimited.
func NewBudget(units int64) *Budget {
	b := &Budget{}
	b.limit.Store(units)
	return b
}

// Unlimited returns a budget that never exhausts on units (it can still
// be cancelled or deadline-stopped).
func Unlimited() *Budget { return &Budget{} }

// WithDeadline attaches a wall-clock deadline: the budget also exhausts
// when the deadline passes, whichever comes first. Determinism is lost
// for the timed-out portion — use the unit limit alone for reproducible
// experiments and the deadline for production latency control.
func (b *Budget) WithDeadline(d time.Duration) *Budget {
	//ljqlint:allow detrand -- sanctioned wall-clock: WithDeadline's contract (documented above) trades determinism for latency control; reproducible runs use the unit limit alone
	b.deadlineNano.Store(time.Now().Add(d).UnixNano())
	return b
}

// WithContext ties the budget to a context: when ctx is cancelled (or
// its deadline passes) the budget is cancelled, which stops every phase
// of a composite strategy at its next Exhausted poll. The tie is
// one-way — exhausting the budget does not cancel the context. Calling
// WithContext with an already-cancelled context cancels immediately.
func (b *Budget) WithContext(ctx context.Context) *Budget {
	if ctx == nil {
		return b
	}
	if ctx.Err() != nil {
		b.Cancel()
		return b
	}
	if ctx.Done() != nil {
		// AfterFunc fires b.Cancel as soon as ctx is done; the
		// registration is dropped when ctx completes.
		context.AfterFunc(ctx, func() { b.Cancel() })
	}
	return b
}

// Cancel marks the budget exhausted immediately. It is safe to call from
// any goroutine and is idempotent; every strategy phase polling
// Exhausted stops at its next check. Reset clears the flag.
func (b *Budget) Cancel() { b.cancelled.Store(true) }

// Cancelled reports whether the budget was stopped by Cancel (directly
// or via a context from WithContext), as opposed to running out of
// units or hitting a deadline.
func (b *Budget) Cancelled() bool { return b.cancelled.Load() }

// Charge debits n units.
func (b *Budget) Charge(n int64) {
	b.used.Add(n)
	b.sinceCheck.Add(n)
}

// deadlineCheckInterval spaces out time.Now calls: the clock is
// consulted at most once per this many charged units.
const deadlineCheckInterval = 256

// Exhausted reports whether the budget has run out (cancellation, unit
// limit, or deadline — first stop wins).
func (b *Budget) Exhausted() bool {
	if b.cancelled.Load() {
		return true
	}
	if limit := b.limit.Load(); limit > 0 && b.used.Load() >= limit {
		return true
	}
	if b.timedOut.Load() {
		return true
	}
	if dl := b.deadlineNano.Load(); dl != 0 {
		if since := b.sinceCheck.Load(); since >= deadlineCheckInterval {
			b.sinceCheck.Add(-since)
			//ljqlint:allow detrand -- sanctioned wall-clock: deadline polling only runs when WithDeadline opted out of determinism
			if time.Now().UnixNano() >= dl {
				b.timedOut.Store(true)
				return true
			}
		}
	}
	return false
}

// Used returns the units consumed so far.
func (b *Budget) Used() int64 { return b.used.Load() }

// Limit returns the configured limit (0 = unlimited).
func (b *Budget) Limit() int64 { return b.limit.Load() }

// Remaining returns the units left, or a negative value when unlimited.
// A cancelled or timed-out budget has zero units remaining.
func (b *Budget) Remaining() int64 {
	if b.cancelled.Load() || b.timedOut.Load() {
		return 0
	}
	limit := b.limit.Load()
	if limit <= 0 {
		return -1
	}
	r := limit - b.used.Load()
	if r < 0 {
		return 0
	}
	return r
}

// Reset clears consumption (and any deadline, timeout and cancellation
// state) and sets a new limit. Like the With* builders it is a
// setup-phase operation: do not call it concurrently with users of the
// budget. A context attached via WithContext fires its cancellation at
// most once; re-attach with WithContext after Reset if the new run
// should observe the context too.
func (b *Budget) Reset(units int64) {
	b.limit.Store(units)
	b.used.Store(0)
	b.deadlineNano.Store(0)
	b.sinceCheck.Store(0)
	b.timedOut.Store(false)
	b.cancelled.Store(false)
}
