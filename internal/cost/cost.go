// Package cost defines the plan cost models and the work-unit budget that
// substitutes for the paper's wall-clock optimization time limits.
//
// Two models are provided, mirroring the paper's §6: a main-memory
// hash-join CPU model (after Swami's validated main-memory model) and a
// disk-based Grace-hash-join I/O model (after Bratbergsengen, VLDB 1984).
// Both expose a single method costing one join given the outer, inner and
// result sizes, so a plan's cost is the sum over its N joins.
package cost

import "math"

// Model prices a single hash join. Implementations must be monotone in
// all three arguments.
type Model interface {
	// JoinCost returns the cost of joining an outer operand of outer
	// tuples with an inner base relation of inner tuples producing
	// result tuples.
	JoinCost(outer, inner, result float64) float64
	// Name identifies the model in reports.
	Name() string
}

// MemoryModel is the main-memory hash-join CPU cost model: building a
// hash table on the inner, probing it with the outer, and materializing
// the result are each linear in the respective sizes.
//
// The default coefficients reflect that building (hashing + inserting) is
// somewhat more expensive per tuple than probing, and producing a result
// tuple costs about as much as probing. Absolute values only set the
// unit; relative plan order depends on ratios alone.
type MemoryModel struct {
	Build, Probe, Result float64
}

// NewMemoryModel returns the default-calibrated main-memory model.
func NewMemoryModel() *MemoryModel {
	return &MemoryModel{Build: 2.0, Probe: 1.0, Result: 1.0}
}

// JoinCost implements Model.
func (m *MemoryModel) JoinCost(outer, inner, result float64) float64 {
	return m.Build*inner + m.Probe*outer + m.Result*result
}

// Name implements Model.
func (m *MemoryModel) Name() string { return "memory" }

// DiskModel is a Grace-hash-join I/O cost model similar to
// Bratbergsengen's: when the inner's hash table fits in memory the join
// reads both operands once and writes the result; otherwise both operands
// are partitioned to disk and re-read, adding two I/Os per overflow page,
// recursively if a partition still overflows.
type DiskModel struct {
	// TupleBytes is the (uniform) width of a tuple in bytes.
	TupleBytes float64
	// PageBytes is the disk page size in bytes.
	PageBytes float64
	// MemoryPages is the number of buffer-pool pages available to a join.
	MemoryPages float64
	// Fudge is the hash-table space expansion factor (F in the
	// literature): the inner fits iff pages(inner)·Fudge ≤ MemoryPages.
	Fudge float64
	// CPUWeight prices the per-tuple CPU work relative to one I/O
	// (small; keeps the model strictly monotone in result size even
	// when page counts tie).
	CPUWeight float64
}

// NewDiskModel returns the default-calibrated disk model: 100-byte
// tuples, 4 KiB pages, a 500-page (~2 MB) buffer pool and the customary
// fudge factor 1.4.
func NewDiskModel() *DiskModel {
	return &DiskModel{
		TupleBytes:  100,
		PageBytes:   4096,
		MemoryPages: 500,
		Fudge:       1.4,
		CPUWeight:   0.001,
	}
}

// Pages converts a tuple count to occupied pages (at least one for a
// non-empty operand).
func (m *DiskModel) Pages(tuples float64) float64 {
	if tuples <= 0 {
		return 0
	}
	p := math.Ceil(tuples * m.TupleBytes / m.PageBytes)
	if p < 1 {
		return 1
	}
	return p
}

// JoinCost implements Model. Intermediate (outer) operands are assumed
// pipelined from the previous join when they fit in memory and spooled to
// disk otherwise; base relations are always read.
func (m *DiskModel) JoinCost(outer, inner, result float64) float64 {
	pOuter := m.Pages(outer)
	pInner := m.Pages(inner)
	pResult := m.Pages(result)
	cpu := m.CPUWeight * (outer + inner + result)

	io := pInner + pOuter // read both operands once
	// Partitioning passes: each pass writes and re-reads both operands,
	// and each pass multiplies the effective memory by the fan-out
	// (MemoryPages-1 partitions per pass).
	need := pInner * m.Fudge
	avail := m.MemoryPages
	fanout := m.MemoryPages - 1
	for need > avail && fanout > 1 {
		io += 2 * (pInner + pOuter)
		avail *= fanout
	}
	io += pResult // write the result
	return io + cpu
}

// Name implements Model.
func (m *DiskModel) Name() string { return "disk" }
