package cost

import "math"

// The paper restricts its experiments to the hash join (§2) and names
// support for multiple join methods as future work (§7). This file
// supplies that extension: nested-loop and sort-merge models, and a
// chooser that prices each join with the cheapest applicable method.
//
// Because the join *method* never changes the join *result*, method
// selection is separable per join in a left-deep plan: the optimal
// method assignment for a fixed join order is simply the per-join
// minimum. A Chooser therefore turns the whole multi-method
// optimization into ordinary join ordering over a composite model —
// no search-space changes required.

// NestedLoopModel prices an in-memory (block) nested-loop join: every
// outer tuple is compared against every inner tuple.
type NestedLoopModel struct {
	// Compare is the per-comparison cost; Result the per-result-tuple
	// materialization cost.
	Compare, Result float64
}

// NewNestedLoopModel returns the default-calibrated nested-loop model.
// The comparison constant is far below the hash models' per-tuple
// constants so that nested loops win exactly where they should: tiny
// inner relations, where building a hash table is wasted motion.
func NewNestedLoopModel() *NestedLoopModel {
	return &NestedLoopModel{Compare: 0.25, Result: 1.0}
}

// JoinCost implements Model.
func (m *NestedLoopModel) JoinCost(outer, inner, result float64) float64 {
	return m.Compare*outer*inner + m.Result*result
}

// Name implements Model.
func (m *NestedLoopModel) Name() string { return "nested-loop" }

// SortMergeModel prices a sort-merge join: sort both operands, then a
// single merge pass. Note the sort term depends on the *outer* operand
// non-linearly — the cost function is not of the ASI form n₁·g(n₂) the
// KBZ theory requires, the very example the paper gives in §4.2.
type SortMergeModel struct {
	// Sort is the per-tuple·log₂(tuples) sorting cost; Merge the
	// per-tuple merge cost; Result the per-result-tuple cost.
	Sort, Merge, Result float64
}

// NewSortMergeModel returns the default-calibrated sort-merge model.
func NewSortMergeModel() *SortMergeModel {
	return &SortMergeModel{Sort: 1.0, Merge: 0.5, Result: 1.0}
}

// JoinCost implements Model.
func (m *SortMergeModel) JoinCost(outer, inner, result float64) float64 {
	return m.Sort*(nLogN(outer)+nLogN(inner)) + m.Merge*(outer+inner) + m.Result*result
}

func nLogN(n float64) float64 {
	if n <= 1 {
		return n
	}
	return n * math.Log2(n)
}

// Name implements Model.
func (m *SortMergeModel) Name() string { return "sort-merge" }

// Chooser prices every join with the cheapest of its member models —
// i.e., it performs per-join join-method selection.
type Chooser struct {
	Models []Model
}

// NewChooser returns a chooser over the default-calibrated hash,
// nested-loop and sort-merge main-memory models.
func NewChooser() *Chooser {
	return &Chooser{Models: []Model{
		NewMemoryModel(),
		NewNestedLoopModel(),
		NewSortMergeModel(),
	}}
}

// JoinCost implements Model: the minimum over member models.
func (c *Chooser) JoinCost(outer, inner, result float64) float64 {
	best := math.Inf(1)
	for _, m := range c.Models {
		if v := m.JoinCost(outer, inner, result); v < best {
			best = v
		}
	}
	return best
}

// Choose returns the cheapest member model for one join, with its cost.
func (c *Chooser) Choose(outer, inner, result float64) (Model, float64) {
	var bestM Model
	best := math.Inf(1)
	for _, m := range c.Models {
		if v := m.JoinCost(outer, inner, result); v < best {
			best, bestM = v, m
		}
	}
	return bestM, best
}

// Name implements Model.
func (c *Chooser) Name() string { return "auto" }
