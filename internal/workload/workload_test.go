package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
)

func TestDefaultSpecShape(t *testing.T) {
	s := Default()
	if s.Name != "default" || s.Cutoff != 0.01 || s.Bias != BiasNone {
		t.Fatalf("default spec: %+v", s)
	}
	if len(s.SelectivityChoices) != 15 {
		t.Fatalf("selectivity list has %d entries, want 15", len(s.SelectivityChoices))
	}
}

func TestBenchmarkVariations(t *testing.T) {
	names := map[int]string{
		1: "card-x10", 2: "card-uniform-1e4", 3: "card-uniform-1e5",
		4: "distinct-high", 5: "distinct-low", 6: "distinct-low-high",
		7: "graph-dense", 8: "graph-star", 9: "graph-chain",
	}
	for i, want := range names {
		s, err := Benchmark(i)
		if err != nil {
			t.Fatalf("Benchmark(%d): %v", i, err)
		}
		if s.Name != want {
			t.Fatalf("Benchmark(%d) = %q, want %q", i, s.Name, want)
		}
	}
	if _, err := Benchmark(0); err == nil {
		t.Fatal("Benchmark(0) accepted")
	}
	if _, err := Benchmark(10); err == nil {
		t.Fatal("Benchmark(10) accepted")
	}
}

func TestGeneratedQueriesValidateAndConnect(t *testing.T) {
	f := func(seed int64, which uint8, sz uint8) bool {
		n := 5 + int(sz%40)
		bench := int(which % 10)
		var spec Spec
		if bench == 0 {
			spec = Default()
		} else {
			var err error
			spec, err = Benchmark(bench)
			if err != nil {
				return false
			}
		}
		rng := rand.New(rand.NewSource(seed))
		q := spec.Generate(n, rng)
		if q.NumRelations() != n+1 {
			return false
		}
		if err := q.Validate(); err != nil {
			return false
		}
		// Step 1 guarantees a connected join graph.
		g := joingraph.New(q)
		return len(g.Components()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	spec := Default()
	q1 := spec.Generate(20, rand.New(rand.NewSource(42)))
	q2 := spec.Generate(20, rand.New(rand.NewSource(42)))
	if len(q1.Predicates) != len(q2.Predicates) {
		t.Fatal("same seed, different predicate counts")
	}
	for i := range q1.Predicates {
		if q1.Predicates[i] != q2.Predicates[i] {
			t.Fatalf("predicate %d differs", i)
		}
	}
	for i := range q1.Relations {
		if q1.Relations[i].Cardinality != q2.Relations[i].Cardinality {
			t.Fatalf("relation %d cardinality differs", i)
		}
	}
}

func TestCardinalityRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := Default()
	for trial := 0; trial < 20; trial++ {
		q := spec.Generate(30, rng)
		for _, r := range q.Relations {
			if r.Cardinality < 2 || r.Cardinality >= 10000+1 {
				t.Fatalf("default cardinality %d outside [2, 10000]", r.Cardinality)
			}
		}
	}
	big, _ := Benchmark(3)
	q := big.Generate(30, rng)
	seenLarge := false
	for _, r := range q.Relations {
		if r.Cardinality > 10000 {
			seenLarge = true
		}
	}
	if !seenLarge {
		t.Fatal("benchmark 3 (uniform to 1e5) never produced a large relation")
	}
}

func TestDistinctCountsRespectEffectiveCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := Default()
	for trial := 0; trial < 20; trial++ {
		q := spec.Generate(25, rng)
		for _, p := range q.Predicates {
			le := q.Relations[p.Left].EffectiveCardinality()
			re := q.Relations[p.Right].EffectiveCardinality()
			if p.LeftDistinct < 1 || p.LeftDistinct > le+1e-9 {
				t.Fatalf("left distinct %g outside [1, %g]", p.LeftDistinct, le)
			}
			if p.RightDistinct < 1 || p.RightDistinct > re+1e-9 {
				t.Fatalf("right distinct %g outside [1, %g]", p.RightDistinct, re)
			}
		}
	}
}

func TestSelectionCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := Default().Generate(50, rng)
	for i, r := range q.Relations {
		if len(r.Selections) > 2 {
			t.Fatalf("relation %d has %d selections, max 2", i, len(r.Selections))
		}
		for _, s := range r.Selections {
			if s.Selectivity <= 0 || s.Selectivity > 1 {
				t.Fatalf("selection selectivity %g out of range", s.Selectivity)
			}
		}
	}
}

func TestDenseCutoffAddsEdges(t *testing.T) {
	n := 40
	sparseTotal, denseTotal := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		sparse := Default().Generate(n, rand.New(rand.NewSource(seed)))
		dense7, _ := Benchmark(7)
		dense := dense7.Generate(n, rand.New(rand.NewSource(seed)))
		sparseTotal += len(sparse.Predicates)
		denseTotal += len(dense.Predicates)
	}
	if denseTotal <= sparseTotal {
		t.Fatalf("cutoff 0.1 did not add predicates: %d vs %d", denseTotal, sparseTotal)
	}
}

// maxDegree returns the maximum vertex degree of a query's join graph.
func maxDegree(q *catalog.Query) int {
	g := joingraph.New(q)
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(catalog.RelID(v)); d > max {
			max = d
		}
	}
	return max
}

func TestStarBiasRaisesMaxDegree(t *testing.T) {
	n := 40
	star, _ := Benchmark(8)
	chain, _ := Benchmark(9)
	starDeg, chainDeg := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		starDeg += maxDegree(star.Generate(n, rand.New(rand.NewSource(seed))))
		chainDeg += maxDegree(chain.Generate(n, rand.New(rand.NewSource(seed))))
	}
	if starDeg <= chainDeg*2 {
		t.Fatalf("star graphs not hub-heavy: star max-degree sum %d, chain %d", starDeg, chainDeg)
	}
}

func TestChainBiasProducesLongPaths(t *testing.T) {
	chain, _ := Benchmark(9)
	q := chain.Generate(30, rand.New(rand.NewSource(3)))
	// With 0.9 chain strength, most relations link to their predecessor:
	// count consecutive pairs among spanning predicates.
	consecutive := 0
	for _, p := range q.Predicates {
		if p.Right-p.Left == 1 {
			consecutive++
		}
	}
	if consecutive < 20 {
		t.Fatalf("only %d consecutive links in a chain-biased graph", consecutive)
	}
}

func TestDrawBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	buckets := []Bucket{
		{Lo: 0, Hi: 1, Weight: 50},
		{Lo: 10, Hi: 11, Weight: 50},
		{Lo: 99, Weight: 0, Exact: true},
	}
	low, high := 0, 0
	for i := 0; i < 1000; i++ {
		v := draw(buckets, rng)
		switch {
		case v >= 0 && v < 1:
			low++
		case v >= 10 && v < 11:
			high++
		case v == 99:
			t.Fatal("zero-weight bucket drawn")
		default:
			t.Fatalf("draw outside buckets: %g", v)
		}
	}
	if low < 400 || high < 400 {
		t.Fatalf("weights not respected: %d / %d", low, high)
	}
}

func TestDrawExactBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	buckets := []Bucket{{Lo: 1, Weight: 1, Exact: true}}
	for i := 0; i < 10; i++ {
		if v := draw(buckets, rng); v != 1 {
			t.Fatalf("exact bucket drew %g", v)
		}
	}
}

func TestGenerateTinyN(t *testing.T) {
	q := Default().Generate(0, rand.New(rand.NewSource(1)))
	if q.NumRelations() != 2 {
		t.Fatalf("n<1 should clamp to 1 join: %d relations", q.NumRelations())
	}
}
