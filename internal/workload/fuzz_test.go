package workload

import (
	"math/rand"
	"testing"

	"joinopt/internal/joingraph"
)

// FuzzGenerate drives the query generator with arbitrary parameters:
// every generated query must validate and have a connected join graph,
// for every benchmark variation.
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), 10, 0)
	f.Add(int64(99), 100, 8)
	f.Add(int64(-7), 1, 9)
	f.Fuzz(func(t *testing.T, seed int64, n int, bench int) {
		if n < 0 {
			n = -n
		}
		n = n % 120 // keep generation fast
		spec := Default()
		b := bench % 10
		if b < 0 {
			b = -b
		}
		if b != 0 {
			var err error
			spec, err = Benchmark(b)
			if err != nil {
				t.Fatalf("benchmark %d rejected: %v", b, err)
			}
		}
		q := spec.Generate(n, rand.New(rand.NewSource(seed)))
		if err := q.Validate(); err != nil {
			t.Fatalf("generated query invalid: %v", err)
		}
		if comps := joingraph.New(q).Components(); len(comps) != 1 {
			t.Fatalf("generated join graph has %d components", len(comps))
		}
	})
}
