package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
)

func TestShapeEdgeCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := Default()
	cases := []struct {
		shape Shape
		n     int
		edges int
	}{
		{ShapeChain, 10, 9},
		{ShapeStar, 10, 9},
		{ShapeCycle, 10, 10},
		{ShapeClique, 6, 15},
		{ShapeGrid, 9, 12}, // 3×3 grid: 6 horizontal + 6 vertical
		{ShapeCycle, 2, 1}, // degenerate cycle = single edge
	}
	for _, tc := range cases {
		q, err := spec.GenerateShape(tc.shape, tc.n, rng)
		if err != nil {
			t.Fatalf("%v: %v", tc.shape, err)
		}
		if len(q.Predicates) != tc.edges {
			t.Fatalf("%v n=%d: %d edges, want %d", tc.shape, tc.n, len(q.Predicates), tc.edges)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("%v: %v", tc.shape, err)
		}
	}
}

func TestShapesConnectedProperty(t *testing.T) {
	f := func(seed int64, which uint8, sz uint8) bool {
		shape := Shapes[int(which)%len(Shapes)]
		n := 2 + int(sz%20)
		if shape == ShapeClique && n > 12 {
			n = 12 // keep clique generation small
		}
		rng := rand.New(rand.NewSource(seed))
		q, err := Default().GenerateShape(shape, n, rng)
		if err != nil {
			return false
		}
		g := joingraph.New(q)
		return len(g.Components()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeStarDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q, err := Default().GenerateShape(ShapeStar, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := joingraph.New(q)
	if g.Degree(0) != 11 {
		t.Fatalf("hub degree %d", g.Degree(0))
	}
	for v := catalog.RelID(1); v < 12; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf %d degree %d", v, g.Degree(v))
		}
	}
}

func TestShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := Default().GenerateShape(ShapeChain, 1, rng); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Default().GenerateShape(Shape(99), 5, rng); err == nil {
		t.Fatal("unknown shape accepted")
	}
	if Shape(99).String() != "unknown" {
		t.Fatal("unknown shape name")
	}
	for _, s := range Shapes {
		if s.String() == "unknown" {
			t.Fatalf("shape %d unnamed", int(s))
		}
	}
}
