// Package workload synthesizes the random query benchmarks of the
// paper's §5: a default benchmark plus nine variations covering relation
// cardinality distributions, distinct-value distributions, and join-graph
// shapes (denser, star-biased, chain-biased).
//
// Every query is generated from an explicit RNG, so a (spec, N, seed)
// triple is fully reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"joinopt/internal/catalog"
)

// Bucket is one weighted range of a piecewise distribution: values are
// drawn uniformly from [Lo, Hi) with probability proportional to Weight.
// Exact buckets yield exactly Lo.
type Bucket struct {
	Lo, Hi float64
	Weight float64
	Exact  bool
}

// draw samples a value from the weighted buckets.
func draw(buckets []Bucket, rng *rand.Rand) float64 {
	total := 0.0
	for _, b := range buckets {
		total += b.Weight
	}
	x := rng.Float64() * total
	for _, b := range buckets {
		if x < b.Weight {
			if b.Exact {
				return b.Lo
			}
			return b.Lo + rng.Float64()*(b.Hi-b.Lo)
		}
		x -= b.Weight
	}
	last := buckets[len(buckets)-1]
	if last.Exact {
		return last.Lo
	}
	return last.Lo + rng.Float64()*(last.Hi-last.Lo)
}

// GraphBias selects the shape bias of the generated spanning tree.
type GraphBias int

const (
	// BiasNone links each new relation to a uniformly random earlier one.
	BiasNone GraphBias = iota
	// BiasStar links most relations to a small set of hub relations,
	// producing star-like join graphs (large search space).
	BiasStar
	// BiasChain links most relations to their immediate predecessor,
	// producing chain-like join graphs (small search space).
	BiasChain
)

// Spec fully describes one synthetic benchmark.
type Spec struct {
	// Name labels the benchmark in reports.
	Name string
	// Cards is the relation-cardinality distribution.
	Cards []Bucket
	// SelectivityChoices is the list selection selectivities are drawn
	// from (uniformly).
	SelectivityChoices []float64
	// MaxSelections is the maximum number of selection predicates per
	// relation (count uniform in [0, MaxSelections]).
	MaxSelections int
	// Distinct is the distribution of distinct-value counts in join
	// columns, as a fraction of relation cardinality.
	Distinct []Bucket
	// Cutoff is the join cutoff probability: each unlinked relation
	// pair gains an extra join predicate with this probability.
	Cutoff float64
	// Bias shapes the initial spanning tree.
	Bias GraphBias
	// BiasStrength is the probability a biased link target is used
	// instead of a uniform one (star/chain only).
	BiasStrength float64
}

// selectivities is the paper's §5 list (0.34 and 0.5 repeated to weight
// them).
var selectivities = []float64{
	0.001, 0.01, 0.1, 0.2, 0.34, 0.34, 0.34,
	0.34, 0.34, 0.5, 0.5, 0.5, 0.67, 0.8, 1.0,
}

// Default returns the default benchmark of §5.
func Default() Spec {
	return Spec{
		Name: "default",
		Cards: []Bucket{
			{Lo: 10, Hi: 100, Weight: 20},
			{Lo: 100, Hi: 1000, Weight: 60},
			{Lo: 1000, Hi: 10000, Weight: 20},
		},
		SelectivityChoices: selectivities,
		MaxSelections:      2,
		Distinct: []Bucket{
			{Lo: 0, Hi: 0.2, Weight: 90},
			{Lo: 0.2, Hi: 1, Weight: 9},
			{Lo: 1, Weight: 1, Exact: true},
		},
		Cutoff: 0.01,
		Bias:   BiasNone,
	}
}

// Benchmark returns variation i in the §5 (and Table 3) numbering,
// 1 through 9. Benchmarks 1–3 vary cardinalities, 4–6 distinct values,
// 7–9 the join graph.
func Benchmark(i int) (Spec, error) {
	s := Default()
	switch i {
	case 1:
		s.Name = "card-x10"
		s.Cards = []Bucket{
			{Lo: 10, Hi: 1e3, Weight: 20},
			{Lo: 1e3, Hi: 1e4, Weight: 60},
			{Lo: 1e4, Hi: 1e5, Weight: 20},
		}
	case 2:
		s.Name = "card-uniform-1e4"
		s.Cards = []Bucket{{Lo: 10, Hi: 1e4, Weight: 1}}
	case 3:
		s.Name = "card-uniform-1e5"
		s.Cards = []Bucket{{Lo: 10, Hi: 1e5, Weight: 1}}
	case 4:
		s.Name = "distinct-high"
		s.Distinct = []Bucket{
			{Lo: 0, Hi: 0.2, Weight: 80},
			{Lo: 0.2, Hi: 1, Weight: 16},
			{Lo: 1, Weight: 4, Exact: true},
		}
	case 5:
		s.Name = "distinct-low"
		s.Distinct = []Bucket{
			{Lo: 0, Hi: 0.1, Weight: 90},
			{Lo: 0.1, Hi: 1, Weight: 9},
			{Lo: 1, Weight: 1, Exact: true},
		}
	case 6:
		s.Name = "distinct-low-high"
		s.Distinct = []Bucket{
			{Lo: 0, Hi: 0.1, Weight: 80},
			{Lo: 0.1, Hi: 1, Weight: 16},
			{Lo: 1, Weight: 4, Exact: true},
		}
	case 7:
		s.Name = "graph-dense"
		s.Cutoff = 0.1
	case 8:
		s.Name = "graph-star"
		s.Bias = BiasStar
		s.BiasStrength = 0.8
	case 9:
		s.Name = "graph-chain"
		s.Bias = BiasChain
		s.BiasStrength = 0.9
	default:
		return Spec{}, fmt.Errorf("workload: benchmark %d outside 1..9", i)
	}
	return s, nil
}

// Generate synthesizes one query with n joins (n+1 relations) from the
// spec. The join graph is connected by construction (step 1 of §5), so
// the identity permutation is always valid; step 2 adds extra predicates
// with the cutoff probability.
func (s Spec) Generate(n int, rng *rand.Rand) *catalog.Query {
	if n < 1 {
		n = 1
	}
	nrel := n + 1
	q := &catalog.Query{Relations: make([]catalog.Relation, nrel)}

	for i := 0; i < nrel; i++ {
		card := int64(math.Round(draw(s.Cards, rng)))
		if card < 2 {
			card = 2
		}
		rel := catalog.Relation{
			Name:        fmt.Sprintf("R%d", i),
			Cardinality: card,
		}
		maxSel := s.MaxSelections
		if maxSel > 0 {
			for k, cnt := 0, rng.Intn(maxSel+1); k < cnt; k++ {
				sel := s.SelectivityChoices[rng.Intn(len(s.SelectivityChoices))]
				rel.Selections = append(rel.Selections, catalog.Selection{Selectivity: sel})
			}
		}
		q.Relations[i] = rel
	}

	linked := make(map[[2]int]bool)
	addEdge := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if a == b || linked[[2]int{a, b}] {
			return
		}
		linked[[2]int{a, b}] = true
		// Distinct counts are fractions of the cardinality *after*
		// selections, matching the paper's §2 convention that N_k is
		// the post-selection cardinality.
		q.Predicates = append(q.Predicates, catalog.Predicate{
			Left:          catalog.RelID(a),
			Right:         catalog.RelID(b),
			LeftDistinct:  distinctCount(s, rng, q.Relations[a].EffectiveCardinality()),
			RightDistinct: distinctCount(s, rng, q.Relations[b].EffectiveCardinality()),
		})
	}

	// Step 1: connected spanning graph, optionally shape-biased.
	hubs := nrel / 10
	if hubs < 1 {
		hubs = 1
	}
	for i := 1; i < nrel; i++ {
		target := rng.Intn(i)
		switch s.Bias {
		case BiasStar:
			if rng.Float64() < s.BiasStrength {
				h := rng.Intn(hubs)
				if h < i {
					target = h
				}
			}
		case BiasChain:
			if rng.Float64() < s.BiasStrength {
				target = i - 1
			}
		}
		addEdge(i, target)
	}

	// Step 2: extra predicates with the cutoff probability.
	for i := 0; i < nrel; i++ {
		for j := i + 1; j < nrel; j++ {
			if !linked[[2]int{i, j}] && rng.Float64() < s.Cutoff {
				addEdge(i, j)
			}
		}
	}

	q.Normalize()
	return q
}

// distinctCount samples a join-column distinct count for a relation of
// the given (effective) cardinality.
func distinctCount(s Spec, rng *rand.Rand, card float64) float64 {
	f := draw(s.Distinct, rng)
	d := math.Round(f * card)
	if d < 1 {
		d = 1
	}
	if d > card {
		d = math.Max(1, math.Floor(card))
	}
	return d
}
