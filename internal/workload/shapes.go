package workload

import (
	"fmt"
	"math/rand"

	"joinopt/internal/catalog"
)

// Shape names a canonical join-graph topology. The follow-on literature
// (Steinbrunn, Moerkotte & Kemper, VLDB J. 1997) evaluates join-order
// algorithms on exactly these shapes; they complement the §5 random
// benchmarks with structured worst/best cases.
type Shape int

const (
	// ShapeChain links relation i to i+1: the smallest valid-order
	// space (2^(n-1) orders).
	ShapeChain Shape = iota
	// ShapeStar links every relation to relation 0: the largest
	// valid-order space ((n-1)! orders) — the data-warehouse shape.
	ShapeStar
	// ShapeCycle is a chain with the ends joined.
	ShapeCycle
	// ShapeClique joins every pair: maximally cyclic.
	ShapeClique
	// ShapeGrid arranges relations in a ⌈√n⌉-wide grid with edges to
	// the right and below neighbors.
	ShapeGrid
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeStar:
		return "star"
	case ShapeCycle:
		return "cycle"
	case ShapeClique:
		return "clique"
	case ShapeGrid:
		return "grid"
	}
	return "unknown"
}

// Shapes lists all canonical shapes.
var Shapes = []Shape{ShapeChain, ShapeStar, ShapeCycle, ShapeClique, ShapeGrid}

// GenerateShape synthesizes a query with the given topology over
// nRelations relations. Cardinalities and distinct counts are drawn
// from the spec's distributions (selections per the spec as well), so
// the same statistical regime as the random benchmarks applies — only
// the graph structure is pinned.
func (s Spec) GenerateShape(shape Shape, nRelations int, rng *rand.Rand) (*catalog.Query, error) {
	if nRelations < 2 {
		return nil, fmt.Errorf("workload: shape needs at least 2 relations, got %d", nRelations)
	}
	q := &catalog.Query{Relations: make([]catalog.Relation, nRelations)}
	for i := 0; i < nRelations; i++ {
		card := int64(draw(s.Cards, rng))
		if card < 2 {
			card = 2
		}
		rel := catalog.Relation{Name: fmt.Sprintf("R%d", i), Cardinality: card}
		if s.MaxSelections > 0 {
			for k, cnt := 0, rng.Intn(s.MaxSelections+1); k < cnt; k++ {
				rel.Selections = append(rel.Selections, catalog.Selection{
					Selectivity: s.SelectivityChoices[rng.Intn(len(s.SelectivityChoices))],
				})
			}
		}
		q.Relations[i] = rel
	}
	link := func(a, b int) {
		q.Predicates = append(q.Predicates, catalog.Predicate{
			Left:          catalog.RelID(a),
			Right:         catalog.RelID(b),
			LeftDistinct:  distinctCount(s, rng, q.Relations[a].EffectiveCardinality()),
			RightDistinct: distinctCount(s, rng, q.Relations[b].EffectiveCardinality()),
		})
	}
	switch shape {
	case ShapeChain:
		for i := 0; i+1 < nRelations; i++ {
			link(i, i+1)
		}
	case ShapeStar:
		for i := 1; i < nRelations; i++ {
			link(0, i)
		}
	case ShapeCycle:
		for i := 0; i+1 < nRelations; i++ {
			link(i, i+1)
		}
		if nRelations > 2 {
			link(nRelations-1, 0)
		}
	case ShapeClique:
		for i := 0; i < nRelations; i++ {
			for j := i + 1; j < nRelations; j++ {
				link(i, j)
			}
		}
	case ShapeGrid:
		w := 1
		for w*w < nRelations {
			w++
		}
		for i := 0; i < nRelations; i++ {
			if (i+1)%w != 0 && i+1 < nRelations {
				link(i, i+1) // right neighbor
			}
			if i+w < nRelations {
				link(i, i+w) // below neighbor
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown shape %d", int(shape))
	}
	q.Normalize()
	return q, nil
}
