package workload_test

import (
	"fmt"
	"math/rand"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
	"joinopt/internal/workload"
)

// ExampleSpec_Generate synthesizes one §5 default-benchmark query: the
// join graph is connected by construction.
func ExampleSpec_Generate() {
	q := workload.Default().Generate(20, rand.New(rand.NewSource(42)))
	g := joingraph.New(q)
	fmt.Printf("%d relations, %d predicates, %d component(s)\n",
		q.NumRelations(), len(q.Predicates), len(g.Components()))
	// Output: 21 relations, 20 predicates, 1 component(s)
}

// ExampleBenchmark selects one of the nine §5 variations.
func ExampleBenchmark() {
	spec, err := workload.Benchmark(8) // star-biased join graphs
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	q := spec.Generate(30, rand.New(rand.NewSource(1)))
	g := joingraph.New(q)
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(catalog.RelID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("%s: hub degree %d of %d relations\n", spec.Name, maxDeg, q.NumRelations())
	// Output: graph-star: hub degree 12 of 31 relations
}
