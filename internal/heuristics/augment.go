// Package heuristics implements the three join-ordering heuristics the
// paper studies: the augmentation heuristic with its five chooseNext
// criteria (§4.1), the KBZ heuristic of Krishnamurthy, Boral & Zaniolo
// with its three spanning-tree weight criteria (§4.2), and the local
// improvement heuristic with its (cluster size, overlap) ladder (§4.3).
package heuristics

import (
	"math"
	"sort"

	"joinopt/internal/catalog"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// Criterion selects the chooseNext rule of the augmentation heuristic
// (§4.1). The paper's experiments (Table 1) identify CriterionMinSel as
// the best; it is the default everywhere else.
type Criterion int

const (
	// CriterionMinCard picks the frontier relation with the smallest
	// effective cardinality (criterion 1).
	CriterionMinCard Criterion = iota + 1
	// CriterionMaxDegree picks the frontier relation with the highest
	// degree in the join graph (criterion 2).
	CriterionMaxDegree
	// CriterionMinSel picks the frontier relation whose next join has
	// the smallest combined join selectivity (criterion 3 — the winner).
	CriterionMinSel
	// CriterionMinResult picks the frontier relation yielding the
	// smallest next intermediate result (criterion 4).
	CriterionMinResult
	// CriterionMinRank picks the frontier relation with the smallest
	// KBZ rank (criterion 5).
	CriterionMinRank
)

// String names the criterion as in the paper's tables.
func (c Criterion) String() string {
	switch c {
	case CriterionMinCard:
		return "1:min-card"
	case CriterionMaxDegree:
		return "2:max-degree"
	case CriterionMinSel:
		return "3:min-selectivity"
	case CriterionMinResult:
		return "4:min-result"
	case CriterionMinRank:
		return "5:min-rank"
	}
	return "?:unknown"
}

// Criteria lists all five chooseNext criteria in paper order.
var Criteria = []Criterion{
	CriterionMinCard, CriterionMaxDegree, CriterionMinSel,
	CriterionMinResult, CriterionMinRank,
}

// score returns the criterion's figure of merit for candidate j (lower is
// better; CriterionMaxDegree is negated so min-selection applies
// uniformly). curSize is the current intermediate-result size, inSet the
// prefix membership mask.
func (c Criterion) score(st *estimate.Stats, curSize float64, inSet joingraph.Bitset, j catalog.RelID) float64 {
	g := st.Graph()
	switch c {
	case CriterionMinCard:
		return st.Cardinality(j)
	case CriterionMaxDegree:
		return -float64(g.Degree(j))
	case CriterionMinSel:
		return st.SelectivityInto(curSize, inSet, j)
	case CriterionMinResult:
		return curSize * st.Cardinality(j) * st.SelectivityInto(curSize, inSet, j)
	case CriterionMinRank:
		// (NᵢNⱼJᵢⱼ − 1) / (0.5·Nᵢ·(Nⱼ/Dⱼ)) — the KBZ rank of the next
		// join, with Dⱼ the distinct count of j's join column on the
		// most selective edge into the prefix.
		nj := st.Cardinality(j)
		ni := curSize
		jsel := st.SelectivityInto(curSize, inSet, j)
		dj := distinctInto(st, inSet, j)
		denom := 0.5 * ni * (nj / dj)
		if denom <= 0 {
			return math.Inf(1)
		}
		return (ni*nj*jsel - 1) / denom
	}
	return 0
}

// distinctInto returns the distinct-value count of j's join column on its
// most selective edge into the prefix set (≥ 1).
func distinctInto(st *estimate.Stats, inSet joingraph.Bitset, j catalog.RelID) float64 {
	g := st.Graph()
	best := 1.0
	bestSel := math.Inf(1)
	for _, e := range g.Edges() {
		var other catalog.RelID
		var dj float64
		switch {
		case e.From == j:
			other, dj = e.To, e.FromDistinct
		case e.To == j:
			other, dj = e.From, e.ToDistinct
		default:
			continue
		}
		if !inSet.Test(other) {
			continue
		}
		if e.Selectivity < bestSel {
			bestSel = e.Selectivity
			best = dj
		}
	}
	if best < 1 {
		return 1
	}
	return best
}

// Augmentation generates join orders for one component by incrementally
// choosing the next relation per a criterion (Figure 3 of the paper).
// One permutation is produced per choice of first relation; first
// relations are tried in order of increasing cardinality, so up to
// len(rels) permutations are available.
type Augmentation struct {
	stats     *estimate.Stats
	eval      *plan.Evaluator
	rels      []catalog.RelID
	criterion Criterion
	// firstOrder lists the relations in the order they are used as the
	// first relation of successive permutations.
	firstOrder []catalog.RelID
	next       int
}

// NewAugmentation prepares an augmentation generator over the component
// relations rels using the given criterion. The evaluator supplies the
// statistics and the budget (each chooseNext candidate examination debits
// one work unit, reflecting that the heuristic's work is size/selectivity
// arithmetic of the same order as a cost-function term).
func NewAugmentation(eval *plan.Evaluator, rels []catalog.RelID, criterion Criterion) *Augmentation {
	a := &Augmentation{
		stats:      eval.Stats(),
		eval:       eval,
		rels:       rels,
		criterion:  criterion,
		firstOrder: append([]catalog.RelID(nil), rels...),
	}
	sort.SliceStable(a.firstOrder, func(i, j int) bool {
		ci := a.stats.Cardinality(a.firstOrder[i])
		cj := a.stats.Cardinality(a.firstOrder[j])
		// Ordered comparisons instead of a float != so that a NaN
		// cardinality (impossible, but cheap to be safe against) falls
		// through to the deterministic RelID tie-break rather than
		// making the comparator inconsistent.
		if ci < cj {
			return true
		}
		if cj < ci {
			return false
		}
		return a.firstOrder[i] < a.firstOrder[j]
	})
	return a
}

// Remaining returns how many start states the generator can still
// produce.
func (a *Augmentation) Remaining() int { return len(a.firstOrder) - a.next }

// NextStart implements search.StartStater: it returns the permutation
// grown from the next first relation, or ok=false when all first
// relations have been used.
func (a *Augmentation) NextStart() (plan.Perm, bool) {
	if a.next >= len(a.firstOrder) {
		return nil, false
	}
	first := a.firstOrder[a.next]
	a.next++
	return a.Generate(first), true
}

// Reset rewinds the generator to the first start state.
func (a *Augmentation) Reset() { a.next = 0 }

// Generate builds the permutation grown from the given first relation
// (Figure 3): repeatedly apply chooseNext over the frontier.
func (a *Augmentation) Generate(first catalog.RelID) plan.Perm {
	n := len(a.rels)
	out := make(plan.Perm, 0, n)
	prefix := estimate.NewPrefix(a.stats)
	prefix.Extend(first)
	out = append(out, first)

	remaining := make([]catalog.RelID, 0, n-1)
	for _, r := range a.rels {
		if r != first {
			remaining = append(remaining, r)
		}
	}
	budget := a.eval.Budget()
	for len(remaining) > 0 {
		bestIdx := -1
		bestScore := math.Inf(1)
		anyFrontier := false
		for i, j := range remaining {
			if !prefix.Joins(j) {
				continue
			}
			anyFrontier = true
			s := a.criterion.score(a.stats, prefix.Size(), prefix.InSet(), j)
			budget.Charge(1)
			//ljqlint:allow floatsafe -- exact tie only: both scores come from the same arithmetic over identical inputs, and ties break by RelID for determinism
			if s < bestScore || (s == bestScore && (bestIdx < 0 || j < remaining[bestIdx])) {
				bestScore = s
				bestIdx = i
			}
		}
		if !anyFrontier {
			// Disconnected input: fall back to the globally best-scoring
			// relation so generation terminates (a cross product is
			// unavoidable here).
			for i, j := range remaining {
				s := a.criterion.score(a.stats, prefix.Size(), prefix.InSet(), j)
				budget.Charge(1)
				if s < bestScore || bestIdx < 0 {
					bestScore = s
					bestIdx = i
				}
			}
		}
		j := remaining[bestIdx]
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		prefix.Extend(j)
		out = append(out, j)
	}
	return out
}

// Best generates every start state, prices each, and returns the
// cheapest (used when the augmentation heuristic is run standalone).
func (a *Augmentation) Best() (plan.Perm, float64, bool) {
	a.Reset()
	var best plan.Perm
	bestCost := math.Inf(1)
	ok := false
	for {
		p, more := a.NextStart()
		if !more {
			break
		}
		c := a.eval.Cost(p)
		if c < bestCost {
			best, bestCost, ok = p, c, true
		}
		if a.eval.Budget().Exhausted() {
			break
		}
	}
	return best, bestCost, ok
}
