package heuristics_test

import (
	"fmt"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/heuristics"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// chainEval builds an evaluator over a 4-relation chain with strongly
// ordered cardinalities so heuristic choices are deterministic.
func chainEval() (*plan.Evaluator, []catalog.RelID) {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "a", Cardinality: 1000},
			{Name: "b", Cardinality: 10},
			{Name: "c", Cardinality: 500},
			{Name: "d", Cardinality: 50},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 10, RightDistinct: 10},
			{Left: 1, Right: 2, LeftDistinct: 10, RightDistinct: 400},
			{Left: 2, Right: 3, LeftDistinct: 50, RightDistinct: 50},
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	return plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited()), g.Components()[0]
}

// ExampleAugmentation shows the §4.1 heuristic: each start state grows
// greedily from one first relation, first relations in ascending
// cardinality.
func ExampleAugmentation() {
	eval, comp := chainEval()
	aug := heuristics.NewAugmentation(eval, comp, heuristics.CriterionMinSel)
	for {
		p, ok := aug.NextStart()
		if !ok {
			break
		}
		fmt.Printf("%v cost %.4g\n", p, eval.Cost(p))
	}
	// Output:
	// (R1 R2 R3 R0) cost 4410
	// (R3 R2 R1 R0) cost 5345
	// (R2 R1 R3 R0) cost 3920
	// (R0 R1 R2 R3) cost 7870
}

// ExampleKBZ runs the §4.2 heuristic (IKKBZ) for a single root.
func ExampleKBZ() {
	eval, comp := chainEval()
	kbz := heuristics.NewKBZ(eval, comp, heuristics.WeightSelectivity)
	best, cost, _ := kbz.Best()
	fmt.Printf("%v cost %.4g\n", best, cost)
	// Output: (R2 R1 R3 R0) cost 3920
}

// ExampleLocalImprove applies the §4.3 cluster heuristic to a
// deliberately bad order.
func ExampleLocalImprove() {
	eval, _ := chainEval()
	bad := plan.Perm{0, 1, 2, 3}
	improved, c := heuristics.LocalImprove(eval, heuristics.ClusterStrategy{Size: 4, Overlap: 0}, bad, eval.Cost(bad))
	fmt.Printf("%v → %v (cost %.4g)\n", bad, improved, c)
	// Output: (R0 R1 R2 R3) → (R2 R1 R3 R0) (cost 3920)
}
