package heuristics

import (
	"math"
	"sort"

	"joinopt/internal/catalog"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
)

// WeightCriterion selects the edge weight used by KBZ's algorithm G to
// choose the minimum spanning tree of a cyclic join graph. The paper's
// Table 2 compares criteria 3–5 of §4.1 and finds criterion 3 (join
// selectivity) best, matching [KBZ86]'s own suggestion.
type WeightCriterion int

const (
	// WeightSelectivity weighs an edge by its join selectivity
	// (criterion 3 — the winner and the default).
	WeightSelectivity WeightCriterion = 3
	// WeightResultSize weighs an edge by the size of the two-way join
	// result NᵢNⱼJᵢⱼ (criterion 4).
	WeightResultSize WeightCriterion = 4
	// WeightRank weighs an edge by the KBZ rank of the two-way join
	// (criterion 5).
	WeightRank WeightCriterion = 5
)

// String names the weight criterion as in Table 2.
func (w WeightCriterion) String() string {
	switch w {
	case WeightSelectivity:
		return "3:selectivity"
	case WeightResultSize:
		return "4:result-size"
	case WeightRank:
		return "5:rank"
	}
	return "?:unknown"
}

// WeightCriteria lists the spanning-tree weight criteria in paper order.
var WeightCriteria = []WeightCriterion{WeightSelectivity, WeightResultSize, WeightRank}

// weightFunc materializes the criterion against the statistics.
func (w WeightCriterion) weightFunc(st *estimate.Stats) joingraph.WeightFunc {
	switch w {
	case WeightResultSize:
		return func(e joingraph.Edge) float64 {
			return st.Cardinality(e.From) * st.Cardinality(e.To) * e.Selectivity
		}
	case WeightRank:
		return func(e joingraph.Edge) float64 {
			ni := st.Cardinality(e.From)
			nj := st.Cardinality(e.To)
			dj := math.Max(e.ToDistinct, 1)
			denom := 0.5 * ni * (nj / dj)
			if denom <= 0 {
				return math.Inf(1)
			}
			return (ni*nj*e.Selectivity - 1) / denom
		}
	default:
		return joingraph.SelectivityWeight
	}
}

// KBZ implements the 3-level heuristic of Krishnamurthy, Boral & Zaniolo
// (§4.2): algorithm G reduces a cyclic join graph to a minimum spanning
// tree; algorithm T tries every relation as the root; algorithm R
// linearizes a rooted tree optimally under an ASI cost function by
// merging subtree chains in ascending rank order with compound-node
// normalization (the IKKBZ construction).
//
// Hash-join cost functions are not exactly of the ASI form n₁·g(n₂) the
// KBZ theory requires (the paper makes the same observation about sort
// merge); algorithm R therefore optimizes the ASI surrogate
// g(n₂) = 0.5·n₂/D₂ — the denominator of the paper's rank formula — and
// every candidate order is finally priced with the real cost model when
// algorithm T compares roots.
type KBZ struct {
	stats *estimate.Stats
	eval  *plan.Evaluator
	rels  []catalog.RelID
	tree  *joingraph.Tree
	// rootOrder lists the candidate roots in the order tried.
	rootOrder []catalog.RelID
	next      int
}

// NewKBZ prepares the heuristic over one component. The spanning tree is
// chosen with the given weight criterion. Rank computations and chain
// merges debit the budget (one unit per segment operation), reflecting
// that KBZ does substantially more work per generated state than
// augmentation — the paper's explanation for its poor showing at small
// time limits.
func NewKBZ(eval *plan.Evaluator, rels []catalog.RelID, weight WeightCriterion) *KBZ {
	k := &KBZ{
		stats:     eval.Stats(),
		eval:      eval,
		rels:      rels,
		rootOrder: append([]catalog.RelID(nil), rels...),
	}
	sort.SliceStable(k.rootOrder, func(i, j int) bool {
		ci := k.stats.Cardinality(k.rootOrder[i])
		cj := k.stats.Cardinality(k.rootOrder[j])
		// Ordered comparisons instead of a float != keep the comparator
		// consistent even against NaN and fall through to the RelID
		// tie-break deterministically.
		if ci < cj {
			return true
		}
		if cj < ci {
			return false
		}
		return k.rootOrder[i] < k.rootOrder[j]
	})
	if len(rels) > 0 {
		g := k.stats.Graph()
		k.tree = g.MinimumSpanningTree(rels[0], weight.weightFunc(k.stats))
	}
	return k
}

// Remaining returns how many roots are still untried.
func (k *KBZ) Remaining() int { return len(k.rootOrder) - k.next }

// Reset rewinds the root iteration.
func (k *KBZ) Reset() { k.next = 0 }

// NextStart implements search.StartStater: the optimal linearization for
// the next candidate root.
func (k *KBZ) NextStart() (plan.Perm, bool) {
	if k.next >= len(k.rootOrder) {
		return nil, false
	}
	root := k.rootOrder[k.next]
	k.next++
	return k.Linearize(root), true
}

// Best runs algorithm T in full: linearize for every root, price each
// order with the real cost model, return the cheapest.
func (k *KBZ) Best() (plan.Perm, float64, bool) {
	k.Reset()
	var best plan.Perm
	bestCost := math.Inf(1)
	ok := false
	for {
		p, more := k.NextStart()
		if !more {
			break
		}
		c := k.eval.Cost(p)
		if c < bestCost {
			best, bestCost, ok = p, c, true
		}
		if k.eval.Budget().Exhausted() {
			break
		}
	}
	return best, bestCost, ok
}

// segment is a compound node of the IKKBZ construction: a maximal run of
// relations forced to stay contiguous, with the aggregated ASI
// parameters T (selectivity–cardinality product) and C (surrogate cost).
type segment struct {
	rels []catalog.RelID
	t, c float64
}

func (s segment) rank() float64 {
	if s.c <= 0 {
		return math.Inf(-1)
	}
	return (s.t - 1) / s.c
}

// combine concatenates two segments: T multiplies, C composes as
// C₁ + T₁·C₂ (the ASI recurrence).
func combine(a, b segment) segment {
	return segment{
		rels: append(append([]catalog.RelID(nil), a.rels...), b.rels...),
		t:    a.t * b.t,
		c:    a.c + a.t*b.c,
	}
}

// nodeSegment builds the unit segment of a non-root tree node: T is the
// parent-edge selectivity times the node's cardinality; C is the ASI
// surrogate cost 0.5·N/D with D the node-side distinct count of the
// parent edge.
func (k *KBZ) nodeSegment(v catalog.RelID) segment {
	e := k.tree.ParentEdge[v]
	n := k.stats.Cardinality(v)
	var d float64
	if e.From == v {
		d = e.FromDistinct
	} else {
		d = e.ToDistinct
	}
	if d < 1 {
		d = 1
	}
	return segment{
		rels: []catalog.RelID{v},
		t:    e.Selectivity * n,
		c:    0.5 * n / d,
	}
}

// Linearize runs algorithm R on the spanning tree re-rooted at root and
// returns the resulting permutation.
func (k *KBZ) Linearize(root catalog.RelID) plan.Perm {
	tree := k.tree
	if tree.Root != root {
		tree = k.tree.Reroot(root)
	}
	saved := k.tree
	k.tree = tree
	chain := k.linearizeSubtree(root, true)
	k.tree = saved

	out := make(plan.Perm, 0, len(k.rels))
	out = append(out, root)
	for _, s := range chain {
		out = append(out, s.rels...)
	}
	return out
}

// linearizeSubtree returns the normalized ascending-rank chain of the
// subtree rooted at v, excluding v itself when isRoot is true (the query
// root is a fixed head and never merges into a compound node).
func (k *KBZ) linearizeSubtree(v catalog.RelID, isRoot bool) []segment {
	budget := k.eval.Budget()
	children := k.tree.Children[v]
	chains := make([][]segment, 0, len(children))
	for _, c := range children {
		chains = append(chains, k.linearizeSubtree(c, false))
	}
	merged := mergeChains(chains, budget.Charge)
	if isRoot {
		return merged
	}
	// Prepend v's own segment and normalize: the chain must ascend in
	// rank; any following segment with rank not above its predecessor's
	// is absorbed into a compound node.
	out := []segment{k.nodeSegment(v)}
	for _, s := range merged {
		out = append(out, s)
		// Restore ascending ranks: a segment whose rank is below its
		// predecessor's must stay contiguous with it (Monma–Sidney), so
		// absorb it into a compound node and re-check upward.
		for len(out) >= 2 && out[len(out)-1].rank() < out[len(out)-2].rank() {
			a, b := out[len(out)-2], out[len(out)-1]
			out = out[:len(out)-2]
			out = append(out, combine(a, b))
			budget.Charge(1)
		}
	}
	return out
}

// mergeChains k-way merges ascending-rank chains into one ascending
// chain. charge debits one unit per comparison performed.
func mergeChains(chains [][]segment, charge func(int64)) []segment {
	var out []segment
	idx := make([]int, len(chains))
	for {
		best := -1
		bestRank := math.Inf(1)
		for i, ch := range chains {
			if idx[i] >= len(ch) {
				continue
			}
			r := ch[idx[i]].rank()
			charge(1)
			if best < 0 || r < bestRank {
				best = i
				bestRank = r
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, chains[best][idx[best]])
		idx[best]++
	}
}
