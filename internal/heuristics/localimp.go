package heuristics

import (
	"math"

	"joinopt/internal/catalog"
	"joinopt/internal/estimate"
	"joinopt/internal/plan"
)

// ClusterStrategy is a (cluster size, overlap) pair of the local
// improvement heuristic (§4.3): sliding windows of c consecutive
// positions, advanced by c−o, are exhaustively re-permuted.
type ClusterStrategy struct {
	Size, Overlap int
}

// Ladder is the paper's preferred strategy ladder, best first: pick the
// largest strategy a budget can afford one pass of.
var Ladder = []ClusterStrategy{{5, 4}, {4, 3}, {3, 2}, {2, 1}, {2, 0}}

// step returns the window advance.
func (c ClusterStrategy) step() int { return c.Size - c.Overlap }

// passUnits estimates the work units of one pass over a permutation of
// length n: clusters × permutations(size) × size cost evaluations.
func (c ClusterStrategy) passUnits(n int) int64 {
	if n < 2 {
		return 0
	}
	size := c.Size
	if size > n {
		size = n
	}
	clusters := 1 + (n-size+c.step()-1)/c.step()
	return int64(clusters) * factorial(size) * int64(size) * plan.EvalUnitsPerJoin
}

func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// ChooseStrategy picks the largest ladder strategy whose single pass fits
// in the remaining budget (ok=false if not even (2,0) fits, or the
// budget is already exhausted). An unlimited budget affords the top of
// the ladder.
func ChooseStrategy(remaining int64, n int) (ClusterStrategy, bool) {
	if remaining == 0 {
		return ClusterStrategy{}, false
	}
	for _, s := range Ladder {
		if remaining < 0 || s.passUnits(n) <= remaining {
			return s, true
		}
	}
	return ClusterStrategy{}, false
}

// LocalImprove applies the local improvement heuristic to a valid
// permutation: repeated passes of the chosen (c,o) strategy until a pass
// makes no change or the budget is exhausted. Strategies with no overlap
// need only one pass. It returns the improved permutation and its cost;
// the result is never worse than the input.
//
// curCost must be the permutation's current cost (it is not re-priced).
func LocalImprove(eval *plan.Evaluator, strat ClusterStrategy, p plan.Perm, curCost float64) (plan.Perm, float64) {
	n := len(p)
	if n < 2 || strat.Size < 2 {
		return p, curCost
	}
	out := p.Clone()
	budget := eval.Budget()
	li := &localImprover{
		eval:  eval,
		base:  estimate.NewPrefix(eval.Stats()),
		fork:  estimate.NewPrefix(eval.Stats()),
		perm:  out,
		strat: strat,
	}
	bestPerm := out.Clone()
	bestCost := curCost
	for !budget.Exhausted() {
		changed := li.pass()
		// Re-price the full permutation: under the dynamic estimator a
		// pass of locally-better windows is not guaranteed to lower the
		// global cost, and repeated passes could otherwise oscillate
		// forever on an unlimited budget.
		passCost := eval.Cost(li.perm)
		if passCost < bestCost {
			bestCost = passCost
			copy(bestPerm, li.perm)
		} else if changed {
			break // no global progress this pass; stop
		}
		if !changed || strat.Overlap == 0 {
			break
		}
	}
	return bestPerm, bestCost
}

type localImprover struct {
	eval  *plan.Evaluator
	base  *estimate.Prefix // prefix state before the current cluster
	fork  *estimate.Prefix // scratch overlay for candidate orders
	perm  plan.Perm
	strat ClusterStrategy
}

// pass slides the cluster window across the permutation once, replacing
// each window with its best valid re-permutation. Reports whether any
// window changed.
//
// Re-permuting a window cannot affect the *validity* of what follows
// it: frontier membership depends only on the prefix set. Under the
// static estimator the suffix cost is also unchanged, so pricing each
// candidate by its window joins alone is exact; under the dynamic
// estimator it is a good approximation (the final full re-price in
// LocalImprove guards the never-worse contract either way).
func (li *localImprover) pass() bool {
	n := len(li.perm)
	model := li.eval.Model()
	budget := li.eval.Budget()
	changed := false

	li.base.Reset()
	start := 0
	for start < n-1 && !budget.Exhausted() {
		size := li.strat.Size
		if start+size > n {
			size = n - start
		}
		if size < 2 {
			break
		}
		window := append([]catalog.RelID(nil), li.perm[start:start+size]...)
		bestOrder := append([]catalog.RelID(nil), window...)
		bestCost := math.Inf(1)
		permute(window, func(cand []catalog.RelID) bool {
			li.fork.CopyFrom(li.base)
			cost := 0.0
			for _, r := range cand {
				// Validity: every relation must join the prefix (the
				// very first relation of the query is exempt).
				if li.fork.Len() > 0 && !li.fork.Joins(r) {
					return !budget.Exhausted()
				}
				outer, inner, result := li.fork.Extend(r)
				if li.fork.Len() == 1 {
					continue
				}
				cost += model.JoinCost(outer, inner, result)
				budget.Charge(plan.EvalUnitsPerJoin)
			}
			if cost < bestCost {
				bestCost = cost
				copy(bestOrder, cand)
			}
			return !budget.Exhausted()
		})
		if !equalOrder(bestOrder, li.perm[start:start+size]) {
			copy(li.perm[start:start+size], bestOrder)
			changed = true
		}
		// Advance the base prefix past the window's leading step relations.
		step := li.strat.step()
		if step > size {
			step = size
		}
		for i := 0; i < step; i++ {
			li.base.Extend(li.perm[start+i])
		}
		start += step
	}
	return changed
}

func equalOrder(a, b []catalog.RelID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// permute enumerates all permutations of s in place (Heap's algorithm),
// invoking f for each; f returns false to stop early. s is restored only
// per Heap's visiting order, so callers must copy what they keep.
func permute(s []catalog.RelID, f func([]catalog.RelID) bool) {
	n := len(s)
	c := make([]int, n)
	if !f(s) {
		return
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				s[0], s[i] = s[i], s[0]
			} else {
				s[c[i]], s[i] = s[i], s[c[i]]
			}
			if !f(s) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}
