package heuristics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/testutil"
)

// --- Augmentation ---

func TestAugmentationAllCriteriaProduceValidPerms(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%15)
		eval, comp := testutil.Eval(testutil.RandomQuery(rng, n))
		for _, c := range Criteria {
			aug := NewAugmentation(eval, comp, c)
			for {
				p, ok := aug.NextStart()
				if !ok {
					break
				}
				if len(p) != n || !eval.Valid(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAugmentationFirstOrderAscendsByCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := testutil.RandomQuery(rng, 10)
	eval, comp := testutil.Eval(q)
	aug := NewAugmentation(eval, comp, CriterionMinSel)
	st := eval.Stats()
	prev := -1.0
	for {
		p, ok := aug.NextStart()
		if !ok {
			break
		}
		c := st.Cardinality(p[0])
		if c < prev {
			t.Fatalf("first relations not in ascending cardinality: %g after %g", c, prev)
		}
		prev = c
	}
}

func TestAugmentationStreamCountAndReset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eval, comp := testutil.Eval(testutil.RandomQuery(rng, 8))
	aug := NewAugmentation(eval, comp, CriterionMinSel)
	if aug.Remaining() != 8 {
		t.Fatalf("remaining %d, want 8", aug.Remaining())
	}
	count := 0
	for {
		if _, ok := aug.NextStart(); !ok {
			break
		}
		count++
	}
	if count != 8 {
		t.Fatalf("generated %d states, want 8", count)
	}
	aug.Reset()
	if aug.Remaining() != 8 {
		t.Fatal("reset did not rewind")
	}
}

func TestAugmentationBestIsMinOverStates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	eval, comp := testutil.Eval(testutil.RandomQuery(rng, 9))
	aug := NewAugmentation(eval, comp, CriterionMinSel)
	min := math.Inf(1)
	for {
		p, ok := aug.NextStart()
		if !ok {
			break
		}
		if c := eval.Cost(p); c < min {
			min = c
		}
	}
	_, bestCost, ok := aug.Best()
	if !ok {
		t.Fatal("Best produced nothing")
	}
	if math.Abs(bestCost-min) > 1e-9 {
		t.Fatalf("Best %g, manual min %g", bestCost, min)
	}
}

func TestAugmentationChargesBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := testutil.RandomQuery(rng, 12)
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	b := cost.NewBudget(1 << 40)
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), b)
	aug := NewAugmentation(eval, g.Components()[0], CriterionMinSel)
	aug.Generate(g.Components()[0][0])
	if b.Used() == 0 {
		t.Fatal("augmentation generation is free — candidate scans must charge")
	}
}

func TestCriterionStrings(t *testing.T) {
	for _, c := range Criteria {
		if c.String() == "?:unknown" {
			t.Fatalf("criterion %d unnamed", int(c))
		}
	}
	if Criterion(0).String() != "?:unknown" {
		t.Fatal("zero criterion should be unknown")
	}
}

// --- KBZ ---

func TestKBZProducesValidPermsForAllRoots(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%15)
		eval, comp := testutil.Eval(testutil.RandomQuery(rng, n))
		for _, w := range WeightCriteria {
			kbz := NewKBZ(eval, comp, w)
			count := 0
			for {
				p, ok := kbz.NextStart()
				if !ok {
					break
				}
				count++
				if len(p) != n || !eval.Valid(p) {
					return false
				}
			}
			if count != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// surrogateCost prices a permutation of a rooted tree under the ASI
// surrogate that algorithm R optimizes: C(chain) with C(s1 s2) =
// C(s1) + T(s1)·C(s2).
func surrogateCost(k *KBZ, perm plan.Perm) float64 {
	cTotal := 0.0
	tProd := 1.0
	for _, v := range perm[1:] {
		seg := k.nodeSegment(v)
		cTotal += tProd * seg.c
		tProd *= seg.t
	}
	return cTotal
}

// TestAlgorithmROptimalUnderSurrogate verifies the IKKBZ construction:
// for small tree queries, the linearization must beat or tie every
// valid permutation under the surrogate cost (with the same root).
func TestAlgorithmROptimalUnderSurrogate(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%5) // up to 7 relations: n! enumerable
		// Pure tree query (no extra edges) so the MST is the graph.
		q := &catalog.Query{}
		for i := 0; i < n; i++ {
			q.Relations = append(q.Relations, catalog.Relation{Cardinality: int64(2 + rng.Intn(500))})
		}
		for i := 1; i < n; i++ {
			q.Predicates = append(q.Predicates, catalog.Predicate{
				Left: catalog.RelID(rng.Intn(i)), Right: catalog.RelID(i),
				LeftDistinct:  float64(1 + rng.Intn(50)),
				RightDistinct: float64(1 + rng.Intn(50)),
			})
		}
		q.Normalize()
		eval, comp := testutil.Eval(q)
		kbz := NewKBZ(eval, comp, WeightSelectivity)

		root := comp[rng.Intn(len(comp))]
		got := kbz.Linearize(root)

		// The surrogate's per-node (T, C) parameters are defined by the
		// parent edge, so the tree must be rooted at the same root both
		// for scoring and for enumerating.
		kbz.tree = kbz.tree.Reroot(root)
		gotCost := surrogateCost(kbz, got)
		best := math.Inf(1)
		var rec func(p plan.Perm, used map[catalog.RelID]bool)
		rec = func(p plan.Perm, used map[catalog.RelID]bool) {
			if len(p) == n {
				if c := surrogateCost(kbz, p); c < best {
					best = c
				}
				return
			}
			for _, r := range comp {
				if used[r] {
					continue
				}
				// tree-validity: parent must precede.
				if !used[kbz.tree.Parent[r]] && kbz.tree.Parent[r] >= 0 {
					continue
				}
				used[r] = true
				rec(append(p, r), used)
				used[r] = false
			}
		}
		used := map[catalog.RelID]bool{root: true}
		rec(plan.Perm{root}, used)
		return gotCost <= best*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentCombineASIRecurrence(t *testing.T) {
	a := segment{rels: []catalog.RelID{1}, t: 2, c: 3}
	b := segment{rels: []catalog.RelID{2}, t: 5, c: 7}
	ab := combine(a, b)
	if ab.t != 10 || ab.c != 3+2*7 {
		t.Fatalf("combine: T=%g C=%g", ab.t, ab.c)
	}
	if len(ab.rels) != 2 || ab.rels[0] != 1 || ab.rels[1] != 2 {
		t.Fatalf("combine rels: %v", ab.rels)
	}
	// Associativity of the ASI recurrence.
	c := segment{rels: []catalog.RelID{3}, t: 11, c: 13}
	l := combine(combine(a, b), c)
	r := combine(a, combine(b, c))
	if math.Abs(l.t-r.t) > 1e-9 || math.Abs(l.c-r.c) > 1e-9 {
		t.Fatalf("combine not associative: (%g,%g) vs (%g,%g)", l.t, l.c, r.t, r.c)
	}
}

func TestSegmentRank(t *testing.T) {
	s := segment{t: 3, c: 4}
	if s.rank() != 0.5 {
		t.Fatalf("rank %g", s.rank())
	}
	z := segment{t: 3, c: 0}
	if !math.IsInf(z.rank(), -1) {
		t.Fatal("zero-cost segment should rank -inf")
	}
}

func TestMergeChainsAscending(t *testing.T) {
	mk := func(ranks ...float64) []segment {
		var out []segment
		for _, r := range ranks {
			// rank = (t-1)/c; choose c=1, t=r+1
			out = append(out, segment{t: r + 1, c: 1})
		}
		return out
	}
	var charged int64
	merged := mergeChains([][]segment{mk(1, 5, 9), mk(2, 3, 10), mk(0)}, func(n int64) { charged += n })
	if len(merged) != 7 {
		t.Fatalf("merged %d segments", len(merged))
	}
	prev := math.Inf(-1)
	for _, s := range merged {
		if s.rank() < prev {
			t.Fatalf("merge not ascending: %g after %g", s.rank(), prev)
		}
		prev = s.rank()
	}
	if charged == 0 {
		t.Fatal("merge comparisons must charge the budget")
	}
}

func TestKBZBestMatchesManualMin(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	eval, comp := testutil.Eval(testutil.RandomQuery(rng, 10))
	kbz := NewKBZ(eval, comp, WeightSelectivity)
	min := math.Inf(1)
	for {
		p, ok := kbz.NextStart()
		if !ok {
			break
		}
		if c := eval.Cost(p); c < min {
			min = c
		}
	}
	_, bestCost, ok := kbz.Best()
	if !ok || math.Abs(bestCost-min) > 1e-9 {
		t.Fatalf("Best %g, manual %g (ok=%v)", bestCost, min, ok)
	}
}

func TestWeightCriterionStrings(t *testing.T) {
	for _, w := range WeightCriteria {
		if w.String() == "?:unknown" {
			t.Fatalf("weight %d unnamed", int(w))
		}
	}
}

// --- Local improvement ---

func TestLocalImproveNeverWorsens(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(sz%12)
		eval, comp := testutil.Eval(testutil.RandomQuery(rng, n))
		// Random valid start: identity over component is valid only if
		// generated that way; use augmentation's first state instead.
		aug := NewAugmentation(eval, comp, CriterionMinCard)
		start, _ := aug.NextStart()
		startCost := eval.Cost(start)
		for _, strat := range Ladder {
			got, gotCost := LocalImprove(eval, strat, start, startCost)
			if gotCost > startCost*(1+1e-9) {
				return false
			}
			if !eval.Valid(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalImproveFullWindowFindsComponentOptimum(t *testing.T) {
	// With cluster size = n and overlap 0, one pass enumerates every
	// valid permutation that starts from position 0 — i.e., the true
	// optimum of the component (under the static estimator, where
	// window pricing is exact).
	rng := rand.New(rand.NewSource(31))
	q := testutil.RandomQuery(rng, 6)
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), cost.Unlimited())
	comp := g.Components()[0]
	aug := NewAugmentation(eval, comp, CriterionMinCard)
	start, _ := aug.NextStart()
	startCost := eval.Cost(start)

	_, gotCost := LocalImprove(eval, ClusterStrategy{Size: 6, Overlap: 0}, start, startCost)

	// Exhaustive minimum over all valid permutations.
	best := math.Inf(1)
	var rec func(p plan.Perm, used map[catalog.RelID]bool)
	rec = func(p plan.Perm, used map[catalog.RelID]bool) {
		if len(p) == len(comp) {
			if c := eval.Cost(p); c < best {
				best = c
			}
			return
		}
		for _, r := range comp {
			if used[r] {
				continue
			}
			cand := append(p, r)
			if !eval.Valid(cand) {
				continue
			}
			used[r] = true
			rec(cand, used)
			used[r] = false
		}
	}
	rec(plan.Perm{}, map[catalog.RelID]bool{})
	if math.Abs(gotCost-best) > best*1e-9 {
		t.Fatalf("full-window local improvement %g, exhaustive optimum %g", gotCost, best)
	}
}

func TestPassUnitsAndChooseStrategy(t *testing.T) {
	if u := (ClusterStrategy{Size: 2, Overlap: 0}).passUnits(1); u != 0 {
		t.Fatalf("singleton pass units %d", u)
	}
	u54 := (ClusterStrategy{Size: 5, Overlap: 4}).passUnits(20)
	u20 := (ClusterStrategy{Size: 2, Overlap: 0}).passUnits(20)
	if u54 <= u20 {
		t.Fatalf("(5,4) should cost more than (2,0): %d vs %d", u54, u20)
	}
	// Unlimited budget affords the top of the ladder.
	if s, ok := ChooseStrategy(-1, 20); !ok || s != Ladder[0] {
		t.Fatalf("unlimited: %v %v", s, ok)
	}
	// A tiny budget affords only the cheapest strategies, or nothing.
	if _, ok := ChooseStrategy(0, 20); ok {
		t.Fatal("zero budget should afford nothing")
	}
	if s, ok := ChooseStrategy(u20, 20); !ok || s.Size > 2 {
		t.Fatalf("tight budget picked %v", s)
	}
	// Budget for (5,4) picks (5,4).
	if s, ok := ChooseStrategy(u54, 20); !ok || s != Ladder[0] {
		t.Fatalf("ample budget picked %v", s)
	}
}

func TestPermuteEnumeratesAll(t *testing.T) {
	s := []catalog.RelID{1, 2, 3, 4}
	seen := map[string]bool{}
	permute(s, func(p []catalog.RelID) bool {
		key := ""
		for _, r := range p {
			key += string(rune('0' + r))
		}
		seen[key] = true
		return true
	})
	if len(seen) != 24 {
		t.Fatalf("enumerated %d of 24 permutations", len(seen))
	}
}

func TestPermuteEarlyStop(t *testing.T) {
	s := []catalog.RelID{1, 2, 3}
	calls := 0
	permute(s, func(p []catalog.RelID) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestDistinctIntoPicksMostSelectiveEdge(t *testing.T) {
	q := &catalog.Query{
		Relations: []catalog.Relation{{Cardinality: 100}, {Cardinality: 100}, {Cardinality: 100}},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 2, LeftDistinct: 10, RightDistinct: 20}, // J = 1/20
			{Left: 1, Right: 2, LeftDistinct: 50, RightDistinct: 80}, // J = 1/80 (more selective)
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	inSet := joingraph.NewBitset(3)
	inSet.Set(0)
	inSet.Set(1)
	if got := distinctInto(st, inSet, 2); got != 80 {
		t.Fatalf("distinctInto picked %g, want 80 (most selective edge's j-side)", got)
	}
}
