package client

import (
	"sync"
	"time"
)

// BreakerConfig tunes the half-open circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive retryable failures open the
	// circuit (default 5; < 0 disables the breaker entirely).
	Threshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
}

func (c *BreakerConfig) fill() {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a half-open circuit breaker over consecutive failures:
//
//   - closed: requests flow; Threshold consecutive retryable failures
//     trip it open.
//   - open: requests fail fast with ErrCircuitOpen until Cooldown has
//     elapsed, at which point exactly one probe is admitted
//     (half-open).
//   - half-open: the probe's success closes the circuit; its failure
//     reopens it for another Cooldown. Non-probe requests fail fast
//     while the probe is in flight.
//
// The clock is injected (Config.Now) so tests drive the state machine
// deterministically.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu            sync.Mutex
	state         breakerState
	failures      int
	openedAt      time.Time
	probeInFlight bool
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	cfg.fill()
	return &breaker{cfg: cfg, now: now}
}

// allow reports whether a request may proceed. When it returns true in
// the half-open state, the caller holds the single probe slot and must
// report success or failure.
func (b *breaker) allow() bool {
	if b.cfg.Threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = breakerHalfOpen
			b.probeInFlight = true
			return true
		}
		return false
	default: // half-open
		if b.probeInFlight {
			return false
		}
		b.probeInFlight = true
		return true
	}
}

// success records a request that completed usefully (2xx, or a 4xx
// that proves the server is alive and judging requests).
func (b *breaker) success() {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probeInFlight = false
}

// failure records a retryable failure (transport error, 5xx, timeout).
func (b *breaker) failure() {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: reopen for another cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probeInFlight = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// currentState snapshots the state (status/debugging).
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
