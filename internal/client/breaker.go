package client

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerConfig tunes the half-open circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive retryable failures open the
	// circuit (default 5; < 0 disables the breaker entirely).
	Threshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
}

func (c *BreakerConfig) fill() {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
}

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a half-open circuit breaker over consecutive failures:
//
//   - closed: requests flow; Threshold consecutive retryable failures
//     trip it open.
//   - open: requests fail fast with ErrCircuitOpen until Cooldown has
//     elapsed, at which point exactly one probe is admitted
//     (half-open).
//   - half-open: the probe's success closes the circuit; its failure
//     reopens it for another Cooldown. Non-probe requests fail fast
//     while the probe is in flight.
//
// The clock is injected (Config.Now) so tests drive the state machine
// deterministically.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	// transitions counts state changes (closed→open, open→half-open,
	// half-open→closed, half-open→open): the operational "how often is
	// this peer flapping" number, exported through telemetry.
	transitions atomic.Uint64

	mu            sync.Mutex
	state         breakerState
	failures      int
	openedAt      time.Time
	probeInFlight bool
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	cfg.fill()
	return &breaker{cfg: cfg, now: now}
}

// allow reports whether a request may proceed. When it returns true in
// the half-open state, the caller holds the single probe slot and must
// report success or failure.
func (b *breaker) allow() bool {
	if b.cfg.Threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = breakerHalfOpen
			b.transitions.Add(1)
			b.probeInFlight = true
			return true
		}
		return false
	default: // half-open
		if b.probeInFlight {
			return false
		}
		b.probeInFlight = true
		return true
	}
}

// success records a request that completed usefully (2xx, or a 4xx
// that proves the server is alive and judging requests).
func (b *breaker) success() {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerClosed {
		b.transitions.Add(1)
	}
	b.state = breakerClosed
	b.failures = 0
	b.probeInFlight = false
}

// failure records a retryable failure (transport error, 5xx, timeout).
func (b *breaker) failure() {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: reopen for another cooldown.
		b.state = breakerOpen
		b.transitions.Add(1)
		b.openedAt = b.now()
		b.probeInFlight = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = breakerOpen
			b.transitions.Add(1)
			b.openedAt = b.now()
		}
	}
}

// cancelSlot releases a slot claimed by allow() without judging the
// peer: the request was abandoned (a hedged loser torn down after a
// winner, not a verdict on the peer's health). In the closed state
// this is a no-op; in half-open it frees the probe slot so the next
// request can probe instead of parking the breaker half-open forever.
func (b *breaker) cancelSlot() {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probeInFlight = false
}

// currentState snapshots the state (status/debugging).
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ---------------------------------------------------------------------

// Breaker is the exported half-open circuit breaker: the same state
// machine the Client runs per daemon, reusable as a standalone
// component (internal/cluster keeps one per peer for its health view).
//
// Contract: every Allow() == true must be followed by exactly one
// Success() or Failure() — in the half-open state, Allow grants the
// single probe slot, and a caller that drops the slot on the floor
// parks the breaker half-open forever.
type Breaker struct{ b *breaker }

// NewBreaker builds a standalone breaker. now is the clock (nil means
// time.Now; tests inject a fake clock to drive cooldowns).
func NewBreaker(cfg BreakerConfig, now func() time.Time) *Breaker {
	if now == nil {
		//ljqlint:allow detrand -- wall-clock breaker cooldown, outside any seeded optimizer path
		now = time.Now
	}
	return &Breaker{b: newBreaker(cfg, now)}
}

// Allow reports whether a request may proceed (and in half-open state
// claims the probe slot — see the type contract).
func (b *Breaker) Allow() bool { return b.b.allow() }

// Success records a useful completion.
func (b *Breaker) Success() { b.b.success() }

// Failure records a retryable failure.
func (b *Breaker) Failure() { b.b.failure() }

// Cancel releases an Allow slot without recording a verdict: the
// request was abandoned before completing (e.g. a hedged loser), so
// its fate says nothing about the peer.
func (b *Breaker) Cancel() { b.b.cancelSlot() }

// State names the current state ("closed", "open", "half-open").
func (b *Breaker) State() string { return b.b.currentState().String() }

// Transitions returns how many state changes the breaker has made.
func (b *Breaker) Transitions() uint64 { return b.b.transitions.Load() }
