package client

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"joinopt/internal/serve"
	"joinopt/internal/wire"
	"joinopt/internal/workload"
)

// TestWireOptimizeEndToEnd: Config.Wire against a real daemon handler.
// The binary path must return the same response the JSON path does,
// and the second call must be a cache hit (one optimizer run total —
// the protocols share the cache entry).
func TestWireOptimizeEndToEnd(t *testing.T) {
	srv := serve.New(serve.Config{TCoeff: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := workload.Default().Generate(10, rand.New(rand.NewSource(61)))

	jc, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := New(Config{BaseURL: ts.URL, Wire: true})
	if err != nil {
		t.Fatal(err)
	}

	jsonResp, err := jc.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	wireResp, err := wc.Optimize(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !wireResp.CacheHit {
		t.Fatal("wire call after JSON call was not a cache hit")
	}
	if wireResp.Fingerprint != jsonResp.Fingerprint {
		t.Fatalf("fingerprint drift: %s vs %s", wireResp.Fingerprint, jsonResp.Fingerprint)
	}
	if wireResp.Explain != jsonResp.Explain {
		t.Fatalf("Explain drift:\njson:\n%s\nwire:\n%s", jsonResp.Explain, wireResp.Explain)
	}
	if wireResp.TotalCost != jsonResp.TotalCost || wireResp.Tier != jsonResp.Tier {
		t.Fatalf("response drift: %+v vs %+v", wireResp, jsonResp)
	}
}

// TestWireFallsBackToJSON: against a daemon that rejects the binary
// Content-Type (a pre-wire build), a Wire client transparently retries
// the call as JSON and succeeds.
func TestWireFallsBackToJSON(t *testing.T) {
	srv := serve.New(serve.Config{TCoeff: 1})
	inner := srv.Handler()
	var wireRejects atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Content-Type"), "x-ljq-wire") {
			wireRejects.Add(1)
			http.Error(w, "unsupported media type", http.StatusUnsupportedMediaType)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, Wire: true})
	if err != nil {
		t.Fatal(err)
	}
	q := workload.Default().Generate(6, rand.New(rand.NewSource(67)))
	resp, err := c.Optimize(context.Background(), q)
	if err != nil {
		t.Fatalf("wire client against a pre-wire daemon: %v", err)
	}
	if resp.Fingerprint == "" || len(resp.Order) == 0 {
		t.Fatalf("fallback response incomplete: %+v", resp)
	}
	if wireRejects.Load() != 1 {
		t.Fatalf("binary request attempted %d times before falling back, want 1", wireRejects.Load())
	}
}

// TestWireResponseSniffing: a daemon that ignores Accept and answers a
// binary request with JSON still decodes — the client sniffs the frame
// magic instead of trusting headers.
func TestWireResponseSniffing(t *testing.T) {
	resp := &serve.OptimizeResponse{Fingerprint: "abcd", CacheHit: true, Explain: "plan"}
	// JSON bytes through the wire-aware decoder.
	got, err := decodeOptimizeResponse([]byte(`{"fingerprint":"abcd","cacheHit":true,"explain":"plan"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != resp.Fingerprint || !got.CacheHit || got.Explain != resp.Explain {
		t.Fatalf("JSON sniff decoded %+v", got)
	}
	// Binary bytes through the same decoder.
	enc := wire.EncodeResponse(&wire.Response{Fingerprint: "abcd", CacheHit: true, Explain: "plan"})
	got, err = decodeOptimizeResponse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != resp.Fingerprint || !got.CacheHit || got.Explain != resp.Explain {
		t.Fatalf("wire sniff decoded %+v", got)
	}
}
