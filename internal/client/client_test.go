package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"joinopt/internal/faultinject"
	"joinopt/internal/serve"
	"joinopt/internal/telemetry"
)

// roundTripperFunc adapts a function to http.RoundTripper (the inner
// transport for Pass outcomes: no network, canned responses).
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// okInner answers every request 200 with a fixed OptimizeResponse.
func okInner(t *testing.T) http.RoundTripper {
	t.Helper()
	body, err := json.Marshal(&serve.OptimizeResponse{
		Fingerprint: "feedface",
		TotalCost:   42.5,
		Order:       []int{2, 0, 1},
		Explain:     "join(2,0,1)",
	})
	if err != nil {
		t.Fatal(err)
	}
	return roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if r.Body != nil {
			_, _ = io.Copy(io.Discard, r.Body)
			_ = r.Body.Close()
		}
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(string(body))),
			Request:    r,
		}, nil
	})
}

// statusInner answers a fixed status code and body.
func statusInner(code int, body string) http.RoundTripper {
	return roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if r.Body != nil {
			_, _ = io.Copy(io.Discard, r.Body)
			_ = r.Body.Close()
		}
		return &http.Response{
			StatusCode: code,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(body)),
			Request:    r,
		}, nil
	})
}

// sleepRecorder captures the delays the client asked to wait, without
// actually waiting.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *sleepRecorder) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
	return ctx.Err()
}

func (s *sleepRecorder) all() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]time.Duration, len(s.delays))
	copy(out, s.delays)
	return out
}

// neverFires is an After hook whose timer never fires.
func neverFires(time.Duration) <-chan time.Time { return make(chan time.Time) }

// firesImmediately is an After hook whose timer has already fired.
func firesImmediately(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

func newTestClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	if cfg.BaseURL == "" {
		cfg.BaseURL = "http://ljqd.test"
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetriesThenSucceedsWithDeterministicBackoff(t *testing.T) {
	const seed = 42
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	rec := &sleepRecorder{}
	c := newTestClient(t, Config{
		Transport:   ft,
		MaxAttempts: 4,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		JitterSeed:  seed,
		Sleep:       rec.sleep,
	})
	resp, err := c.OptimizeDSL(context.Background(), "R(10) S(20) R.x=S.y 0.1")
	if err != nil {
		t.Fatalf("OptimizeDSL: %v", err)
	}
	if resp.Fingerprint != "feedface" || resp.Explain != "join(2,0,1)" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if got := ft.Log(); len(got) != 3 {
		t.Fatalf("transport saw %v, want 3 attempts", got)
	}

	// The two recorded backoffs must equal the seeded jitter stream:
	// delay_k uniform in [b/2, b), b = Base<<k.
	rng := rand.New(rand.NewSource(seed))
	want := make([]time.Duration, 2)
	for k := range want {
		b := 100 * time.Millisecond << uint(k)
		want[k] = b/2 + time.Duration(rng.Float64()*float64(b/2))
	}
	got := rec.all()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("backoffs %v, want deterministic %v", got, want)
	}

	// Same seed, same failures → bit-identical schedule on a second
	// client (the reproducibility contract).
	ft2 := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	rec2 := &sleepRecorder{}
	c2 := newTestClient(t, Config{
		Transport: ft2, MaxAttempts: 4, BaseBackoff: 100 * time.Millisecond,
		MaxBackoff: 5 * time.Second, JitterSeed: seed, Sleep: rec2.sleep,
	})
	if _, err := c2.OptimizeDSL(context.Background(), "R(10) S(20) R.x=S.y 0.1"); err != nil {
		t.Fatal(err)
	}
	got2 := rec2.all()
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("same seed produced different schedules: %v vs %v", got, got2)
		}
	}
}

func TestRetryAfterHonored(t *testing.T) {
	// The server says "2 seconds"; the client's own backoff would be
	// ~100ms. The recorded delay must be the server's hint.
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Unavailable, RetryAfter: 2},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	rec := &sleepRecorder{}
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 3,
		BaseBackoff: 100 * time.Millisecond, Sleep: rec.sleep,
	})
	if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
		t.Fatalf("OptimizeDSL: %v", err)
	}
	got := rec.all()
	if len(got) != 1 || got[0] != 2*time.Second {
		t.Fatalf("recorded delays %v, want exactly [2s] (Retry-After wins over backoff)", got)
	}
}

func TestRetryAfterCapped(t *testing.T) {
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Unavailable, RetryAfter: 3600},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	rec := &sleepRecorder{}
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 2,
		RetryAfterCap: 5 * time.Second, Sleep: rec.sleep,
	})
	if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
		t.Fatal(err)
	}
	got := rec.all()
	if len(got) != 1 || got[0] != 5*time.Second {
		t.Fatalf("recorded delays %v, want [5s] (capped)", got)
	}
}

func TestPermanent4xxDoesNotRetry(t *testing.T) {
	c := newTestClient(t, Config{
		Transport: statusInner(http.StatusBadRequest, "parse error at line 1"),
		Sleep:     (&sleepRecorder{}).sleep,
	})
	_, err := c.OptimizeDSL(context.Background(), "not a query")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	// A 4xx is breaker-success: the daemon is alive and judging.
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker %s after 4xx, want closed", st)
	}
}

func TestExhaustedWrapsLastError(t *testing.T) {
	ft := faultinject.NewFlakyTransport(nil,
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
	)
	c := newTestClient(t, Config{Transport: ft, MaxAttempts: 3, Sleep: (&sleepRecorder{}).sleep})
	_, err := c.OptimizeDSL(context.Background(), "q")
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if !errors.Is(err, faultinject.ErrDropped) {
		t.Fatalf("err = %v, want to wrap the transport's last error", err)
	}
	if ft.Requests() != 3 {
		t.Fatalf("transport saw %d requests, want exactly MaxAttempts=3", ft.Requests())
	}
}

func Test5xxIsRetryable(t *testing.T) {
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.InternalError},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	c := newTestClient(t, Config{Transport: ft, MaxAttempts: 2, Sleep: (&sleepRecorder{}).sleep})
	if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
		t.Fatalf("OptimizeDSL after 500→200: %v", err)
	}
	if got := ft.Log(); len(got) != 2 || got[0] != faultinject.InternalError {
		t.Fatalf("trajectory %v, want [500 pass]", got)
	}
}

func TestPerAttemptTimeoutRetries(t *testing.T) {
	// First attempt hangs; the per-attempt timeout must cut it loose
	// and the retry must succeed — the caller's context stays alive.
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Hang},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 2,
		PerAttemptTimeout: 20 * time.Millisecond,
		Sleep:             (&sleepRecorder{}).sleep,
	})
	if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
		t.Fatalf("OptimizeDSL after hang→pass: %v", err)
	}
	if got := ft.Log(); len(got) != 2 {
		t.Fatalf("trajectory %v, want hang then pass", got)
	}
}

func TestHedgedRequestWinsOverHangingPrimary(t *testing.T) {
	// The primary hangs; the hedge timer has already fired, so the
	// secondary launches immediately and its 200 wins. (Hang and Pass
	// are consumed in scheduler order; either assignment succeeds.)
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Hang},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 1,
		PerAttemptTimeout: 5 * time.Second,
		HedgeDelay:        time.Millisecond,
		After:             firesImmediately,
		Sleep:             (&sleepRecorder{}).sleep,
	})
	resp, err := c.OptimizeDSL(context.Background(), "q")
	if err != nil {
		t.Fatalf("hedged OptimizeDSL: %v", err)
	}
	if resp.Fingerprint != "feedface" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if n := ft.Requests(); n != 2 {
		t.Fatalf("transport saw %d requests, want 2 (primary + hedge)", n)
	}
}

func TestNoHedgeWhenPrimaryFailsFirst(t *testing.T) {
	// The hedge timer never fires; a fast primary failure goes straight
	// to the retry loop — exactly one request per attempt.
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 2,
		HedgeDelay: time.Hour,
		After:      neverFires,
		Sleep:      (&sleepRecorder{}).sleep,
	})
	if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
		t.Fatal(err)
	}
	if got := ft.Log(); len(got) != 2 || got[0] != faultinject.Drop || got[1] != faultinject.Pass {
		t.Fatalf("trajectory %v, want [drop pass] with no hedge", got)
	}
}

// fakeClock drives the breaker deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestCircuitBreakerTripsProbesAndRecovers(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
	)
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 1, // one physical attempt per call
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 5 * time.Second},
		Now:     clock.now,
		Sleep:   (&sleepRecorder{}).sleep,
	})
	ctx := context.Background()

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.OptimizeDSL(ctx, "q"); !errors.Is(err, ErrExhausted) {
			t.Fatalf("call %d: err = %v, want ErrExhausted", i, err)
		}
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker %s after %d failures, want open", st, 2)
	}

	// While open: fail fast, no transport traffic.
	before := ft.Requests()
	if _, err := c.OptimizeDSL(ctx, "q"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if ft.Requests() != before {
		t.Fatal("open breaker let a request reach the transport")
	}

	// Cooldown elapses; the half-open probe succeeds and closes it.
	clock.advance(5 * time.Second)
	ft.Extend(faultinject.Outcome{Kind: faultinject.Pass})
	if _, err := c.OptimizeDSL(ctx, "q"); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}

	// Trip it again; this time the probe fails and it reopens.
	ft.Extend(
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop}, // the failing probe
	)
	for i := 0; i < 2; i++ {
		if _, err := c.OptimizeDSL(ctx, "q"); !errors.Is(err, ErrExhausted) {
			t.Fatalf("retrip call %d: %v", i, err)
		}
	}
	clock.advance(5 * time.Second)
	if _, err := c.OptimizeDSL(ctx, "q"); !errors.Is(err, ErrExhausted) {
		t.Fatalf("failing probe: err = %v", err)
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker %s after failed probe, want open", st)
	}
	// And it fails fast again without waiting out the new cooldown.
	if _, err := c.OptimizeDSL(ctx, "q"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen after reopen", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 4,
		Breaker: BreakerConfig{Threshold: -1},
		Sleep:   (&sleepRecorder{}).sleep,
	})
	if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
		t.Fatalf("disabled breaker must never fail fast: %v", err)
	}
}

func TestStatusAndReadyProbesSingleAttempt(t *testing.T) {
	// Probes report the world as-is: a 503 /readyz is an error, not a
	// retry loop.
	ft := faultinject.NewFlakyTransport(nil,
		faultinject.Outcome{Kind: faultinject.Unavailable, RetryAfter: 1},
	)
	c := newTestClient(t, Config{Transport: ft, Sleep: (&sleepRecorder{}).sleep})
	if err := c.Ready(context.Background()); err == nil {
		t.Fatal("Ready over 503 = nil, want error")
	}
	if ft.Requests() != 1 {
		t.Fatalf("probe made %d requests, want 1", ft.Requests())
	}

	body, err := json.Marshal(&serve.StatusResponse{Ready: true, CapacityJoins: 256})
	if err != nil {
		t.Fatal(err)
	}
	c2 := newTestClient(t, Config{Transport: statusInner(http.StatusOK, string(body))})
	st, err := c2.Status(context.Background())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !st.Ready || st.CapacityJoins != 256 {
		t.Fatalf("status = %+v", st)
	}
}

// TestHedgeLoserCancelledNoLeak is the hedged-loser regression gate:
// every hedged call leaves one request hanging (the scripted Hang
// outcome blocks until its context dies), and the winning response
// must cancel it immediately — no goroutine may outlive the call. The
// per-attempt timeout is set far beyond the test's patience, so if the
// loser were only reaped by that timeout instead of by explicit
// cancellation, the goroutine count could not settle and the test
// would fail.
func TestHedgeLoserCancelledNoLeak(t *testing.T) {
	const calls = 20
	var outcomes []faultinject.Outcome
	for i := 0; i < calls; i++ {
		// Scheduler order decides which of the pair each request draws;
		// either way one hangs and one passes.
		outcomes = append(outcomes,
			faultinject.Outcome{Kind: faultinject.Hang},
			faultinject.Outcome{Kind: faultinject.Pass},
		)
	}
	ft := faultinject.NewFlakyTransport(okInner(t), outcomes...)
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 1,
		PerAttemptTimeout: time.Hour, // only cancellation can release the loser
		HedgeDelay:        time.Millisecond,
		After:             firesImmediately,
		Sleep:             (&sleepRecorder{}).sleep,
	})

	before := runtime.NumGoroutine()
	for i := 0; i < calls; i++ {
		if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Cancellation is asynchronous from the caller's point of view;
	// give the losers a moment to observe it.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after %d hedged calls", before, now, calls)
	}
	st := c.Stats()
	if st.Hedges != calls {
		t.Fatalf("hedges = %d, want %d", st.Hedges, calls)
	}
	if st.HedgeWins+st.HedgeLosses != calls {
		t.Fatalf("hedge wins %d + losses %d, want their sum = %d", st.HedgeWins, st.HedgeLosses, calls)
	}
}

func TestResilienceCountersAndMetrics(t *testing.T) {
	ft := faultinject.NewFlakyTransport(okInner(t),
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Pass},
	)
	c := newTestClient(t, Config{Transport: ft, MaxAttempts: 4, Sleep: (&sleepRecorder{}).sleep})
	if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (two drops before the pass)", st.Retries)
	}
	if st.BreakerState != "closed" {
		t.Fatalf("breaker state %q, want closed", st.BreakerState)
	}

	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg, "ljq_client", `{peer="p0"}`)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ljq_client_retries_total{peer="p0"} 2`,
		`ljq_client_hedges_total{peer="p0"} 0`,
		`ljq_client_breaker_transitions_total{peer="p0"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestBreakerTransitionsCounted(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Second}, clock.now)
	b.Failure()
	b.Failure() // closed → open
	if st := b.State(); st != "open" {
		t.Fatalf("state %q, want open", st)
	}
	clock.advance(time.Second)
	if !b.Allow() { // open → half-open, probe slot claimed
		t.Fatal("cooled-down breaker refused the probe")
	}
	b.Success() // half-open → closed
	if got := b.Transitions(); got != 3 {
		t.Fatalf("transitions = %d, want 3 (open, half-open, closed)", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	b.Success() // closed → closed: not a transition
	if got := b.Transitions(); got != 3 {
		t.Fatalf("transitions = %d after steady-state success, want still 3", got)
	}
}

func TestCallerContextCancelStopsRetrying(t *testing.T) {
	ft := faultinject.NewFlakyTransport(nil,
		faultinject.Outcome{Kind: faultinject.Drop},
		faultinject.Outcome{Kind: faultinject.Drop},
	)
	ctx, cancel := context.WithCancel(context.Background())
	c := newTestClient(t, Config{
		Transport: ft, MaxAttempts: 10,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the caller gives up while the client backs off
			return ctx.Err()
		},
	})
	_, err := c.OptimizeDSL(ctx, "q")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ft.Requests() != 1 {
		t.Fatalf("client kept retrying after cancel: %d requests", ft.Requests())
	}
}

// TestCallerCtxDeathReleasesHalfOpenProbeSlot is the regression test
// for the slotresolve finding in call(): when the half-open probe's
// caller hung up mid-attempt (non-retryable, but not an APIError), the
// probe slot claimed by allow() was dropped on the floor — parking the
// breaker half-open and failing every future call fast with
// ErrCircuitOpen. The fix releases the slot with cancelSlot().
func TestCallerCtxDeathReleasesHalfOpenProbeSlot(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	ok := okInner(t)
	var mu sync.Mutex
	var cancelCaller context.CancelFunc // armed for the probe call
	failing := true
	rt := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		mu.Lock()
		cancel := cancelCaller
		cancelCaller = nil
		fail := failing
		mu.Unlock()
		if cancel != nil {
			// The caller gives up while this attempt is on the wire:
			// the transport error is then classified non-retryable
			// because the *caller's* context died, not the attempt's.
			cancel()
			return nil, errors.New("connection torn down")
		}
		if fail {
			return nil, errors.New("connection refused")
		}
		return ok.RoundTrip(r)
	})
	c := newTestClient(t, Config{
		Transport: rt, MaxAttempts: 1,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 5 * time.Second},
		Now:     clock.now,
		Sleep:   (&sleepRecorder{}).sleep,
	})

	// Trip the breaker open.
	for i := 0; i < 2; i++ {
		if _, err := c.OptimizeDSL(context.Background(), "q"); !errors.Is(err, ErrExhausted) {
			t.Fatalf("call %d: err = %v, want ErrExhausted", i, err)
		}
	}
	if st := c.BreakerState(); st != "open" {
		t.Fatalf("breaker %s, want open", st)
	}

	// Cooldown elapses; the next call is granted the single half-open
	// probe slot — and its caller hangs up mid-attempt. No verdict on
	// the daemon, but the slot must be released.
	clock.advance(5 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mu.Lock()
	cancelCaller = cancel
	mu.Unlock()
	if _, err := c.OptimizeDSL(ctx, "q"); !errors.Is(err, context.Canceled) {
		t.Fatalf("probe call: err = %v, want context.Canceled", err)
	}

	// The next caller must be able to probe. Before the fix the leaked
	// slot kept probeInFlight set forever and this call failed fast
	// with ErrCircuitOpen.
	mu.Lock()
	failing = false
	mu.Unlock()
	if _, err := c.OptimizeDSL(context.Background(), "q"); err != nil {
		t.Fatalf("post-cancel probe: %v (a leaked probe slot parks the breaker half-open)", err)
	}
	if st := c.BreakerState(); st != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
}

// TestShedFailFastReturnsImmediately: with ShedFailFast set, a 429/503
// answer comes straight back as a *ShedError — no Retry-After sleep,
// no retry burn-down, and no breaker strike (the daemon answered; it
// is alive, just refusing work). This is the mode the cluster router
// runs its per-peer clients in: failover across peers beats waiting on
// one.
func TestShedFailFastReturnsImmediately(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		inner := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
			if r.Body != nil {
				_, _ = io.Copy(io.Discard, r.Body)
				_ = r.Body.Close()
			}
			h := make(http.Header)
			h.Set("Retry-After", "30")
			return &http.Response{
				StatusCode: code,
				Header:     h,
				Body:       io.NopCloser(strings.NewReader("busy")),
				Request:    r,
			}, nil
		})
		rec := &sleepRecorder{}
		c := newTestClient(t, Config{
			Transport:    inner,
			MaxAttempts:  5,
			ShedFailFast: true,
			Sleep:        rec.sleep,
			Breaker:      BreakerConfig{Threshold: 2},
		})
		for i := 0; i < 6; i++ { // 3x the breaker threshold
			_, err := c.OptimizeDSL(context.Background(), "R(10) S(20) R.x=S.y 0.1")
			var shed *ShedError
			if !errors.As(err, &shed) {
				t.Fatalf("%d/%d: err = %v, want *ShedError", code, i, err)
			}
			if shed.StatusCode != code || shed.RetryAfter != 30*time.Second {
				t.Fatalf("%d: shed = %+v", code, shed)
			}
		}
		if got := rec.all(); len(got) != 0 {
			t.Fatalf("%d: client slept %v despite ShedFailFast", code, got)
		}
		st := c.Stats()
		if st.Retries != 0 {
			t.Fatalf("%d: retries = %d, want 0", code, st.Retries)
		}
		if got := c.BreakerState(); got != "closed" {
			t.Fatalf("%d: breaker %q after sheds, want closed", code, got)
		}
	}
}

// TestShedDefaultStillRetries pins the default (ShedFailFast unset):
// shed answers remain retryable-with-backoff, honoring Retry-After.
func TestShedDefaultStillRetries(t *testing.T) {
	calls := 0
	inner := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if r.Body != nil {
			_, _ = io.Copy(io.Discard, r.Body)
			_ = r.Body.Close()
		}
		calls++
		if calls < 3 {
			h := make(http.Header)
			h.Set("Retry-After", "7")
			return &http.Response{
				StatusCode: http.StatusTooManyRequests,
				Header:     h,
				Body:       io.NopCloser(strings.NewReader("busy")),
				Request:    r,
			}, nil
		}
		return okInner(t).RoundTrip(r)
	})
	rec := &sleepRecorder{}
	c := newTestClient(t, Config{
		Transport:   inner,
		MaxAttempts: 4,
		Sleep:       rec.sleep,
	})
	resp, err := c.OptimizeDSL(context.Background(), "R(10) S(20) R.x=S.y 0.1")
	if err != nil || resp.Explain == "" {
		t.Fatalf("err=%v resp=%+v", err, resp)
	}
	delays := rec.all()
	if len(delays) != 2 {
		t.Fatalf("delays %v, want 2 Retry-After waits", delays)
	}
	for _, d := range delays {
		if d != 7*time.Second {
			t.Fatalf("delay %v, want the 7s Retry-After hint", d)
		}
	}
}
