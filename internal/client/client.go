// Package client is the hardened Go client for the ljqd optimizer
// daemon (internal/serve): the server amortizes the paper's t·N²
// search across isomorphic queries, and this client makes reaching it
// survive the failures a production network actually serves — dropped
// connections, slow replies, 503 load shedding, and crashed daemons
// mid-restart.
//
// Resilience features, all deterministic under test (the clock, the
// sleeper, the hedge timer and the jitter stream are injectable, and
// the fault harness provides a scripted http.RoundTripper):
//
//   - per-attempt timeouts: one slow attempt cannot eat the caller's
//     whole deadline;
//   - capped exponential backoff with seeded jitter between attempts;
//   - Retry-After-aware 503 handling: the server's load shedder says
//     when capacity should exist again (serve.retryAfterSeconds now
//     rounds up, so the hint is never a serialized zero), and the
//     client waits at least that long;
//   - optional hedged second request: if the first attempt is still
//     silent after HedgeDelay, a second identical request races it and
//     the first useful response wins (reads are idempotent: POST
//     /optimize is a pure function of the query, seed and budget, so
//     hedging is safe);
//   - a half-open circuit breaker: consecutive failures trip it, a
//     cooled-down probe closes it, and while open the client fails
//     fast with ErrCircuitOpen instead of queueing doomed work.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/qfile"
	"joinopt/internal/serve"
	"joinopt/internal/telemetry"
	"joinopt/internal/wire"
)

// Errors surfaced by the client.
var (
	// ErrCircuitOpen reports that the circuit breaker is open: the
	// daemon has failed repeatedly and the cooldown has not elapsed.
	ErrCircuitOpen = errors.New("client: circuit breaker open")
	// ErrExhausted reports that every attempt failed retryably; it
	// wraps the last attempt's error.
	ErrExhausted = errors.New("client: attempts exhausted")
)

// APIError is a non-retryable HTTP failure (4xx other than 429): the
// daemon judged the request itself defective.
type APIError struct {
	StatusCode int
	Body       string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.StatusCode, strings.TrimSpace(e.Body))
}

// ShedError is a load-shedding answer — 503 or 429 — with its
// Retry-After hint consumed. It is retryable: the daemon is alive and
// refusing work, the opposite of dead. Under the default config the
// client retries it in-line (sleeping at least RetryAfter); with
// Config.ShedFailFast it surfaces immediately so a caller with its own
// failover (the cluster router) can try another peer instead of
// blocking on this one's backlog.
type ShedError struct {
	StatusCode int
	RetryAfter time.Duration // server's hint, 0 if absent/unparseable
	Body       string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("client: server unavailable (%d): %s", e.StatusCode, strings.TrimSpace(e.Body))
}

// Config tunes a Client. The zero value (plus BaseURL) selects
// production-ish defaults.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Transport performs the HTTP round trips (default
	// http.DefaultTransport; tests inject faultinject.FlakyTransport).
	Transport http.RoundTripper
	// MaxAttempts bounds retries per call (default 4).
	MaxAttempts int
	// PerAttemptTimeout bounds one HTTP attempt (default 10s). The
	// caller's ctx still bounds the whole call.
	PerAttemptTimeout time.Duration
	// BaseBackoff / MaxBackoff shape the exponential backoff between
	// attempts (defaults 100ms / 5s). The k-th delay is drawn from
	// [b/2, b) with b = min(BaseBackoff·2^k, MaxBackoff).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter stream (default 1): two
	// clients built with the same seed and failure sequence back off
	// identically.
	JitterSeed int64
	// RetryAfterCap bounds how long a server Retry-After hint is
	// honored (default 30s): a confused server must not park the
	// client for an hour.
	RetryAfterCap time.Duration
	// HedgeDelay, when positive, launches a second identical request
	// if the first has produced nothing after this long; the first
	// useful response wins (default 0: disabled).
	HedgeDelay time.Duration
	// ShedFailFast makes a load-shedding answer (503/429 — a *ShedError)
	// return immediately instead of being retried in-line with a
	// Retry-After sleep. For callers that own a failover ladder (the
	// cluster router): the right response to one peer shedding is to ask
	// a different peer NOW, not to camp on the shedding peer's queue.
	// The breaker records shed answers as successes — a shedding daemon
	// is alive, and opening its circuit would misread load as death.
	ShedFailFast bool
	// Wire selects the binary wire protocol (internal/wire) for
	// Optimize: the query ships as a length-prefixed binary frame and
	// the response is requested in the same codec via Accept. Against a
	// daemon that predates the protocol — recognized by a 4xx on the
	// binary request — the call transparently falls back to JSON, so
	// mixed fleets upgrade safely.
	Wire bool
	// Breaker tunes the circuit breaker.
	Breaker BreakerConfig

	// Test hooks. Production code leaves them nil.
	//
	// Sleep waits between attempts (default: ctx-aware timer).
	Sleep func(ctx context.Context, d time.Duration) error
	// After arms the hedge timer (default: a stoppable time.Timer —
	// unlike time.After, the timer is released as soon as the attempt
	// resolves, so a fast-failing primary does not strand a HedgeDelay
	// timer per retry).
	After func(d time.Duration) <-chan time.Time
	// Now is the breaker's clock (default time.Now).
	Now func() time.Time
}

func (c *Config) fill() error {
	if c.BaseURL == "" {
		return errors.New("client: BaseURL required")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.PerAttemptTimeout <= 0 {
		c.PerAttemptTimeout = 10 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 30 * time.Second
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	// c.After stays nil by default: hedgedAttempt then uses a stoppable
	// time.Timer instead of a fire-and-forget channel.
	if c.Now == nil {
		//ljqlint:allow detrand -- wall-clock breaker cooldown in the network client, outside any seeded path
		c.Now = time.Now
	}
	return nil
}

// sleepCtx is the production sleeper: a ctx-aware timer.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Client is a hardened ljqd client. Safe for concurrent use.
type Client struct {
	cfg     Config
	breaker *breaker

	// Resilience counters, exported via Stats and RegisterMetrics: how
	// much work the failure-handling machinery is actually doing.
	retries     atomic.Uint64 // extra attempts beyond the first, per call
	hedges      atomic.Uint64 // hedged secondaries launched
	hedgeWins   atomic.Uint64 // hedged secondary's response was used
	hedgeLosses atomic.Uint64 // hedge launched but the primary's response won

	mu  sync.Mutex
	rng *rand.Rand
}

// Stats is a snapshot of the client's resilience counters.
type Stats struct {
	Retries            uint64 `json:"retries"`
	Hedges             uint64 `json:"hedges"`
	HedgeWins          uint64 `json:"hedgeWins"`
	HedgeLosses        uint64 `json:"hedgeLosses"`
	BreakerTransitions uint64 `json:"breakerTransitions"`
	BreakerState       string `json:"breakerState"`
}

// New builds a client.
func New(cfg Config) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Client{
		cfg:     cfg,
		breaker: newBreaker(cfg.Breaker, cfg.Now),
		rng:     rand.New(rand.NewSource(cfg.JitterSeed)),
	}, nil
}

// BreakerState names the breaker's current state ("closed", "open",
// "half-open") for status surfaces.
func (c *Client) BreakerState() string { return c.breaker.currentState().String() }

// Stats snapshots the resilience counters.
func (c *Client) Stats() Stats {
	return Stats{
		Retries:            c.retries.Load(),
		Hedges:             c.hedges.Load(),
		HedgeWins:          c.hedgeWins.Load(),
		HedgeLosses:        c.hedgeLosses.Load(),
		BreakerTransitions: c.breaker.transitions.Load(),
		BreakerState:       c.BreakerState(),
	}
}

// RegisterMetrics exports the resilience counters into reg under the
// given metric-name prefix, optionally tagged with a literal label
// suffix (pass labels like `{peer="http://host:8080"}`, or "" for
// none). The cluster router registers one client per peer this way, so
// /metrics breaks retries, hedge outcomes and breaker churn down by
// peer.
func (c *Client) RegisterMetrics(reg *telemetry.Registry, prefix, labels string) {
	if reg == nil {
		return
	}
	reg.CounterFunc(prefix+"_retries_total"+labels, "Retry attempts beyond each call's first try.", c.retries.Load)
	reg.CounterFunc(prefix+"_hedges_total"+labels, "Hedged secondary requests launched.", c.hedges.Load)
	reg.CounterFunc(prefix+"_hedge_wins_total"+labels, "Hedged requests whose secondary response was used.", c.hedgeWins.Load)
	reg.CounterFunc(prefix+"_hedge_losses_total"+labels, "Hedged requests where the primary still won.", c.hedgeLosses.Load)
	reg.CounterFunc(prefix+"_breaker_transitions_total"+labels, "Circuit-breaker state transitions.", c.breaker.transitions.Load)
}

// Optimize sends q to POST /optimize with the full resilience stack
// and returns the decoded response. The codec is JSON unless
// Config.Wire selects the binary wire protocol.
func (c *Client) Optimize(ctx context.Context, q *catalog.Query) (*serve.OptimizeResponse, error) {
	if c.cfg.Wire {
		resp, err := c.optimize(ctx, wire.EncodeQuery(q), "/optimize", wire.ContentType, wire.ContentType)
		var apiErr *APIError
		if err == nil || !errors.As(err, &apiErr) {
			return resp, err
		}
		// The daemon judged the binary request itself defective — most
		// likely a pre-wire build that cannot parse the frame. Fall back
		// to JSON for this call; retryable failures above never reach
		// here (the retry loop already ran).
	}
	var buf bytes.Buffer
	if err := qfile.Write(&buf, q); err != nil {
		return nil, fmt.Errorf("client: encode query: %w", err)
	}
	return c.optimize(ctx, buf.Bytes(), "/optimize", "application/json", "")
}

// OptimizeDSL sends a textual-DSL query body to POST /optimize.
func (c *Client) OptimizeDSL(ctx context.Context, src string) (*serve.OptimizeResponse, error) {
	return c.optimize(ctx, []byte(src), "/optimize?format=dsl", "text/x-qdsl", "")
}

func (c *Client) optimize(ctx context.Context, body []byte, path, contentType, accept string) (*serve.OptimizeResponse, error) {
	data, err := c.call(ctx, http.MethodPost, path, contentType, accept, body)
	if err != nil {
		return nil, err
	}
	return decodeOptimizeResponse(data)
}

// decodeOptimizeResponse sniffs the codec by the frame magic rather
// than trusting headers: a daemon that ignored the Accept header (or a
// proxy that rewrote Content-Type) still decodes correctly.
func decodeOptimizeResponse(data []byte) (*serve.OptimizeResponse, error) {
	if wire.IsFrame(data) {
		wr, err := wire.DecodeResponse(data)
		if err != nil {
			return nil, fmt.Errorf("client: decode response: %w", err)
		}
		return &serve.OptimizeResponse{
			Fingerprint:   wr.Fingerprint,
			CacheHit:      wr.CacheHit,
			Coalesced:     wr.Coalesced,
			Degraded:      wr.Degraded,
			DegradeReason: wr.DegradeReason,
			BudgetUsed:    wr.BudgetUsed,
			TotalCost:     wr.TotalCost,
			Order:         wr.Order,
			Names:         wr.Names,
			Tier:          wr.Tier,
			Explain:       wr.Explain,
		}, nil
	}
	var resp serve.OptimizeResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("client: decode response: %w", err)
	}
	return &resp, nil
}

// Status fetches GET /statusz (single attempt: operational probes
// should report the world as it is, not retry it into shape).
func (c *Client) Status(ctx context.Context) (*serve.StatusResponse, error) {
	out, err := c.once(ctx, http.MethodGet, "/statusz")
	if err != nil {
		return nil, err
	}
	var st serve.StatusResponse
	if err := json.Unmarshal(out, &st); err != nil {
		return nil, fmt.Errorf("client: decode statusz: %w", err)
	}
	return &st, nil
}

// Ready probes GET /readyz; nil means the daemon is accepting work
// (recovery finished, limiter not shedding). Single attempt.
func (c *Client) Ready(ctx context.Context) error {
	_, err := c.once(ctx, http.MethodGet, "/readyz")
	return err
}

// once performs a single unretried attempt (health/status probes).
func (c *Client) once(ctx context.Context, method, path string) ([]byte, error) {
	out := c.attempt(ctx, method, path, "", "", nil)
	if out.err != nil {
		return nil, out.err
	}
	return out.body, nil
}

// outcome classifies one attempt.
type outcome struct {
	body       []byte
	err        error // nil iff 2xx
	retryable  bool
	retryAfter time.Duration // server's 503 hint, 0 if none
	fromHedge  bool          // produced by the hedged secondary
}

// call runs the full retry/hedge/breaker loop for one logical request.
func (c *Client) call(ctx context.Context, method, path, contentType, accept string, body []byte) ([]byte, error) {
	var last outcome
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.retries.Add(1)
		}
		if !c.breaker.allow() {
			return nil, ErrCircuitOpen
		}
		out := c.hedgedAttempt(ctx, method, path, contentType, accept, body)
		if out.err == nil {
			c.breaker.success()
			return out.body, nil
		}
		if c.cfg.ShedFailFast {
			var shed *ShedError
			if errors.As(out.err, &shed) {
				// The daemon answered — alive, just refusing work. Hand
				// the verdict to the caller's own failover immediately;
				// no in-line Retry-After sleep, no breaker strike.
				c.breaker.success()
				return nil, out.err
			}
		}
		if !out.retryable {
			// A 4xx proves the daemon is alive and judging requests:
			// that is breaker-success even though the call failed.
			var apiErr *APIError
			if errors.As(out.err, &apiErr) {
				c.breaker.success()
			} else {
				// Any other non-retryable failure is the caller's
				// doing — its context died mid-attempt or the request
				// could not be built. No verdict on the daemon, but
				// the claimed slot (possibly the half-open probe
				// slot) must be released: dropping it would park the
				// breaker half-open and fail every future call fast.
				c.breaker.cancelSlot()
			}
			return nil, out.err
		}
		c.breaker.failure()
		last = out
		if attempt == c.cfg.MaxAttempts-1 {
			break
		}
		delay := c.backoff(attempt)
		if ra := out.retryAfter; ra > delay {
			delay = ra
		}
		if err := c.cfg.Sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, c.cfg.MaxAttempts, last.err)
}

// backoff draws the k-th attempt's jittered delay from the seeded
// stream: uniform in [b/2, b), b = min(BaseBackoff·2^k, MaxBackoff).
func (c *Client) backoff(attempt int) time.Duration {
	b := c.cfg.BaseBackoff << uint(attempt)
	if b <= 0 || b > c.cfg.MaxBackoff {
		b = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	return b/2 + time.Duration(f*float64(b/2))
}

// hedgedAttempt runs one logical attempt: the primary request, plus —
// if HedgeDelay is set and the primary is still silent when it fires —
// a hedged secondary. The first useful outcome (success or permanent
// failure) wins; if both fail retryably the primary's outcome is
// reported.
//
// Loser handling is explicit and leak-free:
//
//   - the moment a winner is chosen, the shared attempt context is
//     cancelled, so the losing in-flight request (and its transport
//     connection) is torn down immediately rather than running to its
//     per-attempt timeout;
//   - the hedge timer is a stoppable time.Timer (unless the After test
//     hook overrides it), stopped on every exit path — a fast-failing
//     primary does not strand one armed HedgeDelay timer per retry;
//   - result delivery uses a buffered channel sized for both attempts,
//     so a late loser writes its outcome and exits without a reader.
//
// TestHedgeLoserCancelledNoLeak pins this down against a scripted Hang
// transport.
func (c *Client) hedgedAttempt(ctx context.Context, method, path, contentType, accept string, body []byte) outcome {
	if c.cfg.HedgeDelay <= 0 {
		return c.attempt(ctx, method, path, contentType, accept, body)
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel() // belt and braces: every exit cancels any in-flight loser
	results := make(chan outcome, 2)
	launch := func(hedge bool) {
		go func() {
			// Goroutine panic barrier (panicguard): a bug in the
			// attempt path must resolve this hedge slot, not kill the
			// process.
			defer func() {
				if r := recover(); r != nil {
					results <- outcome{err: fmt.Errorf("client: attempt panicked: %v", r), retryable: true, fromHedge: hedge}
				}
			}()
			out := c.attempt(actx, method, path, contentType, accept, body)
			out.fromHedge = hedge
			results <- out
		}()
	}

	timerC, stopTimer := c.hedgeTimer()
	defer stopTimer()

	launch(false)
	hedged := false
	var first *outcome
	for {
		select {
		case out := <-results:
			if out.err == nil || !out.retryable {
				// Useful result: success or permanent failure. Cancel
				// the loser *now* — the deferred cancel would fire too,
				// but making the teardown explicit keeps the loser from
				// holding a connection for even a moment longer than
				// the winning response.
				cancel()
				if hedged {
					if out.fromHedge {
						c.hedgeWins.Add(1)
					} else {
						c.hedgeLosses.Add(1)
					}
				}
				return out
			}
			if !hedged {
				// Primary failed before the hedge timer fired: no point
				// hedging a connection that just proved broken — the
				// retry loop's backoff handles it.
				return out
			}
			if first == nil {
				first = &out
				continue // the other request is still running
			}
			// Both failed retryably; report the primary's failure (the
			// launch order, not arrival order: backoff policy keys off
			// the primary path).
			if first.fromHedge {
				first = &out
			}
			return *first
		case <-timerC:
			hedged = true
			timerC = nil
			c.hedges.Add(1)
			launch(true)
		case <-ctx.Done():
			return outcome{err: ctx.Err(), retryable: false}
		}
	}
}

// hedgeTimer arms the hedge-delay timer: the After test hook if set,
// otherwise a real time.Timer whose stop function releases it as soon
// as the attempt resolves.
func (c *Client) hedgeTimer() (<-chan time.Time, func()) {
	if c.cfg.After != nil {
		return c.cfg.After(c.cfg.HedgeDelay), func() {}
	}
	t := time.NewTimer(c.cfg.HedgeDelay)
	return t.C, func() { t.Stop() }
}

// attempt performs one physical HTTP request under the per-attempt
// timeout and classifies the result.
func (c *Client) attempt(ctx context.Context, method, path, contentType, accept string, body []byte) outcome {
	actx, cancel := context.WithTimeout(ctx, c.cfg.PerAttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return outcome{err: fmt.Errorf("client: build request: %w", err), retryable: false}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.cfg.Transport.RoundTrip(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's context died, not just this attempt's.
			return outcome{err: ctx.Err(), retryable: false}
		}
		// Transport failure or per-attempt timeout: retryable.
		return outcome{err: fmt.Errorf("client: %w", err), retryable: true}
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		if rerr != nil {
			return outcome{err: fmt.Errorf("client: read response: %w", rerr), retryable: true}
		}
		return outcome{body: data}
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
		ra := c.parseRetryAfter(resp.Header.Get("Retry-After"))
		return outcome{
			err:        &ShedError{StatusCode: resp.StatusCode, RetryAfter: ra, Body: string(data)},
			retryable:  true,
			retryAfter: ra,
		}
	case resp.StatusCode >= 500:
		return outcome{err: fmt.Errorf("client: server returned %d: %s", resp.StatusCode, strings.TrimSpace(string(data))), retryable: true}
	default:
		return outcome{err: &APIError{StatusCode: resp.StatusCode, Body: string(data)}, retryable: false}
	}
}

// parseRetryAfter decodes an integer-seconds Retry-After header,
// capped by RetryAfterCap. Unparseable or absent values yield 0 (the
// backoff schedule alone decides the delay).
func (c *Client) parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > c.cfg.RetryAfterCap {
		d = c.cfg.RetryAfterCap
	}
	return d
}
