package search

import (
	"math"

	"joinopt/internal/plan"
	"joinopt/internal/telemetry"
)

// SAConfig tunes simulated annealing per the variant of Johnson, Aragon,
// McGeoch & Schevon [JAMS87] adopted by [SG88]: chains of sizeFactor·N
// moves at each temperature, geometric cooling, and a freezing condition
// based on vanishing acceptance with no improvement of the incumbent.
type SAConfig struct {
	// SizeFactor scales the chain length: chainLength = SizeFactor·n.
	SizeFactor int
	// InitAccept is the target initial acceptance probability used to
	// derive the starting temperature from sampled uphill deltas.
	InitAccept float64
	// CoolRate is the geometric temperature reduction factor.
	CoolRate float64
	// FrozenAccept is the acceptance ratio below which a chain counts
	// toward freezing.
	FrozenAccept float64
	// FrozenChains is the number of consecutive low-acceptance chains
	// without a new best solution required to declare the system frozen.
	FrozenChains int
	// TempSamples is the number of random moves sampled to estimate the
	// initial temperature.
	TempSamples int
}

// DefaultSAConfig returns the [JAMS87]-style defaults.
func DefaultSAConfig() SAConfig {
	return SAConfig{
		SizeFactor:   16,
		InitAccept:   0.4,
		CoolRate:     0.95,
		FrozenAccept: 0.02,
		FrozenChains: 4,
		TempSamples:  20,
	}
}

// initialTemp estimates the starting temperature so that an average
// uphill move from start is accepted with probability cfg.InitAccept.
func initialTemp(s *Space, cfg SAConfig, start plan.Perm, startCost float64) float64 {
	sumUp := 0.0
	nUp := 0
	budget := s.Evaluator().Budget()
	for i := 0; i < cfg.TempSamples && !budget.Exhausted(); i++ {
		_, c, ok := s.Neighbor(start)
		if !ok {
			break
		}
		if d := c - startCost; d > 0 {
			sumUp += d
			nUp++
		}
	}
	if nUp == 0 {
		// No uphill neighbors sampled: any positive temperature works;
		// tie it to the state's own cost scale.
		return math.Max(startCost*0.05, 1)
	}
	avg := sumUp / float64(nUp)
	return avg / math.Log(1/cfg.InitAccept)
}

// Anneal runs simulated annealing (Figure 2 of the paper) from the given
// start state until the system freezes or the budget is exhausted, and
// returns the best state visited. startCost must be the freshly
// evaluated cost of start.
func Anneal(s *Space, cfg SAConfig, start plan.Perm, startCost float64) (plan.Perm, float64) {
	return AnnealObserved(s, cfg, start, startCost, nil)
}

// AnnealObserved is Anneal with an incumbent callback: onBest is invoked
// whenever the best-seen state improves.
func AnnealObserved(s *Space, cfg SAConfig, start plan.Perm, startCost float64, onBest func(plan.Perm, float64)) (plan.Perm, float64) {
	cur := start.Clone()
	curCost := startCost
	best := cur.Clone()
	bestCost := curCost

	budget := s.Evaluator().Budget()
	n := len(cur)
	if n < 2 {
		return best, bestCost
	}
	temp := initialTemp(s, cfg, cur, curCost)
	chainLength := cfg.SizeFactor * n
	frozen := 0
	rng := s.RNG()

	tr := s.Trace
	for frozen < cfg.FrozenChains && !budget.Exhausted() {
		accepted := 0
		improvedBest := false
		for l := 0; l < chainLength && !budget.Exhausted(); l++ {
			next, nextCost, ok := s.Neighbor(cur)
			if !ok {
				continue
			}
			if tr != nil {
				tr.EmitCost(telemetry.EvMoveProposed, budget.Used(), nextCost, "")
			}
			delta := nextCost - curCost
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cur, curCost = next, nextCost
				accepted++
				if tr != nil {
					tr.EmitCost(telemetry.EvMoveAccepted, budget.Used(), curCost, "")
				}
				if curCost < bestCost {
					best, bestCost = cur.Clone(), curCost
					improvedBest = true
					if onBest != nil {
						onBest(best, bestCost)
					}
				}
			} else if tr != nil {
				tr.Emit(telemetry.EvMoveRejected, budget.Used(), "")
			}
		}
		ratio := float64(accepted) / float64(chainLength)
		if ratio < cfg.FrozenAccept && !improvedBest {
			frozen++
		} else {
			frozen = 0
		}
		temp *= cfg.CoolRate
	}
	return best, bestCost
}
