package search

import (
	"math"
	"sort"

	"joinopt/internal/catalog"
	"joinopt/internal/plan"
	"joinopt/internal/telemetry"
)

// Genetic algorithm over valid join orders — the third classical
// metaheuristic family applied to join ordering (Bennett, Ferris &
// Ioannidis, SIGMOD 1991; compared against II/SA by Steinbrunn et al.).
// Included as an extension: the paper's §7 frames its benchmark as the
// arena for exactly such candidate strategies.
//
// Representation: a chromosome is a valid permutation. Crossover is
// precedence-preserving: a prefix of one parent is kept and the
// remaining relations are appended in the other parent's relative
// order, repaired to validity via the frontier rule. Mutation applies
// one random swap move. Selection is truncation: the best half
// survives and breeds.

// GAConfig tunes the genetic algorithm.
type GAConfig struct {
	// Population is the number of chromosomes (default 24).
	Population int
	// MutationProb is the per-offspring mutation probability.
	MutationProb float64
}

// DefaultGAConfig returns literature-typical parameters.
func DefaultGAConfig() GAConfig {
	return GAConfig{Population: 24, MutationProb: 0.3}
}

type chromosome struct {
	perm plan.Perm
	cost float64
}

// Genetic runs the GA until the budget is exhausted and returns the
// best chromosome ever seen.
func Genetic(s *Space, cfg GAConfig, onBest func(plan.Perm, float64)) (plan.Perm, float64, bool) {
	if cfg.Population < 4 {
		cfg.Population = 4
	}
	eval := s.Evaluator()
	budget := eval.Budget()
	if s.Size() == 0 {
		return nil, 0, false
	}
	if s.Size() == 1 {
		p := plan.Perm{s.Relations()[0]}
		return p, 0, true
	}

	pop := make([]chromosome, 0, cfg.Population)
	var best plan.Perm
	bestCost := math.Inf(1)
	offer := func(p plan.Perm, c float64) {
		if c < bestCost {
			best, bestCost = p, c
			if onBest != nil {
				onBest(p, c)
			}
		}
	}
	for i := 0; i < cfg.Population && !budget.Exhausted(); i++ {
		p := s.RandomState()
		c := eval.Cost(p)
		pop = append(pop, chromosome{p, c})
		offer(p, c)
	}
	if len(pop) == 0 {
		return nil, 0, false
	}

	for !budget.Exhausted() {
		sort.Slice(pop, func(i, j int) bool { return pop[i].cost < pop[j].cost })
		// Truncation selection: best half breeds to refill the rest.
		half := len(pop) / 2
		if half < 2 {
			half = len(pop)
		}
		for i := half; i < len(pop) && !budget.Exhausted(); i++ {
			a := pop[s.rng.Intn(half)]
			b := pop[s.rng.Intn(half)]
			child := s.crossover(a.perm, b.perm)
			if s.rng.Float64() < cfg.MutationProb {
				if m, _, ok := s.Neighbor(child); ok {
					child = m
					// Neighbor already priced it, but we don't have the
					// value here; reprice below uniformly.
				}
			}
			c := eval.Cost(child)
			if tr := s.Trace; tr != nil {
				// Offspring are the GA's move proposals; there is no
				// per-proposal accept/reject — truncation selection at
				// the next generation plays that role.
				tr.EmitCost(telemetry.EvMoveProposed, budget.Used(), c, "")
			}
			pop[i] = chromosome{child, c}
			offer(child, c)
		}
	}
	return best, bestCost, !math.IsInf(bestCost, 1)
}

// crossover keeps a random prefix of parent a, then appends the missing
// relations in parent b's relative order, repaired to validity: at each
// step the first frontier relation (one joining the prefix) in b-order
// is taken; if none joins, the first remaining is taken (forced cross
// product, priced not filtered).
func (s *Space) crossover(a, b plan.Perm) plan.Perm {
	n := len(a)
	cut := 1 + s.rng.Intn(n-1)
	out := make(plan.Perm, 0, n)
	out = append(out, a[:cut]...)

	s.inSet.Reset()
	for _, r := range out {
		s.inSet.Set(r)
	}
	remaining := make([]catalog.RelID, 0, n-cut)
	for _, r := range b {
		if !s.inSet.Test(r) {
			remaining = append(remaining, r)
		}
	}
	g := s.eval.Stats().Graph()
	budget := s.eval.Budget()
	for len(remaining) > 0 {
		pick := -1
		budget.Charge(int64(len(remaining)))
		for i, r := range remaining {
			if g.JoinsInto(r, s.inSet) {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0
		}
		r := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		out = append(out, r)
		s.inSet.Set(r)
	}
	return out
}
