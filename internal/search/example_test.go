package search_test

import (
	"fmt"
	"math/rand"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/search"
)

// exampleSpace wires a deterministic 5-relation chain into a search
// space with a modest budget.
func exampleSpace(budget *cost.Budget) *search.Space {
	q := &catalog.Query{
		Relations: []catalog.Relation{
			{Cardinality: 1000}, {Cardinality: 20}, {Cardinality: 500},
			{Cardinality: 80}, {Cardinality: 300},
		},
		Predicates: []catalog.Predicate{
			{Left: 0, Right: 1, LeftDistinct: 20, RightDistinct: 20},
			{Left: 1, Right: 2, LeftDistinct: 20, RightDistinct: 250},
			{Left: 2, Right: 3, LeftDistinct: 80, RightDistinct: 80},
			{Left: 3, Right: 4, LeftDistinct: 80, RightDistinct: 150},
		},
	}
	q.Normalize()
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	st.UseStaticSelectivity()
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), budget)
	return search.NewSpace(eval, g.Components()[0], rand.New(rand.NewSource(7)))
}

// ExampleImproveRun performs one run of iterative improvement (the
// paper's Figure 1) from a random valid state.
func ExampleImproveRun() {
	sp := exampleSpace(cost.Unlimited())
	start := sp.RandomState()
	startCost := sp.Evaluator().Cost(start)
	end, endCost := search.ImproveRun(sp, search.DefaultIIConfig(), start, startCost)
	fmt.Printf("descended from %.4g to %.4g (valid: %v)\n",
		startCost, endCost, sp.Evaluator().Valid(end))
	// Output: descended from 1.778e+04 to 7620 (valid: true)
}

// ExampleAnneal runs simulated annealing (Figure 2) under a metered
// budget.
func ExampleAnneal() {
	budget := cost.NewBudget(20000)
	sp := exampleSpace(budget)
	start := sp.RandomState()
	best, bestCost := search.Anneal(sp, search.DefaultSAConfig(), start, sp.Evaluator().Cost(start))
	fmt.Printf("best %.4g within budget %v (valid: %v)\n",
		bestCost, budget.Used() <= budget.Limit()+64, sp.Evaluator().Valid(best))
	// Output: best 7620 within budget true (valid: true)
}
