package search

import (
	"joinopt/internal/plan"
	"joinopt/internal/telemetry"
)

// IIConfig tunes a single run of iterative improvement.
type IIConfig struct {
	// RejectFactor sets the local-minimum detection threshold as a
	// fraction of the move neighborhood size: a run stops after
	// max(MinRejects, RejectFactor·n·(n−1)/2) consecutive rejected
	// (non-improving or invalid) proposals, n being the component size.
	// Declaring a local minimum requires sampling a meaningful share of
	// the ~n²/2 swap neighbors, which is what makes a single II run
	// expensive — the property behind the paper's small-time-limit
	// dynamics (AGI ahead of IAI until t ≈ 1.8N²).
	RejectFactor float64
	// MinRejects floors the threshold for small components.
	MinRejects int
}

// DefaultIIConfig returns the calibrated defaults.
func DefaultIIConfig() IIConfig {
	return IIConfig{RejectFactor: 0.5, MinRejects: 16}
}

// rejectThreshold computes the consecutive-reject stop threshold.
func (c IIConfig) rejectThreshold(n int) int {
	t := int(c.RejectFactor * float64(n) * float64(n-1) / 2)
	if t < c.MinRejects {
		t = c.MinRejects
	}
	return t
}

// ImproveRun performs one run of iterative improvement (Figure 1 of the
// paper) from the given start state: repeatedly propose a random adjacent
// state and accept it iff it is cheaper, until a local minimum is
// detected (a long streak of rejections) or the budget is exhausted.
// It returns the final state and its cost. startCost must be the cost of
// start (pass a freshly evaluated value; ImproveRun does not re-price it).
func ImproveRun(s *Space, cfg IIConfig, start plan.Perm, startCost float64) (plan.Perm, float64) {
	return ImproveRunObserved(s, cfg, start, startCost, nil)
}

// ImproveRunObserved is ImproveRun with an acceptance callback: onAccept
// is invoked with every accepted (strictly improving) state, letting
// callers track a global incumbent mid-run (the experiment harness reads
// best-so-far curves off these events).
func ImproveRunObserved(s *Space, cfg IIConfig, start plan.Perm, startCost float64, onAccept func(plan.Perm, float64)) (plan.Perm, float64) {
	cur := start.Clone()
	curCost := startCost
	threshold := cfg.rejectThreshold(len(cur))
	rejects := 0
	budget := s.Evaluator().Budget()
	tr := s.Trace
	for rejects < threshold && !budget.Exhausted() {
		next, nextCost, ok := s.Neighbor(cur)
		if !ok {
			break // no valid neighbor reachable; cur is effectively a local minimum
		}
		if tr != nil {
			tr.EmitCost(telemetry.EvMoveProposed, budget.Used(), nextCost, "")
		}
		if nextCost < curCost {
			cur, curCost = next, nextCost
			rejects = 0
			if tr != nil {
				tr.EmitCost(telemetry.EvMoveAccepted, budget.Used(), curCost, "")
			}
			if onAccept != nil {
				onAccept(cur, curCost)
			}
		} else {
			rejects++
			if tr != nil {
				tr.Emit(telemetry.EvMoveRejected, budget.Used(), "")
			}
		}
	}
	return cur, curCost
}

// StartStater supplies start states for repeated II runs. Implemented by
// the random generator and by the heuristics' state streams; returns
// ok=false when the source is exhausted.
type StartStater interface {
	NextStart() (plan.Perm, bool)
}

// RandomStarts is an endless StartStater drawing from the space's random
// state generator.
type RandomStarts struct{ Space *Space }

// NextStart implements StartStater.
func (r RandomStarts) NextStart() (plan.Perm, bool) {
	return r.Space.RandomState(), true
}

// Improve runs iterative improvement repeatedly, drawing start states
// from starts until the budget is exhausted or the source runs dry, and
// returns the best local minimum found. If the source yields no state
// before the budget runs out, ok is false.
func Improve(s *Space, cfg IIConfig, starts StartStater) (best plan.Perm, bestCost float64, ok bool) {
	eval := s.Evaluator()
	budget := eval.Budget()
	for !budget.Exhausted() {
		start, more := starts.NextStart()
		if !more {
			break
		}
		startCost := eval.Cost(start)
		endState, endCost := ImproveRun(s, cfg, start, startCost)
		if !ok || endCost < bestCost {
			best, bestCost, ok = endState, endCost, true
		}
	}
	return best, bestCost, ok
}
