package search

import (
	"math"

	"joinopt/internal/catalog"
	"joinopt/internal/plan"
	"joinopt/internal/telemetry"
)

// Tabu search over valid join orders (after Morzy, Matysiak & Salza,
// 1993, who applied tabu search to join ordering) — an extension
// strategy: unlike II it always moves to the best sampled neighbor,
// even uphill, and forbids undoing recent swaps via a tabu list, which
// lets it walk out of local minima deterministically instead of
// probabilistically (SA).

// TabuConfig tunes the search.
type TabuConfig struct {
	// Tenure is the tabu-list length as a multiple of n (default 1).
	Tenure float64
	// Candidates is the number of neighbors sampled per step.
	Candidates int
	// StallRestart restarts from a fresh random state after this many
	// steps without improving the incumbent (as a multiple of n).
	StallRestart float64
}

// DefaultTabuConfig returns literature-typical parameters.
func DefaultTabuConfig() TabuConfig {
	return TabuConfig{Tenure: 1, Candidates: 8, StallRestart: 4}
}

// pairKey canonicalizes an unordered relation pair.
type pairKey struct{ a, b catalog.RelID }

func mkPair(a, b catalog.RelID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Tabu runs tabu search until the budget is exhausted, returning the
// best state seen. onBest, if non-nil, fires on every incumbent
// improvement.
func Tabu(s *Space, cfg TabuConfig, onBest func(plan.Perm, float64)) (plan.Perm, float64, bool) {
	n := s.Size()
	if n == 0 {
		return nil, 0, false
	}
	if n == 1 {
		return plan.Perm{s.Relations()[0]}, 0, true
	}
	if cfg.Candidates < 1 {
		cfg.Candidates = 1
	}
	tenure := int(cfg.Tenure * float64(n))
	if tenure < 2 {
		tenure = 2
	}
	stall := int(cfg.StallRestart * float64(n))
	if stall < 8 {
		stall = 8
	}
	eval := s.Evaluator()
	budget := eval.Budget()

	cur := s.RandomState()
	curCost := eval.Cost(cur)
	best := cur.Clone()
	bestCost := curCost
	if onBest != nil {
		onBest(best, bestCost)
	}

	tabuList := make([]pairKey, 0, tenure)
	tabuSet := make(map[pairKey]int)
	pushTabu := func(p pairKey) {
		tabuList = append(tabuList, p)
		tabuSet[p]++
		if len(tabuList) > tenure {
			old := tabuList[0]
			tabuList = tabuList[1:]
			if tabuSet[old]--; tabuSet[old] == 0 {
				delete(tabuSet, old)
			}
		}
	}

	tr := s.Trace
	sinceBest := 0
	for !budget.Exhausted() {
		// Sample candidate swaps; keep the best admissible one.
		bestIdx, bestJdx := -1, -1
		bestCand := plan.Perm(nil)
		bestCandCost := math.Inf(1)
		for k := 0; k < cfg.Candidates && !budget.Exhausted(); k++ {
			i := s.rng.Intn(n)
			j := s.rng.Intn(n - 1)
			if j >= i {
				j++
			}
			if i > j {
				i, j = j, i
			}
			cand := cur.Clone()
			cand[i], cand[j] = cand[j], cand[i]
			if !eval.ValidSuffixFrom(cand, i) {
				continue
			}
			c := eval.Cost(cand)
			if tr != nil {
				tr.EmitCost(telemetry.EvMoveProposed, budget.Used(), c, "")
			}
			pair := mkPair(cand[i], cand[j])
			tabu := tabuSet[pair] > 0
			// Aspiration: a tabu move that beats the incumbent is
			// always admissible.
			if tabu && c >= bestCost {
				continue
			}
			if c < bestCandCost {
				bestCand, bestCandCost = cand, c
				bestIdx, bestJdx = i, j
			}
		}
		if bestCand == nil {
			sinceBest++
		} else {
			pushTabu(mkPair(bestCand[bestIdx], bestCand[bestJdx]))
			cur, curCost = bestCand, bestCandCost
			if tr != nil {
				tr.EmitCost(telemetry.EvMoveAccepted, budget.Used(), curCost, "")
			}
			if curCost < bestCost {
				best, bestCost = cur.Clone(), curCost
				sinceBest = 0
				if onBest != nil {
					onBest(best, bestCost)
				}
			} else {
				sinceBest++
			}
		}
		if sinceBest >= stall && !budget.Exhausted() {
			cur = s.RandomState()
			curCost = eval.Cost(cur)
			if tr != nil {
				tr.Emit(telemetry.EvRestart, budget.Used(), "tabu-stall")
			}
			if curCost < bestCost {
				best, bestCost = cur.Clone(), curCost
				if onBest != nil {
					onBest(best, bestCost)
				}
			}
			tabuList = tabuList[:0]
			clear(tabuSet)
			sinceBest = 0
		}
	}
	return best, bestCost, true
}
