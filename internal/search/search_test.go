package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"joinopt/internal/catalog"
	"joinopt/internal/cost"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/testutil"
)

func newSpace(rng *rand.Rand, n int, budget *cost.Budget) *Space {
	q := testutil.RandomQuery(rng, n)
	g := joingraph.New(q)
	st := estimate.NewStats(q, g)
	if budget == nil {
		budget = cost.Unlimited()
	}
	eval := plan.NewEvaluator(st, cost.NewMemoryModel(), budget)
	comp := g.Components()[0]
	return NewSpace(eval, comp, rng)
}

func TestRandomStateIsValidProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%20)
		sp := newSpace(rng, n, nil)
		p := sp.RandomState()
		if len(p) != n {
			return false
		}
		return sp.Evaluator().Valid(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomStateCoversAllRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sp := newSpace(rng, 12, nil)
	p := sp.RandomState()
	seen := map[catalog.RelID]bool{}
	for _, r := range p {
		if seen[r] {
			t.Fatalf("duplicate relation %d", r)
		}
		seen[r] = true
	}
	if len(seen) != 12 {
		t.Fatalf("covered %d relations", len(seen))
	}
}

func TestNeighborProducesValidAdjacentState(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%20)
		sp := newSpace(rng, n, nil)
		p := sp.RandomState()
		q, c, ok := sp.Neighbor(p)
		if !ok {
			return true // no valid neighbor found within MaxProposals
		}
		if !sp.Evaluator().Valid(q) {
			return false
		}
		if c != sp.Evaluator().Cost(q) {
			return false
		}
		// Same multiset of relations.
		seen := map[catalog.RelID]bool{}
		for _, r := range q {
			seen[r] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sp := newSpace(rng, 10, nil)
	p := sp.RandomState()
	orig := p.Clone()
	sp.Neighbor(p)
	for i := range p {
		if p[i] != orig[i] {
			t.Fatal("Neighbor mutated its input")
		}
	}
}

func TestApplyInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sp := newSpace(rng, 8, nil)
	sp.SwapWeight = 0 // force inserts
	p := sp.RandomState()
	q, _, ok := sp.Neighbor(p)
	if ok {
		seen := map[catalog.RelID]bool{}
		for _, r := range q {
			seen[r] = true
		}
		if len(seen) != 8 {
			t.Fatalf("insert lost relations: %v", q)
		}
	}
}

func TestImproveRunNeverWorsens(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(sz%15)
		sp := newSpace(rng, n, nil)
		start := sp.RandomState()
		startCost := sp.Evaluator().Cost(start)
		end, endCost := ImproveRun(sp, DefaultIIConfig(), start, startCost)
		if endCost > startCost {
			return false
		}
		return sp.Evaluator().Valid(end)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestImproveRunObservedReportsDescendingCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sp := newSpace(rng, 15, nil)
	start := sp.RandomState()
	startCost := sp.Evaluator().Cost(start)
	last := math.Inf(1)
	ImproveRunObserved(sp, DefaultIIConfig(), start, startCost, func(p plan.Perm, c float64) {
		if c >= last {
			t.Fatalf("onAccept costs not strictly descending: %g then %g", last, c)
		}
		last = c
	})
}

func TestImproveRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := cost.NewBudget(500)
	sp := newSpace(rng, 20, b)
	_, _, ok := Improve(sp, DefaultIIConfig(), RandomStarts{Space: sp})
	if !ok {
		t.Fatal("Improve produced no state at all")
	}
	// The budget may overshoot by at most one evaluation's worth.
	slack := int64(20 * plan.EvalUnitsPerJoin)
	if b.Used() > b.Limit()+slack {
		t.Fatalf("budget overshot: used %d of %d", b.Used(), b.Limit())
	}
}

func TestImproveExhaustsFiniteStarts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sp := newSpace(rng, 8, nil)
	starts := &finiteStarts{sp: sp, left: 3}
	best, bestCost, ok := Improve(sp, DefaultIIConfig(), starts)
	if !ok || best == nil {
		t.Fatal("no result")
	}
	if bestCost != sp.Evaluator().Cost(best) {
		t.Fatal("returned cost does not match returned state")
	}
	if starts.left != 0 {
		t.Fatalf("start source not drained: %d left", starts.left)
	}
}

type finiteStarts struct {
	sp   *Space
	left int
}

func (f *finiteStarts) NextStart() (plan.Perm, bool) {
	if f.left == 0 {
		return nil, false
	}
	f.left--
	return f.sp.RandomState(), true
}

func TestIIConfigThreshold(t *testing.T) {
	cfg := IIConfig{RejectFactor: 0.5, MinRejects: 16}
	if got := cfg.rejectThreshold(3); got != 16 {
		t.Fatalf("small n floors at MinRejects: %d", got)
	}
	if got := cfg.rejectThreshold(50); got != 612 {
		t.Fatalf("threshold(50) = %d", got)
	}
}

func TestAnnealNeverWorseThanStartBest(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(sz%12)
		b := cost.NewBudget(20000)
		sp := newSpace(rng, n, b)
		start := sp.RandomState()
		startCost := sp.Evaluator().Cost(start)
		best, bestCost := Anneal(sp, DefaultSAConfig(), start, startCost)
		return bestCost <= startCost && sp.Evaluator().Valid(best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealTerminatesUnlimitedBudget(t *testing.T) {
	// The freezing condition alone must stop SA.
	rng := rand.New(rand.NewSource(13))
	sp := newSpace(rng, 10, nil)
	start := sp.RandomState()
	Anneal(sp, DefaultSAConfig(), start, sp.Evaluator().Cost(start))
}

func TestAnnealObservedReportsImprovements(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := cost.NewBudget(50000)
	sp := newSpace(rng, 15, b)
	start := sp.RandomState()
	startCost := sp.Evaluator().Cost(start)
	calls := 0
	last := startCost
	_, bestCost := AnnealObserved(sp, DefaultSAConfig(), start, startCost, func(p plan.Perm, c float64) {
		calls++
		if c >= last {
			t.Fatalf("onBest not descending: %g then %g", last, c)
		}
		last = c
	})
	if calls > 0 && math.Abs(last-bestCost) > 1e-9 {
		t.Fatalf("final callback %g does not match returned best %g", last, bestCost)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func() (plan.Perm, float64) {
		rng := rand.New(rand.NewSource(99))
		b := cost.NewBudget(5000)
		sp := newSpace(rng, 12, b)
		start := sp.RandomState()
		return ImproveRun(sp, DefaultIIConfig(), start, sp.Evaluator().Cost(start))
	}
	p1, c1 := run()
	p2, c2 := run()
	if c1 != c2 {
		t.Fatalf("costs differ: %g vs %g", c1, c2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("permutations differ between identical seeded runs")
		}
	}
}

func TestTinyComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sp := newSpace(rng, 3, nil)
	one := plan.Perm{sp.Relations()[0]}
	if _, _, ok := sp.Neighbor(one); ok {
		t.Fatal("single-relation state should have no neighbors")
	}
	end, c := ImproveRun(sp, DefaultIIConfig(), one, 0)
	if len(end) != 1 || c != 0 {
		t.Fatal("II on singleton broken")
	}
	best, bc := Anneal(sp, DefaultSAConfig(), one, 0)
	if len(best) != 1 || bc != 0 {
		t.Fatal("SA on singleton broken")
	}
}

func TestGeneticProducesValidPlans(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(sz%12)
		b := cost.NewBudget(20000)
		sp := newSpace(rng, n, b)
		best, c, ok := Genetic(sp, DefaultGAConfig(), nil)
		if !ok {
			return false
		}
		if len(best) != n {
			return false
		}
		seen := map[catalog.RelID]bool{}
		for _, r := range best {
			if seen[r] {
				return false
			}
			seen[r] = true
		}
		return c > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneticBeatsRandomBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	b := cost.NewBudget(40000)
	sp := newSpace(rng, 20, b)
	// Mean random cost as the baseline.
	probe := newSpace(rand.New(rand.NewSource(77)), 20, nil)
	sum := 0.0
	const k = 50
	for i := 0; i < k; i++ {
		sum += probe.Evaluator().Cost(probe.RandomState())
	}
	_, gaCost, ok := Genetic(sp, DefaultGAConfig(), nil)
	if !ok {
		t.Fatal("GA produced nothing")
	}
	if gaCost >= sum/k {
		t.Fatalf("GA (%g) no better than mean random (%g)", gaCost, sum/k)
	}
}

func TestCrossoverPreservesRelationSet(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	sp := newSpace(rng, 12, nil)
	a := sp.RandomState()
	b := sp.RandomState()
	child := sp.crossover(a, b)
	if len(child) != 12 {
		t.Fatalf("child has %d relations", len(child))
	}
	seen := map[catalog.RelID]bool{}
	for _, r := range child {
		if seen[r] {
			t.Fatalf("duplicate relation %d in child", r)
		}
		seen[r] = true
	}
}

func TestGeneticRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	b := cost.NewBudget(3000)
	sp := newSpace(rng, 15, b)
	if _, _, ok := Genetic(sp, DefaultGAConfig(), nil); !ok {
		t.Fatal("no result")
	}
	slack := int64(16*plan.EvalUnitsPerJoin) + 16*16
	if b.Used() > b.Limit()+slack {
		t.Fatalf("budget overshoot: %d of %d", b.Used(), b.Limit())
	}
}

func TestTabuProducesValidPlans(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(sz%12)
		b := cost.NewBudget(15000)
		sp := newSpace(rng, n, b)
		best, c, ok := Tabu(sp, DefaultTabuConfig(), nil)
		if !ok || len(best) != n {
			return false
		}
		if !sp.Evaluator().Valid(best) {
			return false
		}
		return c == sp.Evaluator().Cost(best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTabuEscapesAndImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	b := cost.NewBudget(60000)
	sp := newSpace(rng, 18, b)
	improvements := 0
	last := math.Inf(1)
	_, bestCost, ok := Tabu(sp, DefaultTabuConfig(), func(p plan.Perm, c float64) {
		if c >= last {
			t.Fatalf("onBest not descending: %g then %g", last, c)
		}
		last = c
		improvements++
	})
	if !ok || improvements < 2 {
		t.Fatalf("tabu made %d improvements", improvements)
	}
	if bestCost != last {
		t.Fatal("final best mismatch")
	}
}

func TestTabuSingleton(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	sp := newSpace(rng, 3, cost.NewBudget(100))
	sub := NewSpace(sp.Evaluator(), sp.Relations()[:1], rng)
	p, c, ok := Tabu(sub, DefaultTabuConfig(), nil)
	if !ok || len(p) != 1 || c != 0 {
		t.Fatal("singleton tabu broken")
	}
}
