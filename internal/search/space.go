// Package search implements the combinatorial optimization machinery of
// the paper's §3 over the space of valid outer linear join trees: the
// random state generator, the move set (from Swami & Gupta, SIGMOD 1988),
// single runs of iterative improvement, and simulated annealing with the
// Johnson et al. schedule.
package search

import (
	"math/rand"

	"joinopt/internal/catalog"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/telemetry"
)

// MoveKind enumerates the move set. Per [SG88], a move perturbs a
// permutation into an adjacent valid permutation.
type MoveKind int

const (
	// MoveSwap exchanges the relations at two random positions.
	MoveSwap MoveKind = iota
	// MoveInsert removes the relation at one random position and
	// reinserts it at another, shifting the relations in between.
	MoveInsert
)

// Space is the state space of valid permutations of one join-graph
// component, with a move set and a random state generator. It is bound
// to an evaluator (query + cost model + budget) and an RNG.
type Space struct {
	eval *plan.Evaluator
	// rels is the component's relation set.
	rels []catalog.RelID
	rng  *rand.Rand
	// SwapWeight is the probability of proposing a swap (vs insert).
	// The default move set is swap-only, following [SG88]; insert moves
	// (SwapWeight < 1) make descent markedly faster and are kept as an
	// ablation knob (see BenchmarkAblationMoveSet).
	SwapWeight float64
	// MaxProposals bounds the attempts to find a *valid* neighbor before
	// giving up (the state is then reported to have no reachable
	// neighbor this round).
	MaxProposals int
	// Trace, when non-nil, receives move-level search events stamped
	// with the budget meter (telemetry's work-unit clock). The nil
	// default is the zero-overhead fast path: every emission site
	// guards with a plain nil check, so disabled tracing costs one
	// predictable branch per event site.
	Trace *telemetry.Tracer

	scratch plan.Perm
	inSet   joingraph.Bitset
}

// NewSpace returns a search space over the given component relations.
func NewSpace(eval *plan.Evaluator, rels []catalog.RelID, rng *rand.Rand) *Space {
	return &Space{
		eval:         eval,
		rels:         rels,
		rng:          rng,
		SwapWeight:   1.0,
		MaxProposals: 32,
		scratch:      make(plan.Perm, len(rels)),
		inSet:        joingraph.NewBitset(eval.Stats().Query().NumRelations()),
	}
}

// Evaluator returns the bound evaluator.
func (s *Space) Evaluator() *plan.Evaluator { return s.eval }

// Relations returns the component's relation set.
func (s *Space) Relations() []catalog.RelID { return s.rels }

// RNG returns the space's random source.
func (s *Space) RNG() *rand.Rand { return s.rng }

// Size returns the number of relations in the component.
func (s *Space) Size() int { return len(s.rels) }

// RandomState generates a uniformly seeded valid permutation: a random
// first relation, then repeatedly a uniform choice among the relations
// joining the current prefix (the frontier). For a connected component
// the frontier is never empty before all relations are placed.
func (s *Space) RandomState() plan.Perm {
	n := len(s.rels)
	out := make(plan.Perm, 0, n)
	if n == 0 {
		return out
	}
	s.inSet.Reset()
	graph := s.eval.Stats().Graph()

	remaining := append([]catalog.RelID(nil), s.rels...)
	// Pick the first relation uniformly.
	fi := s.rng.Intn(len(remaining))
	first := remaining[fi]
	remaining[fi] = remaining[len(remaining)-1]
	remaining = remaining[:len(remaining)-1]
	out = append(out, first)
	s.inSet.Set(first)

	budget := s.eval.Budget()
	for len(remaining) > 0 {
		// Collect frontier indices (relations joining the prefix).
		// Frontier scans are adjacency work and debit the budget like
		// any other per-relation check.
		budget.Charge(int64(len(remaining)))
		frontier := frontierIndices(graph, remaining, s.inSet, nil)
		var pick int
		if len(frontier) == 0 {
			// Disconnected input (cross product inside the "component"):
			// fall back to a uniform pick so generation still terminates.
			pick = s.rng.Intn(len(remaining))
		} else {
			pick = frontier[s.rng.Intn(len(frontier))]
		}
		r := remaining[pick]
		remaining[pick] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		out = append(out, r)
		s.inSet.Set(r)
	}
	return out
}

// frontierIndices appends to dst the indices into remaining of relations
// that join at least one relation in inSet. Each check is a word-AND
// over the graph's precomputed neighbor masks.
func frontierIndices(g *joingraph.Graph, remaining []catalog.RelID, inSet joingraph.Bitset, dst []int) []int {
	for i, r := range remaining {
		if g.JoinsInto(r, inSet) {
			dst = append(dst, i)
		}
	}
	return dst
}

// Neighbor proposes a valid adjacent state of p and returns it with its
// cost. It proposes up to MaxProposals random moves, keeping the first
// valid one; ok is false if none was valid (or the component is too
// small to move). The returned permutation is freshly allocated.
func (s *Space) Neighbor(p plan.Perm) (q plan.Perm, cost float64, ok bool) {
	n := len(p)
	if n < 2 {
		return nil, 0, false
	}
	for attempt := 0; attempt < s.MaxProposals; attempt++ {
		copy(s.scratch[:n], p)
		cand := s.scratch[:n]
		var low int
		if s.rng.Float64() < s.SwapWeight {
			low = s.applySwap(cand)
		} else {
			low = s.applyInsert(cand)
		}
		if !s.eval.ValidSuffixFrom(cand, low) {
			continue
		}
		q = cand.Clone()
		return q, s.eval.Cost(q), true
	}
	return nil, 0, false
}

// applySwap swaps two distinct random positions in place and returns the
// lower of the two (validity must be rechecked from there).
func (s *Space) applySwap(p plan.Perm) int {
	n := len(p)
	i := s.rng.Intn(n)
	j := s.rng.Intn(n - 1)
	if j >= i {
		j++
	}
	if i > j {
		i, j = j, i
	}
	p[i], p[j] = p[j], p[i]
	return i
}

// applyInsert removes a random position and reinserts it elsewhere,
// returning the lowest affected position.
func (s *Space) applyInsert(p plan.Perm) int {
	n := len(p)
	from := s.rng.Intn(n)
	to := s.rng.Intn(n - 1)
	if to >= from {
		to++
	}
	r := p[from]
	if from < to {
		copy(p[from:to], p[from+1:to+1])
		p[to] = r
		return from
	}
	copy(p[to+1:from+1], p[to:from])
	p[to] = r
	return to
}
