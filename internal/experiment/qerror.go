package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"joinopt/internal/catalog"
	"joinopt/internal/engine"
	"joinopt/internal/estimate"
	"joinopt/internal/joingraph"
	"joinopt/internal/plan"
	"joinopt/internal/workload"
)

// QErrorConfig describes an estimator validation run: small queries are
// materialized and executed, and every intermediate result size is
// compared against the estimator's prediction. The q-error
// max(est/act, act/est) is the standard metric (Moerkotte et al.):
// 1 = perfect, and it multiplies through plans the way errors actually
// propagate.
type QErrorConfig struct {
	// Relations per query (kept small: queries are actually executed).
	Relations int
	// Queries is the number of queries measured.
	Queries int
	Seed    int64
}

// DefaultQErrorConfig returns an execution-affordable setup.
func DefaultQErrorConfig(sc Scale, seed int64) QErrorConfig {
	q := sc.QueriesPerN * 2
	if q < 4 {
		q = 4
	}
	return QErrorConfig{Relations: 5, Queries: q, Seed: seed}
}

// QErrorResult aggregates per-estimator q-error quantiles.
type QErrorResult struct {
	// Joins is the number of (join step, query) observations.
	Joins int
	// Static and Dynamic hold [median, p90, max] q-errors for the two
	// estimator modes.
	Static, Dynamic [3]float64
}

// RunQError executes the validation.
func RunQError(cfg QErrorConfig) (*QErrorResult, error) {
	if cfg.Relations < 2 || cfg.Queries < 1 {
		return nil, fmt.Errorf("experiment: degenerate q-error config")
	}
	// Execution-friendly statistics: modest cardinalities, generous
	// distinct counts so materialized results stay small.
	spec := workload.Default()
	spec.Cards = []workload.Bucket{{Lo: 20, Hi: 120, Weight: 1}}
	spec.Distinct = []workload.Bucket{{Lo: 0.3, Hi: 1, Weight: 1}}
	spec.MaxSelections = 0

	var staticErrs, dynErrs []float64
	joins := 0
	for qi := 0; qi < cfg.Queries; qi++ {
		rng := rand.New(rand.NewSource(deriveSeed(uint64(cfg.Seed), uint64(qi), 7)))
		q := spec.Generate(cfg.Relations-1, rng)
		db, err := engine.Generate(q, rng)
		if err != nil {
			return nil, err
		}
		var order plan.Perm
		for i := 0; i < q.NumRelations(); i++ {
			order = append(order, catalog.RelID(i))
		}
		ex, err := db.Execute(order)
		if err != nil {
			return nil, err
		}
		for _, mode := range []bool{true, false} {
			g := joingraph.New(q)
			st := estimate.NewStats(q, g)
			if mode {
				st.UseStaticSelectivity()
			}
			pre := estimate.NewPrefix(st)
			pre.Extend(order[0])
			for step, r := range order[1:] {
				_, _, est := pre.Extend(r)
				actual := float64(ex.JoinOutputSizes[step])
				qe := qerror(est, actual)
				if mode {
					staticErrs = append(staticErrs, qe)
				} else {
					dynErrs = append(dynErrs, qe)
				}
			}
		}
		joins += len(ex.JoinOutputSizes)
	}
	out := &QErrorResult{Joins: joins}
	out.Static = quantiles3(staticErrs)
	out.Dynamic = quantiles3(dynErrs)
	return out, nil
}

// qerror is the symmetric relative error, floored so empty results do
// not divide by zero.
func qerror(est, actual float64) float64 {
	est = math.Max(est, 1)
	actual = math.Max(actual, 1)
	return math.Max(est/actual, actual/est)
}

func quantiles3(xs []float64) [3]float64 {
	var out [3]float64
	if len(xs) == 0 {
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out[0] = s[len(s)/2]
	out[1] = s[int(float64(len(s)-1)*0.9)]
	out[2] = s[len(s)-1]
	return out
}

// Format renders the result.
func (r *QErrorResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "estimator q-error vs executed joins (%d observations; 1 = perfect)\n", r.Joins)
	fmt.Fprintf(&b, "  static  estimator: median %.2f  p90 %.2f  max %.2f\n", r.Static[0], r.Static[1], r.Static[2])
	fmt.Fprintf(&b, "  dynamic estimator: median %.2f  p90 %.2f  max %.2f\n", r.Dynamic[0], r.Dynamic[1], r.Dynamic[2])
	return b.String()
}
