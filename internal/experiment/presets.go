package experiment

import (
	"fmt"

	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/heuristics"
	"joinopt/internal/workload"
)

// Scale sets the experiment's replicate volume.
type Scale struct {
	QueriesPerN int
	Replicates  int
	// Ns overrides the preset's join counts when non-nil (used by smoke
	// tests to keep N small).
	Ns []int
}

// FullScale reproduces the paper's protocol: 50 queries per N, two
// replicates per query.
var FullScale = Scale{QueriesPerN: 50, Replicates: 2}

// ReducedScale is the default for benches: enough queries for the
// ordering among methods to be stable, ~50× cheaper than full scale.
var ReducedScale = Scale{QueriesPerN: 6, Replicates: 1}

// SmokeScale is for unit tests.
var SmokeScale = Scale{QueriesPerN: 2, Replicates: 1, Ns: []int{10}}

func (s Scale) ns(def []int) []int {
	if s.Ns != nil {
		return s.Ns
	}
	return def
}

func ns10to50() []int  { return []int{10, 20, 30, 40, 50} }
func ns10to100() []int { return []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} }

// methodVariants maps strategies to variants with default options.
func methodVariants(methods []core.Method) []Variant {
	vs := make([]Variant, len(methods))
	for i, m := range methods {
		vs[i] = Variant{Name: m.String(), Method: m}
	}
	return vs
}

// Table1 compares the five augmentation chooseNext criteria (§4.1):
// the pure augmentation heuristic under each criterion, plus an IAI
// anchor column that supplies the best-known baseline the scaled costs
// divide by (the paper scales by the best cost any method achieves at
// 9N², which the pure heuristics rarely attain themselves — hence its
// Table 1 magnitudes of 2.6–6.4).
func Table1(sc Scale, seed int64) Config {
	var vs []Variant
	for _, c := range heuristics.Criteria {
		vs = append(vs, Variant{
			Name:   fmt.Sprintf("crit%d", int(c)),
			Method: core.AugOnly,
			Opts:   core.Options{Criterion: c},
		})
	}
	vs = append(vs, Variant{Name: "IAI*", Method: core.IAI})
	return Config{
		Title:       "Table 1: comparison of criteria in augmentation",
		Spec:        workload.Default(),
		Ns:          sc.ns(ns10to50()),
		QueriesPerN: sc.QueriesPerN,
		Replicates:  sc.Replicates,
		Variants:    vs,
		TimeCoeffs:  []float64{1.5, 3, 6, 9},
		Model:       cost.NewMemoryModel(),
		Seed:        seed,
	}
}

// Table2 compares the three KBZ spanning-tree weight criteria (§4.2):
// the pure KBZ heuristic under each weight, plus the IAI anchor column
// (see Table1 for why).
func Table2(sc Scale, seed int64) Config {
	var vs []Variant
	for _, w := range heuristics.WeightCriteria {
		vs = append(vs, Variant{
			Name:   fmt.Sprintf("crit%d", int(w)),
			Method: core.KBZOnly,
			Opts:   core.Options{Weight: w},
		})
	}
	vs = append(vs, Variant{Name: "IAI*", Method: core.IAI})
	return Config{
		Title:       "Table 2: comparison of criteria in KBZ",
		Spec:        workload.Default(),
		Ns:          sc.ns(ns10to50()),
		QueriesPerN: sc.QueriesPerN,
		Replicates:  sc.Replicates,
		Variants:    vs,
		TimeCoeffs:  []float64{1.5, 3, 6, 9},
		Model:       cost.NewMemoryModel(),
		Seed:        seed,
	}
}

// Figure4 compares all nine methods on the default benchmark (250
// queries over N = 10..50 at full scale) under the main-memory model.
func Figure4(sc Scale, seed int64) Config {
	return Config{
		Title:       "Figure 4: comparison of the nine methods",
		Spec:        workload.Default(),
		Ns:          sc.ns(ns10to50()),
		QueriesPerN: sc.QueriesPerN,
		Replicates:  sc.Replicates,
		Variants:    methodVariants(core.Methods),
		TimeCoeffs:  []float64{0.3, 0.6, 1, 1.5, 3, 6, 9},
		Model:       cost.NewMemoryModel(),
		Seed:        seed,
	}
}

// Figure5 compares the top five methods on the larger benchmark (500
// queries over N = 10..100 at full scale).
func Figure5(sc Scale, seed int64) Config {
	return Config{
		Title:       "Figure 5: larger benchmark (top five methods)",
		Spec:        workload.Default(),
		Ns:          sc.ns(ns10to100()),
		QueriesPerN: sc.QueriesPerN,
		Replicates:  sc.Replicates,
		Variants:    methodVariants(core.TopFive),
		TimeCoeffs:  []float64{0.3, 0.6, 1, 1.5, 3, 6, 9},
		Model:       cost.NewMemoryModel(),
		Seed:        seed,
	}
}

// Figure6 zooms into small time limits for IAI, AGI and II, where the
// paper locates the AGI→IAI crossover near t ≈ 1.8.
func Figure6(sc Scale, seed int64) Config {
	return Config{
		Title:       "Figure 6: small time limits",
		Spec:        workload.Default(),
		Ns:          sc.ns(ns10to100()),
		QueriesPerN: sc.QueriesPerN,
		Replicates:  sc.Replicates,
		Variants:    methodVariants([]core.Method{core.IAI, core.AGI, core.II}),
		TimeCoeffs:  []float64{0.3, 0.6, 0.9, 1.2, 1.5, 1.8, 2.4, 3},
		Model:       cost.NewMemoryModel(),
		Seed:        seed,
	}
}

// Figure7 repeats the top-five comparison under the disk cost model.
func Figure7(sc Scale, seed int64) Config {
	return Config{
		Title:       "Figure 7: disk cost model (top five methods)",
		Spec:        workload.Default(),
		Ns:          sc.ns(ns10to50()),
		QueriesPerN: sc.QueriesPerN,
		Replicates:  sc.Replicates,
		Variants:    methodVariants(core.TopFive),
		TimeCoeffs:  []float64{0.3, 0.6, 1, 1.5, 3, 6, 9},
		Model:       cost.NewDiskModel(),
		Seed:        seed,
	}
}

// Table3 returns one config per §5 benchmark variation (1..9), each
// comparing the top five methods at the 9N² limit only.
func Table3(sc Scale, seed int64) ([]Config, error) {
	var cfgs []Config
	for i := 1; i <= 9; i++ {
		spec, err := workload.Benchmark(i)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, Config{
			Title:       fmt.Sprintf("Table 3 row %d: benchmark %s", i, spec.Name),
			Spec:        spec,
			Ns:          sc.ns(ns10to50()),
			QueriesPerN: sc.QueriesPerN,
			Replicates:  sc.Replicates,
			Variants:    methodVariants([]core.Method{core.IAI, core.IAL, core.AGI, core.KBI, core.II}),
			TimeCoeffs:  []float64{9},
			Model:       cost.NewMemoryModel(),
			Seed:        seed,
		})
	}
	return cfgs, nil
}
