package experiment

import (
	"math"
	"strings"
	"testing"

	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/workload"
)

func smokeConfig() Config {
	return Config{
		Title:       "smoke",
		Spec:        workload.Default(),
		Ns:          []int{10},
		QueriesPerN: 2,
		Replicates:  1,
		Variants: []Variant{
			{Name: "IAI", Method: core.IAI},
			{Name: "II", Method: core.II},
		},
		TimeCoeffs: []float64{0.5, 2},
		Model:      cost.NewMemoryModel(),
		Seed:       7,
	}
}

func TestRunSmoke(t *testing.T) {
	m, err := Run(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 2 {
		t.Fatalf("queries %d, want 2", m.Queries)
	}
	if len(m.Variants) != 2 || len(m.TimeCoeffs) != 2 {
		t.Fatal("matrix dims wrong")
	}
	for v := range m.Scaled {
		for ti := range m.Scaled[v] {
			s := m.Scaled[v][ti]
			if s < 1-1e-9 || s > 10+1e-9 {
				t.Fatalf("scaled cost %g outside [1, 10]", s)
			}
			if m.OutlierFrac[v][ti] < 0 || m.OutlierFrac[v][ti] > 1 {
				t.Fatalf("outlier fraction %g", m.OutlierFrac[v][ti])
			}
		}
		// Best-at-checkpoint curves are monotone: the later coefficient
		// can never average worse than the earlier one.
		if m.Scaled[v][1] > m.Scaled[v][0]+1e-9 {
			t.Fatalf("variant %s not monotone over time: %v", m.Variants[v], m.Scaled[v])
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	m1, err := Run(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for v := range m1.Scaled {
		for ti := range m1.Scaled[v] {
			if m1.Scaled[v][ti] != m2.Scaled[v][ti] {
				t.Fatalf("non-deterministic cell [%d][%d]: %g vs %g", v, ti, m1.Scaled[v][ti], m2.Scaled[v][ti])
			}
		}
	}
}

func TestRunProgressAndParallelism(t *testing.T) {
	cfg := smokeConfig()
	cfg.Parallelism = 2
	calls := 0
	cfg.Progress = func(done, total int) {
		calls++
		if total != 2 || done < 1 || done > 2 {
			t.Fatalf("progress %d/%d", done, total)
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("progress fired %d times", calls)
	}
}

func TestRunValidation(t *testing.T) {
	bad := smokeConfig()
	bad.Variants = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("no variants accepted")
	}
	bad = smokeConfig()
	bad.TimeCoeffs = []float64{3, 1}
	if _, err := Run(bad); err == nil {
		t.Fatal("descending coefficients accepted")
	}
	bad = smokeConfig()
	bad.QueriesPerN = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("empty workload accepted")
	}
	ok := smokeConfig()
	ok.Model = nil // defaults to memory
	if _, err := Run(ok); err != nil {
		t.Fatalf("nil model should default: %v", err)
	}
}

func TestCurveCheckpointing(t *testing.T) {
	c := newCurve([]int64{100, 200, 300})
	c.observe(50, 150) // lands in checkpoints ≥ 200
	c.observe(80, 90)  // lands everywhere (≤100), but worse than 50 at later points
	c.finish(40)
	if c.bestAt[0] != 80 {
		t.Fatalf("checkpoint 0: %g", c.bestAt[0])
	}
	if c.bestAt[1] != 50 {
		t.Fatalf("checkpoint 1: %g", c.bestAt[1])
	}
	if c.bestAt[2] != 40 {
		t.Fatalf("checkpoint 2 (finish): %g", c.bestAt[2])
	}
}

func TestCurveEmptyStaysInf(t *testing.T) {
	c := newCurve([]int64{10, 20})
	c.finish(math.Inf(1))
	if !math.IsInf(c.bestAt[0], 1) || !math.IsInf(c.bestAt[1], 1) {
		t.Fatal("empty curve should stay +Inf")
	}
}

func TestCurveMonotoneAfterFinish(t *testing.T) {
	c := newCurve([]int64{10, 20, 30})
	c.observe(5, 8) // only the first checkpoint sees it directly
	c.finish(7)     // worse than 5: monotonicity must keep 5 at later checkpoints
	if c.bestAt[1] != 5 || c.bestAt[2] != 5 {
		t.Fatalf("monotone propagation failed: %v", c.bestAt)
	}
}

func TestMatrixFormat(t *testing.T) {
	m, err := Run(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := m.Format()
	for _, want := range []string{"smoke", "IAI", "II", "0.5N2", "2N2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestMatrixCSV(t *testing.T) {
	m := &Matrix{
		Variants:   []string{"IAI", "II"},
		TimeCoeffs: []float64{0.5, 9},
		Scaled:     [][]float64{{2.5, 1.0}, {3.5, 1.5}},
	}
	csv := m.CSV()
	want := "time_coeff,IAI,II\n0.5,2.5,3.5\n9,1,1.5\n"
	if csv != want {
		t.Fatalf("csv:\n%q\nwant:\n%q", csv, want)
	}
}

func TestMatrixChart(t *testing.T) {
	m, err := Run(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := m.Chart()
	if len(c.Series) != 2 || len(c.Series[0].X) != 2 {
		t.Fatalf("chart shape: %d series", len(c.Series))
	}
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestBestVariantAt(t *testing.T) {
	m := &Matrix{
		Variants:   []string{"a", "b"},
		TimeCoeffs: []float64{1},
		Scaled:     [][]float64{{2.0}, {1.5}},
	}
	if m.BestVariantAt(0) != 1 {
		t.Fatal("best variant wrong")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for a := uint64(0); a < 10; a++ {
		for b := uint64(0); b < 10; b++ {
			s := deriveSeed(a, b)
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", a, b)
			}
			seen[s] = true
		}
	}
	if deriveSeed(1, 2) == deriveSeed(2, 1) {
		t.Fatal("deriveSeed order-insensitive")
	}
}

func TestPresetsConstruct(t *testing.T) {
	sc := SmokeScale
	for _, cfg := range []Config{
		Table1(sc, 1), Table2(sc, 1), Figure4(sc, 1),
		Figure5(sc, 1), Figure6(sc, 1), Figure7(sc, 1),
	} {
		if err := validate(&cfg); err != nil {
			t.Fatalf("%s: %v", cfg.Title, err)
		}
		if len(cfg.Ns) == 0 || len(cfg.Variants) == 0 {
			t.Fatalf("%s: empty preset", cfg.Title)
		}
	}
	t3, err := Table3(sc, 1)
	if err != nil || len(t3) != 9 {
		t.Fatalf("Table3: %d configs, err %v", len(t3), err)
	}
	if Figure7(sc, 1).Model.Name() != "disk" {
		t.Fatal("Figure 7 must use the disk model")
	}
	if len(Table1(sc, 1).Variants) != 6 { // 5 criteria + anchor
		t.Fatal("Table 1 variant count")
	}
}

// TestPresetSmokeRun executes one preset end-to-end at smoke scale.
func TestPresetSmokeRun(t *testing.T) {
	cfg := Figure4(SmokeScale, 3)
	cfg.TimeCoeffs = []float64{0.5, 1.5} // trim for test speed
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Variants) != 9 {
		t.Fatalf("figure 4 compares %d methods", len(m.Variants))
	}
}

func TestNoiseRobustness(t *testing.T) {
	cfg := NoiseConfig{
		Spec:        workload.Default(),
		Ns:          []int{10},
		QueriesPerN: 3,
		Sigmas:      []float64{0, 1.5},
		Method:      core.IAI,
		Seed:        11,
	}
	r, err := RunNoise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries != 3 || len(r.Degradation) != 2 {
		t.Fatalf("shape: %+v", r)
	}
	// σ=0 uses identical statistics and the same run seed → identical
	// plans → ratio exactly 1.
	if math.Abs(r.Degradation[0]-1) > 1e-9 {
		t.Fatalf("σ=0 degradation %g, want 1", r.Degradation[0])
	}
	// Heavy noise occasionally *helps* a randomized search on a tiny
	// sample (a perturbed landscape can steer descent to a plan that is
	// better under the truth), so only guard against nonsense values;
	// the large-sample trend is probed by the ljqbench noise experiment.
	if r.Degradation[1] < 0.5 || r.Degradation[1] > 10+1e-9 {
		t.Fatalf("σ=1.5 degradation %g out of sane range", r.Degradation[1])
	}
	if !strings.Contains(r.Format(), "σ=") {
		t.Fatal("format broken")
	}
	if _, err := RunNoise(NoiseConfig{}); err == nil {
		t.Fatal("degenerate config accepted")
	}
}

func TestQError(t *testing.T) {
	r, err := RunQError(QErrorConfig{Relations: 4, Queries: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if r.Joins != 4*3 {
		t.Fatalf("joins %d", r.Joins)
	}
	for _, q := range []float64{r.Static[0], r.Dynamic[0]} {
		if q < 1 {
			t.Fatalf("q-error below 1: %g", q)
		}
		if q > 100 {
			t.Fatalf("median q-error absurd: %g", q)
		}
	}
	if r.Static[2] < r.Static[0] || r.Dynamic[2] < r.Dynamic[0] {
		t.Fatal("max below median")
	}
	if !strings.Contains(r.Format(), "q-error") {
		t.Fatal("format broken")
	}
	if _, err := RunQError(QErrorConfig{}); err == nil {
		t.Fatal("degenerate config accepted")
	}
}
