package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"joinopt/internal/catalog"
	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/plan"
	"joinopt/internal/stats"
	"joinopt/internal/workload"
)

// NoiseConfig describes an estimation-error robustness experiment: the
// optimizer sees statistics whose distinct-value counts are perturbed
// by lognormal noise, but its chosen plan is priced against the true
// statistics. This quantifies how gracefully a strategy degrades when
// the catalog lies — the practical failure mode of every real
// optimizer (cf. Ioannidis & Christodoulakis on error propagation).
type NoiseConfig struct {
	Spec        workload.Spec
	Ns          []int
	QueriesPerN int
	// Sigmas are the lognormal noise levels: each distinct count is
	// multiplied by exp(N(0, σ)). σ=0 is the control.
	Sigmas []float64
	Method core.Method
	Seed   int64
}

// DefaultNoiseConfig returns a reasonable sweep.
func DefaultNoiseConfig(sc Scale, seed int64) NoiseConfig {
	ns := sc.ns([]int{10, 20, 30})
	return NoiseConfig{
		Spec:        workload.Default(),
		Ns:          ns,
		QueriesPerN: sc.QueriesPerN,
		Sigmas:      []float64{0, 0.5, 1, 2},
		Method:      core.IAI,
		Seed:        seed,
	}
}

// NoiseResult is the aggregated outcome.
type NoiseResult struct {
	Sigmas []float64
	// Degradation[s] is the mean ratio of (true cost of the plan chosen
	// under σ-noisy statistics) to (true cost of the plan chosen under
	// true statistics), outlier-coerced at 10.
	Degradation []float64
	Queries     int
}

// RunNoise executes the experiment.
func RunNoise(cfg NoiseConfig) (*NoiseResult, error) {
	if len(cfg.Sigmas) == 0 || cfg.QueriesPerN <= 0 || len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("experiment: degenerate noise config")
	}
	sums := make([]float64, len(cfg.Sigmas))
	count := 0
	for _, n := range cfg.Ns {
		for qi := 0; qi < cfg.QueriesPerN; qi++ {
			qRNG := rand.New(rand.NewSource(deriveSeed(uint64(cfg.Seed), uint64(n), uint64(qi), 3)))
			truth := cfg.Spec.Generate(n, qRNG)

			// Reference: optimize and price under the truth.
			refCost, err := optimizeAndPrice(truth, truth, cfg.Method, n, cfg.Seed+int64(qi))
			if err != nil {
				return nil, err
			}
			for si, sigma := range cfg.Sigmas {
				noisy := perturb(truth, sigma, rand.New(rand.NewSource(deriveSeed(uint64(cfg.Seed), uint64(n), uint64(qi), uint64(si)+4))))
				c, err := optimizeAndPrice(noisy, truth, cfg.Method, n, cfg.Seed+int64(qi))
				if err != nil {
					return nil, err
				}
				if refCost > 0 {
					sums[si] += stats.CoerceOutlier(c / refCost)
				} else {
					sums[si] += 1
				}
			}
			count++
		}
	}
	out := &NoiseResult{Sigmas: cfg.Sigmas, Queries: count}
	for _, s := range sums {
		out.Degradation = append(out.Degradation, s/float64(count))
	}
	return out, nil
}

// optimizeAndPrice optimizes optQ and prices the resulting join order
// under trueQ's statistics.
func optimizeAndPrice(optQ, trueQ *catalog.Query, m core.Method, n int, seed int64) (float64, error) {
	budget := cost.NewBudget(cost.UnitsFor(9, n))
	opt, err := core.NewOptimizer(optQ.Clone(), cost.NewMemoryModel(), budget,
		rand.New(rand.NewSource(seed)), core.Options{})
	if err != nil {
		return 0, err
	}
	pl, err := opt.Run(m)
	if err != nil {
		return 0, err
	}
	// True pricing.
	truthOpt, err := core.NewOptimizer(trueQ.Clone(), cost.NewMemoryModel(), cost.Unlimited(), nil, core.Options{})
	if err != nil {
		return 0, err
	}
	eval := truthOpt.Evaluator()
	total := 0.0
	order := pl.Order()
	// Re-price component-wise isn't needed: pricing the full order
	// charges cross products implicitly; the same order is compared
	// under both stat sets, so the comparison is apples-to-apples.
	total = eval.Cost(plan.Perm(order))
	return total, nil
}

// perturb multiplies every predicate's distinct counts by independent
// lognormal factors exp(N(0, σ)), clamped to [1, effective cardinality],
// and re-derives the selectivities.
func perturb(q *catalog.Query, sigma float64, rng *rand.Rand) *catalog.Query {
	out := q.Clone()
	if sigma == 0 {
		return out
	}
	for i := range out.Predicates {
		p := &out.Predicates[i]
		p.LeftDistinct = clampDistinct(p.LeftDistinct*math.Exp(rng.NormFloat64()*sigma),
			out.Relations[p.Left].EffectiveCardinality())
		p.RightDistinct = clampDistinct(p.RightDistinct*math.Exp(rng.NormFloat64()*sigma),
			out.Relations[p.Right].EffectiveCardinality())
		p.Selectivity = 0 // re-derive from the noisy counts
	}
	out.Normalize()
	return out
}

func clampDistinct(d, card float64) float64 {
	if d < 1 {
		return 1
	}
	if d > card {
		return math.Max(1, math.Floor(card))
	}
	return d
}

// Format renders the result.
func (r *NoiseResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "estimation-noise robustness (%d queries; true cost of noisy-stat plan / true-stat plan)\n", r.Queries)
	for i, s := range r.Sigmas {
		fmt.Fprintf(&b, "  σ=%-4g → %.3f\n", s, r.Degradation[i])
	}
	return b.String()
}
