// Package experiment implements the paper's evaluation protocol (§6):
// benchmarks of random queries, per-query optimization under time limits
// proportional to N², scaling of solution costs by the best cost found at
// the 9N² limit, coercion of outlying values to 10, and averaging across
// queries and replicates.
//
// Strategies are anytime algorithms, so instead of re-running every
// method once per time limit, each (query, method, replicate) is run once
// at the largest limit while the improvement callback records the
// (cost, work-units) trajectory; the best-at-checkpoint values are then
// read off the curve. This reproduces the paper's measurements at a
// fraction of the 5000 CPU-hours it reports.
package experiment

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/plot"
	"joinopt/internal/stats"
	"joinopt/internal/workload"
)

// Variant is one column of a comparison: a strategy plus its options
// (Tables 1–2 compare the same strategy under different heuristic
// criteria, so a method alone does not identify a column).
type Variant struct {
	Name   string
	Method core.Method
	Opts   core.Options
}

// Config describes one experiment.
type Config struct {
	// Title labels the experiment in reports.
	Title string
	// Spec is the query benchmark.
	Spec workload.Spec
	// Ns lists the join counts; QueriesPerN queries are generated for
	// each.
	Ns          []int
	QueriesPerN int
	// Replicates is the number of seeds each (query, variant) pair is
	// run with (the paper uses 2).
	Replicates int
	// Variants are the compared strategies.
	Variants []Variant
	// TimeCoeffs are the paper's t values (time limit t·N²), ascending.
	// The last coefficient anchors the scaling.
	TimeCoeffs []float64
	// Model is the cost model (must be safe for concurrent readers;
	// both built-in models are).
	Model cost.Model
	// Seed makes the whole experiment reproducible.
	Seed int64
	// Parallelism caps concurrent query tasks (default NumCPU).
	Parallelism int
	// Progress, if non-nil, is called after each completed query task.
	Progress func(done, total int)
	// Context, if non-nil, bounds the experiment: when it is cancelled
	// (or its deadline passes) every in-flight optimizer run stops at
	// its next budget poll and returns its incumbent, and no new tasks
	// start. Results computed from cancelled runs are degraded-quality
	// measurements; Run reports the cancellation as an error after
	// draining in-flight tasks.
	Context context.Context
}

// Matrix is the aggregated outcome: mean coerced scaled cost per
// (variant, time coefficient).
type Matrix struct {
	Title      string
	Variants   []string
	TimeCoeffs []float64
	// Scaled[v][t] is the mean coerced scaled cost.
	Scaled [][]float64
	// OutlierFrac[v][t] is the fraction of runs coerced to 10.
	OutlierFrac [][]float64
	// Queries is the number of (query, replicate) observations per cell.
	Queries int
}

// splitmix64 dissolves structured seed tuples into independent streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func deriveSeed(parts ...uint64) int64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return int64(h >> 1)
}

// Run executes the experiment.
func Run(cfg Config) (*Matrix, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	nv := len(cfg.Variants)
	nt := len(cfg.TimeCoeffs)
	maxT := cfg.TimeCoeffs[nt-1]

	type task struct {
		n, qIdx, rep int
	}
	var tasks []task
	for _, n := range cfg.Ns {
		for q := 0; q < cfg.QueriesPerN; q++ {
			for r := 0; r < cfg.Replicates; r++ {
				tasks = append(tasks, task{n, q, r})
			}
		}
	}

	sums := make([][]float64, nv)
	outliers := make([][]float64, nv)
	for v := range sums {
		sums[v] = make([]float64, nt)
		outliers[v] = make([]float64, nt)
	}
	var mu sync.Mutex
	count := 0
	done := 0

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	var firstErr error

	for _, tk := range tasks {
		if cfg.Context != nil && cfg.Context.Err() != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("experiment: %w", cfg.Context.Err())
			}
			mu.Unlock()
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(tk task) {
			defer wg.Done()
			defer func() { <-sem }()
			// A panicking task must not kill the whole experiment
			// process: convert the panic into the run's first error
			// (panicguard).
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: task n=%d q=%d rep=%d panicked: %v", tk.n, tk.qIdx, tk.rep, r)
					}
					mu.Unlock()
				}
			}()
			bestAt, err := runTask(&cfg, tk.n, tk.qIdx, tk.rep, maxT)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			// Scale by the best final cost across variants.
			best := math.Inf(1)
			for v := 0; v < nv; v++ {
				if bestAt[v][nt-1] < best {
					best = bestAt[v][nt-1]
				}
			}
			for v := 0; v < nv; v++ {
				for t := 0; t < nt; t++ {
					var scaled float64
					if best > 0 {
						scaled = stats.CoerceOutlier(bestAt[v][t] / best)
					} else {
						// A zero-cost best (single-join degenerate
						// query): everyone ties.
						scaled = 1
					}
					sums[v][t] += scaled
					if scaled >= stats.OutlierCeiling {
						outliers[v][t]++
					}
				}
			}
			count++
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, len(tasks))
			}
		}(tk)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	m := &Matrix{
		Title:      cfg.Title,
		TimeCoeffs: cfg.TimeCoeffs,
		Queries:    count,
		Scaled:     make([][]float64, nv),
	}
	m.OutlierFrac = make([][]float64, nv)
	for v, vr := range cfg.Variants {
		m.Variants = append(m.Variants, vr.Name)
		m.Scaled[v] = make([]float64, nt)
		m.OutlierFrac[v] = make([]float64, nt)
		for t := 0; t < nt; t++ {
			if count > 0 {
				m.Scaled[v][t] = sums[v][t] / float64(count)
				m.OutlierFrac[v][t] = outliers[v][t] / float64(count)
			}
		}
	}
	return m, nil
}

func validate(cfg *Config) error {
	if len(cfg.Variants) == 0 {
		return fmt.Errorf("experiment: no variants")
	}
	if len(cfg.Ns) == 0 || cfg.QueriesPerN <= 0 || cfg.Replicates <= 0 {
		return fmt.Errorf("experiment: empty workload (Ns=%v queries=%d reps=%d)", cfg.Ns, cfg.QueriesPerN, cfg.Replicates)
	}
	if len(cfg.TimeCoeffs) == 0 {
		return fmt.Errorf("experiment: no time coefficients")
	}
	if !sort.Float64sAreSorted(cfg.TimeCoeffs) {
		return fmt.Errorf("experiment: time coefficients must ascend")
	}
	if cfg.Model == nil {
		cfg.Model = cost.NewMemoryModel()
	}
	return nil
}

// runTask optimizes one (query, replicate) with every variant and
// returns bestAt[variant][coeffIdx]: the incumbent cost at each
// checkpoint budget.
func runTask(cfg *Config, n, qIdx, rep int, maxT float64) ([][]float64, error) {
	qRNG := rand.New(rand.NewSource(deriveSeed(uint64(cfg.Seed), uint64(n), uint64(qIdx), 1)))
	query := cfg.Spec.Generate(n, qRNG)

	nt := len(cfg.TimeCoeffs)
	checkpoints := make([]int64, nt)
	for i, t := range cfg.TimeCoeffs {
		checkpoints[i] = cost.UnitsFor(t, n)
	}

	bestAt := make([][]float64, len(cfg.Variants))
	for v, vr := range cfg.Variants {
		curve := newCurve(checkpoints)
		opts := vr.Opts
		opts.OnImprove = curve.observe
		budget := cost.NewBudget(cost.UnitsFor(maxT, n))
		runRNG := rand.New(rand.NewSource(deriveSeed(uint64(cfg.Seed), uint64(n), uint64(qIdx), uint64(rep), uint64(v)+2)))
		opt, err := core.NewOptimizer(query, cfg.Model, budget, runRNG, opts)
		if err != nil {
			return nil, fmt.Errorf("experiment: n=%d q=%d rep=%d variant=%s: %w", n, qIdx, rep, vr.Name, err)
		}
		pl, err := opt.RunContext(cfg.Context, vr.Method)
		if err != nil {
			// Per the anytime contract a plan accompanies the error
			// (panic recovery); an experiment measures strategy quality,
			// so a crashed variant is a hard failure, not a data point.
			return nil, fmt.Errorf("experiment: n=%d q=%d rep=%d variant=%s: %w", n, qIdx, rep, vr.Name, err)
		}
		curve.finish(pl.TotalCost)
		bestAt[v] = curve.bestAt
	}
	return bestAt, nil
}

// curve converts an improvement trajectory into best-at-checkpoint
// values.
type curve struct {
	checkpoints []int64
	bestAt      []float64
}

func newCurve(checkpoints []int64) *curve {
	c := &curve{checkpoints: checkpoints, bestAt: make([]float64, len(checkpoints))}
	for i := range c.bestAt {
		c.bestAt[i] = math.Inf(1)
	}
	return c
}

// observe records an improvement at the given consumed budget: it lowers
// every checkpoint at or beyond that point.
func (c *curve) observe(cost float64, used int64) {
	for i, cp := range c.checkpoints {
		if used <= cp && cost < c.bestAt[i] {
			c.bestAt[i] = cost
		}
	}
}

// finish folds the final plan cost into the last checkpoint (covers
// multi-component assembly costs reported only at the end).
func (c *curve) finish(final float64) {
	last := len(c.bestAt) - 1
	if final < c.bestAt[last] {
		c.bestAt[last] = final
	}
	// Checkpoints left untouched (no state produced in time) stay +Inf;
	// the scaler coerces them to the outlier ceiling. Propagate
	// monotonicity: a later checkpoint can never be worse than an
	// earlier one.
	for i := 1; i < len(c.bestAt); i++ {
		if c.bestAt[i] > c.bestAt[i-1] {
			c.bestAt[i] = c.bestAt[i-1]
		}
	}
}

// Format renders the matrix as an aligned text table in the paper's
// layout: one row per time coefficient, one column per variant.
func (m *Matrix) Format() string {
	var b strings.Builder
	if m.Title != "" {
		fmt.Fprintf(&b, "%s (%d query-replicates)\n", m.Title, m.Queries)
	}
	fmt.Fprintf(&b, "%-8s", "Time")
	for _, v := range m.Variants {
		fmt.Fprintf(&b, "%10s", v)
	}
	b.WriteByte('\n')
	for t, coeff := range m.TimeCoeffs {
		fmt.Fprintf(&b, "%-8s", fmt.Sprintf("%gN2", coeff))
		for v := range m.Variants {
			fmt.Fprintf(&b, "%10.2f", m.Scaled[v][t])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the matrix as comma-separated values: a header row of
// variant names, then one row per time coefficient. Suitable for
// external plotting/analysis tools.
func (m *Matrix) CSV() string {
	var b strings.Builder
	b.WriteString("time_coeff")
	for _, v := range m.Variants {
		fmt.Fprintf(&b, ",%s", v)
	}
	b.WriteByte('\n')
	for t, coeff := range m.TimeCoeffs {
		fmt.Fprintf(&b, "%g", coeff)
		for v := range m.Variants {
			fmt.Fprintf(&b, ",%g", m.Scaled[v][t])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart converts the matrix into a plottable figure: one series per
// variant, mean scaled cost vs time coefficient (the axes of the
// paper's Figures 4–7).
func (m *Matrix) Chart() *plot.Chart {
	c := &plot.Chart{
		Title:  m.Title,
		XLabel: "time limit (×N²)",
		YLabel: "mean scaled cost",
	}
	for v, name := range m.Variants {
		c.Series = append(c.Series, plot.Series{
			Name: name,
			X:    append([]float64(nil), m.TimeCoeffs...),
			Y:    append([]float64(nil), m.Scaled[v]...),
		})
	}
	return c
}

// BestVariantAt returns the index of the variant with the lowest mean
// scaled cost at the given time-coefficient index.
func (m *Matrix) BestVariantAt(t int) int {
	best := 0
	for v := range m.Variants {
		if m.Scaled[v][t] < m.Scaled[best][t] {
			best = v
		}
	}
	return best
}
