// Package cluster turns independent ljqd daemons into a consistent-
// hash plan-cache cluster: a deterministic ring routes each canonical
// query fingerprint to the peer most likely to hold its plan, a
// breaker-backed health view steers around dead peers, and a shipped
// snapshot warm-starts joining or recovering peers so a restart does
// not trigger a cold re-optimization storm.
//
// The routing degradation ladder, rung by rung:
//
//  1. primary peer — the ring owner of the fingerprint (cache
//     affinity: the same shape always lands on the same peer, so the
//     cluster-wide hit rate approaches the single-node rate);
//  2. ring successors — on primary failure or open breaker, the next
//     distinct peers clockwise on the ring (optionally hedged: the
//     successor is raced after RouterConfig.HedgeDelay of silence);
//  3. local compute — when every candidate peer is down, the router's
//     embedded serve.Server optimizes in-process. A user request
//     fails only when the request itself is defective (4xx) or its
//     context dies; peer failures never surface as errors while at
//     least one rung survives.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"joinopt/internal/fingerprint"
)

// DefaultReplicas is the default virtual-node count per peer. 64
// points per peer keeps the expected load imbalance across a handful
// of peers within a few percent while the ring stays tiny (a sorted
// slice of peers·64 uint64s).
const DefaultReplicas = 64

// MaxMemberWeight caps a member's virtual-point multiplier: a typo'd
// weight in a membership file must not explode the ring into millions
// of points.
const MaxMemberWeight = 64

// Member is one ring member: a peer base URL plus its arc weight. A
// weight of w contributes w·Replicas virtual points, so raising a
// member's weight only moves arcs ONTO that member (its existing
// points are untouched; new points claim arcs from whoever held them)
// and lowering it only moves arcs off — the property the scripted
// MoveArc chaos action relies on. Weight ≤ 0 is normalized to 1.
type Member struct {
	URL    string `json:"url"`
	Weight int    `json:"weight"`
}

// Ring is an immutable consistent-hash ring over peer names.
//
// A member with weight w contributes w·Replicas virtual points, each
// the first 8 bytes (big-endian) of SHA-256("peer#k"). A fingerprint
// hashes to the first 8 bytes of itself — it is already a SHA-256 of
// the canonical query, so its prefix is uniform — and is owned by the
// first point clockwise from that value. Everything is a pure function
// of the member set, so every node (and every routing client) derives
// the identical ring with no coordination.
type Ring struct {
	replicas int
	peers    []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds a ring over the given peers, all at weight 1
// (deduplicated, order-insensitive: the ring layout depends only on
// the set). replicas ≤ 0 selects DefaultReplicas.
func NewRing(peers []string, replicas int) (*Ring, error) {
	members := make([]Member, 0, len(peers))
	for _, p := range peers {
		members = append(members, Member{URL: p, Weight: 1})
	}
	return NewRingMembers(members, replicas)
}

// NewRingMembers builds a weighted ring. Duplicate URLs collapse to
// one member with the larger weight (order-insensitive, like NewRing's
// dedup). replicas ≤ 0 selects DefaultReplicas.
func NewRingMembers(members []Member, replicas int) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	weight := make(map[string]int, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m.URL == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		if w > MaxMemberWeight {
			return nil, fmt.Errorf("cluster: member %s weight %d exceeds cap %d", m.URL, w, MaxMemberWeight)
		}
		if old, ok := weight[m.URL]; ok {
			if w > old {
				weight[m.URL] = w
			}
			continue
		}
		weight[m.URL] = w
		uniq = append(uniq, m.URL)
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	sort.Strings(uniq)
	r := &Ring{
		replicas: replicas,
		peers:    uniq,
		points:   make([]ringPoint, 0, len(uniq)*replicas),
	}
	for _, p := range uniq {
		for k := 0; k < weight[p]*replicas; k++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", p, k)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				peer: p,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer // hash ties broken stably
	})
	return r, nil
}

// Peers returns the ring membership, sorted.
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// key maps a canonical fingerprint onto the ring's hash space.
func key(fp fingerprint.Fingerprint) uint64 {
	return binary.BigEndian.Uint64(fp[:8])
}

// Primary returns the peer that owns fp.
func (r *Ring) Primary(fp fingerprint.Fingerprint) string {
	return r.points[r.search(key(fp))].peer
}

// Successors returns up to n distinct peers in ring order starting at
// fp's owner: the failover candidate list (element 0 is the primary).
func (r *Ring) Successors(fp fingerprint.Fingerprint, n int) []string {
	if n > len(r.peers) {
		n = len(r.peers)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.search(key(fp))
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// search finds the index of the first point clockwise from h.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return i
}
