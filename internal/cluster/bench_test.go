package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"joinopt/internal/client"
	"joinopt/internal/faultinject"
	"joinopt/internal/fingerprint"
	"joinopt/internal/persist"
	"joinopt/internal/plancache"
	"joinopt/internal/serve"
	"joinopt/internal/workload"
)

// benchCluster builds a 3-peer in-process cluster for routing
// benchmarks.
func benchCluster(b *testing.B) (*Router, *faultinject.ClusterTransport) {
	b.Helper()
	peers := []string{"http://peer0", "http://peer1", "http://peer2"}
	handlers := map[string]http.Handler{}
	for _, p := range peers {
		handlers[strings.TrimPrefix(p, "http://")] = serve.New(serve.Config{TCoeff: 1, Seed: 1}).Handler()
	}
	ct := faultinject.NewClusterTransport(handlers, nil)
	r, err := NewRouter(RouterConfig{
		Peers:  peers,
		Client: client.Config{Transport: ct, MaxAttempts: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	return r, ct
}

// BenchmarkClusterRouteHit measures a full routed round trip for a
// warm shape: ring lookup, peer client, HTTP encode/decode, cache hit.
func BenchmarkClusterRouteHit(b *testing.B) {
	r, _ := benchCluster(b)
	ctx := context.Background()
	q := workload.Default().Generate(12, rand.New(rand.NewSource(7)))
	if _, err := r.Optimize(ctx, q); err != nil { // warm the primary
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := r.Optimize(ctx, q)
		if err != nil || !resp.CacheHit {
			b.Fatalf("err=%v hit=%v", err, resp != nil && resp.CacheHit)
		}
	}
}

// BenchmarkClusterFailover measures the same round trip with a dead
// primary: one refused dispatch, then the ring successor serves.
func BenchmarkClusterFailover(b *testing.B) {
	r, ct := benchCluster(b)
	ctx := context.Background()
	q := workload.Default().Generate(12, rand.New(rand.NewSource(7)))
	if _, err := r.Optimize(ctx, q); err != nil {
		b.Fatal(err)
	}
	fp, _, _ := fingerprint.CanonicalQuery(q)
	ct.Kill(strings.TrimPrefix(r.Ring().Primary(fp), "http://"))
	if _, err := r.Optimize(ctx, q); err != nil { // warm the successor
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := r.Optimize(ctx, q)
		if err != nil || !resp.CacheHit {
			b.Fatalf("err=%v", err)
		}
	}
}

// BenchmarkArcPushIngest measures proactive arc-push throughput end
// to end: the rebalancer encodes a 256-entry arc batch, POSTs it over
// the in-process transport, and the receiver strict-decodes and warms
// it (re-pushing the same batch is an idempotent same-tier refresh,
// so the hot path is identical to a first push). The per-op payload
// rate is the number to read next to BenchmarkWarmStartLoad: warm
// start is the pull path at join, arc push the push path at rebalance.
func BenchmarkArcPushIngest(b *testing.B) {
	receiver := serve.New(serve.Config{TCoeff: 1, Seed: 1})
	ct := faultinject.NewClusterTransport(map[string]http.Handler{"peer1": receiver.Handler()}, nil)
	rb, err := NewRebalancer(RebalanceConfig{
		Self:      "http://peer0",
		Cache:     plancache.New(plancache.Config{Capacity: 512}),
		Transport: ct,
	})
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]*plancache.Entry, 256)
	for i := range entries {
		entries[i] = wsEntry(i + 1)
	}
	ctx := context.Background()
	b.SetBytes(int64(len(persist.EncodeSnapshot(entries))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := rb.pushArc(ctx, "http://peer1", entries)
		if err != nil || n != len(entries) {
			b.Fatalf("pushed %d, err=%v", n, err)
		}
	}
}

// BenchmarkWarmStartLoad measures snapshot ingest: strict decode plus
// cache warm of a shipped 256-entry snapshot.
func BenchmarkWarmStartLoad(b *testing.B) {
	entries := make([]*plancache.Entry, 256)
	for i := range entries {
		entries[i] = wsEntry(i + 1)
	}
	payload := persist.EncodeSnapshot(entries)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, err := persist.DecodeSnapshotStrict(payload)
		if err != nil {
			b.Fatal(err)
		}
		cache := plancache.New(plancache.Config{Capacity: 512})
		for _, e := range decoded {
			cache.Warm(e)
		}
	}
}
