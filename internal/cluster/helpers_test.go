package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net/http"

	"joinopt/internal/serve"
)

// forgeHeaderCRC recomputes a persist container header's CRC in place
// after the test tampered with its version bytes, so only the decoder's
// semantic checks (not the checksum) can object.
func forgeHeaderCRC(data []byte) {
	crc := crc32.Checksum(data[:8], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[8:12], crc)
}

// jsonDecode decodes an *http.Response body, failing on non-200.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// statusOf fetches a peer's /statusz.
func statusOf(base string) (*serve.StatusResponse, error) {
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		return nil, err
	}
	var st serve.StatusResponse
	if err := jsonDecode(resp, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
