package cluster

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"joinopt/internal/vfs"
)

// Dynamic membership: the ring stops being a boot-time constant and
// becomes a sequence of *epochs* — immutable (member set, ring)
// snapshots tagged with a monotonically increasing sequence number.
// Every consumer (the Router's per-request candidate walk, the
// Rebalancer's push/evict diff, the daemon's warm-start donor list)
// observes exactly one epoch per decision, so a membership change can
// never tear a single request across two rings: in-flight requests
// finish on the epoch they started on, and the next request sees the
// next epoch atomically.
//
// The seam is deliberately pull-based and clockless: a FileSource
// re-reads a membership file through the vfs seam when Poll is called,
// and the epoch sequence advances only when the *parsed member set*
// changes — whitespace edits and rewrites of identical content do not
// burn epochs. Nothing in the decision path reads a wall clock; the
// daemon's poll loop owns the cadence (with an injectable sleeper), so
// tests drive transitions at exact, reproducible points.

// Epoch is one immutable membership generation: a monotonically
// numbered member set plus the consistent-hash ring derived from it.
// Epochs are shared read-only via pointer; never mutate one after
// construction.
type Epoch struct {
	// Seq is the epoch's sequence number. The initial membership —
	// whether from a static -peers list or a membership file's first
	// read — is epoch 0; every observed change increments it. Consumers
	// apply epochs monotonically and ignore stale ones.
	Seq uint64
	// Members is the member set, sorted by URL, weights normalized.
	Members []Member

	ring *Ring
}

// NewEpoch derives an epoch from a member set. replicas ≤ 0 selects
// DefaultReplicas. The member slice is copied, deduplicated (larger
// weight wins) and sorted; the caller's slice is not retained.
func NewEpoch(seq uint64, members []Member, replicas int) (*Epoch, error) {
	ring, err := NewRingMembers(members, replicas)
	if err != nil {
		return nil, err
	}
	// Rebuild the canonical member list from the ring's deduplicated
	// view so two epochs with equal rings compare equal member-wise.
	weight := make(map[string]int, len(members))
	for _, m := range members {
		w := m.Weight
		if w <= 0 {
			w = 1
		}
		if w > weight[m.URL] {
			weight[m.URL] = w
		}
	}
	canon := make([]Member, 0, len(ring.peers))
	for _, p := range ring.peers { // ring.peers is sorted
		canon = append(canon, Member{URL: p, Weight: weight[p]})
	}
	return &Epoch{Seq: seq, Members: canon, ring: ring}, nil
}

// StaticEpoch models a fixed -peers deployment as a never-changing
// epoch 0: the pre-dynamic-membership world expressed in the new
// vocabulary.
func StaticEpoch(peers []string, replicas int) (*Epoch, error) {
	members := make([]Member, 0, len(peers))
	for _, p := range peers {
		members = append(members, Member{URL: p, Weight: 1})
	}
	return NewEpoch(0, members, replicas)
}

// Ring returns the epoch's consistent-hash ring.
func (e *Epoch) Ring() *Ring { return e.ring }

// Peers returns the epoch's member URLs, sorted.
func (e *Epoch) Peers() []string { return e.ring.Peers() }

// HasPeer reports whether url is a member of this epoch.
func (e *Epoch) HasPeer(url string) bool {
	for _, m := range e.Members {
		if m.URL == url {
			return true
		}
	}
	return false
}

// String renders the epoch for logs and trajectory lines:
// "epoch 3 [a b*2 c]" (a weight suffix only when ≠ 1).
func (e *Epoch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d [", e.Seq)
	for i, m := range e.Members {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(m.URL)
		if m.Weight != 1 {
			fmt.Fprintf(&b, "*%d", m.Weight)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// sameMembers reports whether two canonical (sorted, deduped,
// normalized) member lists are equal.
func sameMembers(a, b []Member) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ParseMembership parses the membership file format: one member per
// line as "URL [weight]", with blank lines and #-comments ignored.
// URLs are trimmed of trailing slashes (matching the -peers parser);
// weights default to 1 and must be in [1, MaxMemberWeight]. A URL
// listed twice is an error — a membership file is a roster, and a
// duplicate line is almost certainly an editing mistake.
func ParseMembership(data []byte) ([]Member, error) {
	var members []Member
	seen := make(map[string]bool)
	for ln, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("cluster: membership line %d: want \"URL [weight]\", got %d fields", ln+1, len(fields))
		}
		url := strings.TrimRight(fields[0], "/")
		if url == "" {
			return nil, fmt.Errorf("cluster: membership line %d: empty URL", ln+1)
		}
		if seen[url] {
			return nil, fmt.Errorf("cluster: membership line %d: duplicate member %s", ln+1, url)
		}
		seen[url] = true
		w := 1
		if len(fields) == 2 {
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("cluster: membership line %d: bad weight %q: %v", ln+1, fields[1], err)
			}
			if n < 1 || n > MaxMemberWeight {
				return nil, fmt.Errorf("cluster: membership line %d: weight %d outside [1, %d]", ln+1, n, MaxMemberWeight)
			}
			w = n
		}
		members = append(members, Member{URL: url, Weight: w})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: membership file lists no members")
	}
	return members, nil
}

// FileSource watches a membership file through the vfs seam and turns
// its content changes into an epoch sequence. It is poll-based: each
// Poll re-reads the file and, when the parsed member set differs from
// the current epoch's, mints the next epoch. A transiently unreadable
// or unparseable file never tears the ring down — Poll reports the
// error and the current epoch stays in force (robustness over
// freshness: a half-written config must not empty the cluster).
type FileSource struct {
	fs       vfs.FS
	path     string
	replicas int

	mu  sync.Mutex
	cur *Epoch
}

// NewFileSource reads the membership file once and pins its content as
// epoch 0. The initial read must succeed — a daemon started against a
// missing or defective roster should fail loudly, not join an empty
// ring. fs == nil selects the real filesystem; replicas ≤ 0 selects
// DefaultReplicas.
func NewFileSource(fs vfs.FS, path string, replicas int) (*FileSource, error) {
	if fs == nil {
		fs = vfs.OS{}
	}
	s := &FileSource{fs: fs, path: path, replicas: replicas}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read membership file: %w", err)
	}
	members, err := ParseMembership(data)
	if err != nil {
		return nil, err
	}
	e, err := NewEpoch(0, members, replicas)
	if err != nil {
		return nil, err
	}
	s.cur = e
	return s, nil
}

// Current returns the latest minted epoch.
func (s *FileSource) Current() *Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Poll re-reads the membership file. It returns the current epoch, a
// flag reporting whether this call minted a new one, and any read or
// parse error (in which case the returned epoch is the unchanged
// current one). Content that parses to the same member set does not
// advance the sequence.
func (s *FileSource) Poll() (*Epoch, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := s.fs.ReadFile(s.path)
	if err != nil {
		return s.cur, false, fmt.Errorf("cluster: read membership file: %w", err)
	}
	members, err := ParseMembership(data)
	if err != nil {
		return s.cur, false, err
	}
	next, err := NewEpoch(s.cur.Seq+1, members, s.replicas)
	if err != nil {
		return s.cur, false, err
	}
	if sameMembers(s.cur.Members, next.Members) {
		return s.cur, false, nil
	}
	s.cur = next
	return s.cur, true, nil
}

// WatchMembership polls src every interval until ctx dies, invoking
// apply for each newly minted epoch and onErr (if non-nil) for poll
// errors. sleep overrides the inter-poll wait (nil = ctx-aware real
// timer); tests inject a no-op or stepped sleeper to drive transitions
// deterministically. interval ≤ 0 selects 2s.
func WatchMembership(ctx context.Context, src *FileSource, interval time.Duration, sleep func(ctx context.Context, d time.Duration) error, apply func(*Epoch), onErr func(error)) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	for {
		if err := sleep(ctx, interval); err != nil {
			return
		}
		if ctx.Err() != nil {
			return
		}
		e, changed, err := src.Poll()
		if err != nil {
			if onErr != nil {
				onErr(err)
			}
			continue
		}
		if changed {
			apply(e)
		}
	}
}
