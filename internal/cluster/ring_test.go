package cluster

import (
	"encoding/binary"
	"testing"

	"joinopt/internal/fingerprint"
)

func fpN(i int) fingerprint.Fingerprint {
	var fp fingerprint.Fingerprint
	binary.BigEndian.PutUint64(fp[:8], uint64(i)*0x9e3779b97f4a7c15) // spread keys over the ring
	return fp
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"peer0", "peer1", "peer2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"peer2", "peer0", "peer1", "peer0"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		fp := fpN(i)
		if a.Primary(fp) != b.Primary(fp) {
			t.Fatalf("key %d: ring layout depends on peer list order", i)
		}
		sa, sb := a.Successors(fp, 3), b.Successors(fp, 3)
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("key %d: successor %d differs across equivalent rings", i, j)
			}
		}
	}
}

func TestRingSuccessorsDistinctStartingAtPrimary(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		fp := fpN(i)
		s := r.Successors(fp, 4)
		if len(s) != 4 {
			t.Fatalf("key %d: %d successors, want 4", i, len(s))
		}
		if s[0] != r.Primary(fp) {
			t.Fatalf("key %d: successors do not start at the primary", i)
		}
		seen := map[string]bool{}
		for _, p := range s {
			if seen[p] {
				t.Fatalf("key %d: duplicate successor %s", i, p)
			}
			seen[p] = true
		}
		// Asking for more than the membership returns every peer once.
		if got := r.Successors(fp, 99); len(got) != 4 {
			t.Fatalf("key %d: over-asking returned %d peers", i, len(got))
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	peers := []string{"p0", "p1", "p2", "p3"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Primary(fpN(i))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("peer %s owns %.1f%% of keys — virtual nodes not spreading load (%v)", p, share*100, counts)
		}
	}
}

// TestRingMembershipStability is consistent hashing's point: adding a
// peer moves only the keys on the arcs it claims, not a wholesale
// reshuffle (which would cold-start every cache in the cluster).
func TestRingMembershipStability(t *testing.T) {
	base, err := NewRing([]string{"p0", "p1", "p2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing([]string{"p0", "p1", "p2", "p3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	moved, toNew := 0, 0
	for i := 0; i < keys; i++ {
		fp := fpN(i)
		was, now := base.Primary(fp), grown.Primary(fp)
		if was != now {
			moved++
			if now == "p3" {
				toNew++
			}
		}
	}
	if moved == 0 {
		t.Fatal("adding a peer moved nothing — the new peer owns no keys")
	}
	if moved != toNew {
		t.Fatalf("%d keys moved but only %d to the new peer: existing keys reshuffled among old peers", moved, toNew)
	}
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Fatalf("adding 1 peer to 3 moved %.0f%% of keys, want roughly 1/4", frac*100)
	}
}

func TestRingRejectsEmptyMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty peer name accepted")
	}
}
