package cluster

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/client"
	"joinopt/internal/faultinject"
	"joinopt/internal/fingerprint"
	"joinopt/internal/serve"
	"joinopt/internal/telemetry"
	"joinopt/internal/workload"
)

// testCluster is three in-process ljqd peers behind a chaos transport
// plus a router over them.
type testCluster struct {
	peers   []string // base URLs
	servers map[string]*serve.Server
	ct      *faultinject.ClusterTransport
	router  *Router
}

func hostOf(peer string) string { return strings.TrimPrefix(peer, "http://") }

func newTestCluster(t *testing.T, rcfg RouterConfig) *testCluster {
	t.Helper()
	tc := &testCluster{
		peers:   []string{"http://peer0", "http://peer1", "http://peer2"},
		servers: map[string]*serve.Server{},
	}
	handlers := map[string]http.Handler{}
	for _, p := range tc.peers {
		srv := serve.New(serve.Config{TCoeff: 1})
		tc.servers[p] = srv
		handlers[hostOf(p)] = srv.Handler()
	}
	tc.ct = faultinject.NewClusterTransport(handlers, nil)
	rcfg.Peers = tc.peers
	if rcfg.Client.Transport == nil {
		rcfg.Client.Transport = tc.ct
	}
	if rcfg.Client.MaxAttempts == 0 {
		rcfg.Client.MaxAttempts = 1 // routing owns retries across peers
	}
	r, err := NewRouter(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = r
	return tc
}

// queryOwnedBy searches seeds for a query whose ring primary is the
// wanted peer.
func queryOwnedBy(t *testing.T, ring *Ring, peer string, n int) *catalog.Query {
	t.Helper()
	for seed := int64(1); seed < 2000; seed++ {
		q := workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
		fp, _, _ := fingerprint.CanonicalQuery(q)
		if ring.Primary(fp) == peer {
			return q
		}
	}
	t.Fatalf("no %d-join query found with primary %s", n, peer)
	return nil
}

func TestRouterAffinityAndRepeatHit(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{})
	ctx := context.Background()
	q := queryOwnedBy(t, tc.router.Ring(), "http://peer1", 8)

	resp, err := tc.router.Optimize(ctx, q)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if resp.CacheHit {
		t.Fatal("first request cannot be a hit")
	}
	resp2, err := tc.router.Optimize(ctx, q)
	if err != nil {
		t.Fatalf("repeat: %v", err)
	}
	if !resp2.CacheHit || resp2.Explain != resp.Explain {
		t.Fatal("affinity broken: repeat did not hit the primary's cache")
	}
	st := tc.router.Stats()
	if st.Routes["http://peer1"] != 2 || st.Failovers != 0 || st.LocalFallbacks != 0 {
		t.Fatalf("stats %+v, want both requests on peer1", st)
	}
	// Only the primary computed anything.
	if tc.servers["http://peer0"].Cache().Stats().Misses != 0 ||
		tc.servers["http://peer2"].Cache().Stats().Misses != 0 {
		t.Fatal("non-primary peers saw traffic")
	}
}

func TestRouterFailoverOnDeadPrimary(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{})
	ctx := context.Background()
	q := queryOwnedBy(t, tc.router.Ring(), "http://peer0", 8)
	fp, _, _ := fingerprint.CanonicalQuery(q)
	second := tc.router.Ring().Successors(fp, 2)[1]

	tc.ct.Kill("peer0")
	resp, err := tc.router.Optimize(ctx, q)
	if err != nil {
		t.Fatalf("Optimize with dead primary: %v", err)
	}
	if len(resp.Order) == 0 || resp.Explain == "" {
		t.Fatalf("invalid plan: %+v", resp)
	}
	st := tc.router.Stats()
	if st.Failovers != 1 || st.Routes[second] != 1 {
		t.Fatalf("stats %+v, want 1 failover onto %s", st, second)
	}
}

// TestRouterAPIErrorReturnsWithoutFailover: a 4xx is the caller's
// error — the primary is alive and judged the request; trying the same
// request elsewhere would waste the ladder.
func TestRouterAPIErrorReturnsWithoutFailover(t *testing.T) {
	// Peers with tiny body caps reject any real query with 413.
	tc := &testCluster{
		peers:   []string{"http://peer0", "http://peer1", "http://peer2"},
		servers: map[string]*serve.Server{},
	}
	handlers := map[string]http.Handler{}
	for _, p := range tc.peers {
		srv := serve.New(serve.Config{TCoeff: 1, MaxBodyBytes: 16})
		tc.servers[p] = srv
		handlers[hostOf(p)] = srv.Handler()
	}
	tc.ct = faultinject.NewClusterTransport(handlers, nil)
	r, err := NewRouter(RouterConfig{
		Peers:  tc.peers,
		Client: client.Config{Transport: tc.ct, MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	q := workload.Default().Generate(8, rand.New(rand.NewSource(5)))
	_, err = r.Optimize(context.Background(), q)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("err = %v, want 413 APIError", err)
	}
	st := r.Stats()
	if st.Failovers != 0 || st.LocalFallbacks != 0 {
		t.Fatalf("4xx caused failover: %+v", st)
	}
	// The peer answered: that is breaker-success, not failure.
	fp, _, _ := fingerprint.CanonicalQuery(q)
	if got := r.Health().State(r.Ring().Primary(fp)); got != "closed" {
		t.Fatalf("primary breaker %s after 4xx", got)
	}
}

func TestRouterBreakerSkipAndRecovery(t *testing.T) {
	clk := newFakeClock()
	tc := newTestCluster(t, RouterConfig{
		Health: HealthConfig{
			Breaker: client.BreakerConfig{Threshold: 1, Cooldown: 5 * time.Second},
			Now:     clk.now,
		},
		Client: client.Config{Now: clk.now},
	})
	ctx := context.Background()
	q := queryOwnedBy(t, tc.router.Ring(), "http://peer2", 8)

	tc.ct.Kill("peer2")
	if _, err := tc.router.Optimize(ctx, q); err != nil {
		t.Fatalf("first: %v", err)
	}
	if got := tc.router.Health().State("http://peer2"); got != "open" {
		t.Fatalf("primary breaker %s after failure (threshold 1)", got)
	}
	// Second request: primary skipped without a transport attempt.
	opsBefore := tc.ct.Ops()
	if _, err := tc.router.Optimize(ctx, q); err != nil {
		t.Fatalf("second: %v", err)
	}
	if tc.ct.Ops() != opsBefore+1 {
		t.Fatalf("open breaker still sent a request (%d ops)", tc.ct.Ops()-opsBefore)
	}
	st := tc.router.Stats()
	if st.BreakerSkips != 1 {
		t.Fatalf("breakerSkips = %d, want 1", st.BreakerSkips)
	}

	// Revive + cooldown: the next request is the half-open probe and
	// recloses the breaker.
	tc.ct.Revive("peer2", nil)
	clk.advance(5 * time.Second)
	resp, err := tc.router.Optimize(ctx, q)
	if err != nil {
		t.Fatalf("post-revival: %v", err)
	}
	if resp.Explain == "" {
		t.Fatal("invalid plan after revival")
	}
	if got := tc.router.Health().State("http://peer2"); got != "closed" {
		t.Fatalf("breaker %s after successful probe", got)
	}
	if tc.router.Health().Transitions("http://peer2") < 3 {
		t.Fatalf("transitions = %d, want ≥ 3 (closed→open→half-open→closed)", tc.router.Health().Transitions("http://peer2"))
	}
}

func TestRouterLocalFallbackWhenAllPeersDead(t *testing.T) {
	local := serve.New(serve.Config{TCoeff: 1})
	tc := newTestCluster(t, RouterConfig{Local: local})
	for _, p := range tc.peers {
		tc.ct.Kill(hostOf(p))
	}
	q := workload.Default().Generate(8, rand.New(rand.NewSource(17)))
	resp, err := tc.router.Optimize(context.Background(), q)
	if err != nil {
		t.Fatalf("total peer loss must not surface an error: %v", err)
	}
	if resp.Explain == "" || len(resp.Order) != 9 {
		t.Fatalf("invalid local plan: %+v", resp)
	}
	st := tc.router.Stats()
	if st.LocalFallbacks != 1 {
		t.Fatalf("localFallbacks = %d", st.LocalFallbacks)
	}
	if local.Cache().Stats().Misses != 1 {
		t.Fatal("local server did not compute")
	}
}

func TestRouterNoLocalSurfacesErrNoPeers(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{})
	for _, p := range tc.peers {
		tc.ct.Kill(hostOf(p))
	}
	q := workload.Default().Generate(6, rand.New(rand.NewSource(18)))
	_, err := tc.router.Optimize(context.Background(), q)
	if !errors.Is(err, ErrNoPeers) {
		t.Fatalf("err = %v, want ErrNoPeers", err)
	}
}

// TestRouterHedgedFallback: a silent (hanging) primary is raced by the
// next ring successor after HedgeDelay; the successor wins, the
// hanging loser is cancelled, no goroutines leak, and the loser's
// health slot is released without a failure verdict.
func TestRouterHedgedFallback(t *testing.T) {
	servers := map[string]*serve.Server{}
	handlers := map[string]http.Handler{}
	peers := []string{"http://peer0", "http://peer1", "http://peer2"}
	for _, p := range peers {
		srv := serve.New(serve.Config{TCoeff: 1})
		servers[p] = srv
		handlers[hostOf(p)] = srv.Handler()
	}
	ct := faultinject.NewClusterTransport(handlers, nil)
	r, err := NewRouter(RouterConfig{
		Peers:      peers,
		Client:     client.Config{Transport: ct, MaxAttempts: 1, PerAttemptTimeout: time.Hour},
		HedgeDelay: time.Millisecond,
		After: func(d time.Duration) <-chan time.Time {
			ch := make(chan time.Time, 1)
			ch <- time.Time{}
			return ch
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := queryOwnedBy(t, r.Ring(), "http://peer1", 8)
	// Replace the primary with a handler that hangs until cancelled.
	ct.Revive("peer1", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		<-req.Context().Done()
	}))

	before := runtime.NumGoroutine()
	resp, err := r.Optimize(context.Background(), q)
	if err != nil {
		t.Fatalf("hedged Optimize: %v", err)
	}
	if resp.Explain == "" {
		t.Fatal("invalid plan from hedged successor")
	}
	st := r.Stats()
	if st.HedgedFallbacks != 1 || st.Failovers != 1 {
		t.Fatalf("stats %+v, want one hedged fallback winning", st)
	}
	if st.Routes["http://peer1"] != 0 {
		t.Fatal("the hanging primary was credited with the response")
	}
	// The loser was cancelled, not failed: its breaker stays closed.
	if got := r.Health().State("http://peer1"); got != "closed" {
		t.Fatalf("primary breaker %s after cancelled hedge loser", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

func TestRouterMetricsExported(t *testing.T) {
	reg := telemetry.NewRegistry()
	tc := newTestCluster(t, RouterConfig{Metrics: reg})
	q := queryOwnedBy(t, tc.router.Ring(), "http://peer0", 6)
	tc.ct.Kill("peer0")
	if _, err := tc.router.Optimize(context.Background(), q); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ljq_cluster_failover_total 1",
		`ljq_cluster_route_total{peer="http://peer0"} 0`,
		"ljq_cluster_local_fallback_total 0",
		"ljq_cluster_breaker_skip_total 0",
		`ljq_cluster_breaker_transitions_total{peer="http://peer0"}`,
		`ljq_cluster_peer_healthy{peer="http://peer1"} 1`,
		`ljq_cluster_client_retries_total{peer="http://peer0"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
