package cluster

// chaos_test.go is the cluster acceptance test: three in-process ljqd
// peers behind the routing client, with scripted kills and restarts —
// including a donor dying mid-snapshot-stream — woven through live
// traffic at exact operation indices. Every request must yield a valid
// plan, two same-seed runs must produce byte-identical trajectory logs
// and response sequences, a restarting peer must warm-start from a
// shipped snapshot (falling to the next donor when the stream tears),
// and nothing may leak goroutines.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/client"
	"joinopt/internal/faultinject"
	"joinopt/internal/fingerprint"
	"joinopt/internal/serve"
	"joinopt/internal/workload"
)

// queryWithOrder scans seeds for a query whose full ring-successor
// order matches want exactly, pinning every rung of the failover
// ladder so the chaos script's op indices are computable.
func queryWithOrder(t *testing.T, ring *Ring, want []string, n int) *catalog.Query {
	t.Helper()
	for seed := int64(1); seed < 5000; seed++ {
		q := workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
		fp, _, _ := fingerprint.CanonicalQuery(q)
		got := ring.Successors(fp, len(want))
		ok := len(got) == len(want)
		for i := range want {
			ok = ok && got[i] == want[i]
		}
		if ok {
			return q
		}
	}
	t.Fatalf("no %d-join query found with successor order %v", n, want)
	return nil
}

// chaosRun is one full scripted cluster lifetime's artifacts.
type chaosRun struct {
	trajectory string            // the transport's op-ordered event log
	responses  []byte            // JSON of every routed response, in order
	stats      RouterStats       //
	warmLog    []string          // restart-hook warm-start outcomes
	shipped    map[string][]byte // responses the warm-plan check compares
}

// runChaosScript builds a fresh 3-peer cluster and drives the scripted
// kill/restart/traffic interleaving. Everything is seeded, the caller
// is sequential, and hedging is off, so two invocations must agree
// byte for byte.
func runChaosScript(t *testing.T) *chaosRun {
	t.Helper()
	peers := []string{"http://peer0", "http://peer1", "http://peer2"}
	host := func(p string) string { return strings.TrimPrefix(p, "http://") }

	ring, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Six shapes, two owned by each peer, with every successor ladder
	// pinned (comments give the orders the script's op math relies on).
	sA := queryWithOrder(t, ring, []string{"http://peer0", "http://peer1", "http://peer2"}, 7)
	sB := queryWithOrder(t, ring, []string{"http://peer1", "http://peer0", "http://peer2"}, 8)
	sC := queryWithOrder(t, ring, []string{"http://peer2", "http://peer1", "http://peer0"}, 9)
	sD := queryWithOrder(t, ring, []string{"http://peer1", "http://peer2", "http://peer0"}, 7)
	sE := queryWithOrder(t, ring, []string{"http://peer0", "http://peer2", "http://peer1"}, 8)
	sF := queryWithOrder(t, ring, []string{"http://peer2", "http://peer0", "http://peer1"}, 9)

	servers := map[string]*serve.Server{}
	handlers := map[string]http.Handler{}
	for _, p := range peers {
		srv := serve.New(serve.Config{TCoeff: 1, Seed: 1})
		servers[host(p)] = srv
		handlers[host(p)] = srv.Handler()
	}

	// Donor precedence per restarting peer. peer2's first donor is
	// peer1 — the one the script kills mid-snapshot-stream — so its
	// warm-start must recover by falling to peer0.
	donors := map[string][]string{
		"peer0": {"http://peer1", "http://peer2"},
		"peer1": {"http://peer0", "http://peer2"},
		"peer2": {"http://peer1", "http://peer0"},
	}

	run := &chaosRun{shipped: map[string][]byte{}}
	var ct *faultinject.ClusterTransport
	restart := func(peer string) http.Handler {
		// A restarting peer warm-starts through the same transport the
		// cluster routes over: its donor fetches claim op indices like
		// any other traffic, and a scripted mid-stream kill can tear
		// them. Warm-start failure is non-fatal — the peer joins cold.
		srv := serve.New(serve.Config{TCoeff: 1, Seed: 1})
		res, werr := WarmStart(context.Background(), srv.Cache(), WarmStartConfig{
			Donors:    donors[peer],
			Transport: ct,
		})
		run.warmLog = append(run.warmLog, fmt.Sprintf("%s warmed=%d donor=%q attempts=%d err=%v",
			peer, res.Entries, res.Donor, len(res.Attempts), werr != nil))
		servers[peer] = srv
		return srv.Handler()
	}

	// The script, at exact global op indices (ops are claimed per
	// transport round trip; local compute claims none):
	//   phase A  ops 0-7    warm traffic, all peers alive
	//   op 8                all three peers die; two requests ride the
	//   phase B  ops 8-13   full ladder down to local compute (3 downs each)
	//   op 14               peer1 restarts; both donors dead (ops 15-16) → cold
	//   phase C  ops 14-27  peer1 is the only live peer and recomputes all six shapes
	//   op 28               peer0 restarts; warm-starts cleanly from peer1 (op 29)
	//   phase D  ops 28-30  peer0 serves its shapes from the shipped cache
	//   op 31               peer1 is armed to die mid-response, then peer2
	//                       restarts: its snapshot fetch from peer1 tears
	//                       (op 32), the fallback donor peer0 ships (op 33)
	//   phase E  ops 31-36  peer2 serves shipped plans; peer1 is down again
	//   op 37               peer1 restarts, warm from peer0 (op 38)
	//   phase F  ops 37-44  full-mesh sweep: every shape a cache hit
	ct = faultinject.NewClusterTransport(handlers, restart,
		faultinject.PeerAction{AtOp: 8, Kind: faultinject.KillPeer, Peer: "peer0"},
		faultinject.PeerAction{AtOp: 8, Kind: faultinject.KillPeer, Peer: "peer1"},
		faultinject.PeerAction{AtOp: 8, Kind: faultinject.KillPeer, Peer: "peer2"},
		faultinject.PeerAction{AtOp: 14, Kind: faultinject.RestartPeer, Peer: "peer1"},
		faultinject.PeerAction{AtOp: 28, Kind: faultinject.RestartPeer, Peer: "peer0"},
		faultinject.PeerAction{AtOp: 31, Kind: faultinject.KillMidResponse, Peer: "peer1", AfterBytes: 200},
		faultinject.PeerAction{AtOp: 31, Kind: faultinject.RestartPeer, Peer: "peer2"},
		faultinject.PeerAction{AtOp: 37, Kind: faultinject.RestartPeer, Peer: "peer1"},
	)

	local := serve.New(serve.Config{TCoeff: 1, Seed: 1})
	router, err := NewRouter(RouterConfig{
		Peers: peers,
		Local: local,
		// Sequential failover and no circuit state: with HedgeDelay 0
		// and breakers disabled every request walks the same ladder, so
		// the trajectory is a pure function of the script. (Breaker
		// routing has its own tests.)
		Health: HealthConfig{Breaker: client.BreakerConfig{Threshold: -1}},
		Client: client.Config{Transport: ct, MaxAttempts: 1, PerAttemptTimeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}

	shapes := map[string]*catalog.Query{"sA": sA, "sB": sB, "sC": sC, "sD": sD, "sE": sE, "sF": sF}
	var recorded []json.RawMessage
	ctx := context.Background()
	do := func(name string, record string) {
		t.Helper()
		q := shapes[name]
		resp, err := router.Optimize(ctx, q)
		if err != nil {
			t.Fatalf("shape %s at op %d: %v", name, ct.Ops(), err)
		}
		if resp.Explain == "" || len(resp.Order) != len(q.Relations) || resp.Fingerprint == "" {
			t.Fatalf("shape %s at op %d: invalid plan %+v", name, ct.Ops(), resp)
		}
		raw, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		recorded = append(recorded, raw)
		if record != "" {
			run.shipped[record] = raw
		}
	}

	// Phase A: warm every shape on its primary, then two repeat hits.
	for _, n := range []string{"sA", "sB", "sC", "sD", "sE", "sF", "sA", "sC"} {
		do(n, "")
	}
	// Phase B: total peer loss — the ladder must end in local compute,
	// never an error.
	do("sA", "")
	do("sD", "")
	// Phase C: peer1 restarts cold (its donors are still dead) and, as
	// the only live peer, recomputes every shape. The sC response here
	// is the plan the snapshots will ship peer1 → peer0 → peer2.
	do("sB", "")
	do("sD", "")
	do("sA", "")
	do("sC", "chainSource")
	do("sE", "")
	do("sF", "")
	// Phase D: peer0 back, warm from peer1's snapshot.
	do("sA", "")
	do("sE", "")
	// Phase E: peer2 restarts while its first donor dies mid-stream;
	// its first request must already be a warm hit off the fallback
	// donor's snapshot.
	do("sC", "warmServed")
	do("sF", "")
	do("sB", "")
	// Phase F: peer1 back once more; full sweep, everything cached.
	for _, n := range []string{"sD", "sA", "sB", "sC", "sD", "sE", "sF"} {
		do(n, "")
	}

	// The restarted peer2 never ran its own optimizer: every plan it
	// serves came off the shipped snapshot.
	p2 := servers["peer2"]
	if st := p2.Cache().Stats(); st.Warmed == 0 || st.Misses != 0 {
		t.Fatalf("restarted peer2 cache stats %+v: want warmed entries and zero misses", st)
	}

	blob, err := json.Marshal(recorded)
	if err != nil {
		t.Fatal(err)
	}
	run.responses = blob
	run.trajectory = ct.Trajectory()
	run.stats = router.Stats()
	return run
}

// TestClusterChaosScripted is the acceptance run (see file comment).
func TestClusterChaosScripted(t *testing.T) {
	before := runtime.NumGoroutine()

	first := runChaosScript(t)

	// Valid plans under fire is necessary but not sufficient — the
	// script must actually have exercised the ladder.
	if first.stats.LocalFallbacks != 2 {
		t.Fatalf("localFallbacks = %d, want 2 (the all-dead window)", first.stats.LocalFallbacks)
	}
	if first.stats.Failovers == 0 {
		t.Fatal("no failovers: the script never rode the ring ladder")
	}
	tr := first.trajectory
	for _, want := range []string{
		"!kill peer0", "!kill peer1", "!kill peer2", // total loss
		"!restart peer1", "!restart peer0", "!restart peer2",
		"!arm-torn peer1 after=200",
		"GET peer1/snapshot -> torn@200", // donor died mid-snapshot-stream
		"GET peer0/snapshot -> 200",      // fallback donor shipped
	} {
		if !strings.Contains(tr, want) {
			t.Fatalf("trajectory missing %q:\n%s", want, tr)
		}
	}
	// peer2's warm-start recovered from the torn stream via its second
	// donor; peer1's first (cold) restart failed both donors non-fatally.
	if len(first.warmLog) != 4 {
		t.Fatalf("warm log %v, want 4 restarts", first.warmLog)
	}
	for i, want := range []string{
		`peer1 warmed=0 donor="" attempts=2 err=true`,
		`peer0 warmed=6 donor="http://peer1" attempts=0 err=false`,
		`peer2 warmed=6 donor="http://peer0" attempts=1 err=false`,
		`peer1 warmed=6 donor="http://peer0" attempts=0 err=false`,
	} {
		if first.warmLog[i] != want {
			t.Fatalf("warm log[%d] = %q, want %q\nfull: %v", i, first.warmLog[i], want, first.warmLog)
		}
	}

	// The restarted peer serves the shipped plan byte-identically as a
	// cache hit: same plan as its donor chain's source, flipped to
	// cacheHit (it did no work of its own).
	source := string(first.shipped["chainSource"])
	served := string(first.shipped["warmServed"])
	wantServed := strings.Replace(source, `"cacheHit":false`, `"cacheHit":true`, 1)
	if source == served {
		t.Fatal("chain source was already a cache hit — phase C did not recompute sC")
	}
	if served != wantServed {
		t.Fatalf("warm-served plan drifted from the shipped one:\nshipped: %s\nserved:  %s", source, served)
	}

	// Determinism: a second same-seed run reproduces the trajectory and
	// every response byte for byte.
	second := runChaosScript(t)
	if first.trajectory != second.trajectory {
		t.Fatalf("same-seed trajectories differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first.trajectory, second.trajectory)
	}
	if string(first.responses) != string(second.responses) {
		t.Fatal("same-seed response sequences differ")
	}
	if first.stats.Failovers != second.stats.Failovers || first.stats.LocalFallbacks != second.stats.LocalFallbacks {
		t.Fatalf("same-seed router stats differ: %+v vs %+v", first.stats, second.stats)
	}

	// No goroutines may survive the cluster's lifetime.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}
