package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"joinopt/internal/client"
)

// HealthConfig tunes the peer-health view.
type HealthConfig struct {
	// Breaker tunes each peer's circuit breaker (client.BreakerConfig
	// defaults: 5 consecutive failures open it, 5s cooldown).
	Breaker client.BreakerConfig
	// Now is the breakers' clock (nil = time.Now; tests inject a fake
	// clock to drive cooldowns deterministically).
	Now func() time.Time
	// Probe actively checks one peer (normally a GET /readyz through a
	// plain single-attempt client); nil disables ProbeAll. Passive
	// accounting via ReportSuccess/ReportFailure works without it.
	Probe func(ctx context.Context, peer string) error
}

// Health is the cluster's per-peer availability view: one half-open
// circuit breaker per peer (reusing internal/client's state machine),
// fed passively by the router's request outcomes and optionally
// actively by /readyz probes.
//
// Contract (inherited from client.Breaker): every Allow(peer) == true
// must be followed by exactly one ReportSuccess, ReportFailure or
// ReportCancelled for that peer — in the half-open state Allow grants
// the single probe slot, and dropping it would park the breaker
// half-open forever.
// Membership is dynamic: Ensure registers peers minted by a new ring
// epoch; peers that leave keep their breakers (a returning peer's
// failure history survives its absence, and a stale routing client
// referencing a removed peer still resolves its slots safely). The
// map is guarded by an RWMutex — breaker operations themselves are
// internally synchronized, the lock only protects registration.
type Health struct {
	cfg HealthConfig

	mu       sync.RWMutex
	peers    []string // sorted; fixes ProbeAll order
	breakers map[string]*client.Breaker
}

// NewHealth builds a health view over the given peers.
func NewHealth(peers []string, cfg HealthConfig) *Health {
	h := &Health{
		cfg:      cfg,
		breakers: make(map[string]*client.Breaker, len(peers)),
	}
	h.Ensure(peers)
	return h
}

// Ensure registers any of the given peers not yet in the view, each
// with a fresh (closed) breaker. Already-known peers keep their
// breaker and its history — an epoch change must not amnesty a flappy
// peer. Called by the router when it applies a membership epoch.
func (h *Health) Ensure(peers []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	added := false
	for _, p := range peers {
		if _, ok := h.breakers[p]; ok {
			continue
		}
		h.breakers[p] = client.NewBreaker(h.cfg.Breaker, h.cfg.Now)
		h.peers = append(h.peers, p)
		added = true
	}
	if added {
		sort.Strings(h.peers)
	}
}

// breaker looks up peer's breaker (nil if unknown).
func (h *Health) breaker(peer string) *client.Breaker {
	h.mu.RLock()
	b := h.breakers[peer]
	h.mu.RUnlock()
	return b
}

// Allow reports whether a request may be sent to peer, claiming the
// half-open probe slot when there is one. Unknown peers are never
// allowed.
func (h *Health) Allow(peer string) bool {
	b := h.breaker(peer)
	return b != nil && b.Allow()
}

// ReportSuccess records a useful completion from peer.
func (h *Health) ReportSuccess(peer string) {
	if b := h.breaker(peer); b != nil {
		b.Success()
	}
}

// ReportFailure records a retryable failure from peer.
func (h *Health) ReportFailure(peer string) {
	if b := h.breaker(peer); b != nil {
		b.Failure()
	}
}

// ReportCancelled releases an Allow slot whose request was abandoned
// (hedged loser): no verdict either way.
func (h *Health) ReportCancelled(peer string) {
	if b := h.breaker(peer); b != nil {
		b.Cancel()
	}
}

// State names peer's breaker state ("closed", "open", "half-open"),
// or "unknown" for a peer outside the view.
func (h *Health) State(peer string) string {
	if b := h.breaker(peer); b != nil {
		return b.State()
	}
	return "unknown"
}

// Healthy reports whether peer currently accepts traffic (breaker not
// open). Unlike Allow it claims nothing — a pure read for status
// surfaces and gauges.
func (h *Health) Healthy(peer string) bool {
	return h.State(peer) == "closed" || h.State(peer) == "half-open"
}

// Transitions returns peer's breaker state-change count (the flap
// metric).
func (h *Health) Transitions(peer string) uint64 {
	if b := h.breaker(peer); b != nil {
		return b.Transitions()
	}
	return 0
}

// ProbeAll actively probes every peer the breaker admits, in sorted
// peer order (deterministic under test), feeding results back into the
// breakers. An open breaker whose cooldown has elapsed gets its
// half-open probe here instead of risking a user request. No-op
// without a Probe hook.
func (h *Health) ProbeAll(ctx context.Context) {
	if h.cfg.Probe == nil {
		return
	}
	h.mu.RLock()
	peers := append([]string(nil), h.peers...)
	h.mu.RUnlock()
	for _, p := range peers {
		if !h.Allow(p) {
			continue
		}
		if err := h.cfg.Probe(ctx, p); err != nil {
			h.ReportFailure(p)
		} else {
			h.ReportSuccess(p)
		}
	}
}
