package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"joinopt/internal/fingerprint"
	"joinopt/internal/vfs"
)

// writeMembership (re)writes a membership file on the in-memory fs.
func writeMembership(t *testing.T, fs *vfs.Mem, path, content string) {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseMembership(t *testing.T) {
	members, err := ParseMembership([]byte(`
# roster
http://a:8080
http://b:8080/   3   # trailing slash trimmed, weighted
http://c:8080
`))
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{URL: "http://a:8080", Weight: 1},
		{URL: "http://b:8080", Weight: 3},
		{URL: "http://c:8080", Weight: 1},
	}
	if len(members) != len(want) {
		t.Fatalf("got %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("member %d = %+v, want %+v", i, members[i], want[i])
		}
	}

	for name, bad := range map[string]string{
		"empty":          "",
		"comments only":  "# a\n  # b\n",
		"duplicate":      "http://a:8080\nhttp://a:8080/ 2\n",
		"weight zero":    "http://a:8080 0\n",
		"weight huge":    "http://a:8080 9999\n",
		"weight garbage": "http://a:8080 two\n",
		"extra fields":   "http://a:8080 2 3\n",
	} {
		if _, err := ParseMembership([]byte(bad)); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func TestRingMembersWeightOnlyPullsArcsOntoBumpedPeer(t *testing.T) {
	peers := []string{"http://peer0", "http://peer1", "http://peer2"}
	base, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	bumped, err := NewRingMembers([]Member{
		{URL: "http://peer0"},
		{URL: "http://peer1", Weight: 4},
		{URL: "http://peer2"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Raising one member's weight adds points only for that member, so
	// ownership can move ONLY onto it: any fingerprint whose owner
	// changed must now be owned by the bumped peer.
	moved, total := 0, 4096
	for i := 0; i < total; i++ {
		var fp fingerprint.Fingerprint
		fp[0], fp[1], fp[2] = byte(i), byte(i>>8), 0x5a
		before, after := base.Primary(fp), bumped.Primary(fp)
		if before == after {
			continue
		}
		moved++
		if after != "http://peer1" {
			t.Fatalf("fp %d moved %s -> %s: weight bump moved an arc onto a non-bumped peer", i, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("weight bump moved nothing: MoveArc would be a no-op")
	}

	if _, err := NewRingMembers([]Member{{URL: "http://a", Weight: MaxMemberWeight + 1}}, 0); err == nil {
		t.Fatal("want error for weight above cap")
	}
}

func TestEpochCanonicalization(t *testing.T) {
	e, err := NewEpoch(7, []Member{
		{URL: "http://b"},
		{URL: "http://a", Weight: 2},
		{URL: "http://a"}, // dup: larger weight wins
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 7 {
		t.Fatalf("Seq = %d", e.Seq)
	}
	if got := e.String(); got != "epoch 7 [http://a*2 http://b]" {
		t.Fatalf("String() = %q", got)
	}
	if !e.HasPeer("http://a") || e.HasPeer("http://c") {
		t.Fatal("HasPeer wrong")
	}
	if got := e.Peers(); len(got) != 2 || got[0] != "http://a" || got[1] != "http://b" {
		t.Fatalf("Peers() = %v", got)
	}
}

func TestFileSourceEpochSequence(t *testing.T) {
	fs := vfs.NewMem()
	const path = "members.conf"
	writeMembership(t, fs, path, "http://a\nhttp://b\n")

	src, err := NewFileSource(fs, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	e0 := src.Current()
	if e0.Seq != 0 || len(e0.Members) != 2 {
		t.Fatalf("epoch 0 = %s", e0)
	}

	// Identical content re-polled: no new epoch.
	if _, changed, err := src.Poll(); changed || err != nil {
		t.Fatalf("no-change poll: changed=%v err=%v", changed, err)
	}
	// Cosmetic rewrite (comments, ordering, whitespace): same parsed
	// member set, so still no new epoch — epochs number semantic
	// changes, not file writes.
	writeMembership(t, fs, path, "# same roster\nhttp://b\n\nhttp://a 1\n")
	if _, changed, err := src.Poll(); changed || err != nil {
		t.Fatalf("cosmetic rewrite poll: changed=%v err=%v", changed, err)
	}

	// A join mints epoch 1.
	writeMembership(t, fs, path, "http://a\nhttp://b\nhttp://c\n")
	e1, changed, err := src.Poll()
	if err != nil || !changed || e1.Seq != 1 || !e1.HasPeer("http://c") {
		t.Fatalf("join poll: %s changed=%v err=%v", e1, changed, err)
	}

	// A defective rewrite keeps the current epoch in force and reports
	// the error; the next good content resumes the sequence.
	writeMembership(t, fs, path, "http://a 0\n")
	e, changed, err := src.Poll()
	if err == nil || changed || e.Seq != 1 {
		t.Fatalf("defective poll: %s changed=%v err=%v", e, changed, err)
	}
	if err := fs.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, changed, err := src.Poll(); err == nil || changed {
		t.Fatalf("missing-file poll: changed=%v err=%v", changed, err)
	}
	writeMembership(t, fs, path, "http://a 2\nhttp://b\nhttp://c\n")
	e2, changed, err := src.Poll()
	if err != nil || !changed || e2.Seq != 2 {
		t.Fatalf("recovery poll: %s changed=%v err=%v", e2, changed, err)
	}
	if e2.Members[0] != (Member{URL: "http://a", Weight: 2}) {
		t.Fatalf("weight change lost: %s", e2)
	}

	// A missing or defective initial file fails construction loudly.
	if _, err := NewFileSource(fs, "absent.conf", 0); err == nil {
		t.Fatal("want error for missing initial file")
	}
	writeMembership(t, fs, "bad.conf", "# nothing\n")
	if _, err := NewFileSource(fs, "bad.conf", 0); err == nil {
		t.Fatal("want error for empty initial roster")
	}
}

func TestWatchMembershipAppliesEpochsAndStops(t *testing.T) {
	fs := vfs.NewMem()
	const path = "members.conf"
	writeMembership(t, fs, path, "http://a\n")
	src, err := NewFileSource(fs, path, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The stepped sleeper mutates the file at exact poll boundaries and
	// ends the watch after a fixed number of polls — no wall clock, no
	// goroutine: the loop runs to completion on this test's goroutine.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var applied []string
	var errs []error
	step := 0
	sleep := func(_ context.Context, d time.Duration) error {
		if d != 42*time.Millisecond {
			t.Fatalf("sleep interval %v, want the configured 42ms", d)
		}
		step++
		switch step {
		case 1: // poll 1 sees a join
			writeMembership(t, fs, path, "http://a\nhttp://b\n")
		case 2: // poll 2 sees garbage → onErr, epoch keeps
			writeMembership(t, fs, path, "http://a 0\n")
		case 3: // poll 3 sees a weight move
			writeMembership(t, fs, path, "http://a\nhttp://b 3\n")
		case 4: // poll 4 sees nothing new; then stop
			cancel()
			return ctx.Err()
		}
		return nil
	}
	WatchMembership(ctx, src, 42*time.Millisecond, sleep,
		func(e *Epoch) { applied = append(applied, e.String()) },
		func(err error) { errs = append(errs, err) })

	want := []string{
		"epoch 1 [http://a http://b]",
		"epoch 2 [http://a http://b*3]",
	}
	if len(applied) != len(want) || applied[0] != want[0] || applied[1] != want[1] {
		t.Fatalf("applied %v, want %v", applied, want)
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "weight") {
		t.Fatalf("errs = %v, want one weight parse error", errs)
	}
}
