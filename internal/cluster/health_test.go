package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"joinopt/internal/client"
)

// fakeClock is a manually advanced clock for deterministic breaker
// cooldowns.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestHealthPassiveAccountingAndRecovery(t *testing.T) {
	clk := newFakeClock()
	h := NewHealth([]string{"p0", "p1"}, HealthConfig{
		Breaker: client.BreakerConfig{Threshold: 2, Cooldown: 5 * time.Second},
		Now:     clk.now,
	})

	if !h.Allow("p0") || !h.Allow("p1") {
		t.Fatal("fresh peers must be allowed")
	}
	h.ReportSuccess("p0")
	h.ReportSuccess("p1")

	// Two consecutive failures open p0; p1 is unaffected.
	for i := 0; i < 2; i++ {
		if !h.Allow("p0") {
			t.Fatalf("failure %d: closed breaker refused", i)
		}
		h.ReportFailure("p0")
	}
	if h.Allow("p0") {
		t.Fatal("open breaker admitted a request")
	}
	if h.Healthy("p0") || !h.Healthy("p1") {
		t.Fatalf("health view wrong: p0=%s p1=%s", h.State("p0"), h.State("p1"))
	}

	// Cooldown elapses: exactly one probe slot.
	clk.advance(5 * time.Second)
	if !h.Allow("p0") {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if h.Allow("p0") {
		t.Fatal("second request admitted while the probe is in flight")
	}
	h.ReportSuccess("p0")
	if h.State("p0") != "closed" {
		t.Fatalf("probe success left p0 %s", h.State("p0"))
	}
}

// TestHealthCancelledSlotReleased: abandoning a claimed half-open slot
// with ReportCancelled frees the probe for the next request instead of
// parking the breaker half-open forever.
func TestHealthCancelledSlotReleased(t *testing.T) {
	clk := newFakeClock()
	h := NewHealth([]string{"p0"}, HealthConfig{
		Breaker: client.BreakerConfig{Threshold: 1, Cooldown: time.Second},
		Now:     clk.now,
	})
	h.ReportFailure("p0") // opens (threshold 1)
	clk.advance(time.Second)
	if !h.Allow("p0") {
		t.Fatal("probe refused")
	}
	h.ReportCancelled("p0") // hedged loser: no verdict
	if h.State("p0") != "half-open" {
		t.Fatalf("cancel changed state to %s", h.State("p0"))
	}
	if !h.Allow("p0") {
		t.Fatal("released probe slot not reusable")
	}
	h.ReportSuccess("p0")
	if h.State("p0") != "closed" {
		t.Fatalf("state %s after probe success", h.State("p0"))
	}
}

func TestHealthUnknownPeerNeverAllowed(t *testing.T) {
	h := NewHealth([]string{"p0"}, HealthConfig{})
	if h.Allow("ghost") {
		t.Fatal("unknown peer allowed")
	}
	if h.State("ghost") != "unknown" || h.Healthy("ghost") {
		t.Fatal("unknown peer reported a state")
	}
	h.ReportSuccess("ghost") // must not panic
	h.ReportFailure("ghost")
	h.ReportCancelled("ghost")
}

func TestHealthProbeAllDeterministicOrderAndVerdicts(t *testing.T) {
	clk := newFakeClock()
	var probed []string
	h := NewHealth([]string{"p2", "p0", "p1"}, HealthConfig{
		Breaker: client.BreakerConfig{Threshold: 1, Cooldown: time.Second},
		Now:     clk.now,
		Probe: func(_ context.Context, peer string) error {
			probed = append(probed, peer)
			if peer == "p1" {
				return errors.New("unreachable")
			}
			return nil
		},
	})
	ctx := context.Background()
	h.ProbeAll(ctx)
	if len(probed) != 3 || probed[0] != "p0" || probed[1] != "p1" || probed[2] != "p2" {
		t.Fatalf("probe order %v, want sorted [p0 p1 p2]", probed)
	}
	if h.State("p1") != "open" {
		t.Fatalf("failed probe left p1 %s (threshold 1)", h.State("p1"))
	}
	// While open and cooling down, ProbeAll skips p1 entirely.
	probed = nil
	h.ProbeAll(ctx)
	if len(probed) != 2 {
		t.Fatalf("cooling peer was probed: %v", probed)
	}
	// After cooldown the probe IS the half-open probe and recloses it.
	clk.advance(time.Second)
	probed = nil
	h.ProbeAll(ctx)
	if len(probed) != 3 || h.State("p1") != "open" {
		// p1's probe ran again and failed again: re-opened.
		if h.State("p1") != "open" {
			t.Fatalf("p1 state %s", h.State("p1"))
		}
	}
}
