package cluster

// churn_chaos_test.go is the dynamic-membership acceptance test: the
// ring itself changes while scripted traffic flows — a peer joins, an
// arc moves under a weight bump (with the destination killed mid-arc-
// push), a peer leaves — and the cluster must hold the anytime contract
// throughout: every request a valid plan, zero surfaced errors,
// byte-identical same-seed trajectory and response logs, a joined peer
// serving pushed arcs without a cold miss, and epoch changes evicting
// exactly the arcs each peer no longer owns.
//
// Interleaving note: a scripted action fires when its op index is
// claimed, BEFORE that request dispatches — but the router picked the
// claiming request's candidates from the epoch loaded at Optimize
// start. The request at an action's op therefore routes under the OLD
// epoch (the "in-flight requests finish on their starting epoch"
// invariant). The script exploits this by having every membership
// action claimed by qd, the control shape whose owner never changes.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/client"
	"joinopt/internal/faultinject"
	"joinopt/internal/fingerprint"
	"joinopt/internal/serve"
	"joinopt/internal/workload"
)

// findQuery scans seeds for a query satisfying pred on its canonical
// fingerprint, pinning arc placement across the test's epoch chain.
func findQuery(t *testing.T, n int, pred func(fp fingerprint.Fingerprint) bool) *catalog.Query {
	t.Helper()
	for seed := int64(1); seed < 20000; seed++ {
		q := workload.Default().Generate(n, rand.New(rand.NewSource(seed)))
		fp, _ := fingerprint.Canonical(q)
		if pred(fp) {
			return q
		}
	}
	t.Fatalf("no %d-join query found for placement predicate", n)
	return nil
}

// mustFP is fingerprint.Canonical without the order, for placement
// predicates.
func mustFP(q *catalog.Query) fingerprint.Fingerprint {
	fp, _ := fingerprint.Canonical(q)
	return fp
}

// churnWorld is the mutable cluster the membership hook drives: live
// servers, their rebalancers, the roster, and the epoch counter.
type churnWorld struct {
	t           *testing.T
	ct          *faultinject.ClusterTransport
	router      *Router
	servers     map[string]*serve.Server // by base URL
	rebalancers map[string]*Rebalancer   // by base URL
	roster      []Member
	seq         uint64
	rebalLog    []string
}

func (w *churnWorld) newRebalancer(url string) *Rebalancer {
	rb, err := NewRebalancer(RebalanceConfig{
		Self:      url,
		Cache:     w.servers[url].Cache(),
		Transport: w.ct,
		Sleep:     func(context.Context, time.Duration) error { return nil },
		Logf: func(format string, args ...any) {
			w.rebalLog = append(w.rebalLog, fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return rb
}

// applyAll mints the next epoch from the roster and applies it across
// the world: the leaver (if any) hands off first, then the remaining
// serving nodes in sorted URL order, then the joiner (if any)
// bootstraps, and finally the router swaps rings.
func (w *churnWorld) applyAll(ctx context.Context, leaver, joiner string) {
	w.seq++
	e, err := NewEpoch(w.seq, w.roster, 0)
	if err != nil {
		w.t.Fatal(err)
	}
	order := make([]string, 0, len(w.rebalancers))
	for url := range w.rebalancers {
		if url != leaver {
			order = append(order, url)
		}
	}
	sort.Strings(order)
	if leaver != "" {
		order = append([]string{leaver}, order...)
	}
	for _, url := range order {
		res, err := w.rebalancers[url].Apply(ctx, e)
		if err != nil {
			w.t.Fatalf("rebalance %s to %s: %v", url, e, err)
		}
		w.rebalLog = append(w.rebalLog, fmt.Sprintf("%s@%s pushed=%v failed=%v evicted=%d",
			url, e, res.Pushed, res.Failed, res.Evicted))
	}
	if joiner != "" {
		w.rebalancers[joiner] = w.newRebalancer(joiner)
		if _, err := w.rebalancers[joiner].Apply(ctx, e); err != nil {
			w.t.Fatal(err)
		}
	}
	if leaver != "" {
		delete(w.rebalancers, leaver)
	}
	if err := w.router.ApplyEpoch(e); err != nil {
		w.t.Fatal(err)
	}
}

// handleMembership is the transport's membership hook: scripted
// AddPeer/RemovePeer/MoveArc actions mutate the roster and apply the
// resulting epoch across the whole world. It runs on the claiming
// request's goroutine, so epoch application — including the recursive
// arc pushes it triggers — is strictly ordered within the op stream.
func (w *churnWorld) handleMembership(a faultinject.PeerAction) {
	ctx := context.Background()
	url := "http://" + a.Peer
	switch a.Kind {
	case faultinject.AddPeer:
		srv := serve.New(serve.Config{TCoeff: 1, Seed: 1})
		w.servers[url] = srv
		w.ct.Register(a.Peer, srv.Handler())
		weight := a.Weight
		if weight <= 0 {
			weight = 1
		}
		w.roster = append(w.roster, Member{URL: url, Weight: weight})
		w.applyAll(ctx, "", url)
	case faultinject.MoveArc:
		for i := range w.roster {
			if w.roster[i].URL == url {
				w.roster[i].Weight = a.Weight
			}
		}
		w.applyAll(ctx, "", "")
	case faultinject.RemovePeer:
		kept := w.roster[:0]
		for _, m := range w.roster {
			if m.URL != url {
				kept = append(kept, m)
			}
		}
		w.roster = kept
		w.applyAll(ctx, url, "")
		w.ct.Kill(a.Peer) // the leaver's process exits after handoff
	}
}

// churnRun is one scripted churn lifetime's artifacts.
type churnRun struct {
	trajectory string
	responses  []byte
	rebalLog   string
	stats      []byte // JSON-marshaled RouterStats
	world      *churnWorld
	final      *Epoch
}

// runChurnScript builds the 3-peer world and drives the scripted
// join / move-arc (torn mid-push) / leave sequence through live
// traffic. Fully seeded and sequential: two invocations must agree
// byte for byte.
func runChurnScript(t *testing.T) *churnRun {
	t.Helper()
	peers := []string{"http://peer0", "http://peer1", "http://peer2"}

	// The test's epoch chain, precomputed so query placement can be
	// pinned before any traffic flows:
	//   e0 {p0 p1 p2}   e1 +p3   e2 p3*4   e3 p3*5   e4 -p1
	mk := func(seq uint64, ms ...Member) *Epoch {
		e, err := NewEpoch(seq, ms, 0)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	m := func(url string, wgt int) Member { return Member{URL: url, Weight: wgt} }
	e0 := mk(0, m("http://peer0", 1), m("http://peer1", 1), m("http://peer2", 1))
	e1 := mk(1, m("http://peer0", 1), m("http://peer1", 1), m("http://peer2", 1), m("http://peer3", 1))
	e2 := mk(2, m("http://peer0", 1), m("http://peer1", 1), m("http://peer2", 1), m("http://peer3", 4))
	e3 := mk(3, m("http://peer0", 1), m("http://peer1", 1), m("http://peer2", 1), m("http://peer3", 5))
	e4 := mk(4, m("http://peer0", 1), m("http://peer2", 1), m("http://peer3", 5))

	// Four shapes with pinned trajectories through the epoch chain
	// (weight-monotonicity makes the unconstrained epochs follow: an
	// arc on p3 stays on p3 as p3's weight grows):
	//   qa: p0-owned, moves to p3 at the join            (push at join)
	//   qb: p1-owned through e3, reassigned at the leave (push at leave)
	//   qc: p2-owned until the w4 bump moves it to p3; its e2 failover
	//       successor is p2 itself, so while p3 is down after the torn
	//       push the OLD owner serves it warm (stale beats gone)
	//   qd: p0-owned under every epoch — the control shape that claims
	//       every membership action's op
	qa := findQuery(t, 7, func(fp fingerprint.Fingerprint) bool {
		return e0.Ring().Primary(fp) == "http://peer0" && e1.Ring().Primary(fp) == "http://peer3"
	})
	qb := findQuery(t, 8, func(fp fingerprint.Fingerprint) bool {
		return e0.Ring().Primary(fp) == "http://peer1" && e3.Ring().Primary(fp) == "http://peer1"
	})
	qc := findQuery(t, 9, func(fp fingerprint.Fingerprint) bool {
		if e1.Ring().Primary(fp) != "http://peer2" || e2.Ring().Primary(fp) != "http://peer3" {
			return false
		}
		succ := e2.Ring().Successors(fp, 2)
		return len(succ) == 2 && succ[1] == "http://peer2"
	})
	qd := findQuery(t, 7, func(fp fingerprint.Fingerprint) bool {
		for _, e := range []*Epoch{e0, e1, e2, e3, e4} {
			if e.Ring().Primary(fp) != "http://peer0" {
				return false
			}
		}
		return true
	})
	if e4.Ring().Primary(mustFP(qb)) == "http://peer1" {
		t.Fatal("qb still owned by the departed peer under e4")
	}

	world := &churnWorld{
		t:           t,
		servers:     map[string]*serve.Server{},
		rebalancers: map[string]*Rebalancer{},
	}
	handlers := map[string]http.Handler{}
	for _, p := range peers {
		srv := serve.New(serve.Config{TCoeff: 1, Seed: 1})
		world.servers[p] = srv
		handlers[hostOf(p)] = srv.Handler()
		world.roster = append(world.roster, Member{URL: p, Weight: 1})
	}

	// Restart returns the peer's existing handler: the process came
	// back with its cache intact (crash recovery has its own chaos
	// test; this one is about membership).
	restart := func(peer string) http.Handler { return world.servers["http://"+peer].Handler() }

	// The script, at exact global op indices (requests and recursive
	// arc pushes each claim one; actions fire before the claiming op
	// dispatches):
	//   ops 0-3   qa qb qc qd warm their e0 primaries
	//   op 4      AddPeer p3 → e1; p0 pushes qa to p3 (op 5) and
	//             evicts it; the op-4 request (qd) proceeds on p0
	//   op 6      qa hits p3 warm — the joined peer's first request
	//             for a pushed arc is not a cold miss
	//   ops 7-8   qb qc steady-state hits
	//   op 9      KillMidResponse p3 arms, then MoveArc p3*4 → e2;
	//             p2's push of qc tears mid-response (op 10; p3's
	//             handler DID run, so p3 warmed qc) and the retries
	//             find p3 dead (ops 11-12) — push fails, qc stays on
	//             p2; the op-9 request (qd) proceeds on p0
	//   op 13     qc routes to its e2 owner p3, finds it down, and
	//             fails over (op 14) to successor p2 — warm
	//   op 15     RestartPeer p3 (cache intact); the op-15 request
	//             (qb) proceeds on p1
	//   op 16     MoveArc p3*5 → e3; p2 retries qc to p3 (op 17),
	//             acked this time, and evicts it; op-16 request = qd
	//   op 18     qc hits p3 warm — the torn push already warmed it,
	//             and the acked retry was an idempotent refresh
	//   op 19     RemovePeer p1 → e4; p1 pushes qb to its new owner
	//             (op 20), evicts it, then dies; op-19 request = qd
	//   op 21     qb hits its new owner warm
	//   ops 22-24 final sweep qa qc qd — all warm
	world.ct = faultinject.NewClusterTransport(handlers, restart,
		faultinject.PeerAction{AtOp: 4, Kind: faultinject.AddPeer, Peer: "peer3", Weight: 1},
		faultinject.PeerAction{AtOp: 9, Kind: faultinject.KillMidResponse, Peer: "peer3", AfterBytes: 150},
		faultinject.PeerAction{AtOp: 9, Kind: faultinject.MoveArc, Peer: "peer3", Weight: 4},
		faultinject.PeerAction{AtOp: 15, Kind: faultinject.RestartPeer, Peer: "peer3"},
		faultinject.PeerAction{AtOp: 16, Kind: faultinject.MoveArc, Peer: "peer3", Weight: 5},
		faultinject.PeerAction{AtOp: 19, Kind: faultinject.RemovePeer, Peer: "peer1"},
	)
	world.ct.SetMembershipHook(world.handleMembership)

	local := serve.New(serve.Config{TCoeff: 1, Seed: 1})
	router, err := NewRouter(RouterConfig{
		Peers: peers,
		Local: local,
		// Deterministic mode, as in the static chaos test: sequential
		// failover, no circuit state, single attempt per peer.
		Health: HealthConfig{Breaker: client.BreakerConfig{Threshold: -1}},
		Client: client.Config{Transport: world.ct, MaxAttempts: 1, PerAttemptTimeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	world.router = router
	for _, p := range peers {
		world.rebalancers[p] = world.newRebalancer(p)
		if _, err := world.rebalancers[p].Apply(context.Background(), router.Epoch()); err != nil {
			t.Fatal(err)
		}
	}

	shapes := map[string]*catalog.Query{"qa": qa, "qb": qb, "qc": qc, "qd": qd}
	var recorded []json.RawMessage
	ctx := context.Background()
	do := func(name string, wantHit bool) {
		t.Helper()
		resp, err := router.Optimize(ctx, shapes[name])
		if err != nil {
			t.Fatalf("shape %s at op %d: surfaced error %v", name, world.ct.Ops(), err)
		}
		if resp.Explain == "" || len(resp.Order) == 0 || resp.Fingerprint == "" || resp.Degraded {
			t.Fatalf("shape %s at op %d: invalid plan %+v", name, world.ct.Ops(), resp)
		}
		if wantHit && !resp.CacheHit {
			t.Fatalf("shape %s at op %d: want a warm cache hit, got a cold computation", name, world.ct.Ops())
		}
		raw, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		recorded = append(recorded, raw)
	}

	do("qa", false) // ops 0-3: warm the shapes on their e0 owners
	do("qb", false)
	do("qc", false)
	do("qd", false)
	do("qd", true) // op 4: claims the join; qa pushed to p3 at op 5
	do("qa", true) // op 6: the joined peer serves its pushed arc warm
	do("qb", true) // op 7
	do("qc", true) // op 8
	do("qd", true) // op 9: claims the torn-push weight bump (ops 10-12)
	do("qc", true) // op 13: p3 down → failover (op 14) to warm old owner
	do("qb", true) // op 15: claims p3's restart
	do("qd", true) // op 16: claims the w5 bump; qc push retried (op 17)
	do("qc", true) // op 18: p3 serves qc warm — no cold miss anywhere
	do("qd", true) // op 19: claims the leave; qb handed off (op 20)
	do("qb", true) // op 21: qb's new owner serves it warm
	do("qa", true) // ops 22-24: final sweep, every shape warm
	do("qc", true)
	do("qd", true)

	// The joined peer never computed anything: both its arcs arrived
	// by push (the join push and the torn-then-retried move), and
	// every request it served was a warm hit.
	p3 := world.servers["http://peer3"]
	if st := p3.Cache().Stats(); st.Misses != 0 || st.Warmed == 0 {
		t.Fatalf("joined peer stats %+v: want pushed-arc hits with zero cold misses", st)
	}

	blob, err := json.Marshal(recorded)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := json.Marshal(router.Stats())
	if err != nil {
		t.Fatal(err)
	}
	return &churnRun{
		trajectory: world.ct.Trajectory(),
		responses:  blob,
		rebalLog:   strings.Join(world.rebalLog, "\n"),
		stats:      stats,
		world:      world,
		final:      router.Epoch(),
	}
}

// TestMembershipChurnChaos is the dynamic-membership acceptance run
// (see file comment). CI runs it under -race in the cluster-churn job.
func TestMembershipChurnChaos(t *testing.T) {
	before := runtime.NumGoroutine()

	first := runChurnScript(t)

	// The run exercised every membership path with the expected router
	// counters: epochs 0-4 applied, exactly one failover (the torn-push
	// window), and the ring never exhausted down to the local rung.
	st := first.world.router.Stats()
	if st.Epoch != 4 || st.EpochApplies != 5 {
		t.Fatalf("stats %+v, want epochs 0-4 applied", st)
	}
	if st.LocalFallbacks != 0 {
		t.Fatalf("localFallbacks = %d: membership churn must never exhaust the ring", st.LocalFallbacks)
	}
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want exactly the torn-push window's one", st.Failovers)
	}

	tr := first.trajectory
	for _, want := range []string{
		"!add-peer peer3",
		"!register peer3",
		"!arm-torn peer3 after=150",
		"POST peer3/snapshot/arc -> torn@", // destination died mid-arc-push
		"POST peer3/snapshot/arc -> down",  // the bounded retries found it dead
		"!move-arc peer3 weight=4",
		"POST peer3/optimize -> down", // the failover window
		"!restart peer3",
		"!move-arc peer3 weight=5",
		"POST peer3/snapshot/arc -> 200", // the join push and the acked retry
		"!remove-peer peer1",
		"!kill peer1", // after its handoff push (counted below)
	} {
		if !strings.Contains(tr, want) {
			t.Fatalf("trajectory missing %q:\n%s", want, tr)
		}
	}
	// Push accounting, exactly: the join push, the acked retry after
	// the restart, and the leaver's handoff succeed; the torn attempt
	// and its two dead retries fail. And no request may ever have found
	// the departed peer1: it died only after handing off its arcs.
	if got := strings.Count(tr, "/snapshot/arc -> 200"); got != 3 {
		t.Fatalf("%d acked arc pushes, want 3:\n%s", got, tr)
	}
	if got := strings.Count(tr, "/snapshot/arc -> torn@"); got != 1 {
		t.Fatalf("%d torn arc pushes, want 1:\n%s", got, tr)
	}
	if got := strings.Count(tr, "peer3/snapshot/arc -> down"); got != 2 {
		t.Fatalf("%d dead-retry arc pushes, want 2:\n%s", got, tr)
	}
	if strings.Contains(tr, "peer1/optimize -> down") {
		t.Fatalf("a request hit the departed peer1 after its handoff:\n%s", tr)
	}

	// Epoch changes evicted exactly the arcs each node no longer owns:
	// one targeted eviction per handoff (qa at the join, qc at the
	// acked retry, qb at the leave), zero capacity evictions, the
	// departed peer empty, and every surviving entry owned by its
	// holder under the final ring.
	finalRing := first.final.Ring()
	wantEvictions := map[string]uint64{
		"http://peer0": 1, // qa → p3 at e1
		"http://peer1": 1, // qb → its e4 owner at the leave
		"http://peer2": 1, // qc → p3 at e3 (the e2 push tore and kept it)
		"http://peer3": 0,
	}
	entries := 0
	for url, srv := range first.world.servers {
		cst := srv.Cache().Stats()
		if cst.TargetedEvictions != wantEvictions[url] {
			t.Fatalf("%s targeted evictions = %d, want %d", url, cst.TargetedEvictions, wantEvictions[url])
		}
		if cst.Evictions != 0 {
			t.Fatalf("%s capacity evictions = %d, want 0", url, cst.Evictions)
		}
		if url == "http://peer1" {
			if cst.Entries != 0 {
				t.Fatalf("departed peer1 still holds %d entries after handoff", cst.Entries)
			}
			continue
		}
		entries += cst.Entries
		for _, e := range srv.Cache().Dump() {
			if owner := finalRing.Primary(e.Fingerprint); owner != url {
				t.Fatalf("%s still holds %s's arc %s after the final epoch", url, owner, e.Fingerprint)
			}
		}
	}
	if entries != 4 {
		t.Fatalf("survivors hold %d entries, want the 4 shapes exactly once each", entries)
	}

	// Determinism: a second same-seed run reproduces the trajectory,
	// the rebalance log, the router counters, and every response byte
	// for byte.
	second := runChurnScript(t)
	if first.trajectory != second.trajectory {
		t.Fatalf("same-seed trajectories differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first.trajectory, second.trajectory)
	}
	if string(first.responses) != string(second.responses) {
		t.Fatal("same-seed response sequences differ")
	}
	if first.rebalLog != second.rebalLog {
		t.Fatalf("same-seed rebalance logs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first.rebalLog, second.rebalLog)
	}
	if string(first.stats) != string(second.stats) {
		t.Fatalf("same-seed router stats differ:\n%s\nvs\n%s", first.stats, second.stats)
	}

	// No goroutines may survive the churn.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}
