package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"joinopt/internal/client"
	"joinopt/internal/persist"
	"joinopt/internal/plancache"
	"joinopt/internal/telemetry"
)

// Rebalancing: when a membership epoch moves an arc off this node —
// a new peer joined, a weight bump shifted ownership, or this node is
// leaving — the node that currently holds the arc's plans pushes them
// to the new owner over POST /snapshot/arc, then drops its no-longer-
// owned entries. A joining peer therefore serves its first request for
// a moved arc warm, without depending on its one startup snapshot pull.
//
// Safety rules, in priority order:
//
//  1. Never lose an arc: an entry is evicted only after its new owner
//     acknowledged the push. A failed push (dead peer, open breaker,
//     overflowed queue) keeps the entries local — stale-but-present
//     beats gone, and the next epoch diff retries them.
//  2. Never wedge on a dead destination: pushes are breaker-guarded
//     (per destination, reusing internal/client's breaker) with a
//     bounded retry budget and a bounded per-epoch entry queue.
//  3. Never block serving: Apply runs on the membership watcher's
//     goroutine, not on any request path.

// RebalanceConfig tunes a Rebalancer.
type RebalanceConfig struct {
	// Self is this node's own membership URL (normalized, no trailing
	// slash) — the identity ownership is judged against. Required.
	Self string
	// Cache is the local plan cache pushes are drawn from and
	// evictions applied to. Required.
	Cache *plancache.Cache
	// Transport performs the pushes (default http.DefaultTransport;
	// the chaos harness injects its cluster transport). Pushes
	// deliberately do not go through client.Client for the same reason
	// warm start does not: its body cap and retry machinery fit plan
	// responses, not bulk snapshot payloads.
	Transport http.RoundTripper
	// MaxAttempts bounds tries per destination per epoch (default 3).
	MaxAttempts int
	// RetryBackoff is the pause between attempts on one destination
	// (default 250ms), applied through Sleep.
	RetryBackoff time.Duration
	// Sleep pauses between retries (nil = ctx-aware real timer; tests
	// inject a no-op for determinism).
	Sleep func(ctx context.Context, d time.Duration) error
	// PerPushTimeout bounds one POST end to end (default 30s).
	PerPushTimeout time.Duration
	// MaxQueuedEntries bounds how many entries one epoch transition
	// may queue for pushing (default 8192). Overflow is dropped —
	// counted and kept local, never silently lost.
	MaxQueuedEntries int
	// Breaker tunes the per-destination push breakers.
	Breaker client.BreakerConfig
	// Now is the breakers' clock (nil = time.Now).
	Now func() time.Time
	// Logf, when set, receives one line per push failure and overflow
	// (typically log.Printf).
	Logf func(format string, args ...any)
}

func (c *RebalanceConfig) fill() error {
	if c.Self == "" {
		return errors.New("cluster: rebalancer needs Self")
	}
	if c.Cache == nil {
		return errors.New("cluster: rebalancer needs Cache")
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if c.PerPushTimeout <= 0 {
		c.PerPushTimeout = 30 * time.Second
	}
	if c.MaxQueuedEntries <= 0 {
		c.MaxQueuedEntries = 8192
	}
	return nil
}

// Rebalancer applies membership epochs on a serving node: under each
// newly applied epoch it pushes every held-but-no-longer-owned arc to
// its new owner and evicts what was acknowledged. One Rebalancer per
// node; Apply calls must be sequential (the membership watcher's loop
// already is).
type Rebalancer struct {
	cfg RebalanceConfig

	mu       sync.Mutex
	cur      *Epoch
	breakers map[string]*client.Breaker

	rebalances  atomic.Uint64 // epoch transitions applied
	pushes      atomic.Uint64 // successful arc pushes (one per destination per epoch)
	pushEntries atomic.Uint64 // entries shipped in successful pushes
	pushBytes   atomic.Uint64 // payload bytes shipped in successful pushes
	pushFails   atomic.Uint64 // destinations whose push failed this-epoch
	dropped     atomic.Uint64 // entries dropped by the bounded push queue
	evicted     atomic.Uint64 // entries evicted after ownership moved
}

// NewRebalancer builds a rebalancer for one serving node.
func NewRebalancer(cfg RebalanceConfig) (*Rebalancer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Rebalancer{cfg: cfg, breakers: make(map[string]*client.Breaker)}, nil
}

// RegisterMetrics exposes the rebalancer's counters on reg.
func (rb *Rebalancer) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("ljq_rebalance_total", "Membership epoch transitions applied by the rebalancer.", rb.rebalances.Load)
	reg.CounterFunc("ljq_arc_push_sent_total", "Successful arc pushes to new owners.", rb.pushes.Load)
	reg.CounterFunc("ljq_arc_push_sent_entries_total", "Plan-cache entries shipped in successful arc pushes.", rb.pushEntries.Load)
	reg.CounterFunc("ljq_arc_push_sent_bytes_total", "Payload bytes shipped in successful arc pushes.", rb.pushBytes.Load)
	reg.CounterFunc("ljq_arc_push_failed_total", "Arc pushes abandoned after retries or an open breaker.", rb.pushFails.Load)
	reg.CounterFunc("ljq_arc_push_dropped_entries_total", "Entries the bounded push queue refused to enqueue.", rb.dropped.Load)
	reg.CounterFunc("ljq_rebalance_evicted_total", "Entries evicted because an epoch moved their arc away.", rb.evicted.Load)
}

// RebalanceResult describes one epoch application.
type RebalanceResult struct {
	// Epoch is the applied sequence number.
	Epoch uint64 `json:"epoch"`
	// Pushed maps destination → entries acknowledged by it.
	Pushed map[string]int `json:"pushed,omitempty"`
	// Failed lists destinations whose push was abandoned.
	Failed []string `json:"failed,omitempty"`
	// Evicted is how many no-longer-owned entries were dropped.
	Evicted int `json:"evicted"`
	// Dropped is how many entries the bounded queue refused.
	Dropped int `json:"dropped"`
}

// Epoch returns the epoch the rebalancer last applied (nil before the
// first Apply).
func (rb *Rebalancer) Epoch() *Epoch {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.cur
}

// Apply transitions the node to epoch e: push moved arcs, then evict
// what was acknowledged. The first Apply adopts e without a diff
// (bootstrap — there is no prior ownership to hand off). Non-monotonic
// epochs are ignored. Apply is synchronous; run it on the membership
// watcher's goroutine.
func (rb *Rebalancer) Apply(ctx context.Context, e *Epoch) (*RebalanceResult, error) {
	if e == nil {
		return nil, errors.New("cluster: nil epoch")
	}
	// Claim the transition under the lock, then ship outside it: the
	// pushes are network I/O and must not hold rb.mu. Claiming first is
	// safe because a failed push keeps its entries local and they stay
	// held-but-not-owned, so the next epoch retries them regardless of
	// which epoch is current.
	rb.mu.Lock()
	prev := rb.cur
	if prev != nil && e.Seq <= prev.Seq {
		rb.mu.Unlock()
		return &RebalanceResult{Epoch: prev.Seq}, nil
	}
	rb.cur = e
	rb.mu.Unlock()
	res := &RebalanceResult{Epoch: e.Seq}
	if prev != nil {
		rb.ship(ctx, e, res)
	}
	rb.rebalances.Add(1)
	return res, nil
}

// ship does the actual transition work: group the held-but-not-owned
// entries by their owner under the new epoch, push each group, evict
// the acknowledged ones. Ownership is judged against the NEW epoch
// alone (not a prev-vs-next diff): an entry whose push failed on an
// earlier transition is still held-but-not-owned on the next one, so
// it is retried instead of orphaned. Runs without rb.mu (the pushes
// block on the network); Apply calls are sequential by contract.
func (rb *Rebalancer) ship(ctx context.Context, next *Epoch, res *RebalanceResult) {
	self := rb.cfg.Self
	// Dump is fingerprint-sorted, so groups, push order and the
	// trajectory they produce are deterministic for a given cache
	// state.
	moved := make(map[string][]*plancache.Entry)
	queued := 0
	for _, ent := range rb.cfg.Cache.Dump() {
		dest := next.ring.Primary(ent.Fingerprint)
		if dest == self {
			continue // ours under the new epoch
		}
		if queued >= rb.cfg.MaxQueuedEntries {
			res.Dropped++
			rb.dropped.Add(1)
			continue
		}
		moved[dest] = append(moved[dest], ent)
		queued++
	}
	if res.Dropped > 0 {
		rb.logf("rebalance epoch %d: push queue full, kept %d entries local", next.Seq, res.Dropped)
	}
	if len(moved) == 0 {
		return
	}
	dests := make([]string, 0, len(moved))
	//ljqlint:allow detrand -- keys are sorted immediately below
	for d := range moved {
		dests = append(dests, d)
	}
	sort.Strings(dests)

	acked := make(map[string]bool, len(dests))
	for _, dest := range dests {
		n, err := rb.pushArc(ctx, dest, moved[dest])
		if err != nil {
			rb.pushFails.Add(1)
			res.Failed = append(res.Failed, dest)
			rb.logf("rebalance epoch %d: push to %s failed, keeping %d entries local: %v", next.Seq, dest, len(moved[dest]), err)
			continue
		}
		acked[dest] = true
		if res.Pushed == nil {
			res.Pushed = make(map[string]int, len(dests))
		}
		res.Pushed[dest] = n
	}

	// Evict exactly the no-longer-owned arcs whose new owner
	// acknowledged the push; unacknowledged ones stay (rule 1: stale
	// beats gone). EvictWhere itself skips entries mid-singleflight.
	res.Evicted = rb.cfg.Cache.EvictWhere(func(k plancache.Key) bool {
		dest := next.ring.Primary(k)
		return dest != self && acked[dest]
	})
	rb.evicted.Add(uint64(res.Evicted))
}

// pushArc ships entries to dest's POST /snapshot/arc, breaker-guarded
// with a bounded retry budget. Returns how many entries dest reported
// warming.
func (rb *Rebalancer) pushArc(ctx context.Context, dest string, entries []*plancache.Entry) (int, error) {
	rb.mu.Lock()
	br := rb.breakers[dest]
	if br == nil {
		br = client.NewBreaker(rb.cfg.Breaker, rb.cfg.Now)
		rb.breakers[dest] = br
	}
	rb.mu.Unlock()
	payload := persist.EncodeSnapshot(entries)
	var lastErr error
	for attempt := 0; attempt < rb.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if attempt > 0 {
			if err := rb.cfg.Sleep(ctx, rb.cfg.RetryBackoff); err != nil {
				return 0, err
			}
		}
		if !br.Allow() {
			if lastErr == nil {
				lastErr = errors.New("push breaker open")
			}
			return 0, lastErr
		}
		if err := rb.postOnce(ctx, dest, payload); err != nil {
			br.Failure()
			lastErr = err
			continue
		}
		br.Success()
		rb.pushes.Add(1)
		rb.pushEntries.Add(uint64(len(entries)))
		rb.pushBytes.Add(uint64(len(payload)))
		return len(entries), nil
	}
	return 0, fmt.Errorf("after %d attempts: %w", rb.cfg.MaxAttempts, lastErr)
}

// postOnce performs one POST /snapshot/arc round trip.
func (rb *Rebalancer) postOnce(ctx context.Context, dest string, payload []byte) error {
	pctx, cancel := context.WithTimeout(ctx, rb.cfg.PerPushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, dest+"/snapshot/arc", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.ContentLength = int64(len(payload))
	resp, err := rb.cfg.Transport.RoundTrip(req)
	if err != nil {
		return fmt.Errorf("push: %w", err)
	}
	defer resp.Body.Close()
	// Drain so the transport can reuse the connection; the body is a
	// small JSON ack and the status code alone decides the outcome.
	if _, err := io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)); err != nil {
		return fmt.Errorf("torn ack: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("destination answered %d", resp.StatusCode)
	}
	return nil
}

// logf logs through the configured sink, if any.
func (rb *Rebalancer) logf(format string, args ...any) {
	if rb.cfg.Logf != nil {
		rb.cfg.Logf(format, args...)
	}
}
