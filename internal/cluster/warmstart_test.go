package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"joinopt/internal/faultinject"
	"joinopt/internal/fingerprint"
	"joinopt/internal/persist"
	"joinopt/internal/plan"
	"joinopt/internal/plancache"
	"joinopt/internal/qfile"
	"joinopt/internal/serve"
	"joinopt/internal/workload"
)

// wsEntry fabricates a cacheable entry for warm-start tests.
func wsEntry(i int) *plancache.Entry {
	var fp fingerprint.Fingerprint
	binary.LittleEndian.PutUint64(fp[:8], uint64(i))
	return &plancache.Entry{
		Fingerprint: fp,
		Plan: &plan.Plan{
			Components: []plan.Result{{Perm: plan.Perm{0, 1}, Cost: float64(i) + 0.5}},
			TotalCost:  float64(i) + 0.5,
		},
		BudgetUsed: int64(100 + i),
	}
}

// snapshotHandler serves a fixed payload on /snapshot.
func snapshotHandler(payload []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/snapshot" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		_, _ = w.Write(payload)
	})
}

func TestWarmStartHappyPath(t *testing.T) {
	entries := []*plancache.Entry{wsEntry(1), wsEntry(2), wsEntry(3)}
	payload := persist.EncodeSnapshot(entries)
	ct := faultinject.NewClusterTransport(map[string]http.Handler{
		"donor": snapshotHandler(payload),
	}, nil)

	cache := plancache.New(plancache.Config{Capacity: 64})
	res, err := WarmStart(context.Background(), cache, WarmStartConfig{
		Donors:    []string{"http://donor"},
		Transport: ct,
	})
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if res.Donor != "http://donor" || res.Entries != 3 || res.Bytes != int64(len(payload)) {
		t.Fatalf("result %+v", res)
	}
	for _, e := range entries {
		if _, ok := cache.Get(e.Fingerprint); !ok {
			t.Fatalf("entry %s not warmed", e.Fingerprint)
		}
	}
	if st := cache.Stats(); st.Warmed != 3 {
		t.Fatalf("warmed counter = %d", st.Warmed)
	}
}

// TestWarmStartTornStreamFallsToNextDonor: the first donor dies
// mid-snapshot-stream; the strict decoder refuses the torn payload and
// the second donor supplies the snapshot.
func TestWarmStartTornStreamFallsToNextDonor(t *testing.T) {
	entries := []*plancache.Entry{wsEntry(1), wsEntry(2)}
	payload := persist.EncodeSnapshot(entries)
	ct := faultinject.NewClusterTransport(map[string]http.Handler{
		"d1": snapshotHandler(payload),
		"d2": snapshotHandler(payload),
	}, nil,
		faultinject.PeerAction{AtOp: 0, Kind: faultinject.KillMidResponse, Peer: "d1", AfterBytes: len(payload) / 2},
	)

	cache := plancache.New(plancache.Config{Capacity: 64})
	res, err := WarmStart(context.Background(), cache, WarmStartConfig{
		Donors:    []string{"http://d1", "http://d2"},
		Transport: ct,
	})
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if res.Donor != "http://d2" || res.Entries != 2 {
		t.Fatalf("result %+v, want donor d2", res)
	}
	if len(res.Attempts) != 1 || res.Attempts[0].Donor != "http://d1" {
		t.Fatalf("attempts %+v", res.Attempts)
	}
	if cache.Stats().Warmed != 2 {
		t.Fatal("cache not warmed from the second donor")
	}
}

// TestWarmStartRefusesTruncationWithIntactRead: a payload that arrives
// "complete" at the transport level but is a truncated container (the
// donor snapshotted a torn file) is refused by the strict decoder.
func TestWarmStartRefusesTruncatedContainer(t *testing.T) {
	payload := persist.EncodeSnapshot([]*plancache.Entry{wsEntry(1), wsEntry(2)})
	torn := payload[:len(payload)-7]
	ct := faultinject.NewClusterTransport(map[string]http.Handler{
		"d1": snapshotHandler(torn),
	}, nil)

	cache := plancache.New(plancache.Config{Capacity: 64})
	_, err := WarmStart(context.Background(), cache, WarmStartConfig{
		Donors:    []string{"http://d1"},
		Transport: ct,
	})
	if !errors.Is(err, ErrNoDonor) {
		t.Fatalf("err = %v, want ErrNoDonor", err)
	}
	if cache.Stats().Warmed != 0 {
		t.Fatal("torn container partially warmed the cache")
	}
}

// TestWarmStartRefusesSchemaMismatch: a donor running a different
// fingerprint schema version must be refused — its plans answer
// different canonical questions.
func TestWarmStartRefusesSchemaMismatch(t *testing.T) {
	payload := persist.EncodeSnapshot([]*plancache.Entry{wsEntry(1)})
	forged := make([]byte, len(payload))
	copy(forged, payload)
	forged[5] = fingerprint.SchemaVersion + 1
	// Recompute the header CRC so only the schema check can object.
	forgeHeaderCRC(forged)

	ct := faultinject.NewClusterTransport(map[string]http.Handler{
		"d1": snapshotHandler(forged),
	}, nil)
	cache := plancache.New(plancache.Config{Capacity: 64})
	res, err := WarmStart(context.Background(), cache, WarmStartConfig{
		Donors:    []string{"http://d1"},
		Transport: ct,
	})
	if !errors.Is(err, ErrNoDonor) {
		t.Fatalf("err = %v, want ErrNoDonor", err)
	}
	if len(res.Attempts) != 1 {
		t.Fatalf("attempts %+v", res.Attempts)
	}
	if cache.Stats().Warmed != 0 {
		t.Fatal("schema-mismatched snapshot warmed the cache")
	}
}

func TestWarmStartRespectsByteCap(t *testing.T) {
	payload := persist.EncodeSnapshot([]*plancache.Entry{wsEntry(1), wsEntry(2), wsEntry(3)})
	ct := faultinject.NewClusterTransport(map[string]http.Handler{
		"d1": snapshotHandler(payload),
	}, nil)
	cache := plancache.New(plancache.Config{Capacity: 64})
	_, err := WarmStart(context.Background(), cache, WarmStartConfig{
		Donors:    []string{"http://d1"},
		Transport: ct,
		MaxBytes:  int64(len(payload) - 1),
	})
	if !errors.Is(err, ErrNoDonor) {
		t.Fatalf("err = %v, want ErrNoDonor (payload over cap)", err)
	}
}

func TestWarmStartDeadDonorFallsThrough(t *testing.T) {
	payload := persist.EncodeSnapshot([]*plancache.Entry{wsEntry(4)})
	ct := faultinject.NewClusterTransport(map[string]http.Handler{
		"d1": snapshotHandler(payload),
		"d2": snapshotHandler(payload),
	}, nil)
	ct.Kill("d1")
	cache := plancache.New(plancache.Config{Capacity: 64})
	res, err := WarmStart(context.Background(), cache, WarmStartConfig{
		Donors:    []string{"http://d1", "http://d2"},
		Transport: ct,
	})
	if err != nil || res.Donor != "http://d2" {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// TestRestartJoinServesWarmPlans is the restart-join satellite: a
// fresh peer warm-starts from a live donor's /snapshot and serves the
// donor's cached plan as a byte-identical cache hit, without running
// its own optimizer.
func TestRestartJoinServesWarmPlans(t *testing.T) {
	donor := serve.New(serve.Config{TCoeff: 1})
	dts := httptest.NewServer(donor.Handler())
	defer dts.Close()

	q := workload.Default().Generate(12, rand.New(rand.NewSource(21)))
	var buf bytes.Buffer
	if err := qfile.Write(&buf, q); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(dts.URL+"/optimize", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var first serve.OptimizeResponse
	if err := jsonDecode(resp, &first); err != nil {
		t.Fatal(err)
	}

	// The joiner: fresh server, warm-started over HTTP before serving.
	joiner := serve.New(serve.Config{TCoeff: 1})
	res, err := WarmStart(context.Background(), joiner.Cache(), WarmStartConfig{
		Donors: []string{dts.URL},
	})
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if res.Entries != 1 {
		t.Fatalf("warmed %d entries, want 1", res.Entries)
	}

	jts := httptest.NewServer(joiner.Handler())
	defer jts.Close()
	resp2, err := http.Post(jts.URL+"/optimize", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var warmed serve.OptimizeResponse
	if err := jsonDecode(resp2, &warmed); err != nil {
		t.Fatal(err)
	}
	if !warmed.CacheHit {
		t.Fatal("warm-started peer missed on a shipped shape")
	}
	if warmed.Explain != first.Explain || warmed.Fingerprint != first.Fingerprint {
		t.Fatal("warm-started plan is not byte-identical to the donor's")
	}
	if warmed.BudgetUsed != first.BudgetUsed {
		t.Fatalf("budgetUsed drifted: %d != %d", warmed.BudgetUsed, first.BudgetUsed)
	}
	// No recomputation: the joiner's optimizer never ran.
	st, err := statusOf(jts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Optimizations != 0 {
		t.Fatalf("joiner ran %d optimizations, want 0", st.Optimizations)
	}
}

// TestWarmStartEmptySnapshotIsSuccess: a donor whose cache is simply
// empty ships a syntactically valid zero-entry snapshot. That is a
// successful warm start (the donor answered authoritatively — there is
// nothing to ship), NOT a failure to fall through to the next donor:
// falling through would hammer every peer in turn for a cluster that
// legitimately has no cached plans yet.
func TestWarmStartEmptySnapshotIsSuccess(t *testing.T) {
	empty := persist.EncodeSnapshot(nil)
	full := persist.EncodeSnapshot([]*plancache.Entry{wsEntry(1)})
	ct := faultinject.NewClusterTransport(map[string]http.Handler{
		"d1": snapshotHandler(empty),
		"d2": snapshotHandler(full), // must never be consulted
	}, nil)

	cache := plancache.New(plancache.Config{Capacity: 64})
	res, err := WarmStart(context.Background(), cache, WarmStartConfig{
		Donors:    []string{"http://d1", "http://d2"},
		Transport: ct,
	})
	if err != nil {
		t.Fatalf("WarmStart with empty donor: %v", err)
	}
	if res.Donor != "http://d1" || res.Entries != 0 || len(res.Attempts) != 0 {
		t.Fatalf("result %+v, want a clean zero-entry success from d1", res)
	}
	if got := ct.Ops(); got != 1 {
		t.Fatalf("%d transport ops, want 1: the empty snapshot fell through to the next donor", got)
	}
	if st := cache.Stats(); st.Warmed != 0 {
		t.Fatalf("warmed = %d, want 0", st.Warmed)
	}
}
