package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"

	"joinopt/internal/faultinject"
	"joinopt/internal/fingerprint"
	"joinopt/internal/serve"
)

// rebalanceFixture is a two-real-peer cluster plus a rebalancer on
// peer0, primed so peer0 owns warm arcs that a weight bump on peer1
// will pull away.
type rebalanceFixture struct {
	ct       *faultinject.ClusterTransport
	owner    *serve.Server // peer0, the rebalancing node
	receiver *serve.Server // peer1, the node gaining the arcs
	rb       *Rebalancer
	e0, e1   *Epoch // e1 bumps peer1's weight
}

func newRebalanceFixture(t *testing.T, primed int) *rebalanceFixture {
	t.Helper()
	f := &rebalanceFixture{
		owner:    serve.New(serve.Config{TCoeff: 1, Seed: 1}),
		receiver: serve.New(serve.Config{TCoeff: 1, Seed: 1}),
	}
	f.ct = faultinject.NewClusterTransport(map[string]http.Handler{
		"peer0": f.owner.Handler(),
		"peer1": f.receiver.Handler(),
	}, nil)
	var err error
	if f.e0, err = StaticEpoch([]string{"http://peer0", "http://peer1"}, 0); err != nil {
		t.Fatal(err)
	}
	if f.e1, err = NewEpoch(1, []Member{
		{URL: "http://peer0"},
		{URL: "http://peer1", Weight: 8},
	}, 0); err != nil {
		t.Fatal(err)
	}
	if f.rb, err = NewRebalancer(RebalanceConfig{
		Self:      "http://peer0",
		Cache:     f.owner.Cache(),
		Transport: f.ct,
		Sleep:     func(context.Context, time.Duration) error { return nil },
	}); err != nil {
		t.Fatal(err)
	}

	// Prime peer0 with plans it owns under e0 that move to peer1 under
	// e1 (weight bump only ever pulls arcs onto peer1).
	ctx := context.Background()
	planted := 0
	for n := 7; planted < primed; n++ {
		q := queryOwnedBy(t, f.e0.Ring(), "http://peer0", n)
		fp, _ := fingerprint.Canonical(q)
		if f.e1.Ring().Primary(fp) != "http://peer1" {
			continue
		}
		if _, err := f.owner.OptimizeQuery(ctx, q); err != nil {
			t.Fatal(err)
		}
		planted++
	}
	if _, err := f.rb.Apply(ctx, f.e0); err != nil { // bootstrap: adopts, no diff
		t.Fatal(err)
	}
	return f
}

func TestRebalancerPushesAndEvictsMovedArcs(t *testing.T) {
	f := newRebalanceFixture(t, 3)
	before := len(f.owner.Cache().Dump())

	res, err := f.rb.Apply(context.Background(), f.e1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.Pushed["http://peer1"] != 3 || res.Evicted != 3 || len(res.Failed) != 0 {
		t.Fatalf("result %+v, want 3 entries pushed to peer1 and 3 evicted", res)
	}
	// Eviction hit exactly the moved arcs — everything else stayed.
	if got := len(f.owner.Cache().Dump()); got != before-3 {
		t.Fatalf("owner cache %d entries, want %d", got, before-3)
	}
	if st := f.owner.Cache().Stats(); st.TargetedEvictions != 3 {
		t.Fatalf("targeted evictions = %d, want 3", st.TargetedEvictions)
	}
	// The receiver warmed the pushed entries without computing: its
	// next request for a moved arc is a warm hit, not a cold miss.
	if st := f.receiver.Cache().Stats(); st.Warmed != 3 || st.Misses != 0 {
		t.Fatalf("receiver stats %+v, want 3 warmed and no misses", st)
	}

	// Re-applying the same epoch (or an older one) is a no-op.
	res2, err := f.rb.Apply(context.Background(), f.e1)
	if err != nil || res2.Evicted != 0 || len(res2.Pushed) != 0 {
		t.Fatalf("re-apply: %+v err=%v", res2, err)
	}
}

func TestRebalancerKeepsEntriesWhenPushFails(t *testing.T) {
	f := newRebalanceFixture(t, 2)
	before := len(f.owner.Cache().Dump())

	// The destination is dead: pushes fail after retries, and the
	// no-longer-owned entries must stay local (stale beats gone).
	f.ct.Kill("peer1")
	res, err := f.rb.Apply(context.Background(), f.e1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != "http://peer1" {
		t.Fatalf("result %+v, want the push to peer1 recorded as failed", res)
	}
	if res.Evicted != 0 || len(f.owner.Cache().Dump()) != before {
		t.Fatalf("evicted %d of %d entries despite the failed push", res.Evicted, before)
	}
}
