package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"

	"joinopt/internal/client"
	"joinopt/internal/faultinject"
	"joinopt/internal/fingerprint"
	"joinopt/internal/plancache"
	"joinopt/internal/serve"
)

func TestRouterApplyEpochRoutesToJoinedPeer(t *testing.T) {
	tc := newTestCluster(t, RouterConfig{})
	ctx := context.Background()

	// peer3 joins: epoch 1 has four members. The router must mint a
	// client + breaker for it and route its arcs there.
	joined := serve.New(serve.Config{TCoeff: 1})
	tc.ct.Register("peer3", joined.Handler())
	e1, err := NewEpoch(1, []Member{
		{URL: "http://peer0"}, {URL: "http://peer1"},
		{URL: "http://peer2"}, {URL: "http://peer3"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.router.ApplyEpoch(e1); err != nil {
		t.Fatal(err)
	}
	if got := tc.router.Epoch().Seq; got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}

	q := queryOwnedBy(t, tc.router.Ring(), "http://peer3", 8)
	resp, err := tc.router.Optimize(ctx, q)
	if err != nil || len(resp.Order) == 0 {
		t.Fatalf("Optimize on joined peer: %v %+v", err, resp)
	}
	st := tc.router.Stats()
	if st.Routes["http://peer3"] != 1 || st.Failovers != 0 {
		t.Fatalf("stats %+v, want the request on peer3's own rung", st)
	}
	if joined.Cache().Stats().Misses != 1 {
		t.Fatal("joined peer did not serve its arc")
	}

	// Stale and duplicate epochs are ignored, not an error.
	e0, err := StaticEpoch(tc.peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.router.ApplyEpoch(e0); err != nil {
		t.Fatal(err)
	}
	if got := tc.router.Epoch().Seq; got != 1 {
		t.Fatalf("stale epoch replaced current: seq %d", got)
	}
	if err := tc.router.ApplyEpoch(nil); err == nil {
		t.Fatal("nil epoch must error")
	}
	if st := tc.router.Stats(); st.EpochApplies != 2 {
		t.Fatalf("EpochApplies = %d, want 2 (epoch 0 + epoch 1)", st.EpochApplies)
	}
}

// TestRouterShedFailover429 is the regression test for 429 handling:
// a peer answering 429 + Retry-After must cause immediate failover to
// the next ring candidate — no in-line Retry-After sleep, no breaker
// strike against the (alive) shedding peer, and never a surfaced 429
// while another rung lives.
func TestRouterShedFailover429(t *testing.T) {
	peers := []string{"http://peer0", "http://peer1", "http://peer2"}
	real := map[string]*serve.Server{}
	handlers := map[string]http.Handler{}
	for _, p := range peers[1:] {
		srv := serve.New(serve.Config{TCoeff: 1})
		real[p] = srv
		handlers[hostOf(p)] = srv.Handler()
	}
	// peer0 sheds everything with a long Retry-After: the worst case
	// for a router that camps on the hint instead of failing over.
	handlers["peer0"] = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "shedding", http.StatusTooManyRequests)
	})
	ct := faultinject.NewClusterTransport(handlers, nil)
	// Sleeping is forbidden while every failure is a shed: failover
	// must be immediate. (The end of the test kills real peers, whose
	// dead-transport retries may back off legitimately.)
	sleepForbidden := true
	router, err := NewRouter(RouterConfig{
		Peers: peers,
		Client: client.Config{
			Transport:   ct,
			MaxAttempts: 3, // even with in-client retries left, shed must fail over instead
			Sleep: func(ctx context.Context, d time.Duration) error {
				if sleepForbidden {
					t.Fatalf("router slept %v on a shedding peer instead of failing over", d)
				}
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	q := queryOwnedBy(t, router.Ring(), "http://peer0", 8)
	fp, _, _ := fingerprint.CanonicalQuery(q)
	second := router.Ring().Successors(fp, 2)[1]
	for i := 0; i < 10; i++ {
		resp, err := router.Optimize(ctx, q)
		if err != nil {
			t.Fatalf("request %d surfaced %v with a live successor", i, err)
		}
		if len(resp.Order) == 0 || resp.Explain == "" {
			t.Fatalf("request %d: invalid plan", i)
		}
	}
	st := router.Stats()
	if st.ShedFailovers != 10 || st.Failovers != 10 || st.Routes[second] != 10 {
		t.Fatalf("stats %+v, want all 10 requests shed off peer0 onto %s", st, second)
	}
	if st.BreakerSkips != 0 {
		t.Fatalf("breakerSkips = %d: shedding opened a breaker", st.BreakerSkips)
	}
	// Ten consecutive sheds (double the default 5-failure threshold)
	// left the peer's circuit closed: alive-but-busy is not dead.
	if got := router.Health().State("http://peer0"); got != "closed" {
		t.Fatalf("shedding peer breaker %q, want closed", got)
	}
	// With every rung shedding and no local rung, the 429 finally
	// surfaces as the last error rather than being swallowed.
	sleepForbidden = false
	ct.Kill("peer1")
	ct.Kill("peer2")
	if _, err := router.Optimize(ctx, q); err == nil {
		t.Fatal("want error once every rung is shedding or dead")
	}
}

func TestRouterReadRepairServesBetterLocalPlan(t *testing.T) {
	// peer0 plans under a starved work budget (schema-bump divergence
	// stand-in: same fingerprint, worse search outcome); the local
	// server already holds a better-searched plan. The routed response
	// must come back repaired to the local entry.
	peer := serve.New(serve.Config{TCoeff: 1})
	ct := faultinject.NewClusterTransport(map[string]http.Handler{"peer0": peer.Handler()}, nil)
	local := serve.New(serve.Config{TCoeff: 10})
	router, err := NewRouter(RouterConfig{
		Peers:  []string{"http://peer0"},
		Local:  local,
		Client: client.Config{Transport: ct, MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := queryOwnedBy(t, router.Ring(), "http://peer0", 8)
	want, err := local.OptimizeQuery(ctx, q) // seeds the local cache
	if err != nil {
		t.Fatal(err)
	}

	resp, err := router.Optimize(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalCost != want.TotalCost {
		t.Fatalf("served cost %v, want repaired local cost %v", resp.TotalCost, want.TotalCost)
	}
	st := router.Stats()
	if st.ReadRepairs != 1 || st.RepairsServed != 1 || st.RepairsUpgraded != 0 {
		t.Fatalf("stats %+v, want one served repair", st)
	}
}

func TestRouterReadRepairUpgradesLocalCache(t *testing.T) {
	peer := serve.New(serve.Config{TCoeff: 1})
	ct := faultinject.NewClusterTransport(map[string]http.Handler{"peer0": peer.Handler()}, nil)
	local := serve.New(serve.Config{TCoeff: 1})
	router, err := NewRouter(RouterConfig{
		Peers:  []string{"http://peer0"},
		Local:  local,
		Client: client.Config{Transport: ct, MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := queryOwnedBy(t, router.Ring(), "http://peer0", 8)
	fp, _ := fingerprint.Canonical(q)

	// Plant a worse local entry for the same fingerprint: greedy tier,
	// inflated cost (a stale fast-path survivor).
	good, err := peer.OptimizeQuery(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := peer.Cache().Peek(fp)
	if !ok || len(ent.Plan.Components) != 1 {
		t.Fatalf("peer cache entry missing or multi-component: %v", ok)
	}
	worse := &plancache.Entry{
		Fingerprint: fp,
		Plan:        ent.Plan,
		Tier:        plancache.TierGreedy,
	}
	if !local.Cache().Warm(worse) {
		t.Fatal("could not plant the stale local entry")
	}

	resp, err := router.Optimize(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.TotalCost != good.TotalCost {
		t.Fatalf("routed cost %v, want %v", resp.TotalCost, good.TotalCost)
	}
	after, ok := local.Cache().Peek(fp)
	if !ok || plancache.TierRank(after.Tier) != plancache.TierFull {
		t.Fatalf("local entry not upgraded: ok=%v tier=%d", ok, after.Tier)
	}
	st := router.Stats()
	if st.ReadRepairs != 1 || st.RepairsUpgraded != 1 || st.RepairsServed != 0 {
		t.Fatalf("stats %+v, want one upgrade repair", st)
	}
}
