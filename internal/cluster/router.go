package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/client"
	"joinopt/internal/fingerprint"
	"joinopt/internal/plan"
	"joinopt/internal/plancache"
	"joinopt/internal/serve"
	"joinopt/internal/telemetry"
)

// ErrNoPeers reports that every routing rung is gone: all candidate
// peers failed or were skipped and the router has no local optimizer.
var ErrNoPeers = errors.New("cluster: no peer available and no local optimizer")

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Peers are the initial ring members' base URLs (e.g.
	// "http://host:8080") — membership epoch 0. ApplyEpoch swaps in
	// later generations without rebuilding the router.
	Peers []string
	// Replicas is the ring's virtual-node count per weight unit per
	// peer (default DefaultReplicas).
	Replicas int
	// FallbackDepth is how many ring successors beyond the primary to
	// try before falling back to local compute (default: every other
	// peer).
	FallbackDepth int
	// Local, when set, is the last rung of the degradation ladder: an
	// in-process serve.Server that optimizes when every candidate peer
	// is unreachable. Without it, total peer loss surfaces ErrNoPeers.
	// It is also the read-repair anchor: routed responses are compared
	// against this server's plan cache, and whichever side holds the
	// higher-tier / cheaper plan wins (see readRepair).
	Local *serve.Server
	// Client is the template for the per-peer resilient clients.
	// BaseURL is set per peer; the per-client circuit breaker is
	// DISABLED (the Health view owns circuit state — double-breaking
	// would make one peer's cooldown unobservable to routing) and
	// ShedFailFast is forced on (a shedding peer should cause immediate
	// failover to the next candidate, not an in-line Retry-After sleep).
	Client client.Config
	// HedgeDelay, when positive, races the next ring successor after
	// this much primary silence instead of waiting for it to fail
	// outright; the first useful response wins and the loser is
	// cancelled. 0 = strictly sequential failover (deterministic, the
	// chaos harness's mode).
	HedgeDelay time.Duration
	// After overrides the hedge timer (tests); nil = real timer.
	After func(d time.Duration) <-chan time.Time
	// Health tunes the peer-health view. A nil Health.Probe defaults
	// to GET /readyz through the per-peer client.
	Health HealthConfig
	// Metrics, when set, receives per-peer routing counters, breaker
	// churn, health gauges and the per-peer client resilience stats.
	Metrics *telemetry.Registry
}

// peerState is one peer's routing state: its resilient client and
// success counter. States are created when a peer first appears in an
// epoch and never removed — a peer that leaves and rejoins keeps its
// counters, and metrics for it register exactly once.
type peerState struct {
	client *client.Client
	routes atomic.Uint64
}

// Router is the cluster routing client: consistent-hash primary
// routing with breaker-aware ring-successor failover and optional
// local compute. Safe for concurrent use; with HedgeDelay == 0 and a
// sequential caller its request trajectory is deterministic.
//
// Membership is epoch-based: the ring lives behind an atomic pointer
// to the current Epoch, loaded exactly once per request — every
// request observes one consistent (ring, epoch) pair, and a request
// in flight when ApplyEpoch lands finishes on the epoch it started on.
type Router struct {
	cfg    RouterConfig
	epoch  atomic.Pointer[Epoch]
	health *Health

	mu    sync.RWMutex // guards peers map shape (not the states within)
	peers map[string]*peerState

	failovers       atomic.Uint64 // responses served by a non-primary peer
	breakerSkips    atomic.Uint64 // candidates skipped with an open breaker
	localFallbacks  atomic.Uint64 // requests served by local compute
	hedgedFallbacks atomic.Uint64 // successor launches triggered by the hedge timer
	shedFailovers   atomic.Uint64 // candidates skipped over because they answered 429/503
	epochApplies    atomic.Uint64 // membership epochs applied
	staleEpochs     atomic.Uint64 // ApplyEpoch calls ignored as non-monotonic
	readRepairs     atomic.Uint64 // read-repair actions (local served or local upgraded)
	repairsServed   atomic.Uint64 // read-repairs that served the better local entry
	repairsUpgraded atomic.Uint64 // read-repairs that upgraded the local cache from a routed plan
}

// NewRouter builds a router over the configured peers (epoch 0).
func NewRouter(cfg RouterConfig) (*Router, error) {
	epoch0, err := StaticEpoch(cfg.Peers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:   cfg,
		peers: make(map[string]*peerState, len(cfg.Peers)),
	}
	hcfg := cfg.Health
	if hcfg.Probe == nil {
		hcfg.Probe = func(ctx context.Context, peer string) error {
			c := r.clientFor(peer)
			if c == nil {
				return fmt.Errorf("cluster: unknown peer %s", peer)
			}
			return c.Ready(ctx)
		}
	}
	r.health = NewHealth(nil, hcfg)
	if reg := cfg.Metrics; reg != nil {
		reg.CounterFunc("ljq_cluster_failover_total", "Requests served by a non-primary ring peer.", r.failovers.Load)
		reg.CounterFunc("ljq_cluster_local_fallback_total", "Requests served by local compute after peer exhaustion.", r.localFallbacks.Load)
		reg.CounterFunc("ljq_cluster_breaker_skip_total", "Candidate peers skipped with an open breaker.", r.breakerSkips.Load)
		reg.CounterFunc("ljq_cluster_hedged_fallback_total", "Ring-successor launches triggered by the hedge timer.", r.hedgedFallbacks.Load)
		reg.CounterFunc("ljq_cluster_shed_failover_total", "Candidates failed over because they answered with load shedding (429/503).", r.shedFailovers.Load)
		reg.CounterFunc("ljq_cluster_epoch_applies_total", "Membership epochs applied to the routing ring.", r.epochApplies.Load)
		reg.CounterFunc("ljq_read_repair_total", "Read-repair actions: responses replaced by a better local entry plus local entries upgraded from routed plans.", r.readRepairs.Load)
		reg.GaugeFunc("ljq_cluster_epoch", "Current membership epoch sequence number.", func() float64 {
			return float64(r.Epoch().Seq)
		})
	}
	if err := r.ApplyEpoch(epoch0); err != nil {
		return nil, err
	}
	return r, nil
}

// ApplyEpoch swaps the routing ring to a new membership epoch. Epochs
// apply monotonically: a sequence number at or below the current one
// is ignored (counted, not an error — poll races are benign). New
// peers get clients, breakers and metrics on first sight; peers that
// left keep their state for a possible return. In-flight requests
// finish on the epoch they loaded; the next request sees e.
func (r *Router) ApplyEpoch(e *Epoch) error {
	if e == nil {
		return errors.New("cluster: nil epoch")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.epoch.Load(); cur != nil && e.Seq <= cur.Seq {
		r.staleEpochs.Add(1)
		return nil
	}
	for _, p := range e.Peers() {
		if err := r.ensurePeerLocked(p); err != nil {
			return err
		}
	}
	r.health.Ensure(e.Peers())
	r.epoch.Store(e)
	r.epochApplies.Add(1)
	return nil
}

// ensurePeerLocked creates peer's client/state on first sight. Caller
// holds r.mu.
func (r *Router) ensurePeerLocked(peer string) error {
	if _, ok := r.peers[peer]; ok {
		return nil
	}
	ccfg := r.cfg.Client
	ccfg.BaseURL = peer
	// Health owns the circuit state; a second breaker inside the
	// client would trip invisibly to routing. ShedFailFast: a peer
	// that answers 429/503 is alive but refusing work — the router
	// fails over to the next ring successor immediately instead of
	// camping on the shedding peer's Retry-After.
	ccfg.Breaker = client.BreakerConfig{Threshold: -1}
	ccfg.ShedFailFast = true
	c, err := client.New(ccfg)
	if err != nil {
		return fmt.Errorf("cluster: peer %s: %w", peer, err)
	}
	st := &peerState{client: c}
	r.peers[peer] = st
	if reg := r.cfg.Metrics; reg != nil {
		p := peer
		label := fmt.Sprintf("{peer=%q}", p)
		reg.CounterFunc("ljq_cluster_route_total"+label, "Requests served by this peer.", st.routes.Load)
		reg.CounterFunc("ljq_cluster_breaker_transitions_total"+label, "This peer's breaker state transitions.",
			func() uint64 { return r.health.Transitions(p) })
		reg.GaugeFunc("ljq_cluster_peer_healthy"+label, "1 while this peer's breaker admits traffic.", func() float64 {
			if r.health.Healthy(p) {
				return 1
			}
			return 0
		})
		c.RegisterMetrics(reg, "ljq_cluster_client", label)
	}
	return nil
}

// clientFor returns peer's client (nil if the peer was never in any
// applied epoch).
func (r *Router) clientFor(peer string) *client.Client {
	r.mu.RLock()
	st := r.peers[peer]
	r.mu.RUnlock()
	if st == nil {
		return nil
	}
	return st.client
}

// routeCounted bumps peer's success counter.
func (r *Router) routeCounted(peer string) {
	r.mu.RLock()
	st := r.peers[peer]
	r.mu.RUnlock()
	if st != nil {
		st.routes.Add(1)
	}
}

// Epoch returns the membership epoch requests are currently routed on.
func (r *Router) Epoch() *Epoch { return r.epoch.Load() }

// Ring exposes the current routing ring (status surfaces, tests).
func (r *Router) Ring() *Ring { return r.epoch.Load().ring }

// Health exposes the peer-health view.
func (r *Router) Health() *Health { return r.health }

// ProbeAll actively probes every admitted peer's /readyz (see
// Health.ProbeAll).
func (r *Router) ProbeAll(ctx context.Context) { r.health.ProbeAll(ctx) }

// RouterStats is a snapshot of the router's routing counters.
type RouterStats struct {
	Routes          map[string]uint64 `json:"routes"`
	Failovers       uint64            `json:"failovers"`
	BreakerSkips    uint64            `json:"breakerSkips"`
	LocalFallbacks  uint64            `json:"localFallbacks"`
	HedgedFallbacks uint64            `json:"hedgedFallbacks"`
	ShedFailovers   uint64            `json:"shedFailovers"`
	Epoch           uint64            `json:"epoch"`
	EpochApplies    uint64            `json:"epochApplies"`
	ReadRepairs     uint64            `json:"readRepairs"`
	RepairsServed   uint64            `json:"repairsServed"`
	RepairsUpgraded uint64            `json:"repairsUpgraded"`
}

// Stats snapshots the routing counters. Routes covers every peer ever
// seen in an applied epoch, including ones no longer in the ring.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Failovers:       r.failovers.Load(),
		BreakerSkips:    r.breakerSkips.Load(),
		LocalFallbacks:  r.localFallbacks.Load(),
		HedgedFallbacks: r.hedgedFallbacks.Load(),
		ShedFailovers:   r.shedFailovers.Load(),
		Epoch:           r.Epoch().Seq,
		EpochApplies:    r.epochApplies.Load(),
		ReadRepairs:     r.readRepairs.Load(),
		RepairsServed:   r.repairsServed.Load(),
		RepairsUpgraded: r.repairsUpgraded.Load(),
	}
	r.mu.RLock()
	st.Routes = make(map[string]uint64, len(r.peers))
	//ljqlint:allow detrand -- snapshot into a map; JSON marshaling sorts keys
	for p, ps := range r.peers {
		st.Routes[p] = ps.routes.Load()
	}
	r.mu.RUnlock()
	return st
}

// depthFor is the candidate count for one request under epoch ep.
func (r *Router) depthFor(ep *Epoch) int {
	n := len(ep.Peers())
	depth := r.cfg.FallbackDepth + 1
	if r.cfg.FallbackDepth <= 0 || depth > n {
		depth = n
	}
	return depth
}

// Optimize routes q down the degradation ladder: primary peer, then
// ring successors (hedged when HedgeDelay is set), then local compute.
// The returned error is only ever the caller's own (4xx APIError, a
// dead context) or — with no local rung — ErrNoPeers.
func (r *Router) Optimize(ctx context.Context, q *catalog.Query) (*serve.OptimizeResponse, error) {
	fp, order := fingerprint.Canonical(q)
	ep := r.epoch.Load() // one load: this request's consistent (ring, epoch) pair
	cands := ep.ring.Successors(fp, r.depthFor(ep))
	if r.cfg.HedgeDelay > 0 && len(cands) > 1 {
		return r.optimizeHedged(ctx, q, order, fp, cands)
	}
	return r.optimizeSequential(ctx, q, order, fp, cands)
}

// shedding classifies err as a load-shedding answer (429/503) from an
// alive peer.
func shedding(err error) bool {
	var s *client.ShedError
	return errors.As(err, &s)
}

// optimizeSequential tries candidates one at a time, in ring order.
func (r *Router) optimizeSequential(ctx context.Context, q *catalog.Query, order []catalog.RelID, fp fingerprint.Fingerprint, cands []string) (*serve.OptimizeResponse, error) {
	var lastErr error
	for i, peer := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !r.health.Allow(peer) {
			r.breakerSkips.Add(1)
			continue
		}
		c := r.clientFor(peer)
		if c == nil {
			// Unreachable by construction (ApplyEpoch creates states
			// before storing the epoch), but a missing client must still
			// resolve the claimed health slot.
			r.health.ReportCancelled(peer)
			continue
		}
		resp, err := c.Optimize(ctx, q)
		if err == nil {
			r.health.ReportSuccess(peer)
			r.routeCounted(peer)
			if i > 0 {
				r.failovers.Add(1)
			}
			return r.readRepair(q, order, fp, resp), nil
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			// The peer is alive and judged the request itself
			// defective; that verdict belongs to the caller — failing
			// over would just re-ask the same question.
			r.health.ReportSuccess(peer)
			return nil, err
		}
		if shedding(err) {
			// 429/503: the peer is alive but refusing work. That is not
			// a death verdict — no breaker strike (a shedding peer must
			// not get its circuit opened as if it were down) — but the
			// request moves on to the next candidate immediately.
			r.health.ReportSuccess(peer)
			r.shedFailovers.Add(1)
			lastErr = err
			continue
		}
		if ctx.Err() != nil {
			r.health.ReportCancelled(peer)
			return nil, ctx.Err()
		}
		r.health.ReportFailure(peer)
		lastErr = err
	}
	return r.localCompute(ctx, q, lastErr)
}

// localCompute is the ladder's last rung.
func (r *Router) localCompute(ctx context.Context, q *catalog.Query, lastErr error) (*serve.OptimizeResponse, error) {
	if r.cfg.Local == nil {
		if lastErr != nil {
			return nil, fmt.Errorf("%w (last peer error: %v)", ErrNoPeers, lastErr)
		}
		return nil, ErrNoPeers
	}
	r.localFallbacks.Add(1)
	return r.cfg.Local.OptimizeQuery(ctx, q)
}

// readRepair reconciles a routed response against the local server's
// plan cache when the two hold fingerprint-identical but divergent
// plans (replicas drift after a schema bump: same shape, different
// search outcomes). The higher-tier / lower-cost side wins, in both
// directions:
//
//   - local better → the response is rebuilt from the local entry (the
//     caller gets the best plan the cluster knows);
//   - routed better → the routed plan is admitted into the local cache
//     under the existing upgrade-only replacement rule (a repair can
//     refresh or upgrade, never downgrade).
//
// Repair admission only reconstructs single-component plans — a
// multi-component flat order cannot be split back into per-component
// costs from the response envelope alone — and never degrades
// anything: degraded responses and absent local entries are left as
// they are (an absent entry is replication's job, not repair's).
func (r *Router) readRepair(q *catalog.Query, order []catalog.RelID, fp fingerprint.Fingerprint, resp *serve.OptimizeResponse) *serve.OptimizeResponse {
	local := r.cfg.Local
	if local == nil || resp == nil || resp.Degraded {
		return resp
	}
	ent, ok := local.Cache().Peek(fp)
	if !ok || ent.Plan == nil {
		return resp
	}
	localTier, respTier := plancache.TierRank(ent.Tier), uint8(resp.Tier)
	switch {
	case localTier > respTier,
		localTier == respTier && ent.Plan.TotalCost < resp.TotalCost:
		// The local cache knows a strictly better plan: serve it.
		r.readRepairs.Add(1)
		r.repairsServed.Add(1)
		return serve.ResponseFromEntry(q, order, fp, ent)
	case respTier > localTier,
		localTier == respTier && resp.TotalCost < ent.Plan.TotalCost:
		// The routed plan is strictly better: repair the local cache.
		if e := entryFromResponse(order, fp, ent, resp); e != nil && local.Cache().Put(e) {
			r.readRepairs.Add(1)
			r.repairsUpgraded.Add(1)
		}
	}
	return resp
}

// entryFromResponse reconstructs a canonical-coordinates cache entry
// from a routed response. Only single-component, cross-product-free
// plans are reconstructible: the response's flat Order is the one
// component's permutation in the requester's numbering, inverse-mapped
// through the canonical order. localEnt (same fingerprint, so same
// component structure — components are a function of the query's join
// graph, not of the search) gates reconstructibility. Returns nil when
// the response cannot be faithfully rebuilt.
func entryFromResponse(order []catalog.RelID, fp fingerprint.Fingerprint, localEnt *plancache.Entry, resp *serve.OptimizeResponse) *plancache.Entry {
	if len(localEnt.Plan.Components) != 1 || localEnt.Plan.CrossCost != 0 {
		return nil
	}
	if len(resp.Order) != len(order) {
		return nil
	}
	pos := make(map[catalog.RelID]int, len(order))
	for i, rel := range order {
		pos[rel] = i
	}
	perm := make(plan.Perm, len(resp.Order))
	seen := make([]bool, len(order))
	for i, rid := range resp.Order {
		p, ok := pos[catalog.RelID(rid)]
		if !ok || seen[p] {
			return nil
		}
		seen[p] = true
		perm[i] = catalog.RelID(p)
	}
	pl := &plan.Plan{
		Components: []plan.Result{{Perm: perm, Cost: resp.TotalCost}},
		TotalCost:  resp.TotalCost,
	}
	return &plancache.Entry{
		Fingerprint: fp,
		Plan:        pl,
		BudgetUsed:  resp.BudgetUsed,
		Tier:        uint8(resp.Tier),
	}
}

// peerResult is one candidate's outcome in the hedged path.
type peerResult struct {
	peer string
	resp *serve.OptimizeResponse
	err  error
}

// optimizeHedged races ring candidates: the primary launches
// immediately; if it is still silent after HedgeDelay the next
// admitted successor joins the race (one hedge at a time — further
// successors launch only after an outright failure). The first useful
// response wins and every loser is cancelled; abandoned health slots
// are released without a verdict.
func (r *Router) optimizeHedged(ctx context.Context, q *catalog.Query, order []catalog.RelID, fp fingerprint.Fingerprint, cands []string) (*serve.OptimizeResponse, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan peerResult, len(cands))
	next, inFlight := 0, 0
	primary := ""
	launch := func(hedge bool) bool {
		for next < len(cands) {
			peer := cands[next]
			next++
			//ljqlint:allow slotresolve -- the slot resolves in the result loop, not here: ReportSuccess for the winning response, ReportFailure for errors, and reapLosers' ReportCancelled for abandoned in-flight candidates
			if !r.health.Allow(peer) {
				r.breakerSkips.Add(1)
				continue
			}
			c := r.clientFor(peer)
			if c == nil {
				r.health.ReportCancelled(peer)
				continue
			}
			if primary == "" {
				primary = peer
			}
			if hedge {
				r.hedgedFallbacks.Add(1)
			}
			inFlight++
			go func(peer string, c *client.Client) {
				// Goroutine panic barrier (panicguard): a crash in the
				// client must resolve this candidate's slot, not kill
				// the process.
				defer func() {
					if rec := recover(); rec != nil {
						results <- peerResult{peer: peer, err: fmt.Errorf("cluster: peer attempt panicked: %v", rec)}
					}
				}()
				resp, err := c.Optimize(actx, q)
				results <- peerResult{peer: peer, resp: resp, err: err}
			}(peer, c)
			return true
		}
		return false
	}
	if !launch(false) {
		return r.localCompute(ctx, q, nil)
	}
	timerC, stopTimer := r.hedgeTimer()
	defer stopTimer()

	var lastErr error
	for {
		select {
		case out := <-results:
			inFlight--
			if out.err == nil {
				r.health.ReportSuccess(out.peer)
				r.routeCounted(out.peer)
				if out.peer != primary {
					r.failovers.Add(1)
				}
				cancel()
				r.reapLosers(results, inFlight)
				return r.readRepair(q, order, fp, out.resp), nil
			}
			var apiErr *client.APIError
			if errors.As(out.err, &apiErr) {
				r.health.ReportSuccess(out.peer)
				cancel()
				r.reapLosers(results, inFlight)
				return nil, out.err
			}
			if ctx.Err() != nil {
				r.health.ReportCancelled(out.peer)
				r.reapLosers(results, inFlight)
				return nil, ctx.Err()
			}
			if shedding(out.err) {
				// Alive but refusing work: release the slot as success
				// (no breaker strike) and move on to the next candidate.
				r.health.ReportSuccess(out.peer)
				r.shedFailovers.Add(1)
			} else {
				r.health.ReportFailure(out.peer)
			}
			lastErr = out.err
			if inFlight == 0 && !launch(false) {
				return r.localCompute(ctx, q, lastErr)
			}
		case <-timerC:
			timerC = nil
			launch(true)
		case <-ctx.Done():
			r.reapLosers(results, inFlight)
			return nil, ctx.Err()
		}
	}
}

// reapLosers collects the outstanding candidates' results in the
// background so every claimed health slot is resolved: a loser that
// actually completed gets its real verdict; a cancelled one releases
// its slot verdict-free. The results channel is buffered for every
// candidate and losers are cancelled, so the reaper always terminates.
func (r *Router) reapLosers(results chan peerResult, inFlight int) {
	if inFlight <= 0 {
		return
	}
	go func() {
		// Goroutine panic barrier (panicguard).
		defer func() { _ = recover() }()
		for i := 0; i < inFlight; i++ {
			out := <-results
			if out.err == nil {
				r.health.ReportSuccess(out.peer)
			} else {
				r.health.ReportCancelled(out.peer)
			}
		}
	}()
}

// hedgeTimer arms the hedge-delay timer: the After test hook if set,
// otherwise a stoppable real timer.
func (r *Router) hedgeTimer() (<-chan time.Time, func()) {
	if r.cfg.After != nil {
		return r.cfg.After(r.cfg.HedgeDelay), func() {}
	}
	t := time.NewTimer(r.cfg.HedgeDelay)
	return t.C, func() { t.Stop() }
}
