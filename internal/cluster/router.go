package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"joinopt/internal/catalog"
	"joinopt/internal/client"
	"joinopt/internal/fingerprint"
	"joinopt/internal/serve"
	"joinopt/internal/telemetry"
)

// ErrNoPeers reports that every routing rung is gone: all candidate
// peers failed or were skipped and the router has no local optimizer.
var ErrNoPeers = errors.New("cluster: no peer available and no local optimizer")

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Peers are the ring members' base URLs (e.g. "http://host:8080").
	Peers []string
	// Replicas is the ring's virtual-node count per peer (default
	// DefaultReplicas).
	Replicas int
	// FallbackDepth is how many ring successors beyond the primary to
	// try before falling back to local compute (default: every other
	// peer).
	FallbackDepth int
	// Local, when set, is the last rung of the degradation ladder: an
	// in-process serve.Server that optimizes when every candidate peer
	// is unreachable. Without it, total peer loss surfaces ErrNoPeers.
	Local *serve.Server
	// Client is the template for the per-peer resilient clients.
	// BaseURL is set per peer; the per-client circuit breaker is
	// DISABLED (the Health view owns circuit state — double-breaking
	// would make one peer's cooldown unobservable to routing).
	Client client.Config
	// HedgeDelay, when positive, races the next ring successor after
	// this much primary silence instead of waiting for it to fail
	// outright; the first useful response wins and the loser is
	// cancelled. 0 = strictly sequential failover (deterministic, the
	// chaos harness's mode).
	HedgeDelay time.Duration
	// After overrides the hedge timer (tests); nil = real timer.
	After func(d time.Duration) <-chan time.Time
	// Health tunes the peer-health view. A nil Health.Probe defaults
	// to GET /readyz through the per-peer client.
	Health HealthConfig
	// Metrics, when set, receives per-peer routing counters, breaker
	// churn, health gauges and the per-peer client resilience stats.
	Metrics *telemetry.Registry
}

// Router is the cluster routing client: consistent-hash primary
// routing with breaker-aware ring-successor failover and optional
// local compute. Safe for concurrent use; with HedgeDelay == 0 and a
// sequential caller its request trajectory is deterministic.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	health  *Health
	clients map[string]*client.Client
	depth   int // candidates per request (primary + fallbacks)

	routes          map[string]*atomic.Uint64 // successes routed per peer
	failovers       atomic.Uint64             // responses served by a non-primary peer
	breakerSkips    atomic.Uint64             // candidates skipped with an open breaker
	localFallbacks  atomic.Uint64             // requests served by local compute
	hedgedFallbacks atomic.Uint64             // successor launches triggered by the hedge timer
}

// NewRouter builds a router over the configured peers.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring, err := NewRing(cfg.Peers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	peers := ring.Peers()
	depth := cfg.FallbackDepth + 1
	if cfg.FallbackDepth <= 0 || depth > len(peers) {
		depth = len(peers)
	}
	r := &Router{
		cfg:     cfg,
		ring:    ring,
		clients: make(map[string]*client.Client, len(peers)),
		depth:   depth,
		routes:  make(map[string]*atomic.Uint64, len(peers)),
	}
	for _, p := range peers {
		ccfg := cfg.Client
		ccfg.BaseURL = p
		// Health owns the circuit state; a second breaker inside the
		// client would trip invisibly to routing.
		ccfg.Breaker = client.BreakerConfig{Threshold: -1}
		c, err := client.New(ccfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %s: %w", p, err)
		}
		r.clients[p] = c
		r.routes[p] = &atomic.Uint64{}
	}
	hcfg := cfg.Health
	if hcfg.Probe == nil {
		hcfg.Probe = func(ctx context.Context, peer string) error {
			return r.clients[peer].Ready(ctx)
		}
	}
	r.health = NewHealth(peers, hcfg)
	if reg := cfg.Metrics; reg != nil {
		reg.CounterFunc("ljq_cluster_failover_total", "Requests served by a non-primary ring peer.", r.failovers.Load)
		reg.CounterFunc("ljq_cluster_local_fallback_total", "Requests served by local compute after peer exhaustion.", r.localFallbacks.Load)
		reg.CounterFunc("ljq_cluster_breaker_skip_total", "Candidate peers skipped with an open breaker.", r.breakerSkips.Load)
		reg.CounterFunc("ljq_cluster_hedged_fallback_total", "Ring-successor launches triggered by the hedge timer.", r.hedgedFallbacks.Load)
		for _, peer := range peers {
			p := peer
			label := fmt.Sprintf("{peer=%q}", p)
			reg.CounterFunc("ljq_cluster_route_total"+label, "Requests served by this peer.", r.routes[p].Load)
			reg.CounterFunc("ljq_cluster_breaker_transitions_total"+label, "This peer's breaker state transitions.",
				func() uint64 { return r.health.Transitions(p) })
			reg.GaugeFunc("ljq_cluster_peer_healthy"+label, "1 while this peer's breaker admits traffic.", func() float64 {
				if r.health.Healthy(p) {
					return 1
				}
				return 0
			})
			r.clients[p].RegisterMetrics(reg, "ljq_cluster_client", label)
		}
	}
	return r, nil
}

// Ring exposes the routing ring (status surfaces, tests).
func (r *Router) Ring() *Ring { return r.ring }

// Health exposes the peer-health view.
func (r *Router) Health() *Health { return r.health }

// ProbeAll actively probes every admitted peer's /readyz (see
// Health.ProbeAll).
func (r *Router) ProbeAll(ctx context.Context) { r.health.ProbeAll(ctx) }

// Stats is a snapshot of the router's routing counters.
type RouterStats struct {
	Routes          map[string]uint64 `json:"routes"`
	Failovers       uint64            `json:"failovers"`
	BreakerSkips    uint64            `json:"breakerSkips"`
	LocalFallbacks  uint64            `json:"localFallbacks"`
	HedgedFallbacks uint64            `json:"hedgedFallbacks"`
}

// Stats snapshots the routing counters.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Routes:          make(map[string]uint64, len(r.routes)),
		Failovers:       r.failovers.Load(),
		BreakerSkips:    r.breakerSkips.Load(),
		LocalFallbacks:  r.localFallbacks.Load(),
		HedgedFallbacks: r.hedgedFallbacks.Load(),
	}
	for _, p := range r.ring.Peers() {
		st.Routes[p] = r.routes[p].Load()
	}
	return st
}

// Optimize routes q down the degradation ladder: primary peer, then
// ring successors (hedged when HedgeDelay is set), then local compute.
// The returned error is only ever the caller's own (4xx APIError, a
// dead context) or — with no local rung — ErrNoPeers.
func (r *Router) Optimize(ctx context.Context, q *catalog.Query) (*serve.OptimizeResponse, error) {
	fp, _, _ := fingerprint.CanonicalQuery(q)
	cands := r.ring.Successors(fp, r.depth)
	if r.cfg.HedgeDelay > 0 && len(cands) > 1 {
		return r.optimizeHedged(ctx, q, cands)
	}
	return r.optimizeSequential(ctx, q, cands)
}

// optimizeSequential tries candidates one at a time, in ring order.
func (r *Router) optimizeSequential(ctx context.Context, q *catalog.Query, cands []string) (*serve.OptimizeResponse, error) {
	var lastErr error
	for i, peer := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !r.health.Allow(peer) {
			r.breakerSkips.Add(1)
			continue
		}
		resp, err := r.clients[peer].Optimize(ctx, q)
		if err == nil {
			r.health.ReportSuccess(peer)
			r.routes[peer].Add(1)
			if i > 0 {
				r.failovers.Add(1)
			}
			return resp, nil
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			// The peer is alive and judged the request itself
			// defective; that verdict belongs to the caller — failing
			// over would just re-ask the same question.
			r.health.ReportSuccess(peer)
			return nil, err
		}
		if ctx.Err() != nil {
			r.health.ReportCancelled(peer)
			return nil, ctx.Err()
		}
		r.health.ReportFailure(peer)
		lastErr = err
	}
	return r.localCompute(ctx, q, lastErr)
}

// localCompute is the ladder's last rung.
func (r *Router) localCompute(ctx context.Context, q *catalog.Query, lastErr error) (*serve.OptimizeResponse, error) {
	if r.cfg.Local == nil {
		if lastErr != nil {
			return nil, fmt.Errorf("%w (last peer error: %v)", ErrNoPeers, lastErr)
		}
		return nil, ErrNoPeers
	}
	r.localFallbacks.Add(1)
	return r.cfg.Local.OptimizeQuery(ctx, q)
}

// peerResult is one candidate's outcome in the hedged path.
type peerResult struct {
	peer string
	resp *serve.OptimizeResponse
	err  error
}

// optimizeHedged races ring candidates: the primary launches
// immediately; if it is still silent after HedgeDelay the next
// admitted successor joins the race (one hedge at a time — further
// successors launch only after an outright failure). The first useful
// response wins and every loser is cancelled; abandoned health slots
// are released without a verdict.
func (r *Router) optimizeHedged(ctx context.Context, q *catalog.Query, cands []string) (*serve.OptimizeResponse, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan peerResult, len(cands))
	next, inFlight := 0, 0
	primary := ""
	launch := func(hedge bool) bool {
		for next < len(cands) {
			peer := cands[next]
			next++
			//ljqlint:allow slotresolve -- the slot resolves in the result loop, not here: ReportSuccess for the winning response, ReportFailure for errors, and reapLosers' ReportCancelled for abandoned in-flight candidates
			if !r.health.Allow(peer) {
				r.breakerSkips.Add(1)
				continue
			}
			if primary == "" {
				primary = peer
			}
			if hedge {
				r.hedgedFallbacks.Add(1)
			}
			inFlight++
			go func(peer string) {
				// Goroutine panic barrier (panicguard): a crash in the
				// client must resolve this candidate's slot, not kill
				// the process.
				defer func() {
					if rec := recover(); rec != nil {
						results <- peerResult{peer: peer, err: fmt.Errorf("cluster: peer attempt panicked: %v", rec)}
					}
				}()
				resp, err := r.clients[peer].Optimize(actx, q)
				results <- peerResult{peer: peer, resp: resp, err: err}
			}(peer)
			return true
		}
		return false
	}
	if !launch(false) {
		return r.localCompute(ctx, q, nil)
	}
	timerC, stopTimer := r.hedgeTimer()
	defer stopTimer()

	var lastErr error
	for {
		select {
		case out := <-results:
			inFlight--
			if out.err == nil {
				r.health.ReportSuccess(out.peer)
				r.routes[out.peer].Add(1)
				if out.peer != primary {
					r.failovers.Add(1)
				}
				cancel()
				r.reapLosers(results, inFlight)
				return out.resp, nil
			}
			var apiErr *client.APIError
			if errors.As(out.err, &apiErr) {
				r.health.ReportSuccess(out.peer)
				cancel()
				r.reapLosers(results, inFlight)
				return nil, out.err
			}
			if ctx.Err() != nil {
				r.health.ReportCancelled(out.peer)
				r.reapLosers(results, inFlight)
				return nil, ctx.Err()
			}
			r.health.ReportFailure(out.peer)
			lastErr = out.err
			if inFlight == 0 && !launch(false) {
				return r.localCompute(ctx, q, lastErr)
			}
		case <-timerC:
			timerC = nil
			launch(true)
		case <-ctx.Done():
			r.reapLosers(results, inFlight)
			return nil, ctx.Err()
		}
	}
}

// reapLosers collects the outstanding candidates' results in the
// background so every claimed health slot is resolved: a loser that
// actually completed gets its real verdict; a cancelled one releases
// its slot verdict-free. The results channel is buffered for every
// candidate and losers are cancelled, so the reaper always terminates.
func (r *Router) reapLosers(results chan peerResult, inFlight int) {
	if inFlight <= 0 {
		return
	}
	go func() {
		// Goroutine panic barrier (panicguard).
		defer func() { _ = recover() }()
		for i := 0; i < inFlight; i++ {
			out := <-results
			if out.err == nil {
				r.health.ReportSuccess(out.peer)
			} else {
				r.health.ReportCancelled(out.peer)
			}
		}
	}()
}

// hedgeTimer arms the hedge-delay timer: the After test hook if set,
// otherwise a stoppable real timer.
func (r *Router) hedgeTimer() (<-chan time.Time, func()) {
	if r.cfg.After != nil {
		return r.cfg.After(r.cfg.HedgeDelay), func() {}
	}
	t := time.NewTimer(r.cfg.HedgeDelay)
	return t.C, func() { t.Stop() }
}
