package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"joinopt/internal/persist"
	"joinopt/internal/plancache"
)

// Warm start: a joining or recovering peer bulk-loads another peer's
// plan cache over GET /snapshot before flipping its own /readyz, so a
// restart rejoins the cluster warm instead of triggering a cold
// re-optimization storm on its ring arc.
//
// The fetch deliberately does NOT go through client.Client — the
// resilient client caps response bodies at 4 MiB (right for plan
// responses, wrong for a bulk snapshot) and its retry machinery would
// re-pull the whole payload from a donor that just proved flaky.
// Instead each donor gets one plain, size-capped, deadline-bounded GET;
// any defect — torn stream, short read against Content-Length, CRC or
// schema refusal from the strict decoder — moves on to the next donor.
// A peer with no usable donor starts cold, which is degraded but
// correct: warm-start failure is never fatal.

// ErrNoDonor reports that every configured donor failed to supply a
// decodable snapshot; the per-donor reasons are in the result.
var ErrNoDonor = errors.New("cluster: no donor could supply a snapshot")

// WarmStartConfig tunes a warm start.
type WarmStartConfig struct {
	// Donors are candidate snapshot sources (base URLs), tried in
	// order until one yields a strict-decodable snapshot.
	Donors []string
	// Transport performs the fetches (default http.DefaultTransport;
	// the chaos harness injects its cluster transport).
	Transport http.RoundTripper
	// MaxBytes caps one snapshot payload (default 64 MiB): a confused
	// or malicious donor must not balloon the joiner's memory.
	MaxBytes int64
	// PerDonorTimeout bounds one donor's fetch end to end (default
	// 30s); the caller's ctx still bounds the whole warm start.
	PerDonorTimeout time.Duration
}

func (c *WarmStartConfig) fill() {
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.PerDonorTimeout <= 0 {
		c.PerDonorTimeout = 30 * time.Second
	}
}

// DonorAttempt records one failed donor.
type DonorAttempt struct {
	Donor string `json:"donor"`
	Err   string `json:"err"`
}

// WarmStartResult describes a warm start: which donor won, how much it
// shipped, and what each earlier donor did wrong.
type WarmStartResult struct {
	// Donor is the winning snapshot source ("" if none).
	Donor string `json:"donor"`
	// Entries is how many shipped entries the cache accepted.
	Entries int `json:"entries"`
	// Bytes is the winning payload size.
	Bytes int64 `json:"bytes"`
	// Attempts lists the donors that failed before the winner.
	Attempts []DonorAttempt `json:"attempts,omitempty"`
}

// WarmStart fetches a snapshot from the first usable donor and warms
// cache with it (Warm: no admission hooks fire, so warmed entries are
// not re-journaled as fresh admissions). On total failure the partial
// result (with every donor's error) comes back alongside ErrNoDonor.
func WarmStart(ctx context.Context, cache *plancache.Cache, cfg WarmStartConfig) (*WarmStartResult, error) {
	cfg.fill()
	res := &WarmStartResult{}
	for _, donor := range cfg.Donors {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		entries, n, err := fetchSnapshot(ctx, donor, cfg)
		if err != nil {
			res.Attempts = append(res.Attempts, DonorAttempt{Donor: donor, Err: err.Error()})
			continue
		}
		warmed := 0
		for _, e := range entries {
			if cache.Warm(e) {
				warmed++
			}
		}
		res.Donor = donor
		res.Entries = warmed
		res.Bytes = n
		return res, nil
	}
	return res, fmt.Errorf("%w (%d tried)", ErrNoDonor, len(cfg.Donors))
}

// fetchSnapshot pulls and strictly decodes one donor's snapshot.
func fetchSnapshot(ctx context.Context, donor string, cfg WarmStartConfig) ([]*plancache.Entry, int64, error) {
	fctx, cancel := context.WithTimeout(ctx, cfg.PerDonorTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, donor+"/snapshot", nil)
	if err != nil {
		return nil, 0, fmt.Errorf("build request: %w", err)
	}
	resp, err := cfg.Transport.RoundTrip(req)
	if err != nil {
		return nil, 0, fmt.Errorf("fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("donor answered %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, cfg.MaxBytes+1))
	if err != nil {
		// The donor died mid-stream; whatever arrived is a torn
		// prefix the strict decoder would refuse anyway.
		return nil, 0, fmt.Errorf("torn transfer: %w", err)
	}
	if int64(len(data)) > cfg.MaxBytes {
		return nil, 0, fmt.Errorf("snapshot exceeds %d-byte cap", cfg.MaxBytes)
	}
	if cl := resp.ContentLength; cl >= 0 && cl != int64(len(data)) {
		return nil, 0, fmt.Errorf("short transfer: got %d of %d bytes", len(data), cl)
	}
	entries, err := persist.DecodeSnapshotStrict(data)
	if err != nil {
		return nil, 0, fmt.Errorf("decode: %w", err)
	}
	return entries, int64(len(data)), nil
}
