package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/workload"
)

func testQueries(t testing.TB) []*catalog.Query {
	t.Helper()
	rng := rand.New(rand.NewSource(53))
	var qs []*catalog.Query
	spec := workload.Default()
	for _, shape := range workload.Shapes {
		for _, n := range []int{2, 5, 20, 60} {
			q, err := spec.GenerateShape(shape, n, rng)
			if err != nil {
				t.Fatal(err)
			}
			qs = append(qs, q)
		}
	}
	// Histograms and selections don't come out of the generator; build
	// one query that exercises every optional field.
	qs = append(qs, &catalog.Query{
		Relations: []catalog.Relation{
			{Name: "orders", Cardinality: 1_000_000, Selections: []catalog.Selection{{Selectivity: 0.1}, {Selectivity: 0.5}}},
			{Name: "customers", Cardinality: 50_000},
		},
		Predicates: []catalog.Predicate{{
			Left: 0, Right: 1, LeftDistinct: 50_000, RightDistinct: 50_000,
			LeftHist:  &catalog.Histogram{Domain: 100, Counts: []float64{10, 20, 30}},
			RightHist: &catalog.Histogram{Domain: 100, Counts: []float64{5, 5, 90}},
		}},
	})
	return qs
}

func TestQueryRoundTrip(t *testing.T) {
	for qi, q := range testQueries(t) {
		q.Normalize()
		enc := EncodeQuery(q)
		got, err := DecodeQuery(enc)
		if err != nil {
			t.Fatalf("query %d: decode: %v", qi, err)
		}
		if !reflect.DeepEqual(q, got) {
			t.Fatalf("query %d: round trip drift:\nsent %+v\ngot  %+v", qi, q, got)
		}
		// Re-encoding the decoded query is byte-identical: the codec is
		// a fixed point once the query is normalized.
		if !bytes.Equal(enc, EncodeQuery(got)) {
			t.Fatalf("query %d: re-encode is not byte-identical", qi)
		}
	}
}

func TestDecodeNormalizes(t *testing.T) {
	// A denormalized predicate (Left > Right, no selectivity) decodes
	// into its normalized form, exactly like the JSON path.
	q := &catalog.Query{
		Relations: []catalog.Relation{{Cardinality: 10}, {Cardinality: 20}},
		Predicates: []catalog.Predicate{
			{Left: 1, Right: 0, LeftDistinct: 4, RightDistinct: 8},
		},
	}
	got, err := DecodeQuery(EncodeQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	p := got.Predicates[0]
	if p.Left != 0 || p.Right != 1 {
		t.Fatalf("endpoints not normalized: %+v", p)
	}
	if p.LeftDistinct != 8 || p.RightDistinct != 4 {
		t.Fatalf("distincts not swapped with endpoints: %+v", p)
	}
	if p.Selectivity != 1.0/8 {
		t.Fatalf("derived selectivity %g, want 0.125", p.Selectivity)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{},
		{
			Fingerprint:   "deadbeef",
			CacheHit:      true,
			Coalesced:     true,
			Degraded:      true,
			DegradeReason: "budget exhausted",
			BudgetUsed:    123456789,
			TotalCost:     3.25e9,
			Order:         []int{2, 0, 1},
			Names:         []string{"a", "b", ""},
			Tier:          2,
			Explain:       "join(a, b)\n  tier 2 (full anytime search)\n",
		},
	}
	for i, r := range cases {
		enc := EncodeResponse(r)
		got, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("case %d: round trip drift:\nsent %+v\ngot  %+v", i, r, got)
		}
		if !bytes.Equal(enc, EncodeResponse(got)) {
			t.Fatalf("case %d: re-encode is not byte-identical", i)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	q := &catalog.Query{
		Relations:  []catalog.Relation{{Cardinality: 10}, {Cardinality: 20}},
		Predicates: []catalog.Predicate{{Left: 0, Right: 1, Selectivity: 0.5}},
	}
	valid := EncodeQuery(q)

	mangle := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), valid...))
		if _, err := DecodeQuery(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: err = %v, want ErrBadFrame", name, err)
		}
	}
	mangle("empty", func(b []byte) []byte { return nil })
	mangle("short header", func(b []byte) []byte { return b[:5] })
	mangle("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mangle("wrong kind", func(b []byte) []byte { b[4] = KindResponse; return b })
	mangle("truncated payload", func(b []byte) []byte { return b[:len(b)-3] })
	mangle("length overruns frame", func(b []byte) []byte { b[5]++; return b })
	mangle("trailing bytes", func(b []byte) []byte {
		b = append(b, 0xff)
		b[5]++ // keep the declared length consistent with the frame
		return b
	})
	// A hostile count: claim 2^32-1 relations in a tiny payload. The
	// guard must reject before allocating.
	mangle("giant relation count", func(b []byte) []byte {
		b[9], b[10], b[11], b[12] = 0xff, 0xff, 0xff, 0xff
		return b
	})
	// Structural validity (not framing): a predicate pointing outside
	// the relation list fails catalog.Validate, not ErrBadFrame.
	bad := &catalog.Query{
		Relations:  []catalog.Relation{{Cardinality: 10}},
		Predicates: []catalog.Predicate{{Left: 0, Right: 7, Selectivity: 0.5}},
	}
	if _, err := DecodeQuery(EncodeQuery(bad)); err == nil || errors.Is(err, ErrBadFrame) {
		t.Errorf("out-of-range predicate: err = %v, want a catalog validation error", err)
	}

	// Response-side: unknown flag bits are a hard error.
	renc := EncodeResponse(&Response{Fingerprint: "ab"})
	idx := headerSize + 4 + 2 // header, fingerprint length, fingerprint bytes
	renc[idx] = 0x80
	if _, err := DecodeResponse(renc); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unknown flag bits: err = %v, want ErrBadFrame", err)
	}
}

func TestIsFrame(t *testing.T) {
	if IsFrame([]byte(`{"relations":[]}`)) {
		t.Fatal("JSON sniffed as a wire frame")
	}
	if !IsFrame(EncodeResponse(&Response{})) {
		t.Fatal("encoded frame not recognized")
	}
}

// BenchmarkEncodeQuery60 / BenchmarkDecodeQuery60 price the codec
// itself at the large end of the workload.
func BenchmarkEncodeQuery60(b *testing.B) {
	q := workload.Default().Generate(60, rand.New(rand.NewSource(29)))
	buf := EncodeQuery(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendQuery(buf[:0], q)
	}
}

func BenchmarkDecodeQuery60(b *testing.B) {
	q := workload.Default().Generate(60, rand.New(rand.NewSource(29)))
	enc := EncodeQuery(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeQuery(enc); err != nil {
			b.Fatal(err)
		}
	}
}
