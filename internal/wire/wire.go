// Package wire is the length-prefixed binary codec for the optimizer
// daemon's /optimize exchange — the compact alternative to the JSON
// interchange format on the serving hot path.
//
// Frame layout (all multi-byte integers little-endian):
//
//	magic   4 bytes  "LJW1"
//	kind    1 byte   1 = query, 2 = response
//	length  u32      payload byte count (exactly the remaining bytes)
//	payload …
//
// Query payload:
//
//	u32 nRelations
//	per relation: str name · u64 cardinality · u32 nSelections · f64 each
//	u32 nPredicates
//	per predicate: u32 left · u32 right · f64 leftDistinct ·
//	  f64 rightDistinct · f64 selectivity · 2 × histogram
//	histogram: u8 present; if present: u64 domain · u32 nCounts · f64 each
//
// Response payload:
//
//	str fingerprint (hex) · u8 flags (1 cacheHit | 2 coalesced |
//	4 degraded) · str degradeReason · u64 budgetUsed · f64 totalCost ·
//	u32 nOrder · u32 each · u32 nNames · str each · u8 tier · str explain
//
// Strings are u32 length + raw bytes. The decoder is hardened against
// hostile input: every count is checked against the bytes actually
// remaining before anything is allocated, the payload length must match
// the frame exactly (no trailing garbage), and DecodeQuery validates and
// normalizes the result — so decode∘encode is a fixed point, the
// property the fuzz harness pins.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"joinopt/internal/catalog"
)

// ContentType is the MIME type negotiated for the binary protocol: a
// request body carries it in Content-Type, a client asks for a binary
// response via Accept.
const ContentType = "application/x-ljq-wire"

const (
	magic      = "LJW1"
	headerSize = len(magic) + 1 + 4 // magic + kind + payload length

	// KindQuery / KindResponse are the frame kind discriminators.
	KindQuery    = byte(1)
	KindResponse = byte(2)
)

// ErrBadFrame reports a structurally invalid frame (wrong magic, kind,
// truncated or oversized payload). Decode errors wrap it, so callers
// can map any malformed input to one HTTP 400 with errors.Is.
var ErrBadFrame = errors.New("wire: malformed frame")

// flag bits of the response flags byte.
const (
	flagCacheHit  = 1 << 0
	flagCoalesced = 1 << 1
	flagDegraded  = 1 << 2
	flagsKnown    = flagCacheHit | flagCoalesced | flagDegraded
)

// Response is the binary twin of serve.OptimizeResponse. The fields
// mirror it one-for-one so the serving layer converts by plain field
// copy; wire itself depends only on catalog.
type Response struct {
	Fingerprint   string
	CacheHit      bool
	Coalesced     bool
	Degraded      bool
	DegradeReason string
	BudgetUsed    int64
	TotalCost     float64
	Order         []int
	Names         []string
	Tier          int
	Explain       string
}

// IsFrame reports whether data begins with the wire magic — the cheap
// sniff clients use to tell a binary response from a JSON one when a
// pre-wire daemon ignored their Accept header.
func IsFrame(data []byte) bool {
	return len(data) >= len(magic) && string(data[:len(magic)]) == magic
}

// --- encoding ---------------------------------------------------------

func appendHeader(dst []byte, kind byte) []byte {
	dst = append(dst, magic...)
	dst = append(dst, kind)
	// Payload length is patched in by finishFrame.
	return append(dst, 0, 0, 0, 0)
}

// finishFrame back-patches the payload length for the frame whose
// header starts at base.
func finishFrame(dst []byte, base int) []byte {
	binary.LittleEndian.PutUint32(dst[base+len(magic)+1:], uint32(len(dst)-base-headerSize))
	return dst
}

func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}
func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendHist(dst []byte, h *catalog.Histogram) []byte {
	if h == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = appendU64(dst, uint64(h.Domain))
	dst = appendU32(dst, uint32(len(h.Counts)))
	for _, c := range h.Counts {
		dst = appendF64(dst, c)
	}
	return dst
}

// AppendQuery appends a complete query frame to dst and returns the
// extended slice. The append style lets callers reuse pooled buffers.
func AppendQuery(dst []byte, q *catalog.Query) []byte {
	base := len(dst)
	dst = appendHeader(dst, KindQuery)
	dst = appendU32(dst, uint32(len(q.Relations)))
	for i := range q.Relations {
		rel := &q.Relations[i]
		dst = appendStr(dst, rel.Name)
		dst = appendU64(dst, uint64(rel.Cardinality))
		dst = appendU32(dst, uint32(len(rel.Selections)))
		for _, s := range rel.Selections {
			dst = appendF64(dst, s.Selectivity)
		}
	}
	dst = appendU32(dst, uint32(len(q.Predicates)))
	for i := range q.Predicates {
		p := &q.Predicates[i]
		dst = appendU32(dst, uint32(p.Left))
		dst = appendU32(dst, uint32(p.Right))
		dst = appendF64(dst, p.LeftDistinct)
		dst = appendF64(dst, p.RightDistinct)
		dst = appendF64(dst, p.Selectivity)
		dst = appendHist(dst, p.LeftHist)
		dst = appendHist(dst, p.RightHist)
	}
	return finishFrame(dst, base)
}

// EncodeQuery returns a freshly allocated query frame.
func EncodeQuery(q *catalog.Query) []byte { return AppendQuery(nil, q) }

// AppendResponse appends a complete response frame to dst.
func AppendResponse(dst []byte, r *Response) []byte {
	base := len(dst)
	dst = appendHeader(dst, KindResponse)
	dst = appendStr(dst, r.Fingerprint)
	var flags byte
	if r.CacheHit {
		flags |= flagCacheHit
	}
	if r.Coalesced {
		flags |= flagCoalesced
	}
	if r.Degraded {
		flags |= flagDegraded
	}
	dst = append(dst, flags)
	dst = appendStr(dst, r.DegradeReason)
	dst = appendU64(dst, uint64(r.BudgetUsed))
	dst = appendF64(dst, r.TotalCost)
	dst = appendU32(dst, uint32(len(r.Order)))
	for _, o := range r.Order {
		dst = appendU32(dst, uint32(o))
	}
	dst = appendU32(dst, uint32(len(r.Names)))
	for _, n := range r.Names {
		dst = appendStr(dst, n)
	}
	dst = append(dst, byte(r.Tier))
	dst = appendStr(dst, r.Explain)
	return finishFrame(dst, base)
}

// EncodeResponse returns a freshly allocated response frame.
func EncodeResponse(r *Response) []byte { return AppendResponse(nil, r) }

// --- decoding ---------------------------------------------------------

// reader walks a payload with sticky error state: after the first
// failure every subsequent read is a harmless zero, so decode code
// reads straight through and checks r.err once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrBadFrame}, args...)...)
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) u8() byte {
	if r.err != nil || r.remaining() < 1 {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.remaining() < 4 {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.remaining() < 8 {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if int64(n) > int64(r.remaining()) {
		r.fail("string length %d exceeds %d remaining bytes", n, r.remaining())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// count reads a u32 element count and rejects it when count·minSize
// cannot fit in the remaining payload — the guard that keeps a hostile
// 4-billion-element header from provoking a giant allocation.
func (r *reader) count(minSize int, what string) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minSize) > int64(r.remaining()) {
		r.fail("%s count %d exceeds %d remaining bytes", what, n, r.remaining())
		return 0
	}
	return int(n)
}

func (r *reader) hist() *catalog.Histogram {
	present := r.u8()
	switch present {
	case 0:
		return nil
	case 1:
	default:
		r.fail("histogram marker %d (want 0 or 1)", present)
		return nil
	}
	h := &catalog.Histogram{Domain: int64(r.u64())}
	n := r.count(8, "histogram bucket")
	if r.err != nil {
		return nil
	}
	h.Counts = make([]float64, n)
	for i := range h.Counts {
		h.Counts[i] = r.f64()
	}
	return h
}

// frame checks the envelope and returns the payload.
func frame(data []byte, kind byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrBadFrame, len(data), headerSize)
	}
	if !IsFrame(data) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if got := data[len(magic)]; got != kind {
		return nil, fmt.Errorf("%w: frame kind %d, want %d", ErrBadFrame, got, kind)
	}
	n := binary.LittleEndian.Uint32(data[len(magic)+1:])
	payload := data[headerSize:]
	if int64(n) != int64(len(payload)) {
		return nil, fmt.Errorf("%w: payload length %d, frame carries %d bytes", ErrBadFrame, n, len(payload))
	}
	return payload, nil
}

// minimum encoded sizes, used for count-vs-remaining guards.
const (
	minRelationSize  = 4 + 8 + 4           // name len + cardinality + selection count
	minPredicateSize = 4 + 4 + 3*8 + 1 + 1 // endpoints + three stats + two histogram markers
)

// DecodeQuery parses a query frame, validates it with the same
// structural rules the JSON path applies, and normalizes it (endpoint
// ordering, derived selectivities). Decoding is therefore idempotent:
// re-encoding the result and decoding again reproduces it exactly.
func DecodeQuery(data []byte) (*catalog.Query, error) {
	payload, err := frame(data, KindQuery)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	q := &catalog.Query{}
	nrel := r.count(minRelationSize, "relation")
	if r.err == nil && nrel > 0 {
		q.Relations = make([]catalog.Relation, nrel)
	}
	for i := 0; i < nrel && r.err == nil; i++ {
		rel := &q.Relations[i]
		rel.Name = r.str()
		rel.Cardinality = int64(r.u64())
		nsel := r.count(8, "selection")
		if r.err != nil {
			break
		}
		if nsel > 0 {
			rel.Selections = make([]catalog.Selection, nsel)
		}
		for j := range rel.Selections {
			rel.Selections[j].Selectivity = r.f64()
		}
	}
	npred := r.count(minPredicateSize, "predicate")
	if r.err == nil && npred > 0 {
		q.Predicates = make([]catalog.Predicate, npred)
	}
	for i := 0; i < npred && r.err == nil; i++ {
		p := &q.Predicates[i]
		p.Left = catalog.RelID(int32(r.u32()))
		p.Right = catalog.RelID(int32(r.u32()))
		p.LeftDistinct = r.f64()
		p.RightDistinct = r.f64()
		p.Selectivity = r.f64()
		p.LeftHist = r.hist()
		p.RightHist = r.hist()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrBadFrame, r.remaining())
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	q.Normalize()
	return q, nil
}

// DecodeResponse parses a response frame. Unknown flag bits are
// rejected rather than dropped — a future protocol revision must bump
// the magic, not smuggle meaning through reserved bits.
func DecodeResponse(data []byte) (*Response, error) {
	payload, err := frame(data, KindResponse)
	if err != nil {
		return nil, err
	}
	r := &reader{b: payload}
	out := &Response{}
	out.Fingerprint = r.str()
	flags := r.u8()
	if r.err == nil && flags&^byte(flagsKnown) != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %#x", ErrBadFrame, flags&^byte(flagsKnown))
	}
	out.CacheHit = flags&flagCacheHit != 0
	out.Coalesced = flags&flagCoalesced != 0
	out.Degraded = flags&flagDegraded != 0
	out.DegradeReason = r.str()
	out.BudgetUsed = int64(r.u64())
	out.TotalCost = r.f64()
	nOrder := r.count(4, "order")
	if r.err == nil && nOrder > 0 {
		out.Order = make([]int, nOrder)
	}
	for i := range out.Order {
		out.Order[i] = int(int32(r.u32()))
	}
	nNames := r.count(4, "name")
	if r.err == nil && nNames > 0 {
		out.Names = make([]string, nNames)
	}
	for i := range out.Names {
		out.Names[i] = r.str()
	}
	out.Tier = int(r.u8())
	out.Explain = r.str()
	if r.err != nil {
		return nil, r.err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrBadFrame, r.remaining())
	}
	return out, nil
}
