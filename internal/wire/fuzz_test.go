package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"joinopt/internal/catalog"
	"joinopt/internal/workload"
)

// fuzzSeeds provides valid frames so the fuzzer starts from structured
// corpus instead of pure noise.
func fuzzSeeds(f *testing.F, kind byte) {
	f.Helper()
	rng := rand.New(rand.NewSource(59))
	spec := workload.Default()
	for _, n := range []int{2, 5, 20} {
		q := spec.Generate(n, rng)
		switch kind {
		case KindQuery:
			f.Add(EncodeQuery(q))
		case KindResponse:
			f.Add(EncodeResponse(&Response{
				Fingerprint: "00ff",
				CacheHit:    n%2 == 0,
				BudgetUsed:  int64(n) * 1000,
				TotalCost:   float64(n) * 1.5e6,
				Order:       []int{0, 1},
				Names:       []string{"a", "b"},
				Tier:        2,
				Explain:     "plan",
			}))
		}
	}
	f.Add([]byte(magic))
	f.Add([]byte{})
}

// FuzzWireDecode: arbitrary bytes through both decoders. The only
// acceptable outcomes are a clean error or a successful parse — never a
// panic, never an unbounded allocation (the count guards cap every
// slice at the payload size).
func FuzzWireDecode(f *testing.F) {
	fuzzSeeds(f, KindQuery)
	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := DecodeQuery(data); err == nil {
			// Whatever decoded must satisfy the same invariants the JSON
			// boundary enforces.
			if verr := q.Validate(); verr != nil {
				t.Fatalf("decoded query fails validation: %v", verr)
			}
		}
		_, _ = DecodeResponse(data)
	})
}

// FuzzWireRoundTrip: any input both decoders accept must be a fixed
// point of decode∘encode — re-encoding the decoded value and decoding
// again reproduces identical bytes and an equal value. This is the
// property that makes the binary cache-hit path safe: two encodings of
// the same (normalized) query cannot diverge.
func FuzzWireRoundTrip(f *testing.F) {
	fuzzSeeds(f, KindQuery)
	fuzzSeeds(f, KindResponse)
	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := DecodeQuery(data); err == nil {
			enc := EncodeQuery(q)
			q2, err := DecodeQuery(enc)
			if err != nil {
				t.Fatalf("re-decode of re-encoded query failed: %v", err)
			}
			if !bytes.Equal(enc, EncodeQuery(q2)) {
				t.Fatal("query encode is not a fixed point")
			}
			if !queriesEqual(q, q2) {
				t.Fatalf("query value drifted through round trip:\n%+v\n%+v", q, q2)
			}
		}
		if r, err := DecodeResponse(data); err == nil {
			enc := EncodeResponse(r)
			r2, err := DecodeResponse(enc)
			if err != nil {
				t.Fatalf("re-decode of re-encoded response failed: %v", err)
			}
			if !bytes.Equal(enc, EncodeResponse(r2)) {
				t.Fatal("response encode is not a fixed point")
			}
		}
	})
}

// queriesEqual compares by re-encoding: float equality must be bitwise
// (NaN payloads and negative zeros travel through the codec verbatim),
// which reflect.DeepEqual gets wrong for NaN.
func queriesEqual(a, b *catalog.Query) bool {
	return bytes.Equal(EncodeQuery(a), EncodeQuery(b))
}
