package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"joinopt/internal/fingerprint"
	"joinopt/internal/persist"
	"joinopt/internal/plan"
	"joinopt/internal/plancache"
	"joinopt/internal/telemetry"
)

// arcEntry fabricates a pushable cache entry.
func arcEntry(i int) *plancache.Entry {
	var fp fingerprint.Fingerprint
	binary.LittleEndian.PutUint64(fp[:8], uint64(0xabc0+i))
	return &plancache.Entry{
		Fingerprint: fp,
		Plan: &plan.Plan{
			Components: []plan.Result{{Perm: plan.Perm{0, 1}, Cost: float64(i) + 0.5}},
			TotalCost:  float64(i) + 0.5,
		},
		BudgetUsed: int64(100 + i),
		Tier:       plancache.TierFull,
	}
}

func TestSnapshotArcPush(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, Config{Metrics: reg, ArcPushMaxBytes: 4096})

	entries := []*plancache.Entry{arcEntry(1), arcEntry(2), arcEntry(3)}
	payload := persist.EncodeSnapshot(entries)
	resp, err := http.Post(ts.URL+"/snapshot/arc", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var ack ArcPushResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Received != 3 || ack.Warmed != 3 {
		t.Fatalf("status %d ack %+v, want 3 received and warmed", resp.StatusCode, ack)
	}
	// Pushed entries are warm hits, not misses — the joining peer's
	// whole point.
	for _, e := range entries {
		got, ok := s.Cache().Peek(e.Fingerprint)
		if !ok || got.Plan.TotalCost != e.Plan.TotalCost {
			t.Fatalf("entry %s not warmed faithfully", e.Fingerprint)
		}
	}
	if st := s.Cache().Stats(); st.Warmed != 3 || st.Misses != 0 {
		t.Fatalf("cache stats %+v, want warmed-only", st)
	}

	// Re-pushing the same arc is idempotent: the entries refresh in
	// place (same-tier replacement), the entry count does not grow.
	resp, err = http.Post(ts.URL+"/snapshot/arc", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Received != 3 || s.Cache().Stats().Entries != 3 {
		t.Fatalf("re-push ack %+v entries %d, want 3 received / 3 entries", ack, s.Cache().Stats().Entries)
	}

	// Defect handling: wrong method, garbage payload, oversize payload.
	resp, err = http.Get(ts.URL + "/snapshot/arc")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/snapshot/arc", "application/octet-stream", strings.NewReader("not a container"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/snapshot/arc", "application/octet-stream", bytes.NewReader(make([]byte, 8192)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize status %d, want 413", resp.StatusCode)
	}

	// The receiving-side counters are on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mb)
	for _, want := range []string{
		"ljq_arc_push_received_total 2",
		"ljq_arc_push_entries_total 6", // 3 warmed per accepted push
		"ljq_arc_push_rejected_total 3",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
