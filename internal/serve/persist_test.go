package serve

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"joinopt/internal/persist"
	"joinopt/internal/plancache"
	"joinopt/internal/vfs"
	"joinopt/internal/workload"
)

// newHTTPServer serves an already-built Server (newTestServer builds
// its own; the durability tests construct the cache/manager wiring
// themselves).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getStatus fetches and decodes /statusz.
func getStatus(t *testing.T, url string) StatusResponse {
	t.Helper()
	resp, err := http.Get(url + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /statusz = %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRetryAfterRoundsUp is the regression for the serialized-zero
// bug: a sub-second shed hint must round UP to 1, never down to 0 —
// "Retry-After: 0" tells a client to hammer an overloaded server.
func TestRetryAfterRoundsUp(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{400 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1400 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{0, "1"},
		{-time.Second, "1"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestLivenessVsReadiness pins the health-split contract: liveness
// answers 200 while the process runs; readiness flips with SetReady
// (journal replay, drain) without touching liveness.
func TestLivenessVsReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		return resp.StatusCode
	}
	for _, p := range []string{"/healthz", "/livez", "/readyz"} {
		if code := get(p); code != http.StatusOK {
			t.Fatalf("GET %s = %d at startup, want 200", p, code)
		}
	}

	s.SetReady(false)
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz = %d while not ready, want 503", code)
	}
	for _, p := range []string{"/healthz", "/livez"} {
		if code := get(p); code != http.StatusOK {
			t.Fatalf("GET %s = %d while not ready, want 200 (liveness is not readiness)", p, code)
		}
	}

	s.SetReady(true)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("GET /readyz = %d after recovery, want 200", code)
	}
}

// TestReadinessShedWindow: after the limiter sheds, /readyz answers
// 503 (with a nonzero Retry-After) until the window passes.
func TestReadinessShedWindow(t *testing.T) {
	s, ts := newTestServer(t, Config{ReadinessShedWindow: 100 * time.Millisecond})
	// Record a shed the way handleOptimize does.
	s.lastShedNano.Store(time.Now().UnixNano())

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz = %d inside shed window, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q inside shed window, want >= 1", ra)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz still 503 long after the shed window elapsed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// persistentServer builds a Server whose cache is durably backed by a
// store over fs. Returns the server and its manager.
func persistentServer(t *testing.T, fs vfs.FS) (*Server, *persist.Manager) {
	t.Helper()
	store, entries, rstats, err := persist.Open(persist.Options{Dir: "cache", FS: fs})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	cache := plancache.New(plancache.Config{Capacity: 1024})
	mgr := persist.NewManager(store, cache, 64)
	mgr.Recover(entries, rstats)
	mgr.Bind()
	s := New(Config{TCoeff: 1, CacheHandle: cache, Persist: mgr})
	return s, mgr
}

// TestRestartServesByteIdenticalPlan is the end-to-end durability
// contract: optimize, flush, "restart" (new server over the same
// directory), and the same query is a cache hit with byte-identical
// Explain and bit-identical cost — the t·N² search is paid exactly
// once across process lifetimes.
func TestRestartServesByteIdenticalPlan(t *testing.T) {
	mem := vfs.NewMem()
	q := workload.Default().Generate(18, rand.New(rand.NewSource(5)))
	body := queryBody(t, q)

	s1, mgr1 := persistentServer(t, mem)
	ts1 := newHTTPServer(t, s1)
	resp1, out1 := postOptimize(t, ts1.URL, body)
	if resp1.StatusCode != http.StatusOK || out1.CacheHit {
		t.Fatalf("first POST: status %d, hit=%v", resp1.StatusCode, out1.CacheHit)
	}
	// Graceful shutdown: flush the snapshot and close the store.
	if err := mgr1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := mgr1.Stats()
	if st.Appends == 0 {
		t.Fatal("the admitted plan was never journaled")
	}

	// "Restart": recover a brand-new server over the same directory.
	s2, mgr2 := persistentServer(t, mem)
	if rec := mgr2.Recovery(); rec.Recovered == 0 {
		t.Fatalf("recovery found nothing: %+v", rec)
	}
	ts2 := newHTTPServer(t, s2)
	resp2, out2 := postOptimize(t, ts2.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-restart POST: status %d", resp2.StatusCode)
	}
	if !out2.CacheHit {
		t.Fatal("post-restart POST must hit the recovered cache")
	}
	if out2.Fingerprint != out1.Fingerprint {
		t.Fatalf("fingerprint drifted across restart: %s != %s", out2.Fingerprint, out1.Fingerprint)
	}
	if out2.Explain != out1.Explain {
		t.Fatalf("explain not byte-identical across restart:\n--- before\n%s\n--- after\n%s", out1.Explain, out2.Explain)
	}
	if math.Float64bits(out2.TotalCost) != math.Float64bits(out1.TotalCost) {
		t.Fatalf("total cost not bit-identical across restart: %x != %x",
			math.Float64bits(out2.TotalCost), math.Float64bits(out1.TotalCost))
	}
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStatuszReportsPersist: with a durability manager bound, /statusz
// carries the recovery and journal counters.
func TestStatuszReportsPersist(t *testing.T) {
	mem := vfs.NewMem()
	s, _ := persistentServer(t, mem)
	ts := newHTTPServer(t, s)
	q := workload.Default().Generate(6, rand.New(rand.NewSource(3)))
	if resp, _ := postOptimize(t, ts.URL, queryBody(t, q)); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	st := getStatus(t, ts.URL)
	if st.Persist == nil {
		t.Fatal("statusz.persist missing with a bound manager")
	}
	if st.Persist.Appends == 0 {
		t.Fatalf("statusz.persist.journalAppends = 0 after an admission: %+v", st.Persist)
	}
	if !st.Ready {
		t.Fatal("statusz.ready = false on a serving daemon")
	}
}
