package serve

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"joinopt/internal/wire"
	"joinopt/internal/workload"
)

// postWire posts a binary-framed query and asks for a binary response.
func postWire(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/optimize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestWireCrossProtocol is the cross-protocol contract: the same query
// posted as JSON and as a binary frame shares one cache entry and one
// optimizer run, and the responses agree byte for byte where it
// matters — fingerprint, plan Explain, tier header.
func TestWireCrossProtocol(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	q := workload.Default().Generate(12, rand.New(rand.NewSource(31)))

	jsonResp, jsonOut := postOptimize(t, ts.URL, queryBody(t, q))
	if jsonResp.StatusCode != http.StatusOK {
		t.Fatalf("json optimize: status %d", jsonResp.StatusCode)
	}

	wireHTTP, wireBody := postWire(t, ts.URL, wire.EncodeQuery(q))
	if wireHTTP.StatusCode != http.StatusOK {
		t.Fatalf("wire optimize: status %d: %s", wireHTTP.StatusCode, wireBody)
	}
	if ct := wireHTTP.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("wire response Content-Type = %q, want %q", ct, wire.ContentType)
	}
	wireOut, err := wire.DecodeResponse(wireBody)
	if err != nil {
		t.Fatalf("decode wire response: %v", err)
	}

	// Same shape → same cache entry: the second request must be a hit,
	// and exactly one optimization ran across both protocols.
	if !wireOut.CacheHit {
		t.Fatal("binary request after JSON request was not a cache hit")
	}
	if got := s.optimizes.Load(); got != 1 {
		t.Fatalf("optimizer ran %d times across two protocols, want 1", got)
	}

	if wireOut.Fingerprint != jsonOut.Fingerprint {
		t.Fatalf("fingerprint drift across protocols: %s vs %s", wireOut.Fingerprint, jsonOut.Fingerprint)
	}
	if wireOut.Explain != jsonOut.Explain {
		t.Fatalf("Explain drift across protocols:\njson:\n%s\nwire:\n%s", jsonOut.Explain, wireOut.Explain)
	}
	if wireOut.TotalCost != jsonOut.TotalCost {
		t.Fatalf("cost drift: %g vs %g", wireOut.TotalCost, jsonOut.TotalCost)
	}
	if len(wireOut.Order) != len(jsonOut.Order) {
		t.Fatalf("order length drift: %v vs %v", wireOut.Order, jsonOut.Order)
	}
	for i := range wireOut.Order {
		if wireOut.Order[i] != jsonOut.Order[i] || wireOut.Names[i] != jsonOut.Names[i] {
			t.Fatalf("order/name drift at %d: %v/%v vs %v/%v",
				i, wireOut.Order, wireOut.Names, jsonOut.Order, jsonOut.Names)
		}
	}
	if wireOut.Tier != jsonOut.Tier {
		t.Fatalf("tier drift: %d vs %d", wireOut.Tier, jsonOut.Tier)
	}
	if got, want := wireHTTP.Header.Get("X-Plan-Tier"), jsonResp.Header.Get("X-Plan-Tier"); got != want {
		t.Fatalf("X-Plan-Tier drift: %q vs %q", got, want)
	}
}

// TestWireNegotiationIsIndependent: request codec (Content-Type) and
// response codec (Accept) negotiate separately — a binary request can
// take a JSON response and vice versa.
func TestWireNegotiationIsIndependent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := workload.Default().Generate(5, rand.New(rand.NewSource(33)))

	// Binary request, default (JSON) response.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewReader(wire.EncodeQuery(q)))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wire-in/json-out: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("wire-in/json-out Content-Type = %q", ct)
	}

	// JSON request, binary response.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewReader(queryBody(t, q)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.ContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json-in/wire-out: status %d: %s", resp.StatusCode, body)
	}
	if !wire.IsFrame(body) {
		t.Fatal("json-in/wire-out: response is not a wire frame")
	}
	if _, err := wire.DecodeResponse(body); err != nil {
		t.Fatalf("json-in/wire-out: %v", err)
	}
}

// TestWireRequestHardening: malformed frames get 400, oversized bodies
// get 413 — the same edges the JSON path guards.
func TestWireRequestHardening(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewReader([]byte("LJW1 garbage")))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed frame: status %d, want 400", resp.StatusCode)
	}

	big := wire.EncodeQuery(workload.Default().Generate(60, rand.New(rand.NewSource(35))))
	if len(big) <= 256 {
		t.Fatalf("test needs an oversized body, got %d bytes", len(big))
	}
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/optimize", bytes.NewReader(big))
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized frame: status %d, want 413", resp.StatusCode)
	}
}

// BenchmarkOptimizeBinaryHit is BenchmarkOptimizeCacheHit's binary
// twin: the full handler path — binary decode → fingerprint → cache
// hit → translate → binary encode. BENCH_serve.json tracks it against
// the JSON hit path; the wire codec's job is to cut the codec share of
// the hot path, not the fingerprint share.
func BenchmarkOptimizeBinaryHit(b *testing.B) {
	s := New(Config{TCoeff: 1})
	q := workload.Default().Generate(20, rand.New(rand.NewSource(4)))
	body := wire.EncodeQuery(q)
	h := s.Handler()
	warm := httptest.NewRequest(http.MethodPost, "/optimize", bytes.NewReader(body))
	warm.Header.Set("Content-Type", wire.ContentType)
	warm.Header.Set("Accept", wire.ContentType)
	h.ServeHTTP(httptest.NewRecorder(), warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/optimize", bytes.NewReader(body))
		req.Header.Set("Content-Type", wire.ContentType)
		req.Header.Set("Accept", wire.ContentType)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
