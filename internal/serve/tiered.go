package serve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"joinopt/internal/catalog"
	"joinopt/internal/core"
	"joinopt/internal/cost"
	"joinopt/internal/fingerprint"
	"joinopt/internal/greedy"
	"joinopt/internal/plan"
	"joinopt/internal/plancache"
	"joinopt/internal/telemetry"
)

// tierOrchestrator implements the tiered planning ladder behind the
// cache's singleflight: a miss is answered immediately with a Tier-1
// greedy plan (microseconds, zero steady-state allocations), and the
// cached entry is upgraded asynchronously by the full anytime search,
// warm-started from the greedy order. The deterministic escalation
// rule (greedy.Escalate) sends absurd greedy plans straight to the
// synchronous full search instead.
//
// Interaction with the existing machinery, invariant by invariant:
//
//   - Singleflight: compute runs inside a cache flight, so concurrent
//     misses still coalesce onto one greedy run. The background
//     upgrade does NOT run inside the flight — it Puts its result
//     directly, and the plancache's upgrade-only replacement refuses a
//     late Tier-1 insert from the flight after the Tier-2 plan landed,
//     so the race resolves correctly whichever side finishes first.
//   - Determinism: the upgrade optimizes the canonical query under the
//     configured seed and the upgrade budget, exactly like the
//     synchronous path — the Tier-2 plan is the same pure function of
//     (fingerprint, seed, budget), so same-seed runs serve
//     byte-identical upgraded plans.
//   - Degradation: a degraded upgrade result (cancelled at drain,
//     strategy panic) is discarded, never cached — the Tier-1 plan
//     stays until a future full run succeeds.
//   - Capacity: upgrades are capped by their own small gate
//     (Config.UpgradeConcurrency), not the join-weighted limiter, so
//     background work never queues ahead of foreground requests.
type tierOrchestrator struct {
	srv       *Server
	threshold float64

	// gate caps concurrently-running upgrades; pending dedupes and
	// bounds scheduled ones.
	gate    chan struct{}
	mu      sync.Mutex
	pending map[fingerprint.Fingerprint]struct{}
	wg      sync.WaitGroup
	stopped bool
	ctx     context.Context
	cancel  context.CancelFunc

	tier1Served atomic.Uint64 // misses answered with a greedy plan
	escalations atomic.Uint64 // misses escalated to synchronous full search
	upStarted   atomic.Uint64
	upDone      atomic.Uint64
	upFailed    atomic.Uint64 // upgrade panicked or produced only a degraded plan
	upDropped   atomic.Uint64 // upgrades refused (backlog cap or shutdown)

	// ratioH observes greedyCost/finalCost per completed upgrade — the
	// serving-quality gap the fast path cost us while the upgrade ran.
	ratioH *telemetry.Histogram
}

// maxPendingUpgrades bounds the scheduled-upgrade backlog; beyond it
// new upgrades are dropped (the Tier-1 plan simply remains cached, and
// a later miss after eviction reschedules).
const maxPendingUpgrades = 1024

func newTierOrchestrator(s *Server) *tierOrchestrator {
	//ljqlint:allow ctxflow -- upgrades outlive any single request by design; StopUpgrades cancels this at drain
	ctx, cancel := context.WithCancel(context.Background())
	return &tierOrchestrator{
		srv:       s,
		threshold: s.cfg.GreedyThreshold,
		gate:      make(chan struct{}, s.cfg.UpgradeConcurrency),
		pending:   make(map[fingerprint.Fingerprint]struct{}),
		ctx:       ctx,
		cancel:    cancel,
	}
}

func (t *tierOrchestrator) registerMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("ljq_tier1_served_total", "Cache misses answered immediately with a greedy (Tier-1) plan.", t.tier1Served.Load)
	reg.CounterFunc("ljq_tier_escalations_total", "Cache misses escalated past the greedy tier to the synchronous full search.", t.escalations.Load)
	reg.CounterFunc("ljq_tier_upgrades_started_total", "Background Tier-2 upgrades scheduled.", t.upStarted.Load)
	reg.CounterFunc("ljq_tier_upgrades_completed_total", "Background Tier-2 upgrades that landed in the cache.", t.upDone.Load)
	reg.CounterFunc("ljq_tier_upgrades_failed_total", "Background Tier-2 upgrades discarded (degraded result or panic).", t.upFailed.Load)
	reg.CounterFunc("ljq_tier_upgrades_dropped_total", "Background Tier-2 upgrades refused (backlog cap or shutdown).", t.upDropped.Load)
	reg.GaugeFunc("ljq_tier_pending_upgrades", "Upgrades scheduled but not yet finished.", func() float64 {
		return float64(t.pendingCount())
	})
	// Ratio 1 = greedy already optimal; the tail shows how much plan
	// quality the fast path trades for latency.
	t.ratioH = reg.Histogram("ljq_tier_cost_ratio",
		"Greedy plan cost / upgraded full-search plan cost, per completed upgrade.",
		telemetry.ExpBuckets(0.5, 2, 12))
}

func (t *tierOrchestrator) pendingCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

func (t *tierOrchestrator) fillStatus(ts *TierStatus) {
	ts.Enabled = true
	ts.PendingUpgrades = t.pendingCount()
	ts.Tier1Served = t.tier1Served.Load()
	ts.Escalations = t.escalations.Load()
	ts.UpgradesStarted = t.upStarted.Load()
	ts.UpgradesCompleted = t.upDone.Load()
	ts.UpgradesFailed = t.upFailed.Load()
	ts.UpgradesDropped = t.upDropped.Load()
}

// compute is the tiered cache-miss path, run inside the cache's
// singleflight. It answers with a greedy plan when the escalation rule
// permits, scheduling the background upgrade; otherwise it falls
// through to the synchronous full-search path.
func (t *tierOrchestrator) compute(ctx context.Context, fp fingerprint.Fingerprint, cq *catalog.Query, weight int64) (*plancache.Entry, error) {
	res, err := t.greedyPlan(cq)
	if err == nil && !greedy.Escalate(res.TotalCost, t.threshold) {
		pl := res.ToPlan()
		t.tier1Served.Add(1)
		t.scheduleUpgrade(fp, cq, pl.Order(), res.TotalCost)
		return &plancache.Entry{Fingerprint: fp, Plan: pl, BudgetUsed: res.Work, Tier: plancache.TierGreedy}, nil
	}
	t.escalations.Add(1)
	return t.srv.optimize(ctx, fp, cq, weight)
}

// greedyPlan builds and runs the Tier-1 planner behind a recover
// barrier: a crash in the greedy path must escalate the miss, not take
// down the flight. Per-miss planner construction allocates (CSR
// adjacency, scratch buffers) — that is the cold path; the zero-alloc
// contract is on Planner.Plan.
func (t *tierOrchestrator) greedyPlan(cq *catalog.Query) (res *greedy.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("serve: greedy planner panicked: %v", r)
		}
	}()
	p, err := greedy.New(cq.Clone(), t.srv.cfg.Model)
	if err != nil {
		return nil, err
	}
	return p.Plan(), nil
}

// scheduleUpgrade queues a background Tier-2 upgrade for fp, deduping
// against one already pending and bounding the backlog.
func (t *tierOrchestrator) scheduleUpgrade(fp fingerprint.Fingerprint, cq *catalog.Query, incumbent plan.Perm, greedyCost float64) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		t.upDropped.Add(1)
		return
	}
	if _, dup := t.pending[fp]; dup {
		t.mu.Unlock()
		return
	}
	if len(t.pending) >= maxPendingUpgrades {
		t.mu.Unlock()
		t.upDropped.Add(1)
		return
	}
	t.pending[fp] = struct{}{}
	t.wg.Add(1)
	t.mu.Unlock()
	t.upStarted.Add(1)
	go t.upgrade(fp, cq.Clone(), incumbent, greedyCost)
}

// upgrade runs the full anytime search for fp and, if the result is
// healthy, lands it in the cache; the plancache's upgrade-only
// replacement makes the insert safe against the still-finishing greedy
// flight.
func (t *tierOrchestrator) upgrade(fp fingerprint.Fingerprint, cq *catalog.Query, incumbent plan.Perm, greedyCost float64) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.pending, fp)
		t.mu.Unlock()
	}()
	defer func() {
		if r := recover(); r != nil {
			// The upgrade goroutine's panic barrier: a crash discards
			// this upgrade, the Tier-1 plan stays served.
			t.upFailed.Add(1)
		}
	}()

	select {
	case t.gate <- struct{}{}:
	case <-t.ctx.Done():
		t.upDropped.Add(1)
		return
	}
	defer func() { <-t.gate }()

	cfg := &t.srv.cfg
	n := len(cq.Relations) - 1
	if n < 1 {
		n = 1
	}
	budget := cost.NewBudget(cost.UnitsFor(cfg.UpgradeTCoeff, n))
	opt, err := core.NewOptimizer(cq, cfg.Model, budget, rand.New(rand.NewSource(cfg.Seed)), core.Options{Incumbent: incumbent})
	if err != nil {
		t.upFailed.Add(1)
		return
	}
	pl, _ := opt.RunContext(t.ctx, cfg.Method)
	if pl == nil || pl.Degraded {
		// Cancelled at drain, starved, or panicked: never replace a
		// healthy Tier-1 plan with a degraded Tier-2 one.
		t.upFailed.Add(1)
		return
	}
	t.srv.cache.Put(&plancache.Entry{Fingerprint: fp, Plan: pl, BudgetUsed: budget.Used(), Tier: plancache.TierFull})
	t.upDone.Add(1)
	if t.ratioH != nil && !math.IsInf(greedyCost, 0) && !math.IsNaN(greedyCost) && pl.TotalCost > 0 {
		t.ratioH.Observe(greedyCost / pl.TotalCost)
	}
}

// stop refuses new upgrades, cancels running ones, and waits for the
// goroutines to exit.
func (t *tierOrchestrator) stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	t.mu.Unlock()
	t.cancel()
	t.wg.Wait()
}

// StopUpgrades stops the background upgrade pipeline: new upgrades are
// refused, running ones are cancelled (their anytime runs return
// degraded incumbents, which are discarded) and waited for. Called by
// the daemon at drain, between connection shutdown and the final
// snapshot flush, so the flushed snapshot is stable. No-op untiered.
func (s *Server) StopUpgrades() {
	if s.tiers != nil {
		s.tiers.stop()
	}
}

// WaitUpgrades blocks until every scheduled background upgrade has
// finished, without stopping the pipeline. Deterministic tests use it
// to observe the upgraded cache state. No-op untiered.
func (s *Server) WaitUpgrades() {
	if s.tiers != nil {
		s.tiers.wg.Wait()
	}
}
