package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"joinopt/internal/plancache"
	"joinopt/internal/workload"
)

// TestTieredColdMissServesGreedyThenUpgrades is the acceptance test of
// the tiered ladder: a cold miss is answered from the greedy tier
// (Tier 1 in the body, header and Explain), and once the background
// upgrade lands, the same query is a cache hit served from the full
// search (Tier 2) — with both responses byte-identical across
// same-seed runs.
func TestTieredColdMissServesGreedyThenUpgrades(t *testing.T) {
	q := workload.Default().Generate(20, rand.New(rand.NewSource(42)))
	body := queryBody(t, q)

	run := func(t *testing.T) (cold, warm []byte) {
		s, ts := newTestServer(t, Config{Tiered: true})

		resp, or := postOptimize(t, ts.URL, body)
		if or.CacheHit {
			t.Fatal("cold request reported a cache hit")
		}
		if or.Tier != int(plancache.TierGreedy) {
			t.Fatalf("cold request served tier %d, want %d (greedy)", or.Tier, plancache.TierGreedy)
		}
		if got := resp.Header.Get("X-Plan-Tier"); got != "1" {
			t.Fatalf("cold X-Plan-Tier = %q, want \"1\"", got)
		}
		if !bytes.Contains([]byte(or.Explain), []byte("tier 1 (greedy fast path)")) {
			t.Fatalf("cold Explain missing tier line:\n%s", or.Explain)
		}
		if or.Degraded {
			t.Fatal("greedy plan flagged degraded")
		}
		if len(or.Order) != 21 {
			t.Fatalf("cold order covers %d relations, want 21", len(or.Order))
		}
		cold = []byte(or.Explain)

		// Deterministically wait for the background upgrade to land.
		s.WaitUpgrades()

		resp2, or2 := postOptimize(t, ts.URL, body)
		if !or2.CacheHit {
			t.Fatal("second request missed the cache")
		}
		if or2.Tier != int(plancache.TierFull) {
			t.Fatalf("post-upgrade request served tier %d, want %d (full)", or2.Tier, plancache.TierFull)
		}
		if got := resp2.Header.Get("X-Plan-Tier"); got != "2" {
			t.Fatalf("post-upgrade X-Plan-Tier = %q, want \"2\"", got)
		}
		if !bytes.Contains([]byte(or2.Explain), []byte("tier 2 (full anytime search)")) {
			t.Fatalf("post-upgrade Explain missing tier line:\n%s", or2.Explain)
		}
		if or2.Degraded {
			t.Fatal("upgraded plan flagged degraded")
		}
		if or2.BudgetUsed <= or.BudgetUsed {
			t.Fatalf("upgraded BudgetUsed %d not above greedy work %d", or2.BudgetUsed, or.BudgetUsed)
		}

		g, f := s.Cache().TierCounts()
		if g != 0 || f != 1 {
			t.Fatalf("cache tier composition (%d, %d), want (0, 1) after upgrade", g, f)
		}
		return cold, []byte(or2.Explain)
	}

	cold1, warm1 := run(t)
	cold2, warm2 := run(t)
	if !bytes.Equal(cold1, cold2) {
		t.Fatalf("greedy-tier Explain differs across same-seed runs:\n%s\n---\n%s", cold1, cold2)
	}
	if !bytes.Equal(warm1, warm2) {
		t.Fatalf("upgraded Explain differs across same-seed runs:\n%s\n---\n%s", warm1, warm2)
	}
}

// TestTieredEscalation: with an absurdly low threshold every greedy
// plan escalates, so the cold miss pays the synchronous full search
// and no upgrade is scheduled.
func TestTieredEscalation(t *testing.T) {
	s, ts := newTestServer(t, Config{Tiered: true, GreedyThreshold: 1e-300})
	q := workload.Default().Generate(12, rand.New(rand.NewSource(7)))

	_, or := postOptimize(t, ts.URL, queryBody(t, q))
	if or.Tier != int(plancache.TierFull) {
		t.Fatalf("escalated miss served tier %d, want %d", or.Tier, plancache.TierFull)
	}
	if or.CacheHit {
		t.Fatal("cold request reported a cache hit")
	}

	st := statusz(t, ts.URL)
	if !st.Tiers.Enabled {
		t.Fatal("statusz reports tiering disabled")
	}
	if st.Tiers.Escalations != 1 {
		t.Fatalf("escalations = %d, want 1", st.Tiers.Escalations)
	}
	if st.Tiers.Tier1Served != 0 || st.Tiers.UpgradesStarted != 0 {
		t.Fatalf("escalated miss leaked into the greedy pipeline: %+v", st.Tiers)
	}
	if st.Tiers.Tier1Entries != 0 || st.Tiers.Tier2Entries != 1 {
		t.Fatalf("tier composition (%d, %d), want (0, 1)", st.Tiers.Tier1Entries, st.Tiers.Tier2Entries)
	}
	s.WaitUpgrades() // no-op, but must not hang
}

// TestTieredBatch: batch items route through the tier orchestrator —
// all cold items come back Tier-1 with one compute per unique
// fingerprint, and the upgrades land per unique shape.
func TestTieredBatch(t *testing.T) {
	s, ts := newTestServer(t, Config{Tiered: true})

	qa := workload.Default().Generate(8, rand.New(rand.NewSource(1)))
	qb := workload.Default().Generate(10, rand.New(rand.NewSource(2)))
	items := [][]byte{queryBody(t, qa), queryBody(t, qb), queryBody(t, qa)}

	var breq BatchRequest
	for _, it := range items {
		breq.Queries = append(breq.Queries, json.RawMessage(it))
	}
	buf, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/optimize/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var bresp BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(bresp.Results))
	}
	for i, r := range bresp.Results {
		if r.Error != "" || r.Plan == nil {
			t.Fatalf("item %d failed: %s", i, r.Error)
		}
		if r.Plan.Tier != int(plancache.TierGreedy) {
			t.Fatalf("cold batch item %d served tier %d, want %d", i, r.Plan.Tier, plancache.TierGreedy)
		}
	}

	s.WaitUpgrades()
	st := statusz(t, ts.URL)
	if st.Tiers.UpgradesStarted != 2 || st.Tiers.UpgradesCompleted != 2 {
		t.Fatalf("upgrades started/completed = %d/%d, want 2/2 (one per unique shape)",
			st.Tiers.UpgradesStarted, st.Tiers.UpgradesCompleted)
	}
	if st.Tiers.Tier1Entries != 0 || st.Tiers.Tier2Entries != 2 {
		t.Fatalf("tier composition (%d, %d), want (0, 2)", st.Tiers.Tier1Entries, st.Tiers.Tier2Entries)
	}
}

// TestUntieredStatuszTierComposition: without tiering, /statusz still
// reports the cache's tier composition (full-search entries), with the
// pipeline marked disabled.
func TestUntieredStatuszTierComposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	q := workload.Default().Generate(6, rand.New(rand.NewSource(5)))
	_, or := postOptimize(t, ts.URL, queryBody(t, q))
	if or.Tier != int(plancache.TierFull) {
		t.Fatalf("untiered response tier %d, want %d", or.Tier, plancache.TierFull)
	}
	st := statusz(t, ts.URL)
	if st.Tiers.Enabled {
		t.Fatal("statusz reports tiering enabled on an untiered server")
	}
	if st.Tiers.Tier1Entries != 0 || st.Tiers.Tier2Entries != 1 {
		t.Fatalf("tier composition (%d, %d), want (0, 1)", st.Tiers.Tier1Entries, st.Tiers.Tier2Entries)
	}
}

// statusz fetches and decodes GET /statusz.
func statusz(t *testing.T, base string) StatusResponse {
	t.Helper()
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
