package serve

import (
	"context"
	"sync"
)

// semaphore is a hand-rolled weighted, context-aware counting
// semaphore (no x/sync dependency — the repository is stdlib-only):
// the server-wide limiter on in-flight optimization work. Weights are
// join counts, so one 60-join optimization occupies as much capacity
// as three 20-join ones. Waiters are FIFO: a heavy request at the head
// of the queue is not starved by lighter requests slipping past it.
type semaphore struct {
	mu       sync.Mutex
	capacity int64
	cur      int64
	waiters  []*semWaiter
}

type semWaiter struct {
	n     int64
	ready chan struct{}
}

func newSemaphore(capacity int64) *semaphore {
	if capacity < 1 {
		capacity = 1
	}
	return &semaphore{capacity: capacity}
}

// Acquire blocks until n units are available or ctx is done. Requests
// heavier than the total capacity are clamped to it — a single
// outsized query is admitted (alone) rather than deadlocked forever.
func (s *semaphore) Acquire(ctx context.Context, n int64) error {
	if n < 1 {
		n = 1
	}
	if n > s.capacity {
		n = s.capacity
	}
	s.mu.Lock()
	if len(s.waiters) == 0 && s.cur+n <= s.capacity {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &semWaiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				s.mu.Unlock()
				return ctx.Err()
			}
		}
		// Not queued anymore: the grant raced the cancellation and we
		// already own the units. Give them back and report the
		// cancellation — the caller is abandoning the request.
		s.cur -= n
		s.notifyLocked()
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns n units (clamped the same way Acquire clamps).
func (s *semaphore) Release(n int64) {
	if n < 1 {
		n = 1
	}
	if n > s.capacity {
		n = s.capacity
	}
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		s.cur = 0
	}
	s.notifyLocked()
	s.mu.Unlock()
}

// notifyLocked grants queued waiters in FIFO order while capacity
// lasts.
func (s *semaphore) notifyLocked() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if s.cur+w.n > s.capacity {
			return
		}
		s.cur += w.n
		s.waiters = s.waiters[1:]
		close(w.ready)
	}
}

// InUse returns the units currently held.
func (s *semaphore) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Waiting returns the queue length.
func (s *semaphore) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Capacity returns the configured capacity.
func (s *semaphore) Capacity() int64 { return s.capacity }
