package serve

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"joinopt/internal/faultinject"
	"joinopt/internal/persist"
	"joinopt/internal/vfs"
	"joinopt/internal/workload"
)

// gate is middleware that parks /optimize requests between "started"
// and "release": the drain test needs a request provably in flight
// when the shutdown signal lands.
type gate struct {
	next    http.Handler
	started chan struct{}
	release chan struct{}
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/optimize" {
		g.started <- struct{}{}
		<-g.release
	}
	g.next.ServeHTTP(w, r)
}

// TestDaemonDrainOrdering pins the shutdown sequence a load-balanced
// deployment needs: signal → readiness false + listener closed (new
// connections refused) → in-flight request completes 200 → plan cache
// snapshot flushed → RunDaemon returns nil (exit 0).
func TestDaemonDrainOrdering(t *testing.T) {
	mem := vfs.NewMem()
	srv, mgr := persistentServer(t, mem)
	g := &gate{
		next:    srv.Handler(),
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
	}

	addrCh := make(chan net.Addr, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunDaemon(ctx, DaemonConfig{
			Server:   srv,
			Addr:     "127.0.0.1:0",
			Handler:  g,
			Grace:    10 * time.Second,
			OnListen: func(a net.Addr) { addrCh <- a },
		})
	}()
	addr := (<-addrCh).String()
	base := "http://" + addr

	// Launch the in-flight request; wait until it is inside the gate.
	q := workload.Default().Generate(8, rand.New(rand.NewSource(2)))
	body := queryBody(t, q)
	reqDone := make(chan *http.Response, 1)
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			reqErr <- err
			return
		}
		reqDone <- resp
	}()
	<-g.started

	// Signal shutdown while the request is parked.
	cancel()

	// The listener must close: new connections get refused. (Poll; the
	// Shutdown goroutine races us by a few scheduler ticks.)
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			break
		}
		_ = conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting long after shutdown signal")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight request has NOT been aborted, and RunDaemon is
	// still draining.
	select {
	case err := <-reqErr:
		t.Fatalf("in-flight request aborted during drain: %v", err)
	case <-done:
		t.Fatal("RunDaemon returned before the in-flight request finished")
	case <-time.After(50 * time.Millisecond):
	}

	// Snapshot must not have been flushed yet: the drain-then-flush
	// order puts the final requests' plans in the snapshot.
	preFlush := mgr.Stats().Snapshots

	// Release the parked request: it must complete 200.
	close(g.release)
	select {
	case resp := <-reqDone:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("drained request status %d, want 200", resp.StatusCode)
		}
		_ = resp.Body.Close()
	case err := <-reqErr:
		t.Fatalf("drained request failed: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("released request never completed")
	}

	// RunDaemon finishes cleanly (exit 0) and flushed after the drain.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunDaemon = %v, want nil on clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunDaemon never returned")
	}
	if got := mgr.Stats().Snapshots; got <= preFlush {
		t.Fatalf("snapshots = %d, want > %d (final flush after drain)", got, preFlush)
	}

	// The flushed snapshot holds the drained request's plan: a fresh
	// recovery over the directory finds it.
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	store, entries, _, err := persist.Open(persist.Options{Dir: "cache", FS: mem})
	if err != nil {
		t.Fatalf("recovery after drain: %v", err)
	}
	defer store.Close()
	if len(entries) == 0 {
		t.Fatal("drained plan missing from the flushed snapshot")
	}
}

// TestDaemonCrashMidFinalFlush: the disk dies during the shutdown
// snapshot. RunDaemon must surface the error — and the previous
// snapshot + journal must still recover every admitted plan, because
// the snapshot protocol never destroys the old state before the new
// state is published.
func TestDaemonCrashMidFinalFlush(t *testing.T) {
	mem := vfs.NewMem()
	ffs := faultinject.NewFaultFS(mem, faultinject.FSConfig{})
	srv, mgr := persistentServer(t, ffs)

	addrCh := make(chan net.Addr, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunDaemon(ctx, DaemonConfig{
			Server:   srv,
			Addr:     "127.0.0.1:0",
			Grace:    10 * time.Second,
			OnListen: func(a net.Addr) { addrCh <- a },
		})
	}()
	base := "http://" + (<-addrCh).String()

	// Admit one plan while the disk is healthy (journaled durably).
	q := workload.Default().Generate(8, rand.New(rand.NewSource(2)))
	resp, err := http.Post(base+"/optimize", "application/json", bytes.NewReader(queryBody(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d", resp.StatusCode)
	}
	if mgr.Stats().Appends == 0 {
		t.Fatal("plan was not journaled before the crash window")
	}

	// Pull the plug on the next mutating operation — the final flush's
	// snapshot temp-file create.
	ffs.Reset(faultinject.FSConfig{Seed: 1, CrashAtOp: 1})
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("RunDaemon = nil, want the flush failure surfaced")
		}
		if !errors.Is(err, faultinject.ErrCrashed) && !strings.Contains(err.Error(), "crash") {
			t.Fatalf("RunDaemon error %v does not carry the injected crash", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunDaemon never returned")
	}

	// Reboot over the raw bytes: the journaled plan survives the
	// failed final flush.
	store, entries, rstats, err := persist.Open(persist.Options{Dir: "cache", FS: mem})
	if err != nil {
		t.Fatalf("recovery after crash-mid-flush: %v", err)
	}
	defer store.Close()
	if rstats.Recovered == 0 || len(entries) == 0 {
		t.Fatalf("admitted plan lost by crash-mid-flush: %+v", rstats)
	}
}

// TestDaemonListenError: a bad address fails fast with a useful error.
func TestDaemonListenError(t *testing.T) {
	srv := New(Config{TCoeff: 1})
	err := RunDaemon(context.Background(), DaemonConfig{Server: srv, Addr: "256.0.0.1:-1"})
	if err == nil {
		t.Fatal("RunDaemon on an unusable address = nil, want error")
	}
}

// TestDaemonRequiresServer: misuse is an error, not a panic.
func TestDaemonRequiresServer(t *testing.T) {
	if err := RunDaemon(context.Background(), DaemonConfig{}); err == nil {
		t.Fatal("RunDaemon without a Server = nil, want error")
	}
}
